//! Property-based tests for the BTB and the GHRP BTB coupling.

#![forbid(unsafe_code)]

use ghrp_repro::btb::{btb_config, Btb, GhrpBtbPolicy};
use ghrp_repro::cache::policy::{Lru, ValidatingPolicy};
use ghrp_repro::ghrp::{GhrpConfig, SharedGhrp};
use proptest::prelude::*;

/// Strategy: a stream of (branch pc, target) pairs over a modest PC range.
fn arb_branches() -> impl Strategy<Value = Vec<(u64, u64)>> {
    prop::collection::vec((0u64..512, 0u64..4096), 1..300).prop_map(|v| {
        v.into_iter()
            .map(|(pc4, t4)| (0x1_0000 + pc4 * 4, 0x8_0000 + t4 * 4))
            .collect()
    })
}

proptest! {
    /// BTB bookkeeping invariants hold for any taken-branch stream:
    /// lookups = hits + misses, a hit always returns the latest target,
    /// and a predicted target (when present) is the last one installed.
    #[test]
    fn btb_bookkeeping(branches in arb_branches()) {
        let cfg = btb_config(64, 4).unwrap();
        let mut btb = Btb::new(cfg, ValidatingPolicy::new(Lru::new(cfg)));
        let mut last_target = std::collections::HashMap::new();
        for &(pc, target) in &branches {
            if let Some(pred) = btb.predict(pc) {
                // Any prediction must be the most recent target installed.
                prop_assert_eq!(pred, last_target[&pc]);
            }
            btb.lookup_and_update(pc, target);
            last_target.insert(pc, target);
            // Immediately after an update the entry is resident.
            prop_assert_eq!(btb.predict(pc), Some(target));
        }
        let s = btb.stats();
        prop_assert_eq!(s.hits + s.misses, s.lookups);
        prop_assert_eq!(s.lookups, branches.len() as u64);
    }

    /// The GHRP-coupled BTB never panics or violates bookkeeping for any
    /// interleaving of branch updates and (simulated) I-cache metadata.
    #[test]
    fn ghrp_btb_robust_under_arbitrary_metadata(
        branches in arb_branches(),
        sigs in prop::collection::vec(any::<u16>(), 1..50),
    ) {
        let cfg = btb_config(64, 4).unwrap();
        let gcfg = GhrpConfig {
            btb_enable_bypass: false,
            ..GhrpConfig::default()
        };
        let shared = SharedGhrp::new(gcfg, 6);
        // Install arbitrary block metadata / training, as the I-cache side
        // would.
        for (i, &sig) in sigs.iter().enumerate() {
            shared.set_meta(
                (i as u64) * 64,
                ghrp_repro::ghrp::BlockMeta { signature: sig, predicted_dead: i % 2 == 0 },
            );
            shared.train(sig, i % 3 == 0);
        }
        let mut btb = Btb::new(cfg, ValidatingPolicy::new(GhrpBtbPolicy::new(cfg, shared, 64)));
        for &(pc, target) in &branches {
            btb.lookup_and_update(pc, target);
            prop_assert_eq!(btb.predict(pc), Some(target));
        }
        let s = btb.stats();
        prop_assert_eq!(s.hits + s.misses, s.lookups);
    }

    /// With bypass enabled, a bypassed allocation leaves no entry, and
    /// the miss is still counted.
    #[test]
    fn ghrp_btb_bypass_counts_misses(pcs in prop::collection::vec(0u64..64, 1..100)) {
        let cfg = btb_config(32, 2).unwrap();
        let gcfg = GhrpConfig {
            btb_enable_bypass: true,
            btb_dead_threshold: 1,
            ..GhrpConfig::default()
        };
        let shared = SharedGhrp::new(gcfg, 6);
        // Saturate every signature dead so the PC fallback predicts dead
        // and everything bypasses.
        for sig in 0..=u16::MAX {
            shared.train(sig, true);
            if usize::from(sig) > 1 << 14 {
                break; // enough coverage for the hashed indices
            }
        }
        let mut btb = Btb::new(cfg, ValidatingPolicy::new(GhrpBtbPolicy::new(cfg, shared, 64)));
        for &pc4 in &pcs {
            btb.lookup_and_update(0x4_0000 + pc4 * 4, 0x9000);
        }
        let s = btb.stats();
        prop_assert_eq!(s.hits + s.misses, s.lookups);
    }
}
