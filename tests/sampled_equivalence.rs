//! Equivalence and drift properties of phase-sampled replay.
//!
//! Two guarantees anchor the sampled pipeline:
//!
//! * **Exactness at the corner**: with `k = windows` every interval is
//!   its own representative, the plan degenerates to exact mode, and the
//!   sampled drivers delegate to the full single-pass engine — so the
//!   scientific payload (rows, policies, every MPKI float) is
//!   bit-identical to full replay at any thread count.
//! * **Determinism**: plans are a pure function of (sidecar, config,
//!   params), so repeated sampled runs serialize byte-identically.
//!
//! Plus a seeded drift regression pinning the sampled estimate within a
//! calibrated multiple of the reported heterogeneity error estimate on
//! all four synthetic workload categories.

#![forbid(unsafe_code)]

use ghrp_repro::frontend::experiment::{run_suite_from, SuiteSource};
use ghrp_repro::frontend::sampled::{run_suite_sampled, SampleParams};
use ghrp_repro::frontend::{PolicyKind, SimConfig};
use ghrp_repro::trace::corpus::{Corpus, CorpusBuilder, SuiteCorpus};
use ghrp_repro::trace::synth::{suite, WorkloadCategory, WorkloadSpec};
use proptest::prelude::*;

fn corpus_for(specs: &[WorkloadSpec]) -> SuiteCorpus {
    let mut b = CorpusBuilder::new();
    for s in specs {
        b.push_synthetic(&s.generate()).expect("encode synthetic");
    }
    SuiteCorpus::from_corpus(&Corpus::from_bytes(b.finish()).expect("parse corpus"))
}

proptest! {
    /// `k = windows` sampling (every interval its own representative,
    /// zero warmup loss) is bit-identical to full replay across thread
    /// counts 1..=8: same rows, same policies, float-for-float.
    #[test]
    fn k_equals_windows_is_bit_identical_to_full_replay(
        seed in 0u64..1_000,
        ntraces in 1usize..=3,
        instr in 30_000u64..80_000,
        threads in 1usize..=8,
        windows in 1u32..=16,
        warmup in 0u64..8_192,
    ) {
        let specs: Vec<WorkloadSpec> = suite(ntraces, seed)
            .into_iter()
            .map(|s| s.instructions(instr))
            .collect();
        let corpus = corpus_for(&specs);
        let base = SimConfig::paper_default();
        let pols = [PolicyKind::Lru, PolicyKind::Ghrp];
        let params = SampleParams { windows, k: windows, warmup };
        let sampled = run_suite_sampled(&specs, &base, &pols, threads, &corpus, &params);
        let full = run_suite_from(&specs, &base, &pols, threads, SuiteSource::Corpus(&corpus));
        // Payload equality (policies + rows; scheduler counters are
        // timing observability and excluded by design)...
        prop_assert_eq!(&sampled, &full);
        // ...and float-for-float bit identity of the serialized rows.
        let s_rows = serde_json::to_string(&sampled.rows).expect("serialize");
        let f_rows = serde_json::to_string(&full.rows).expect("serialize");
        prop_assert_eq!(s_rows, f_rows);
        let info = sampled.sampled.expect("sampled runs carry SampledInfo");
        prop_assert!(info.exact);
        prop_assert_eq!(info.replayed_instructions, info.total_instructions);
        prop_assert_eq!(info.est_error.to_bits(), 0.0f64.to_bits());
    }
}

/// Repeated sampled runs are byte-identical: deterministic clustering,
/// deterministic scheduling of the weighted sums, no ambient entropy.
#[test]
fn repeated_sampled_runs_serialize_byte_identically() {
    let specs: Vec<WorkloadSpec> = suite(4, 7)
        .into_iter()
        .map(|s| s.instructions(150_000))
        .collect();
    let corpus = corpus_for(&specs);
    let base = SimConfig::paper_default();
    let pols = [PolicyKind::Lru, PolicyKind::Srrip, PolicyKind::Ghrp];
    let params = SampleParams {
        windows: 16,
        k: 4,
        warmup: 2048,
    };
    let a = run_suite_sampled(&specs, &base, &pols, 4, &corpus, &params);
    let b = run_suite_sampled(&specs, &base, &pols, 8, &corpus, &params);
    assert!(
        !a.sampled.expect("info").exact,
        "params must actually sample"
    );
    let strip = |r: &ghrp_repro::frontend::SuiteResult| {
        serde_json::to_string(&(&r.policies, &r.rows, &r.sampled)).expect("serialize")
    };
    assert_eq!(strip(&a), strip(&b));
}

/// Seeded drift regression: on all four synthetic workload categories
/// the sampled category-mean I-cache MPKI stays within a calibrated
/// multiple of the reported heterogeneity estimate. At this scale the
/// intervals are tiny (4k-instruction base windows), so aggressive
/// sampling has genuine representative and cold-start bias; the pin
/// guards the *error model* — drift must stay proportional to the
/// reported `est_error` — while the <1% frontier claim is enforced by
/// `lab_sampled_fidelity`'s exact corner.
#[test]
fn sampled_drift_stays_within_reported_error_bound_per_category() {
    let specs: Vec<WorkloadSpec> = suite(8, 42)
        .into_iter()
        .map(|s| s.instructions(200_000))
        .collect();
    let corpus = corpus_for(&specs);
    let base = SimConfig::paper_default();
    let pols = [PolicyKind::Lru];
    let params = SampleParams {
        windows: 32,
        k: 6,
        warmup: 2048,
    };
    let sampled = run_suite_sampled(&specs, &base, &pols, 4, &corpus, &params);
    let full = run_suite_from(&specs, &base, &pols, 4, SuiteSource::Corpus(&corpus));
    let info = sampled.sampled.expect("info");
    assert!(!info.exact);
    assert!(
        info.speedup_proxy() > 2.0,
        "sampling must actually cut work"
    );
    let categories = [
        WorkloadCategory::ShortMobile,
        WorkloadCategory::ShortServer,
        WorkloadCategory::LongMobile,
        WorkloadCategory::LongServer,
    ];
    for cat in categories {
        let mean = |rows: &[ghrp_repro::frontend::TraceRow]| {
            let xs: Vec<f64> = rows
                .iter()
                .filter(|r| r.category == cat)
                .map(|r| r.icache_mpki[0])
                .collect();
            assert!(!xs.is_empty(), "{cat:?} missing from suite");
            xs.iter().sum::<f64>() / xs.len() as f64
        };
        let (sm, fm) = (mean(&sampled.rows), mean(&full.rows));
        // Calibrated to ~2x margin over the observed seeds (see
        // DESIGN.md §13 error model).
        let bound = 8.0 * info.est_error * (sm + 1.0);
        assert!(
            (sm - fm).abs() <= bound,
            "{cat:?}: sampled {sm} vs full {fm}, |drift| {} exceeds bound {bound}",
            (sm - fm).abs()
        );
    }
}
