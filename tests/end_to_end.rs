//! End-to-end integration tests spanning all workspace crates: trace
//! generation → fetch reconstruction → front-end simulation → experiment
//! aggregation.

#![forbid(unsafe_code)]

use ghrp_repro::frontend::{experiment, policy::PolicyKind, simulator::SimConfig, Simulator};
use ghrp_repro::trace::synth::{suite, WorkloadCategory, WorkloadSpec};

fn small_suite(n: usize) -> Vec<WorkloadSpec> {
    suite(n, 4242)
        .into_iter()
        .map(|s| s.instructions(400_000))
        .collect()
}

#[test]
fn full_pipeline_runs_every_policy() {
    let spec = &small_suite(1)[0];
    let trace = spec.generate();
    for &p in PolicyKind::ALL_ONLINE {
        let sim = Simulator::new(SimConfig::paper_default().with_policy(p));
        let r = sim.run(&trace.records, trace.instructions);
        assert!(r.instructions > 0, "{p}: empty measurement window");
        assert!(r.icache.accesses > 0, "{p}: no I-cache accesses");
        assert!(r.btb_lookups > 0, "{p}: no BTB lookups");
    }
}

#[test]
fn suite_results_are_deterministic_across_thread_counts() {
    let specs = small_suite(4);
    let cfg = SimConfig::paper_default();
    let pols = [PolicyKind::Lru, PolicyKind::Ghrp];
    let one = experiment::run_suite(&specs, &cfg, &pols, 1);
    let many = experiment::run_suite(&specs, &cfg, &pols, 8);
    assert_eq!(one, many);
}

#[test]
fn policy_ordering_on_server_workloads() {
    // On capacity-pressured server traces, the paper's ordering must hold
    // in aggregate: GHRP beats LRU, and Random is clearly worst. Per-trace
    // outcomes vary (the paper's Figure 9 shows the same), so this runs
    // the server members of the standard suite — the population the
    // reproduction's headline claim is made over.
    let specs: Vec<WorkloadSpec> = suite(16, 1234)
        .into_iter()
        .filter(|s| s.category.is_server())
        .map(|s| s.instructions(2_000_000))
        .collect();
    let result = experiment::run_suite(
        &specs,
        &SimConfig::paper_default(),
        &[PolicyKind::Lru, PolicyKind::Random, PolicyKind::Ghrp],
        4,
    );
    let means = result.icache_means();
    let (lru, random, ghrp) = (means[0], means[1], means[2]);
    assert!(
        ghrp < lru,
        "GHRP ({ghrp:.3}) must beat LRU ({lru:.3}) on average"
    );
    assert!(
        random > lru,
        "Random ({random:.3}) must lose to LRU ({lru:.3}) on average"
    );
    // BTB ordering too.
    let bt = result.btb_means();
    assert!(bt[2] < bt[0], "GHRP BTB {:.3} vs LRU {:.3}", bt[2], bt[0]);
    assert!(bt[1] > bt[0], "Random BTB {:.3} vs LRU {:.3}", bt[1], bt[0]);
}

#[test]
fn mobile_workloads_have_low_mpki() {
    let specs: Vec<WorkloadSpec> = (0..3)
        .map(|i| WorkloadSpec::new(WorkloadCategory::ShortMobile, 500 + i).instructions(800_000))
        .collect();
    let result = experiment::run_suite(&specs, &SimConfig::paper_default(), &[PolicyKind::Lru], 3);
    let lru = result.icache_means()[0];
    assert!(
        lru < 1.0,
        "mobile traces should be mostly cache-resident, got {lru:.3} MPKI"
    );
}

#[test]
fn opt_lower_bounds_all_online_policies() {
    let spec = WorkloadSpec::new(WorkloadCategory::ShortServer, 77).instructions(600_000);
    let trace = spec.generate();
    let opt = Simulator::new(SimConfig::paper_default().with_policy(PolicyKind::Opt))
        .run(&trace.records, trace.instructions);
    for &p in PolicyKind::ALL_ONLINE {
        let r = Simulator::new(SimConfig::paper_default().with_policy(p))
            .run(&trace.records, trace.instructions);
        assert!(
            opt.icache_mpki() <= r.icache_mpki() + 1e-9,
            "OPT ({:.4}) must lower-bound {p} ({:.4})",
            opt.icache_mpki(),
            r.icache_mpki()
        );
    }
}

#[test]
fn warmup_reduces_measured_window() {
    let spec = WorkloadSpec::new(WorkloadCategory::ShortMobile, 3).instructions(500_000);
    let trace = spec.generate();
    let sim = Simulator::new(SimConfig::paper_default());
    let r = sim.run(&trace.records, trace.instructions);
    // Paper warm-up: half the trace.
    assert!(r.instructions <= trace.instructions / 2 + 1000);
    assert!(r.instructions >= trace.instructions / 3);
}

#[test]
fn bigger_caches_never_hurt_lru_much() {
    // Sanity across the Figure 7 sweep: monotone capacity behaviour for
    // LRU on a server trace.
    use ghrp_repro::cache::CacheConfig;
    let spec = WorkloadSpec::new(WorkloadCategory::LongServer, 21).instructions(1_500_000);
    let trace = spec.generate();
    let mut prev = f64::INFINITY;
    for kb in [8u64, 16, 32, 64] {
        let cfg = SimConfig::paper_default()
            .with_icache(CacheConfig::with_capacity(kb * 1024, 8, 64).unwrap());
        let r = Simulator::new(cfg).run(&trace.records, trace.instructions);
        assert!(
            r.icache_mpki() <= prev * 1.05 + 0.01,
            "{kb}KB LRU MPKI {:.3} worse than smaller cache {prev:.3}",
            r.icache_mpki()
        );
        prev = r.icache_mpki();
    }
}

#[test]
fn ghrp_shared_state_serves_both_structures() {
    // The GHRP BTB must read I-cache metadata: run a sim and verify the
    // policy pair interoperates without panics and produces plausible
    // coupling (BTB misses bounded by lookups).
    let spec = WorkloadSpec::new(WorkloadCategory::ShortServer, 15).instructions(400_000);
    let trace = spec.generate();
    let r = Simulator::new(SimConfig::paper_default().with_policy(PolicyKind::Ghrp))
        .run(&trace.records, trace.instructions);
    assert!(r.btb_misses <= r.btb_lookups);
    assert!(r.icache.bypasses <= r.icache.misses);
}
