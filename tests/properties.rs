//! Property-based tests over the core data structures and invariants.

#![forbid(unsafe_code)]

use ghrp_repro::cache::policy::{
    BeladyOpt, Drrip, DuelConfig, DuelSelect, Fifo, Lru, PolicyInvariants, RandomPolicy, Srrip,
    ValidatingPolicy,
};
use ghrp_repro::cache::{AccessContext, Cache, CacheConfig, ReplacementPolicy};
use ghrp_repro::ghrp::{GhrpConfig, GhrpPolicy, SharedGhrp};
use ghrp_repro::trace::fetch::FetchStream;
use ghrp_repro::trace::io;
use ghrp_repro::trace::record::INSTRUCTION_BYTES;
use ghrp_repro::trace::{BranchKind, BranchRecord};
use proptest::prelude::*;

/// Strategy: a plausible branch record.
fn arb_record() -> impl Strategy<Value = BranchRecord> {
    (0u64..1_000_000, 0usize..6, any::<bool>(), 0u64..1_000_000).prop_map(
        |(pc4, kind, taken, tgt4)| {
            BranchRecord::new(
                pc4 * INSTRUCTION_BYTES,
                BranchKind::ALL[kind],
                taken,
                tgt4 * INSTRUCTION_BYTES,
            )
        },
    )
}

/// Strategy: a short block-address access sequence over a small region.
fn arb_accesses() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..64, 1..400).prop_map(|v| v.into_iter().map(|b| b * 64).collect())
}

fn drive<P: ReplacementPolicy>(cache: &mut Cache<P>, blocks: &[u64]) {
    for &b in blocks {
        cache.access(b, b);
    }
}

/// A two-variant candidate for heterogeneous set-dueling under test:
/// `DuelSelect` needs one candidate type, so mixing LRU and SRRIP goes
/// through this delegating enum (the production stack uses `AnyPolicy`).
enum EitherPolicy {
    Lru(Lru),
    Srrip(Srrip),
}

impl ReplacementPolicy for EitherPolicy {
    fn on_access(&mut self, ctx: &AccessContext) {
        match self {
            EitherPolicy::Lru(p) => p.on_access(ctx),
            EitherPolicy::Srrip(p) => p.on_access(ctx),
        }
    }
    fn on_hit(&mut self, way: usize, ctx: &AccessContext) {
        match self {
            EitherPolicy::Lru(p) => p.on_hit(way, ctx),
            EitherPolicy::Srrip(p) => p.on_hit(way, ctx),
        }
    }
    fn should_bypass(&mut self, ctx: &AccessContext) -> bool {
        match self {
            EitherPolicy::Lru(p) => p.should_bypass(ctx),
            EitherPolicy::Srrip(p) => p.should_bypass(ctx),
        }
    }
    fn choose_victim(&mut self, ctx: &AccessContext) -> usize {
        match self {
            EitherPolicy::Lru(p) => p.choose_victim(ctx),
            EitherPolicy::Srrip(p) => p.choose_victim(ctx),
        }
    }
    fn on_evict(&mut self, way: usize, victim_block: u64, ctx: &AccessContext) {
        match self {
            EitherPolicy::Lru(p) => p.on_evict(way, victim_block, ctx),
            EitherPolicy::Srrip(p) => p.on_evict(way, victim_block, ctx),
        }
    }
    fn on_fill(&mut self, way: usize, ctx: &AccessContext) {
        match self {
            EitherPolicy::Lru(p) => p.on_fill(way, ctx),
            EitherPolicy::Srrip(p) => p.on_fill(way, ctx),
        }
    }
    fn reset(&mut self) {
        match self {
            EitherPolicy::Lru(p) => p.reset(),
            EitherPolicy::Srrip(p) => p.reset(),
        }
    }
    fn name(&self) -> String {
        match self {
            EitherPolicy::Lru(p) => p.name(),
            EitherPolicy::Srrip(p) => p.name(),
        }
    }
}

impl PolicyInvariants for EitherPolicy {
    fn check_invariants(&self) -> Result<(), String> {
        match self {
            EitherPolicy::Lru(p) => p.check_invariants(),
            EitherPolicy::Srrip(p) => p.check_invariants(),
        }
    }
}

proptest! {
    /// Binary trace serialization round-trips exactly.
    #[test]
    fn trace_binary_roundtrip(records in prop::collection::vec(arb_record(), 0..200)) {
        let mut buf = Vec::new();
        io::write_binary(&mut buf, &records).unwrap();
        let back = io::read_binary(buf.as_slice()).unwrap();
        prop_assert_eq!(back, records);
    }

    /// JSON trace serialization round-trips exactly.
    #[test]
    fn trace_json_roundtrip(records in prop::collection::vec(arb_record(), 0..50)) {
        let mut buf = Vec::new();
        io::write_json(&mut buf, &records).unwrap();
        let back = io::read_json(buf.as_slice()).unwrap();
        prop_assert_eq!(back, records);
    }

    /// Fetch reconstruction: chunk instruction counts are positive, blocks
    /// are aligned, branches appear exactly once each, and the branch of a
    /// chunk lies inside its block.
    #[test]
    fn fetch_stream_invariants(records in prop::collection::vec(arb_record(), 1..200)) {
        let mut branch_count = 0usize;
        for chunk in FetchStream::new(records.iter().copied(), 64) {
            prop_assert!(chunk.n_instr >= 1);
            prop_assert_eq!(chunk.block_addr % 64, 0);
            prop_assert_eq!(chunk.first_pc & !(64 - 1), chunk.block_addr);
            prop_assert!(chunk.last_pc() < chunk.block_addr + 64);
            if let Some(b) = chunk.branch {
                branch_count += 1;
                prop_assert_eq!(b.pc, chunk.last_pc());
            }
        }
        prop_assert_eq!(branch_count, records.len());
    }

    /// Every policy keeps the accessed block resident right after a
    /// non-bypassed access, and never reports more hits than accesses.
    #[test]
    fn cache_residency_invariant(blocks in arb_accesses(), ways in 1u32..=8) {
        let ways = ways.next_power_of_two();
        let cfg = CacheConfig::with_sets(8, ways, 64).unwrap();
        // Every policy runs under ValidatingPolicy, so its internal
        // invariants (LRU stack permutation, RRPV bounds, PSEL range) are
        // re-checked after each access of each generated sequence.
        let policies: Vec<Box<dyn ReplacementPolicy>> = vec![
            Box::new(ValidatingPolicy::new(Lru::new(cfg))),
            Box::new(ValidatingPolicy::new(Fifo::new(cfg))),
            Box::new(ValidatingPolicy::new(RandomPolicy::new(cfg, 1))),
            Box::new(ValidatingPolicy::new(Srrip::new(cfg))),
            Box::new(ValidatingPolicy::new(Drrip::new(cfg))),
        ];
        for p in policies {
            let mut c = Cache::new(cfg, p);
            for &b in &blocks {
                let r = c.access(b, b);
                if !matches!(r, ghrp_repro::cache::AccessResult::Bypassed) {
                    prop_assert!(c.contains(b), "block {b:#x} absent after fill");
                }
            }
            let s = c.stats();
            prop_assert_eq!(s.hits + s.misses, s.accesses);
            prop_assert!(c.valid_frames() <= cfg.frames());
        }
    }

    /// LRU stack/inclusion property: with the same set count, a cache with
    /// more ways never misses more under LRU.
    #[test]
    fn lru_inclusion(blocks in arb_accesses()) {
        let mut prev_misses = u64::MAX;
        for ways in [1u32, 2, 4, 8] {
            let cfg = CacheConfig::with_sets(4, ways, 64).unwrap();
            let mut c = Cache::new(cfg, ValidatingPolicy::new(Lru::new(cfg)));
            drive(&mut c, &blocks);
            let m = c.stats().misses;
            prop_assert!(m <= prev_misses, "{ways}-way missed {m} > {prev_misses}");
            prev_misses = m;
        }
    }

    /// Belady's OPT never misses more than LRU on any sequence.
    #[test]
    fn opt_is_optimal_vs_lru(blocks in arb_accesses()) {
        let cfg = CacheConfig::with_sets(4, 2, 64).unwrap();
        let mut lru = Cache::new(cfg, ValidatingPolicy::new(Lru::new(cfg)));
        drive(&mut lru, &blocks);
        let mut opt = Cache::new(cfg, ValidatingPolicy::new(BeladyOpt::from_trace(cfg, &blocks)));
        drive(&mut opt, &blocks);
        prop_assert!(opt.stats().misses <= lru.stats().misses);
    }

    /// GHRP's metadata store tracks exactly the resident blocks (plus
    /// nothing else), for any access pattern.
    #[test]
    fn ghrp_metadata_matches_residency(blocks in arb_accesses()) {
        let cfg = CacheConfig::with_sets(4, 2, 64).unwrap();
        let gcfg = GhrpConfig {
            enable_bypass: false,
            ..GhrpConfig::default()
        };
        let shared = SharedGhrp::new(gcfg, cfg.offset_bits());
        let mut c = Cache::new(cfg, ValidatingPolicy::new(GhrpPolicy::new(cfg, shared.clone())));
        for &b in &blocks {
            c.access(b, b);
            prop_assert!(shared.meta(b).is_some(), "no metadata for resident {b:#x}");
        }
        prop_assert_eq!(shared.meta_len(), c.valid_frames());
    }

    /// The GHRP signature depends only on the history and the shifted PC,
    /// and fits 16 bits.
    #[test]
    fn signature_fits_and_is_deterministic(h in any::<u64>(), pc in any::<u64>()) {
        let a = ghrp_repro::ghrp::signature::signature(h, pc, 16);
        let b = ghrp_repro::ghrp::signature::signature(h, pc, 16);
        prop_assert_eq!(a, b);
        // Table indices are in range for every table.
        for t in 0..3 {
            prop_assert!(ghrp_repro::ghrp::signature::table_index(a, t, 12) < 4096);
        }
    }

    /// Saturating counters never leave their range under arbitrary
    /// training sequences.
    #[test]
    fn table_counters_stay_in_range(updates in prop::collection::vec((any::<u16>(), any::<bool>()), 0..500)) {
        let cfg = GhrpConfig {
            table_entries: 256,
            ..GhrpConfig::default()
        };
        let mut t = ghrp_repro::ghrp::PredictionTables::new(&cfg);
        for (sig, dead) in updates {
            t.update(sig, dead);
            for c in t.counters(sig) {
                prop_assert!(c <= cfg.counter_max());
            }
        }
    }

    /// The synthetic walker always respects its instruction budget within
    /// one block's slack and is deterministic.
    #[test]
    fn walker_budget_and_determinism(seed in 0u64..64, budget in 1000u64..40_000) {
        use ghrp_repro::trace::synth::{WorkloadCategory, WorkloadSpec};
        let cat = WorkloadCategory::ALL[(seed % 4) as usize];
        let spec = WorkloadSpec::new(cat, seed).instructions(budget);
        let a = spec.generate();
        let b = spec.generate();
        prop_assert_eq!(&a.records, &b.records);
        prop_assert!(a.instructions >= budget);
        prop_assert!(a.instructions < budget + 64);
    }

    /// GHRP skewed-table indices stay inside the table for *any* history,
    /// PC and supported geometry, and the signature hash is deterministic.
    #[test]
    fn signature_indices_in_bounds_any_geometry(
        h in any::<u64>(),
        pc in any::<u64>(),
        index_bits in 6u32..=14,
    ) {
        let sig = ghrp_repro::ghrp::signature::signature(h, pc, 16);
        prop_assert_eq!(sig, ghrp_repro::ghrp::signature::signature(h, pc, 16));
        for t in 0..8 {
            let i = ghrp_repro::ghrp::signature::table_index(sig, t, index_bits);
            prop_assert!(i < (1usize << index_bits),
                "table {t}: index {i} out of 2^{index_bits} bound");
        }
    }

    /// Counters saturate at the configured max (and at zero) rather than
    /// wrapping, no matter how one-sided the training is.
    #[test]
    fn counters_saturate_not_wrap(sig in any::<u16>(), extra in 0usize..64) {
        let cfg = GhrpConfig { table_entries: 256, ..GhrpConfig::default() };
        let max = cfg.counter_max();
        let mut t = ghrp_repro::ghrp::PredictionTables::new(&cfg);
        // Far more dead-trainings than the counter can hold: must pin at
        // max, not wrap past it.
        for _ in 0..(usize::from(max) + 1 + extra) {
            t.update(sig, true);
        }
        prop_assert!(t.counters(sig).into_iter().all(|c| c == max));
        // And the same number of live-trainings plus slack: pin at zero.
        for _ in 0..(usize::from(max) + 1 + extra) {
            t.update(sig, false);
        }
        prop_assert!(t.counters(sig).into_iter().all(|c| c == 0));
        prop_assert!(t.check_invariants().is_ok());
    }

    /// The dueling meta-policy holds every [`ValidatingPolicy`]-checked
    /// invariant — PSEL bounds, leader-set disjointness and coverage,
    /// follower-steering consistency, window-counter bounds, plus each
    /// candidate's own invariants — across arbitrary access streams in
    /// both continuous and phase-adaptive modes, with heterogeneous
    /// candidates, and never loses residency of the accessed block.
    #[test]
    fn duel_invariants_and_residency(blocks in arb_accesses(), window in 0u32..4) {
        let cfg = CacheConfig::with_sets(16, 2, 64).unwrap();
        let duel = if window == 0 {
            DuelConfig::continuous()
        } else {
            DuelConfig::phase_adaptive(32 * window)
        };
        let candidates = vec![
            EitherPolicy::Lru(Lru::new(cfg)),
            EitherPolicy::Srrip(Srrip::new(cfg)),
        ];
        let mut c = Cache::new(
            cfg,
            ValidatingPolicy::new(DuelSelect::new(cfg, duel, candidates)),
        );
        for &b in &blocks {
            let r = c.access(b, b);
            if !matches!(r, ghrp_repro::cache::AccessResult::Bypassed) {
                prop_assert!(c.contains(b), "block {b:#x} absent after duel fill");
            }
        }
        prop_assert!(c.policy().check_invariants().is_ok());
        let s = c.stats();
        prop_assert_eq!(s.hits + s.misses, s.accesses);
    }

    /// §III.F: for any interleaving of speculative updates, retirements
    /// and recoveries, recovery restores exactly the retired history, and
    /// the dual-history invariants hold throughout.
    #[test]
    fn history_recovery_restores_retired(ops in prop::collection::vec((0u8..3, any::<u64>()), 1..200)) {
        let mut h = ghrp_repro::ghrp::SpeculativeHistory::new(&GhrpConfig::default());
        let mut retired_shadow = ghrp_repro::ghrp::SpeculativeHistory::new(&GhrpConfig::default());
        for (op, pc) in ops {
            match op {
                0 => h.update_speculative(pc),
                1 => {
                    h.retire(pc);
                    retired_shadow.update_speculative(pc);
                }
                _ => h.recover(),
            }
            prop_assert!(h.check_invariants().is_ok());
            // The retired history must follow the committed stream alone.
            prop_assert_eq!(h.retired(), retired_shadow.speculative());
        }
        h.recover();
        prop_assert_eq!(h.speculative(), h.retired());
    }

    /// The validated GHRP policy holds all its invariants (stack
    /// permutation, counter ranges, in-bounds indices, exact recovery)
    /// across arbitrary access streams interleaved with mispredictions.
    #[test]
    fn ghrp_invariants_under_mispredictions(
        blocks in arb_accesses(),
        recover_every in 1usize..16,
    ) {
        let cfg = CacheConfig::with_sets(4, 4, 64).unwrap();
        let shared = SharedGhrp::new(GhrpConfig::default(), cfg.offset_bits());
        let mut c = Cache::new(cfg, ValidatingPolicy::new(GhrpPolicy::new(cfg, shared.clone())));
        for (i, &b) in blocks.iter().enumerate() {
            c.access(b, b);
            if i % recover_every == 0 {
                shared.recover(); // simulated branch misprediction
            } else {
                shared.retire(b);
            }
        }
        prop_assert!(c.policy().check_invariants().is_ok());
    }
}
