//! Property-based tests over the core data structures and invariants.

use ghrp_repro::cache::policy::{BeladyOpt, Fifo, Lru, RandomPolicy, Srrip};
use ghrp_repro::cache::{Cache, CacheConfig, ReplacementPolicy};
use ghrp_repro::ghrp::{GhrpConfig, GhrpPolicy, SharedGhrp};
use ghrp_repro::trace::fetch::FetchStream;
use ghrp_repro::trace::io;
use ghrp_repro::trace::record::INSTRUCTION_BYTES;
use ghrp_repro::trace::{BranchKind, BranchRecord};
use proptest::prelude::*;

/// Strategy: a plausible branch record.
fn arb_record() -> impl Strategy<Value = BranchRecord> {
    (
        0u64..1_000_000,
        0usize..6,
        any::<bool>(),
        0u64..1_000_000,
    )
        .prop_map(|(pc4, kind, taken, tgt4)| {
            BranchRecord::new(
                pc4 * INSTRUCTION_BYTES,
                BranchKind::ALL[kind],
                taken,
                tgt4 * INSTRUCTION_BYTES,
            )
        })
}

/// Strategy: a short block-address access sequence over a small region.
fn arb_accesses() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..64, 1..400).prop_map(|v| v.into_iter().map(|b| b * 64).collect())
}

fn drive<P: ReplacementPolicy>(cache: &mut Cache<P>, blocks: &[u64]) {
    for &b in blocks {
        cache.access(b, b);
    }
}

proptest! {
    /// Binary trace serialization round-trips exactly.
    #[test]
    fn trace_binary_roundtrip(records in prop::collection::vec(arb_record(), 0..200)) {
        let mut buf = Vec::new();
        io::write_binary(&mut buf, &records).unwrap();
        let back = io::read_binary(buf.as_slice()).unwrap();
        prop_assert_eq!(back, records);
    }

    /// JSON trace serialization round-trips exactly.
    #[test]
    fn trace_json_roundtrip(records in prop::collection::vec(arb_record(), 0..50)) {
        let mut buf = Vec::new();
        io::write_json(&mut buf, &records).unwrap();
        let back = io::read_json(buf.as_slice()).unwrap();
        prop_assert_eq!(back, records);
    }

    /// Fetch reconstruction: chunk instruction counts are positive, blocks
    /// are aligned, branches appear exactly once each, and the branch of a
    /// chunk lies inside its block.
    #[test]
    fn fetch_stream_invariants(records in prop::collection::vec(arb_record(), 1..200)) {
        let mut branch_count = 0usize;
        for chunk in FetchStream::new(records.iter().copied(), 64) {
            prop_assert!(chunk.n_instr >= 1);
            prop_assert_eq!(chunk.block_addr % 64, 0);
            prop_assert_eq!(chunk.first_pc & !(64 - 1), chunk.block_addr);
            prop_assert!(chunk.last_pc() < chunk.block_addr + 64);
            if let Some(b) = chunk.branch {
                branch_count += 1;
                prop_assert_eq!(b.pc, chunk.last_pc());
            }
        }
        prop_assert_eq!(branch_count, records.len());
    }

    /// Every policy keeps the accessed block resident right after a
    /// non-bypassed access, and never reports more hits than accesses.
    #[test]
    fn cache_residency_invariant(blocks in arb_accesses(), ways in 1u32..=8) {
        let ways = ways.next_power_of_two();
        let cfg = CacheConfig::with_sets(8, ways, 64).unwrap();
        let policies: Vec<Box<dyn ReplacementPolicy>> = vec![
            Box::new(Lru::new(cfg)),
            Box::new(Fifo::new(cfg)),
            Box::new(RandomPolicy::new(cfg, 1)),
            Box::new(Srrip::new(cfg)),
        ];
        for p in policies {
            let mut c = Cache::new(cfg, p);
            for &b in &blocks {
                let r = c.access(b, b);
                if !matches!(r, ghrp_repro::cache::AccessResult::Bypassed) {
                    prop_assert!(c.contains(b), "block {b:#x} absent after fill");
                }
            }
            let s = c.stats();
            prop_assert_eq!(s.hits + s.misses, s.accesses);
            prop_assert!(c.valid_frames() <= cfg.frames());
        }
    }

    /// LRU stack/inclusion property: with the same set count, a cache with
    /// more ways never misses more under LRU.
    #[test]
    fn lru_inclusion(blocks in arb_accesses()) {
        let mut prev_misses = u64::MAX;
        for ways in [1u32, 2, 4, 8] {
            let cfg = CacheConfig::with_sets(4, ways, 64).unwrap();
            let mut c = Cache::new(cfg, Lru::new(cfg));
            drive(&mut c, &blocks);
            let m = c.stats().misses;
            prop_assert!(m <= prev_misses, "{ways}-way missed {m} > {prev_misses}");
            prev_misses = m;
        }
    }

    /// Belady's OPT never misses more than LRU on any sequence.
    #[test]
    fn opt_is_optimal_vs_lru(blocks in arb_accesses()) {
        let cfg = CacheConfig::with_sets(4, 2, 64).unwrap();
        let mut lru = Cache::new(cfg, Lru::new(cfg));
        drive(&mut lru, &blocks);
        let mut opt = Cache::new(cfg, BeladyOpt::from_trace(cfg, &blocks));
        drive(&mut opt, &blocks);
        prop_assert!(opt.stats().misses <= lru.stats().misses);
    }

    /// GHRP's metadata store tracks exactly the resident blocks (plus
    /// nothing else), for any access pattern.
    #[test]
    fn ghrp_metadata_matches_residency(blocks in arb_accesses()) {
        let cfg = CacheConfig::with_sets(4, 2, 64).unwrap();
        let mut gcfg = GhrpConfig::default();
        gcfg.enable_bypass = false;
        let shared = SharedGhrp::new(gcfg, cfg.offset_bits());
        let mut c = Cache::new(cfg, GhrpPolicy::new(cfg, shared.clone()));
        for &b in &blocks {
            c.access(b, b);
            prop_assert!(shared.meta(b).is_some(), "no metadata for resident {b:#x}");
        }
        prop_assert_eq!(shared.meta_len(), c.valid_frames());
    }

    /// The GHRP signature depends only on the history and the shifted PC,
    /// and fits 16 bits.
    #[test]
    fn signature_fits_and_is_deterministic(h in any::<u64>(), pc in any::<u64>()) {
        let a = ghrp_repro::ghrp::signature::signature(h, pc, 16);
        let b = ghrp_repro::ghrp::signature::signature(h, pc, 16);
        prop_assert_eq!(a, b);
        // Table indices are in range for every table.
        for t in 0..3 {
            prop_assert!(ghrp_repro::ghrp::signature::table_index(a, t, 12) < 4096);
        }
    }

    /// Saturating counters never leave their range under arbitrary
    /// training sequences.
    #[test]
    fn table_counters_stay_in_range(updates in prop::collection::vec((any::<u16>(), any::<bool>()), 0..500)) {
        let mut cfg = GhrpConfig::default();
        cfg.table_entries = 256;
        let mut t = ghrp_repro::ghrp::PredictionTables::new(&cfg);
        for (sig, dead) in updates {
            t.update(sig, dead);
            for c in t.counters(sig) {
                prop_assert!(c <= cfg.counter_max());
            }
        }
    }

    /// The synthetic walker always respects its instruction budget within
    /// one block's slack and is deterministic.
    #[test]
    fn walker_budget_and_determinism(seed in 0u64..64, budget in 1000u64..40_000) {
        use ghrp_repro::trace::synth::{WorkloadCategory, WorkloadSpec};
        let cat = WorkloadCategory::ALL[(seed % 4) as usize];
        let spec = WorkloadSpec::new(cat, seed).instructions(budget);
        let a = spec.generate();
        let b = spec.generate();
        prop_assert_eq!(&a.records, &b.records);
        prop_assert!(a.instructions >= budget);
        prop_assert!(a.instructions < budget + 64);
    }
}
