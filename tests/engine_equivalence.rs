//! Property-based equivalence: the single-pass multi-policy engine must be
//! bit-identical to the legacy one-`Simulator`-per-policy path on random
//! workloads, random policy subsets, and both replay sources.
//!
//! The engine shares one decoded fetch stream and one set of branch
//! predictors across all lanes, so the property these tests pin down is
//! that the sharing is *observationally invisible*: every per-lane
//! statistic — I-cache, BTB, branch predictor, wrong-path — matches the
//! standalone simulator exactly, not merely within tolerance.

#![forbid(unsafe_code)]

use ghrp_repro::frontend::engine::{run_lanes, SliceReplay};
use ghrp_repro::frontend::experiment::{run_trace, run_trace_legacy};
use ghrp_repro::frontend::simulator::WrongPathConfig;
use ghrp_repro::frontend::{PolicyKind, SimConfig, Simulator};
use ghrp_repro::trace::synth::{WorkloadCategory, WorkloadSpec};
use proptest::prelude::*;

/// The online policies the engine races in one pass. OPT joins via its own
/// test below (it needs the offline precompute path exercised too).
const ONLINE: [PolicyKind; 7] = [
    PolicyKind::Lru,
    PolicyKind::Fifo,
    PolicyKind::Random,
    PolicyKind::Srrip,
    PolicyKind::Drrip,
    PolicyKind::Sdbp,
    PolicyKind::Ghrp,
];

fn arb_category() -> impl Strategy<Value = WorkloadCategory> {
    (0usize..4).prop_map(|i| {
        [
            WorkloadCategory::ShortMobile,
            WorkloadCategory::ShortServer,
            WorkloadCategory::LongMobile,
            WorkloadCategory::LongServer,
        ][i]
    })
}

/// A non-empty subset of the online policies, in declaration order: bit
/// `i` of the mask selects `ONLINE[i]`.
fn arb_policies() -> impl Strategy<Value = Vec<PolicyKind>> {
    (1u8..128).prop_map(|mask| {
        ONLINE
            .iter()
            .enumerate()
            .filter(|&(i, _)| mask >> i & 1 == 1)
            .map(|(_, &p)| p)
            .collect()
    })
}

/// A small but non-trivial workload: long enough to fill the caches and
/// cross the warm-up boundary, short enough that running both engine and
/// legacy paths per case keeps the suite fast.
fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    (arb_category(), any::<u64>(), 8_000u64..24_000)
        .prop_map(|(cat, seed, n)| WorkloadSpec::new(cat, seed).instructions(n))
}

fn arb_config() -> impl Strategy<Value = SimConfig> {
    (any::<bool>(), 0u32..=2).prop_map(|(wrong_path, prefetch)| {
        let mut cfg = SimConfig::paper_default();
        if wrong_path {
            cfg.wrong_path = Some(WrongPathConfig::default());
        }
        cfg.prefetch_degree = prefetch;
        cfg
    })
}

proptest! {
    /// Each engine lane reproduces the standalone simulator exactly —
    /// every statistic, not just MPKI — for a random workload, a random
    /// policy subset, and random wrong-path/prefetch settings.
    #[test]
    fn lanes_are_bit_identical_to_standalone_runs(
        spec in arb_spec(),
        policies in arb_policies(),
        base in arb_config(),
    ) {
        let trace = spec.generate();
        let lanes = run_lanes(&base, &policies, &SliceReplay::from_trace(&trace));
        prop_assert_eq!(lanes.len(), policies.len());
        for (lane, &p) in lanes.iter().zip(&policies) {
            let standalone =
                Simulator::new(base.with_policy(p)).run(&trace.records, trace.instructions);
            prop_assert_eq!(lane, &standalone);
        }
    }

    /// The streaming replay source (no materialized record vector) yields
    /// the same lanes as replaying a pre-generated slice.
    #[test]
    fn streaming_matches_slice_replay(
        spec in arb_spec(),
        policies in arb_policies(),
        base in arb_config(),
    ) {
        let trace = spec.generate();
        let from_slice = run_lanes(&base, &policies, &SliceReplay::from_trace(&trace));
        let from_stream = run_lanes(&base, &policies, &spec.streamed());
        prop_assert_eq!(from_slice, from_stream);
    }

    /// The public experiment row built from the engine matches the legacy
    /// multi-pass row for the full seven-policy set.
    #[test]
    fn run_trace_matches_legacy_row(
        spec in arb_spec(),
        base in arb_config(),
    ) {
        let engine = run_trace(&spec, &base, &ONLINE);
        let legacy = run_trace_legacy(&spec, &base, &ONLINE);
        prop_assert_eq!(engine, legacy);
    }

    /// The offline oracle lane (whose access sequences are precomputed
    /// once and shared) also matches its standalone run alongside online
    /// company.
    #[test]
    fn offline_opt_lane_matches_standalone(spec in arb_spec()) {
        let base = SimConfig::paper_default();
        let policies = [PolicyKind::Opt, PolicyKind::Lru, PolicyKind::Ghrp];
        let trace = spec.generate();
        let lanes = run_lanes(&base, &policies, &SliceReplay::from_trace(&trace));
        for (lane, &p) in lanes.iter().zip(&policies) {
            let standalone =
                Simulator::new(base.with_policy(p)).run(&trace.records, trace.instructions);
            prop_assert_eq!(lane, &standalone);
        }
    }
}
