//! Property-based equivalence: the single-pass multi-policy engine must be
//! bit-identical to the legacy one-`Simulator`-per-policy path on random
//! workloads, random policy subsets, and both replay sources.
//!
//! The engine shares one decoded fetch stream and one set of branch
//! predictors across all lanes, so the property these tests pin down is
//! that the sharing is *observationally invisible*: every per-lane
//! statistic — I-cache, BTB, branch predictor, wrong-path — matches the
//! standalone simulator exactly, not merely within tolerance.

#![forbid(unsafe_code)]

use ghrp_repro::frontend::engine::{run_lanes, SliceReplay};
use ghrp_repro::frontend::experiment::{run_suite, run_suite_from, run_trace, run_trace_legacy};
use ghrp_repro::frontend::policy::BasePolicy;
use ghrp_repro::frontend::simulator::WrongPathConfig;
use ghrp_repro::frontend::sweep::{run_sweep, run_sweep_from};
use ghrp_repro::frontend::{PolicyKind, SimConfig, Simulator, SuiteSource};
use ghrp_repro::trace::corpus::{Corpus, CorpusBuilder, SuiteCorpus};
use ghrp_repro::trace::synth::{suite, WorkloadCategory, WorkloadSpec};
use proptest::prelude::*;

/// The online policies the engine races in one pass. OPT joins via its own
/// test below (it needs the offline precompute path exercised too).
const ONLINE: [PolicyKind; 7] = [
    PolicyKind::Lru,
    PolicyKind::Fifo,
    PolicyKind::Random,
    PolicyKind::Srrip,
    PolicyKind::Drrip,
    PolicyKind::Sdbp,
    PolicyKind::Ghrp,
];

fn arb_category() -> impl Strategy<Value = WorkloadCategory> {
    (0usize..4).prop_map(|i| {
        [
            WorkloadCategory::ShortMobile,
            WorkloadCategory::ShortServer,
            WorkloadCategory::LongMobile,
            WorkloadCategory::LongServer,
        ][i]
    })
}

/// A non-empty subset of the online policies, in declaration order: bit
/// `i` of the mask selects `ONLINE[i]`.
fn arb_policies() -> impl Strategy<Value = Vec<PolicyKind>> {
    (1u8..128).prop_map(|mask| {
        ONLINE
            .iter()
            .enumerate()
            .filter(|&(i, _)| mask >> i & 1 == 1)
            .map(|(_, &p)| p)
            .collect()
    })
}

/// A small but non-trivial workload: long enough to fill the caches and
/// cross the warm-up boundary, short enough that running both engine and
/// legacy paths per case keeps the suite fast.
fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    (arb_category(), any::<u64>(), 8_000u64..24_000)
        .prop_map(|(cat, seed, n)| WorkloadSpec::new(cat, seed).instructions(n))
}

/// Any candidate a hybrid may duel (every online base policy).
fn arb_base() -> impl Strategy<Value = BasePolicy> {
    (0usize..9).prop_map(|i| {
        [
            BasePolicy::Lru,
            BasePolicy::Fifo,
            BasePolicy::Random,
            BasePolicy::Srrip,
            BasePolicy::Drrip,
            BasePolicy::Ship,
            BasePolicy::CounterDbp,
            BasePolicy::Sdbp,
            BasePolicy::Ghrp,
        ][i]
    })
}

fn arb_config() -> impl Strategy<Value = SimConfig> {
    (any::<bool>(), 0u32..=2).prop_map(|(wrong_path, prefetch)| {
        let mut cfg = SimConfig::paper_default();
        if wrong_path {
            cfg.wrong_path = Some(WrongPathConfig::default());
        }
        cfg.prefetch_degree = prefetch;
        cfg
    })
}

proptest! {
    /// Each engine lane reproduces the standalone simulator exactly —
    /// every statistic, not just MPKI — for a random workload, a random
    /// policy subset, and random wrong-path/prefetch settings.
    #[test]
    fn lanes_are_bit_identical_to_standalone_runs(
        spec in arb_spec(),
        policies in arb_policies(),
        base in arb_config(),
    ) {
        let trace = spec.generate();
        let lanes = run_lanes(&base, &policies, &SliceReplay::from_trace(&trace));
        prop_assert_eq!(lanes.len(), policies.len());
        for (lane, &p) in lanes.iter().zip(&policies) {
            let standalone =
                Simulator::new(base.with_policy(p)).run(&trace.records, trace.instructions);
            prop_assert_eq!(lane, &standalone);
        }
    }

    /// The streaming replay source (no materialized record vector) yields
    /// the same lanes as replaying a pre-generated slice.
    #[test]
    fn streaming_matches_slice_replay(
        spec in arb_spec(),
        policies in arb_policies(),
        base in arb_config(),
    ) {
        let trace = spec.generate();
        let from_slice = run_lanes(&base, &policies, &SliceReplay::from_trace(&trace));
        let from_stream = run_lanes(&base, &policies, &spec.streamed());
        prop_assert_eq!(from_slice, from_stream);
    }

    /// The public experiment row built from the engine matches the legacy
    /// multi-pass row for the full seven-policy set.
    #[test]
    fn run_trace_matches_legacy_row(
        spec in arb_spec(),
        base in arb_config(),
    ) {
        let engine = run_trace(&spec, &base, &ONLINE);
        let legacy = run_trace_legacy(&spec, &base, &ONLINE);
        prop_assert_eq!(engine, legacy);
    }

    /// A corpus round-trip is replay-transparent to the engine: encoding
    /// a workload to the columnar format and replaying it through a
    /// shared-buffer cursor yields the same lanes as replaying the
    /// original record slice.
    #[test]
    fn corpus_replay_matches_slice_replay(
        spec in arb_spec(),
        policies in arb_policies(),
        base in arb_config(),
    ) {
        let trace = spec.generate();
        let mut builder = CorpusBuilder::new();
        builder.push_synthetic(&trace).expect("corpus encode");
        let corpus = Corpus::from_bytes(builder.finish()).expect("corpus decode");
        let corpus_trace = corpus.get(0).expect("one trace");
        let from_slice = run_lanes(&base, &policies, &SliceReplay::from_trace(&trace));
        let from_corpus = run_lanes(&base, &policies, &corpus_trace);
        prop_assert_eq!(from_slice, from_corpus);
    }

    /// A dueling hybrid with a single candidate is observationally the
    /// static policy: every decision comes from candidate 0 no matter
    /// what the PSEL tallies say, so `duel(p)` and `phase(p)` lanes must
    /// be bit-identical to a static `p` lane — all statistics, both
    /// selection modes, any base policy, random workloads and configs.
    #[test]
    fn single_candidate_hybrid_is_bit_identical_to_static(
        spec in arb_spec(),
        base in arb_config(),
        p in arb_base(),
        window in 64u32..4096,
    ) {
        let trace = spec.generate();
        let statik = p.as_kind();
        for hybrid in [PolicyKind::duel(&[p]), PolicyKind::phase(&[p], window)] {
            let lanes = run_lanes(
                &base,
                &[statik, hybrid],
                &SliceReplay::from_trace(&trace),
            );
            // Identical up to the policy label the lane reports.
            let mut normalized = lanes[1];
            normalized.policy = lanes[0].policy;
            prop_assert_eq!(normalized, lanes[0]);
        }
    }

    /// The offline oracle lane (whose access sequences are precomputed
    /// once and shared) also matches its standalone run alongside online
    /// company.
    #[test]
    fn offline_opt_lane_matches_standalone(spec in arb_spec()) {
        let base = SimConfig::paper_default();
        let policies = [PolicyKind::Opt, PolicyKind::Lru, PolicyKind::Ghrp];
        let trace = spec.generate();
        let lanes = run_lanes(&base, &policies, &SliceReplay::from_trace(&trace));
        for (lane, &p) in lanes.iter().zip(&policies) {
            let standalone =
                Simulator::new(base.with_policy(p)).run(&trace.records, trace.instructions);
            prop_assert_eq!(lane, &standalone);
        }
    }
}

/// Suite and sweep runs replaying from a shared corpus must be
/// bit-identical to the streamed-synth path at every thread count: the
/// corpus is one immutable buffer read concurrently by all scheduler
/// workers, so neither sharing nor scheduling may show through in the
/// results.
#[test]
fn corpus_suite_and_sweep_match_streamed_across_threads() {
    let specs: Vec<WorkloadSpec> = suite(3, 33)
        .into_iter()
        .map(|s| s.instructions(20_000))
        .collect();
    let mut builder = CorpusBuilder::new();
    for spec in &specs {
        builder.push_synthetic(&spec.generate()).expect("encode");
    }
    let corpus = Corpus::from_bytes(builder.finish()).expect("verified corpus");
    let shared = SuiteCorpus::from_corpus(&corpus);

    let cfg = SimConfig::paper_default();
    // Opt exercises the offline precompute pass (a second corpus
    // replay); Ghrp and Lru cover predictor-coupled and plain lanes.
    let pols = [PolicyKind::Lru, PolicyKind::Ghrp, PolicyKind::Opt];
    let geoms = [(8 * 1024, 4), (32 * 1024, 8)];

    let suite_ref = run_suite(&specs, &cfg, &pols, 1);
    let sweep_ref = run_sweep(&specs, &cfg, &pols, &geoms, 1);
    for threads in 1..=8 {
        let from_corpus =
            run_suite_from(&specs, &cfg, &pols, threads, SuiteSource::Corpus(&shared));
        assert_eq!(
            from_corpus, suite_ref,
            "suite diverged from streamed replay at {threads} threads"
        );
        let swept = run_sweep_from(
            &specs,
            &cfg,
            &pols,
            &geoms,
            threads,
            SuiteSource::Corpus(&shared),
        );
        assert_eq!(
            swept, sweep_ref,
            "sweep diverged from streamed replay at {threads} threads"
        );
    }
}

/// `duel(p)`/`phase(p)` columns must equal static `p` columns for every
/// thread count and both replay sources: the sticky PSEL state a hybrid
/// keeps across `reset()` is cleared by the arena's cold restart, so
/// neither scheduling, arena reuse order, nor the replay source may make
/// the degenerate hybrid drift from its static policy.
#[test]
fn single_candidate_hybrids_match_statics_across_threads_and_sources() {
    let specs: Vec<WorkloadSpec> = suite(3, 41)
        .into_iter()
        .map(|s| s.instructions(20_000))
        .collect();
    let mut builder = CorpusBuilder::new();
    for spec in &specs {
        builder.push_synthetic(&spec.generate()).expect("encode");
    }
    let corpus = Corpus::from_bytes(builder.finish()).expect("verified corpus");
    let shared = SuiteCorpus::from_corpus(&corpus);

    let cfg = SimConfig::paper_default();
    // GHRP exercises the shared-predictor wiring inside a hybrid; SDBP
    // is the heaviest table-driven candidate.
    let statics = [PolicyKind::Ghrp, PolicyKind::Sdbp];
    let hybrids = [
        PolicyKind::duel(&[BasePolicy::Ghrp]),
        PolicyKind::phase(&[BasePolicy::Sdbp], 2048),
    ];
    let reference = run_suite(&specs, &cfg, &statics, 1);
    for threads in 1..=8 {
        for (label, source) in [
            ("streamed", SuiteSource::Streamed),
            ("corpus", SuiteSource::Corpus(&shared)),
        ] {
            let hybrid = run_suite_from(&specs, &cfg, &hybrids, threads, source);
            assert_eq!(
                hybrid.rows, reference.rows,
                "single-candidate hybrids diverged from statics at \
                 {threads} threads ({label} replay)"
            );
        }
    }
}

/// A corpus that does not match the suite's workloads is rejected up
/// front instead of silently replaying the wrong trace.
#[test]
#[should_panic(expected = "corpus")]
fn mismatched_corpus_is_rejected() {
    let specs: Vec<WorkloadSpec> = suite(2, 5)
        .into_iter()
        .map(|s| s.instructions(10_000))
        .collect();
    let mut builder = CorpusBuilder::new();
    builder
        .push_synthetic(&specs[0].generate())
        .expect("encode");
    let corpus = Corpus::from_bytes(builder.finish()).expect("verified corpus");
    let shared = SuiteCorpus::from_corpus(&corpus); // one trace, two specs
    let cfg = SimConfig::paper_default();
    let _ = run_suite_from(
        &specs,
        &cfg,
        &[PolicyKind::Lru],
        1,
        SuiteSource::Corpus(&shared),
    );
}
