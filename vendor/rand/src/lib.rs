//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small API subset it actually uses:
//!
//! * [`rngs::SmallRng`] — a fast, seedable, non-cryptographic generator
//!   (xoshiro256**, seeded via SplitMix64 exactly like the real
//!   `SmallRng` on 64-bit platforms).
//! * [`Rng::gen_range`] over integer and float ranges (half-open and
//!   inclusive), [`Rng::gen_bool`], and [`Rng::gen`] for a few primitive
//!   types.
//! * [`SeedableRng::seed_from_u64`] / [`SeedableRng::from_seed`].
//!
//! The implementation is deterministic per seed, which is all the
//! simulator needs: reproducible synthetic workloads and reproducible
//! Random-policy victim choices. Statistical quality matches the real
//! xoshiro256** generator; distribution tails (e.g. modulo bias
//! avoidance) use Lemire-style rejection like the real crate.

#![forbid(unsafe_code)]

/// The core of a random number generator: a source of `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A seedable generator.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed array.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` seed (expanded via SplitMix64).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types that a [`Rng`] can produce directly via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from the generator.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

impl Standard for bool {
    fn draw(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn draw(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw(rng: &mut dyn RngCore) -> u32 {
        rng.next_u32()
    }
}

impl Standard for f64 {
    fn draw(rng: &mut dyn RngCore) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

fn uniform_u64(rng: &mut dyn RngCore, span: u64) -> u64 {
    debug_assert!(span > 0, "empty range");
    // Lemire's multiply-shift with rejection to remove modulo bias.
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! int_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                // Width-preserving unsigned subtraction handles signed
                // bounds (two's complement) without sign-extension.
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

int_range!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = f64::draw(rng) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let unit = f64::draw(rng) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_range!(f32, f64);

/// User-facing generator methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value in `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(p.is_finite(), "gen_bool: p must be finite");
        f64::draw(self) < p
    }

    /// One value of a supported primitive type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — the algorithm behind the real `SmallRng` on 64-bit
    /// targets. Fast, small, and statistically sound for simulation.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> SmallRng {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // All-zero state would be a fixed point; nudge it.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = SmallRng::seed_from_u64(8);
        let same = (0..100).all(|_| {
            let mut a2 = SmallRng::seed_from_u64(7);
            a2.gen_range(0u64..u64::MAX) == c.gen_range(0u64..u64::MAX)
        });
        assert!(!same, "different seeds should diverge");
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(3..8);
            assert!((3..8).contains(&v));
            let w = r.gen_range(2..=5u64);
            assert!((2..=5).contains(&w));
            let f = r.gen_range(0.05..0.35);
            assert!((0.05..0.35).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(2);
        assert!((0..1000).all(|_| !r.gen_bool(0.0)));
        assert!((0..1000).all(|_| r.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "p=0.5 gave {heads}/10000");
    }
}
