//! Token trees with line/column spans.
//!
//! The lexer produces a flat token sequence; [`crate::lexer`] folds it
//! into nested [`Group`]s keyed by delimiter. Unlike real `syn`/
//! `proc-macro2`, compound punctuation (`::`, `->`, `>>`, …) is one
//! [`Punct`] token carrying the full text — downstream matchers compare
//! against the joined spelling instead of reassembling spacing hints.

#![forbid(unsafe_code)]

use std::fmt;

/// Source position of a token (1-based line, 1-based column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct Span {
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column (in characters).
    pub column: usize,
}

impl Span {
    /// Construct a span.
    pub fn new(line: usize, column: usize) -> Span {
        Span { line, column }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// The three bracket kinds that form token-tree groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delimiter {
    /// `( … )`
    Parenthesis,
    /// `[ … ]`
    Bracket,
    /// `{ … }`
    Brace,
}

/// An identifier or keyword (`as`, `fn`, `impl`, … are all `Ident`s, as
/// in `proc-macro2`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ident {
    /// The identifier text (raw identifiers are stored without `r#`).
    pub text: String,
    /// Source position.
    pub span: Span,
}

/// One punctuation token; compound operators are stored joined.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Punct {
    /// The operator spelling, e.g. `"%"`, `"::"`, `"->"`.
    pub text: String,
    /// Source position.
    pub span: Span,
}

/// What kind of literal a [`Literal`] token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LitKind {
    /// Integer or float literal (suffix retained in the text).
    Number,
    /// `"…"`, `r"…"`, `b"…"` and friends.
    Str,
    /// `'x'` or `b'x'`.
    Char,
}

/// A literal token. `text` is the raw source spelling; for string
/// literals `cooked` holds the unescaped content.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Literal {
    /// Raw source spelling, including quotes/prefix/suffix.
    pub text: String,
    /// Unescaped content for string literals, digits for numbers.
    pub cooked: String,
    /// Literal class.
    pub kind: LitKind,
    /// Source position.
    pub span: Span,
}

/// A lifetime token such as `'a` or `'static`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lifetime {
    /// The lifetime name without the leading quote.
    pub text: String,
    /// Source position.
    pub span: Span,
}

/// A delimited token group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Group {
    /// Which delimiter pair encloses the group.
    pub delimiter: Delimiter,
    /// The tokens inside the delimiters.
    pub stream: TokenStream,
    /// Position of the opening delimiter.
    pub span: Span,
}

/// A sequence of token trees.
pub type TokenStream = Vec<TokenTree>;

/// One node of the token tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenTree {
    /// Identifier or keyword.
    Ident(Ident),
    /// Punctuation (compound operators joined).
    Punct(Punct),
    /// Number, string or char literal.
    Literal(Literal),
    /// Lifetime.
    Lifetime(Lifetime),
    /// Delimited group.
    Group(Group),
}

impl TokenTree {
    /// The token's source position (a group reports its opening
    /// delimiter).
    pub fn span(&self) -> Span {
        match self {
            TokenTree::Ident(t) => t.span,
            TokenTree::Punct(t) => t.span,
            TokenTree::Literal(t) => t.span,
            TokenTree::Lifetime(t) => t.span,
            TokenTree::Group(t) => t.span,
        }
    }

    /// Whether this is the identifier/keyword `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        matches!(self, TokenTree::Ident(i) if i.text == name)
    }

    /// Whether this is the punctuation `text` (joined spelling).
    pub fn is_punct(&self, text: &str) -> bool {
        matches!(self, TokenTree::Punct(p) if p.text == text)
    }

    /// The identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            TokenTree::Ident(i) => Some(&i.text),
            _ => None,
        }
    }

    /// The group, if this is a group with delimiter `delim`.
    pub fn group(&self, delim: Delimiter) -> Option<&Group> {
        match self {
            TokenTree::Group(g) if g.delimiter == delim => Some(g),
            _ => None,
        }
    }

    /// The group, regardless of delimiter.
    pub fn any_group(&self) -> Option<&Group> {
        match self {
            TokenTree::Group(g) => Some(g),
            _ => None,
        }
    }
}

/// Render a token stream as approximate source text (single spaces
/// between tokens) — used for diagnostics, not round-tripping.
pub fn stream_to_string(stream: &[TokenTree]) -> String {
    let mut out = String::new();
    for tt in stream {
        if !out.is_empty() {
            out.push(' ');
        }
        match tt {
            TokenTree::Ident(i) => out.push_str(&i.text),
            TokenTree::Punct(p) => out.push_str(&p.text),
            TokenTree::Literal(l) => out.push_str(&l.text),
            TokenTree::Lifetime(l) => {
                out.push('\'');
                out.push_str(&l.text);
            }
            TokenTree::Group(g) => {
                let (open, close) = match g.delimiter {
                    Delimiter::Parenthesis => ('(', ')'),
                    Delimiter::Bracket => ('[', ']'),
                    Delimiter::Brace => ('{', '}'),
                };
                out.push(open);
                let inner = stream_to_string(&g.stream);
                if !inner.is_empty() {
                    out.push_str(&inner);
                }
                out.push(close);
            }
        }
    }
    out
}
