//! Expression-level grammar on top of the token trees.
//!
//! [`crate::parse_file`] stops at item granularity: function bodies stay
//! raw [`Group`]s. This module lowers those groups into a typed
//! expression AST — blocks, let-bindings, calls, method chains, field
//! and index access, loops, closures, `match`, operators and casts, all
//! span-carrying — so the analysis engine can reason about dataflow
//! instead of scanning token windows.
//!
//! The parser is *tolerant by construction*: it never fails and never
//! panics. Any token sequence it does not recognize degrades to
//! [`Expr::Other`] carrying the raw tokens (so token-level fallbacks
//! still see them), and every parsing step is guaranteed to consume at
//! least one token, so the parser always terminates. Recursion depth is
//! capped ([`MAX_DEPTH`]); pathologically nested input degrades to
//! `Other` rather than overflowing the stack.

#![forbid(unsafe_code)]

use crate::token::{Delimiter, Group, Ident, Literal, Span, TokenStream, TokenTree};

/// Recursion budget for nested groups/expressions. Beyond this depth the
/// parser stops descending and returns [`Expr::Other`]; real code sits
/// far below it, and the cap keeps arbitrary (fuzzed) input from
/// overflowing the stack (each level costs ~16 stack frames through the
/// precedence chain).
pub const MAX_DEPTH: usize = 48;

/// A `{ … }` block lowered to statements.
#[derive(Debug, Clone)]
pub struct Block {
    /// The statements in source order.
    pub stmts: Vec<Stmt>,
    /// Span of the opening brace.
    pub span: Span,
}

/// One statement of a block.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// `let pat[: ty] [= init] [else { … }];`
    Let(StmtLet),
    /// An expression, with or without a trailing semicolon.
    Expr {
        /// The expression.
        expr: Expr,
        /// Whether a `;` followed.
        semi: bool,
    },
    /// A nested item (fn/struct/use/…) kept as raw tokens.
    Item(TokenStream),
}

/// A `let` statement.
#[derive(Debug, Clone)]
pub struct StmtLet {
    /// Raw pattern tokens (including any `mut`).
    pub pat: TokenStream,
    /// The single bound name when the pattern is a plain binding.
    pub ident: Option<Ident>,
    /// Raw type-annotation tokens, if `: ty` was present.
    pub ty: Option<TokenStream>,
    /// The initializer, if `= expr` was present.
    pub init: Option<Box<Expr>>,
    /// The `else { … }` diverging block of a let-else.
    pub else_block: Option<Block>,
    /// Span of the `let` keyword.
    pub span: Span,
}

/// A (possibly multi-segment) path such as `Ordering::Relaxed`. Generic
/// arguments between segments are skipped; only the segment names are
/// kept.
#[derive(Debug, Clone)]
pub struct ExprPath {
    /// Segment names in order.
    pub segments: Vec<String>,
    /// Span of the first segment.
    pub span: Span,
}

impl ExprPath {
    /// Last segment name, if any.
    pub fn last(&self) -> Option<&str> {
        self.segments.last().map(String::as_str)
    }

    /// Render as `a::b::c` for matching/diagnostics.
    pub fn joined(&self) -> String {
        self.segments.join("::")
    }
}

/// A method call `recv.name::<T>(args)`.
#[derive(Debug, Clone)]
pub struct ExprMethod {
    /// The receiver expression.
    pub recv: Box<Expr>,
    /// Method name.
    pub method: Ident,
    /// Raw turbofish tokens (contents of `::<…>`), if present.
    pub turbofish: Option<TokenStream>,
    /// Arguments.
    pub args: Vec<Expr>,
    /// Span of the method name (matches the legacy token rules, which
    /// report the method identifier's line).
    pub span: Span,
}

/// An `if` expression (the condition may be an [`Expr::LetCond`]).
#[derive(Debug, Clone)]
pub struct ExprIf {
    /// Condition.
    pub cond: Box<Expr>,
    /// `{ … }` taken when true.
    pub then_branch: Block,
    /// `else …` — either a [`Expr::Block`] or a nested [`Expr::If`].
    pub else_branch: Option<Box<Expr>>,
    /// Span of the `if` keyword.
    pub span: Span,
}

/// A `match` expression.
#[derive(Debug, Clone)]
pub struct ExprMatch {
    /// The scrutinee.
    pub scrutinee: Box<Expr>,
    /// The arms in order.
    pub arms: Vec<Arm>,
    /// Span of the `match` keyword.
    pub span: Span,
}

/// One `pat [if guard] => body` match arm.
#[derive(Debug, Clone)]
pub struct Arm {
    /// Raw pattern tokens.
    pub pat: TokenStream,
    /// Guard expression after `if`, if present.
    pub guard: Option<Box<Expr>>,
    /// Arm body.
    pub body: Expr,
}

/// A `for pat in iter { … }` loop.
#[derive(Debug, Clone)]
pub struct ExprFor {
    /// Raw pattern tokens.
    pub pat: TokenStream,
    /// The iterated expression.
    pub iter: Box<Expr>,
    /// Loop body.
    pub body: Block,
    /// Span of the `for` keyword.
    pub span: Span,
}

/// A macro invocation `path!(…)` / `path![…]` / `path!{…}`.
#[derive(Debug, Clone)]
pub struct ExprMacro {
    /// Macro path segments (e.g. `["println"]`).
    pub path: Vec<String>,
    /// Best-effort parse of the arguments as comma-separated
    /// expressions (empty when the body is not expression-shaped).
    pub args: Vec<Expr>,
    /// The raw argument tokens, always present.
    pub raw: TokenStream,
    /// The delimiter used at the call site.
    pub delimiter: Delimiter,
    /// Span of the macro name.
    pub span: Span,
}

/// An expression.
#[derive(Debug, Clone)]
pub enum Expr {
    /// A path (single identifier or `a::b::c`).
    Path(ExprPath),
    /// A literal token.
    Lit(Literal),
    /// Prefix `-`/`!`/`*`.
    Unary {
        /// Operator spelling.
        op: String,
        /// Operand.
        expr: Box<Expr>,
        /// Operator span.
        span: Span,
    },
    /// `&expr` / `&mut expr`.
    Ref {
        /// Whether `mut` followed the `&`.
        mutable: bool,
        /// Referent.
        expr: Box<Expr>,
        /// `&` span.
        span: Span,
    },
    /// Infix binary operation.
    Binary {
        /// Operator spelling (`+`, `%`, `==`, `&&`, …).
        op: String,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Operator span (rules report this line).
        span: Span,
    },
    /// `target = value` and compound assignments.
    Assign {
        /// Operator spelling (`=`, `+=`, …).
        op: String,
        /// Assignment target.
        target: Box<Expr>,
        /// Assigned value.
        value: Box<Expr>,
        /// Operator span.
        span: Span,
    },
    /// `lo..hi`, `lo..=hi`, `..`, `lo..`, `..hi`.
    Range {
        /// Lower bound.
        lo: Option<Box<Expr>>,
        /// Whether the range is inclusive (`..=`).
        inclusive: bool,
        /// Upper bound.
        hi: Option<Box<Expr>>,
        /// `..` span.
        span: Span,
    },
    /// `expr as Ty`.
    Cast {
        /// The value being cast.
        expr: Box<Expr>,
        /// Raw tokens of the target type.
        ty: TokenStream,
        /// Span of the `as` keyword (matches the legacy token rules).
        span: Span,
    },
    /// `callee(args)`.
    Call {
        /// The callee (usually a path).
        callee: Box<Expr>,
        /// Arguments.
        args: Vec<Expr>,
        /// Span of the argument group.
        span: Span,
    },
    /// `recv.method(args)`.
    MethodCall(ExprMethod),
    /// `base.name` / `base.0` / `base.await`.
    Field {
        /// The base expression.
        base: Box<Expr>,
        /// Member name (or tuple index text).
        member: String,
        /// Member span.
        span: Span,
    },
    /// `base[index]`.
    Index {
        /// The indexed expression.
        base: Box<Expr>,
        /// The index expression.
        index: Box<Expr>,
        /// Span of the bracket group.
        span: Span,
    },
    /// `expr?`.
    Try {
        /// The inner expression.
        expr: Box<Expr>,
        /// `?` span.
        span: Span,
    },
    /// `(…)` — parenthesized (one element, `tuple == false`) or a tuple.
    Paren {
        /// The enclosed expressions.
        exprs: Vec<Expr>,
        /// Whether a top-level comma made this a tuple.
        tuple: bool,
        /// Group span.
        span: Span,
    },
    /// `[a, b, c]` or `[elem; n]` (both elements appear in `elems`).
    Array {
        /// Element expressions.
        elems: Vec<Expr>,
        /// Group span.
        span: Span,
    },
    /// `Path { field: value, .. }`.
    Struct {
        /// The struct path.
        path: ExprPath,
        /// `(name, value)` field initializers; shorthand fields get a
        /// [`Expr::Path`] value of the same name.
        fields: Vec<(String, Expr)>,
        /// `..base` functional-update expression, if present.
        rest: Option<Box<Expr>>,
        /// Span of the brace group.
        span: Span,
    },
    /// A block expression (plain, `unsafe`, `async`, `try`, labelled).
    Block {
        /// The block.
        block: Block,
        /// Span of the opening brace (or leading keyword).
        span: Span,
    },
    /// `if … { … } else …`.
    If(ExprIf),
    /// `match … { … }`.
    Match(ExprMatch),
    /// `while cond { … }`.
    While {
        /// Condition (may be a [`Expr::LetCond`]).
        cond: Box<Expr>,
        /// Body.
        body: Block,
        /// `while` span.
        span: Span,
    },
    /// `for pat in iter { … }`.
    ForLoop(ExprFor),
    /// `loop { … }`.
    Loop {
        /// Body.
        body: Block,
        /// `loop` span.
        span: Span,
    },
    /// `|params| body` / `move |params| body`.
    Closure {
        /// Raw parameter tokens (between the pipes).
        params: TokenStream,
        /// The closure body.
        body: Box<Expr>,
        /// Span of the opening pipe.
        span: Span,
    },
    /// `return [expr]`.
    Return {
        /// Returned value.
        value: Option<Box<Expr>>,
        /// `return` span.
        span: Span,
    },
    /// `break ['label] [expr]`.
    Break {
        /// Break value.
        value: Option<Box<Expr>>,
        /// `break` span.
        span: Span,
    },
    /// `continue ['label]`.
    Continue {
        /// `continue` span.
        span: Span,
    },
    /// `let pat = expr` appearing as an `if`/`while` condition.
    LetCond {
        /// Raw pattern tokens.
        pat: TokenStream,
        /// The matched value.
        value: Box<Expr>,
        /// `let` span.
        span: Span,
    },
    /// A macro invocation.
    Macro(ExprMacro),
    /// Tokens the parser did not recognize, kept raw so token-level
    /// fallbacks can still scan them.
    Other {
        /// The raw tokens.
        tokens: TokenStream,
        /// Span of the first token.
        span: Span,
    },
}

impl Expr {
    /// The expression's source position.
    pub fn span(&self) -> Span {
        match self {
            Expr::Path(p) => p.span,
            Expr::Lit(l) => l.span,
            Expr::Unary { span, .. }
            | Expr::Ref { span, .. }
            | Expr::Binary { span, .. }
            | Expr::Assign { span, .. }
            | Expr::Range { span, .. }
            | Expr::Cast { span, .. }
            | Expr::Call { span, .. }
            | Expr::Field { span, .. }
            | Expr::Index { span, .. }
            | Expr::Try { span, .. }
            | Expr::Paren { span, .. }
            | Expr::Array { span, .. }
            | Expr::Struct { span, .. }
            | Expr::Block { span, .. }
            | Expr::While { span, .. }
            | Expr::Loop { span, .. }
            | Expr::Closure { span, .. }
            | Expr::Return { span, .. }
            | Expr::Break { span, .. }
            | Expr::Continue { span }
            | Expr::LetCond { span, .. }
            | Expr::Other { span, .. } => *span,
            Expr::MethodCall(m) => m.span,
            Expr::If(e) => e.span,
            Expr::Match(e) => e.span,
            Expr::ForLoop(e) => e.span,
            Expr::Macro(m) => m.span,
        }
    }

    /// The path, if this expression is a bare path.
    pub fn as_path(&self) -> Option<&ExprPath> {
        match self {
            Expr::Path(p) => Some(p),
            _ => None,
        }
    }

    /// The root identifier of a path/field/index/method chain:
    /// `self.tbl[i].x` → `tbl` (skipping `self`), `counts.entry(k)` →
    /// `counts`. Used by analyses to key state by variable name.
    pub fn root_ident(&self) -> Option<&str> {
        match self {
            Expr::Path(p) => match p.segments.as_slice() {
                [one] => Some(one.as_str()),
                [a, b] if a == "self" => Some(b.as_str()),
                _ => p.last(),
            },
            Expr::Field { base, member, .. } => match base.as_ref() {
                Expr::Path(p) if p.segments.len() == 1 && p.segments[0] == "self" => {
                    Some(member.as_str())
                }
                _ => base.root_ident(),
            },
            Expr::Index { base, .. } | Expr::Try { expr: base, .. } => base.root_ident(),
            Expr::Unary { expr, .. } | Expr::Ref { expr, .. } | Expr::Cast { expr, .. } => {
                expr.root_ident()
            }
            Expr::MethodCall(m) => m.recv.root_ident(),
            Expr::Paren { exprs, tuple, .. } if !*tuple && exprs.len() == 1 => {
                exprs[0].root_ident()
            }
            _ => None,
        }
    }
}

/// Parse the contents of a brace [`Group`] (e.g. a function body) into a
/// [`Block`]. Never fails.
pub fn parse_block(group: &Group) -> Block {
    let mut p = Parser::new(&group.stream, 0);
    let stmts = p.parse_stmts();
    Block {
        stmts,
        span: group.span,
    }
}

/// Parse a token stream as comma-separated expressions (e.g. a const
/// initializer or macro arguments). Never fails; unparseable stretches
/// become [`Expr::Other`].
pub fn parse_exprs(stream: &[TokenTree]) -> Vec<Expr> {
    Parser::new(stream, 0).parse_comma_exprs()
}

/// Call `f` on every expression in the block, pre-order (parents before
/// children), including nested blocks, closures and match arms.
pub fn visit_block<F: FnMut(&Expr)>(block: &Block, f: &mut F) {
    for stmt in &block.stmts {
        visit_stmt(stmt, f);
    }
}

/// Call `f` on every expression in the statement, pre-order.
pub fn visit_stmt<F: FnMut(&Expr)>(stmt: &Stmt, f: &mut F) {
    match stmt {
        Stmt::Let(l) => {
            if let Some(init) = &l.init {
                visit_expr(init, f);
            }
            if let Some(b) = &l.else_block {
                visit_block(b, f);
            }
        }
        Stmt::Expr { expr, .. } => visit_expr(expr, f),
        Stmt::Item(_) => {}
    }
}

/// Call `f` on `expr` and every sub-expression, pre-order.
pub fn visit_expr<F: FnMut(&Expr)>(expr: &Expr, f: &mut F) {
    f(expr);
    match expr {
        Expr::Path(_) | Expr::Lit(_) | Expr::Continue { .. } | Expr::Other { .. } => {}
        Expr::Unary { expr, .. }
        | Expr::Ref { expr, .. }
        | Expr::Cast { expr, .. }
        | Expr::Try { expr, .. } => visit_expr(expr, f),
        Expr::Binary { lhs, rhs, .. } => {
            visit_expr(lhs, f);
            visit_expr(rhs, f);
        }
        Expr::Assign { target, value, .. } => {
            visit_expr(target, f);
            visit_expr(value, f);
        }
        Expr::Range { lo, hi, .. } => {
            if let Some(e) = lo {
                visit_expr(e, f);
            }
            if let Some(e) = hi {
                visit_expr(e, f);
            }
        }
        Expr::Call { callee, args, .. } => {
            visit_expr(callee, f);
            for a in args {
                visit_expr(a, f);
            }
        }
        Expr::MethodCall(m) => {
            visit_expr(&m.recv, f);
            for a in &m.args {
                visit_expr(a, f);
            }
        }
        Expr::Field { base, .. } => visit_expr(base, f),
        Expr::Index { base, index, .. } => {
            visit_expr(base, f);
            visit_expr(index, f);
        }
        Expr::Paren { exprs, .. } | Expr::Array { elems: exprs, .. } => {
            for e in exprs {
                visit_expr(e, f);
            }
        }
        Expr::Struct { fields, rest, .. } => {
            for (_, e) in fields {
                visit_expr(e, f);
            }
            if let Some(r) = rest {
                visit_expr(r, f);
            }
        }
        Expr::Block { block, .. } => visit_block(block, f),
        Expr::If(e) => {
            visit_expr(&e.cond, f);
            visit_block(&e.then_branch, f);
            if let Some(el) = &e.else_branch {
                visit_expr(el, f);
            }
        }
        Expr::Match(e) => {
            visit_expr(&e.scrutinee, f);
            for arm in &e.arms {
                if let Some(g) = &arm.guard {
                    visit_expr(g, f);
                }
                visit_expr(&arm.body, f);
            }
        }
        Expr::While { cond, body, .. } => {
            visit_expr(cond, f);
            visit_block(body, f);
        }
        Expr::ForLoop(e) => {
            visit_expr(&e.iter, f);
            visit_block(&e.body, f);
        }
        Expr::Loop { body, .. } => visit_block(body, f),
        Expr::Closure { body, .. } => visit_expr(body, f),
        Expr::Return { value, .. } | Expr::Break { value, .. } => {
            if let Some(v) = value {
                visit_expr(v, f);
            }
        }
        Expr::LetCond { value, .. } => visit_expr(value, f),
        Expr::Macro(m) => {
            for a in &m.args {
                visit_expr(a, f);
            }
        }
    }
}

const ASSIGN_OPS: [&str; 11] = [
    "=", "+=", "-=", "*=", "/=", "%=", "^=", "|=", "&=", "<<=", ">>=",
];
const ITEM_KEYWORDS: [&str; 12] = [
    "fn",
    "struct",
    "enum",
    "impl",
    "mod",
    "trait",
    "use",
    "type",
    "static",
    "extern",
    "macro_rules",
    "pub",
];

struct Parser<'a> {
    toks: &'a [TokenTree],
    i: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn new(toks: &'a [TokenTree], depth: usize) -> Self {
        Parser { toks, i: 0, depth }
    }

    fn peek(&self) -> Option<&'a TokenTree> {
        self.toks.get(self.i)
    }

    fn peek_at(&self, n: usize) -> Option<&'a TokenTree> {
        self.toks.get(self.i + n)
    }

    fn bump(&mut self) -> Option<&'a TokenTree> {
        let t = self.toks.get(self.i);
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.i >= self.toks.len()
    }

    fn span_here(&self) -> Span {
        self.peek().map(TokenTree::span).unwrap_or_default()
    }

    fn sub(&self, stream: &'a [TokenTree]) -> Parser<'a> {
        Parser::new(stream, self.depth + 1)
    }

    fn too_deep(&self) -> bool {
        self.depth >= MAX_DEPTH
    }

    // ---- statements -------------------------------------------------

    fn parse_stmts(&mut self) -> Vec<Stmt> {
        let mut stmts = Vec::new();
        while !self.at_end() {
            let before = self.i;
            if let Some(stmt) = self.parse_stmt() {
                stmts.push(stmt);
            }
            if self.i == before {
                // Safety net: always make progress.
                self.i += 1;
            }
        }
        stmts
    }

    fn parse_stmt(&mut self) -> Option<Stmt> {
        // Leading attributes on statements/expressions.
        self.skip_attrs();
        let first = self.peek()?;
        if first.is_punct(";") {
            self.bump();
            return None;
        }
        if first.is_ident("let") {
            return Some(Stmt::Let(self.parse_let()));
        }
        if self.at_item_keyword() {
            let tokens = self.consume_item_like();
            return Some(Stmt::Item(tokens));
        }
        let expr = self.parse_expr(false);
        let semi = if self.peek().is_some_and(|t| t.is_punct(";")) {
            self.bump();
            true
        } else {
            false
        };
        Some(Stmt::Expr { expr, semi })
    }

    fn skip_attrs(&mut self) {
        while self.peek().is_some_and(|t| t.is_punct("#")) {
            if self
                .peek_at(1)
                .is_some_and(|t| t.group(Delimiter::Bracket).is_some())
            {
                self.bump();
                self.bump();
            } else {
                break;
            }
        }
    }

    fn at_item_keyword(&self) -> bool {
        let Some(TokenTree::Ident(id)) = self.peek() else {
            return false;
        };
        if ITEM_KEYWORDS.contains(&id.text.as_str()) {
            return true;
        }
        // `const NAME: …` is an item; `const { … }` is a block expr.
        id.text == "const"
            && self
                .peek_at(1)
                .is_some_and(|t| matches!(t, TokenTree::Ident(_)))
    }

    /// Consume a nested item: through the trailing `;`, or through the
    /// first brace group when no `=` was seen (fn/impl/mod bodies).
    fn consume_item_like(&mut self) -> TokenStream {
        let mut out = Vec::new();
        let mut saw_eq = false;
        while let Some(t) = self.peek() {
            if t.is_punct(";") {
                out.push(self.bump().unwrap().clone());
                break;
            }
            if t.is_punct("=") {
                saw_eq = true;
            }
            let is_brace = t.group(Delimiter::Brace).is_some();
            out.push(self.bump().unwrap().clone());
            if is_brace && !saw_eq {
                break;
            }
        }
        out
    }

    fn parse_let(&mut self) -> StmtLet {
        let span = self.span_here();
        self.bump(); // `let`
        let mut pat = Vec::new();
        while let Some(t) = self.peek() {
            if t.is_punct(":") || t.is_punct("=") || t.is_punct(";") {
                break;
            }
            pat.push(self.bump().unwrap().clone());
        }
        let ty = if self.peek().is_some_and(|t| t.is_punct(":")) {
            self.bump();
            Some(self.consume_type_until_eq())
        } else {
            None
        };
        let init = if self.peek().is_some_and(|t| t.is_punct("=")) {
            self.bump();
            Some(Box::new(self.parse_expr(false)))
        } else {
            None
        };
        let else_block = if self.peek().is_some_and(|t| t.is_ident("else")) {
            self.bump();
            self.peek()
                .and_then(|t| t.group(Delimiter::Brace))
                .map(|g| {
                    let b = self.parse_group_block(g);
                    self.bump();
                    b
                })
        } else {
            None
        };
        if self.peek().is_some_and(|t| t.is_punct(";")) {
            self.bump();
        }
        let ident = single_binding(&pat);
        StmtLet {
            pat,
            ident,
            ty,
            init,
            else_block,
            span,
        }
    }

    /// Type tokens after `let name:` — up to a top-level `=` or `;`,
    /// treating `<…>` generics as nesting (so `Fn(A) -> B` arrows and
    /// defaulted generics inside angles do not end the type).
    fn consume_type_until_eq(&mut self) -> TokenStream {
        let mut out = Vec::new();
        let mut angle = 0i32;
        while let Some(t) = self.peek() {
            if angle == 0 && (t.is_punct("=") || t.is_punct(";")) {
                break;
            }
            if let TokenTree::Punct(p) = t {
                angle += angle_delta(&p.text);
                if angle < 0 {
                    angle = 0;
                }
            }
            out.push(self.bump().unwrap().clone());
        }
        out
    }

    // ---- expressions ------------------------------------------------

    fn parse_expr(&mut self, no_struct: bool) -> Expr {
        if self.too_deep() {
            return self.consume_rest_as_other();
        }
        self.parse_assign(no_struct)
    }

    fn parse_assign(&mut self, no_struct: bool) -> Expr {
        let lhs = self.parse_range(no_struct);
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if ASSIGN_OPS.contains(&p.text.as_str()) {
                let op = p.text.clone();
                let span = p.span;
                self.bump();
                let value = self.parse_assign(no_struct);
                return Expr::Assign {
                    op,
                    target: Box::new(lhs),
                    value: Box::new(value),
                    span,
                };
            }
        }
        lhs
    }

    fn parse_range(&mut self, no_struct: bool) -> Expr {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.text == ".." || p.text == "..=" {
                let inclusive = p.text == "..=";
                let span = p.span;
                self.bump();
                let hi = self.range_bound(no_struct);
                return Expr::Range {
                    lo: None,
                    inclusive,
                    hi,
                    span,
                };
            }
        }
        let lo = self.parse_binary(0, no_struct);
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.text == ".." || p.text == "..=" {
                let inclusive = p.text == "..=";
                let span = p.span;
                self.bump();
                let hi = self.range_bound(no_struct);
                return Expr::Range {
                    lo: Some(Box::new(lo)),
                    inclusive,
                    hi,
                    span,
                };
            }
        }
        lo
    }

    fn range_bound(&mut self, no_struct: bool) -> Option<Box<Expr>> {
        match self.peek() {
            None => None,
            Some(t) if t.is_punct(",") || t.is_punct(";") => None,
            Some(TokenTree::Group(g)) if g.delimiter == Delimiter::Brace && no_struct => None,
            Some(TokenTree::Punct(p)) if p.text == "=" || p.text == "=>" => None,
            _ => Some(Box::new(self.parse_binary(0, no_struct))),
        }
    }

    /// Binary operator levels, loosest first. `as` casts and unary
    /// operators bind tighter than all of these.
    fn parse_binary(&mut self, level: usize, no_struct: bool) -> Expr {
        const LEVELS: [&[&str]; 9] = [
            &["||"],
            &["&&"],
            &["==", "!=", "<", ">", "<=", ">="],
            &["|"],
            &["^"],
            &["&"],
            &["<<", ">>"],
            &["+", "-"],
            &["*", "/", "%"],
        ];
        if level >= LEVELS.len() {
            return self.parse_cast(no_struct);
        }
        let mut lhs = self.parse_binary(level + 1, no_struct);
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if !LEVELS[level].contains(&p.text.as_str()) {
                break;
            }
            let op = p.text.clone();
            let span = p.span;
            self.bump();
            let rhs = self.parse_binary(level + 1, no_struct);
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        lhs
    }

    fn parse_cast(&mut self, no_struct: bool) -> Expr {
        let mut e = self.parse_unary(no_struct);
        while self.peek().is_some_and(|t| t.is_ident("as")) {
            let span = self.span_here();
            self.bump();
            let ty = self.consume_cast_type();
            e = Expr::Cast {
                expr: Box::new(e),
                ty,
                span,
            };
        }
        e
    }

    /// The type tokens after `as`: references, raw-pointer prefixes,
    /// then a path with optional generic arguments. A `<` is consumed as
    /// generics only when a short lookahead finds a balancing `>` with
    /// no expression-only tokens inside (so `x as u64 < y` parses as a
    /// comparison, while `x as Wrapping<u64>` keeps its generics).
    fn consume_cast_type(&mut self) -> TokenStream {
        let mut out = Vec::new();
        loop {
            match self.peek() {
                Some(TokenTree::Punct(p)) if p.text == "&" || p.text == "&&" => {
                    out.push(self.bump().unwrap().clone());
                }
                Some(TokenTree::Punct(p))
                    if p.text == "*"
                        && self
                            .peek_at(1)
                            .is_some_and(|t| t.is_ident("const") || t.is_ident("mut")) =>
                {
                    out.push(self.bump().unwrap().clone());
                    out.push(self.bump().unwrap().clone());
                }
                Some(TokenTree::Lifetime(_)) => {
                    out.push(self.bump().unwrap().clone());
                }
                Some(TokenTree::Ident(id)) if id.text == "dyn" || id.text == "mut" => {
                    out.push(self.bump().unwrap().clone());
                }
                Some(TokenTree::Ident(_)) => {
                    out.push(self.bump().unwrap().clone());
                    loop {
                        if self.peek().is_some_and(|t| t.is_punct("::")) {
                            out.push(self.bump().unwrap().clone());
                            if let Some(TokenTree::Ident(_)) = self.peek() {
                                out.push(self.bump().unwrap().clone());
                                continue;
                            }
                        } else if self.peek().is_some_and(|t| t.is_punct("<"))
                            && self.generic_args_balance()
                        {
                            self.consume_angles(&mut out);
                            continue;
                        }
                        break;
                    }
                    break;
                }
                Some(TokenTree::Group(g)) if g.delimiter != Delimiter::Brace && out.is_empty() => {
                    // tuple / array / fn-pointer type
                    out.push(self.bump().unwrap().clone());
                    break;
                }
                _ => break,
            }
        }
        out
    }

    /// Lookahead from a `<`: do these tokens balance to a closing `>`
    /// without crossing tokens that only occur in expressions?
    fn generic_args_balance(&self) -> bool {
        let mut depth = 0i32;
        for t in &self.toks[self.i..] {
            match t {
                TokenTree::Punct(p) => {
                    if matches!(p.text.as_str(), "||" | "==" | "!=" | "<=" | ">=" | "..") {
                        return false;
                    }
                    depth += angle_delta(&p.text);
                    if depth <= 0 {
                        return depth == 0;
                    }
                }
                TokenTree::Ident(id) if id.text == "as" => return false,
                TokenTree::Group(g) if g.delimiter == Delimiter::Brace => return false,
                _ => {}
            }
        }
        false
    }

    fn consume_angles(&mut self, out: &mut TokenStream) {
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            if let TokenTree::Punct(p) = t {
                depth += angle_delta(&p.text);
            }
            out.push(self.bump().unwrap().clone());
            if depth <= 0 {
                break;
            }
        }
    }

    fn parse_unary(&mut self, no_struct: bool) -> Expr {
        if self.too_deep() {
            return self.consume_rest_as_other();
        }
        match self.peek() {
            Some(TokenTree::Punct(p)) if p.text == "-" || p.text == "!" || p.text == "*" => {
                let op = p.text.clone();
                let span = p.span;
                self.bump();
                let expr = self.parse_unary(no_struct);
                Expr::Unary {
                    op,
                    expr: Box::new(expr),
                    span,
                }
            }
            Some(TokenTree::Punct(p)) if p.text == "&" => {
                let span = p.span;
                self.bump();
                let mutable = self.peek().is_some_and(|t| t.is_ident("mut"));
                if mutable {
                    self.bump();
                }
                let expr = self.parse_unary(no_struct);
                Expr::Ref {
                    mutable,
                    expr: Box::new(expr),
                    span,
                }
            }
            Some(TokenTree::Punct(p)) if p.text == "&&" => {
                // `&&x` lexes as one joined punct: two references.
                let span = p.span;
                self.bump();
                let mutable = self.peek().is_some_and(|t| t.is_ident("mut"));
                if mutable {
                    self.bump();
                }
                let inner = self.parse_unary(no_struct);
                Expr::Ref {
                    mutable: false,
                    expr: Box::new(Expr::Ref {
                        mutable,
                        expr: Box::new(inner),
                        span,
                    }),
                    span,
                }
            }
            _ => self.parse_postfix(no_struct),
        }
    }

    fn parse_postfix(&mut self, no_struct: bool) -> Expr {
        let mut e = self.parse_primary(no_struct);
        loop {
            match self.peek() {
                Some(TokenTree::Punct(p)) if p.text == "." => {
                    self.bump();
                    match self.peek() {
                        Some(TokenTree::Ident(id)) if id.text == "await" => {
                            let span = id.span;
                            let member = id.text.clone();
                            self.bump();
                            e = Expr::Field {
                                base: Box::new(e),
                                member,
                                span,
                            };
                        }
                        Some(TokenTree::Ident(id)) => {
                            let method = Ident {
                                text: id.text.clone(),
                                span: id.span,
                            };
                            self.bump();
                            let turbofish = if self.peek().is_some_and(|t| t.is_punct("::"))
                                && self.peek_at(1).is_some_and(|t| t.is_punct("<"))
                            {
                                self.bump(); // ::
                                let mut tf = Vec::new();
                                self.consume_angles(&mut tf);
                                Some(tf)
                            } else {
                                None
                            };
                            if let Some(g) =
                                self.peek().and_then(|t| t.group(Delimiter::Parenthesis))
                            {
                                let args = self.parse_group_exprs(g);
                                self.bump();
                                e = Expr::MethodCall(ExprMethod {
                                    recv: Box::new(e),
                                    span: method.span,
                                    method,
                                    turbofish,
                                    args,
                                });
                            } else {
                                e = Expr::Field {
                                    base: Box::new(e),
                                    member: method.text,
                                    span: method.span,
                                };
                            }
                        }
                        Some(TokenTree::Literal(l)) => {
                            // tuple index (`x.0`; `x.0.1` lexes the pair
                            // as one float-looking literal — keep it).
                            let span = l.span;
                            let member = l.text.clone();
                            self.bump();
                            e = Expr::Field {
                                base: Box::new(e),
                                member,
                                span,
                            };
                        }
                        _ => {
                            // stray dot — absorb one token to progress
                            let span = self.span_here();
                            if self.peek().is_some() {
                                self.bump();
                            }
                            e = Expr::Field {
                                base: Box::new(e),
                                member: String::new(),
                                span,
                            };
                        }
                    }
                }
                Some(TokenTree::Group(g)) if g.delimiter == Delimiter::Parenthesis => {
                    let args = self.parse_group_exprs(g);
                    let span = g.span;
                    self.bump();
                    e = Expr::Call {
                        callee: Box::new(e),
                        args,
                        span,
                    };
                }
                Some(TokenTree::Group(g)) if g.delimiter == Delimiter::Bracket => {
                    let span = g.span;
                    let mut sp = self.sub(&g.stream);
                    let index = if g.stream.is_empty() {
                        Expr::Other {
                            tokens: Vec::new(),
                            span,
                        }
                    } else {
                        sp.parse_expr(false)
                    };
                    self.bump();
                    e = Expr::Index {
                        base: Box::new(e),
                        index: Box::new(index),
                        span,
                    };
                }
                Some(TokenTree::Punct(p)) if p.text == "?" => {
                    let span = p.span;
                    self.bump();
                    e = Expr::Try {
                        expr: Box::new(e),
                        span,
                    };
                }
                _ => break,
            }
        }
        e
    }

    fn parse_primary(&mut self, no_struct: bool) -> Expr {
        let Some(first) = self.peek() else {
            return Expr::Other {
                tokens: Vec::new(),
                span: Span::default(),
            };
        };
        match first {
            TokenTree::Literal(l) => {
                let lit = l.clone();
                self.bump();
                Expr::Lit(lit)
            }
            TokenTree::Group(g) => {
                let g = g.clone();
                self.bump();
                self.parse_group_primary(&g)
            }
            TokenTree::Lifetime(lt) => {
                // `'label: loop { … }`
                if self.peek_at(1).is_some_and(|t| t.is_punct(":"))
                    && self.peek_at(2).is_some_and(|t| {
                        t.is_ident("loop") || t.is_ident("while") || t.is_ident("for")
                    })
                {
                    self.bump();
                    self.bump();
                    self.parse_primary(no_struct)
                } else {
                    let span = lt.span;
                    let tok = self.bump().unwrap().clone();
                    Expr::Other {
                        tokens: vec![tok],
                        span,
                    }
                }
            }
            TokenTree::Punct(p) => {
                let span = p.span;
                match p.text.as_str() {
                    "|" | "||" => self.parse_closure(span),
                    "#" => {
                        self.skip_attrs();
                        if self.peek().is_some_and(|t| t.is_punct("#")) {
                            // bare `#` that is not an attribute
                            let tok = self.bump().unwrap().clone();
                            Expr::Other {
                                tokens: vec![tok],
                                span,
                            }
                        } else {
                            self.parse_primary(no_struct)
                        }
                    }
                    _ => {
                        let tok = self.bump().unwrap().clone();
                        Expr::Other {
                            tokens: vec![tok],
                            span,
                        }
                    }
                }
            }
            TokenTree::Ident(id) => {
                let span = id.span;
                match id.text.as_str() {
                    "if" => self.parse_if(span),
                    "match" => self.parse_match(span),
                    "while" => {
                        self.bump();
                        let cond = self.parse_cond();
                        let body = self.parse_required_block();
                        Expr::While {
                            cond: Box::new(cond),
                            body,
                            span,
                        }
                    }
                    "for" => self.parse_for(span),
                    "loop" => {
                        self.bump();
                        let body = self.parse_required_block();
                        Expr::Loop { body, span }
                    }
                    "unsafe" | "try" => {
                        if self
                            .peek_at(1)
                            .is_some_and(|t| t.group(Delimiter::Brace).is_some())
                        {
                            self.bump();
                            let body = self.parse_required_block();
                            Expr::Block { block: body, span }
                        } else {
                            self.parse_path_like(no_struct)
                        }
                    }
                    "async" => {
                        self.bump();
                        if self.peek().is_some_and(|t| t.is_ident("move")) {
                            self.bump();
                        }
                        if self
                            .peek()
                            .is_some_and(|t| t.group(Delimiter::Brace).is_some())
                        {
                            let body = self.parse_required_block();
                            Expr::Block { block: body, span }
                        } else if self
                            .peek()
                            .is_some_and(|t| t.is_punct("|") || t.is_punct("||"))
                        {
                            self.parse_closure(span)
                        } else {
                            Expr::Other {
                                tokens: Vec::new(),
                                span,
                            }
                        }
                    }
                    "const" => {
                        // `const { … }` inline const block
                        self.bump();
                        if self
                            .peek()
                            .is_some_and(|t| t.group(Delimiter::Brace).is_some())
                        {
                            let body = self.parse_required_block();
                            Expr::Block { block: body, span }
                        } else {
                            Expr::Other {
                                tokens: Vec::new(),
                                span,
                            }
                        }
                    }
                    "move" => {
                        self.bump();
                        if self
                            .peek()
                            .is_some_and(|t| t.is_punct("|") || t.is_punct("||"))
                        {
                            self.parse_closure(span)
                        } else if self
                            .peek()
                            .is_some_and(|t| t.group(Delimiter::Brace).is_some())
                        {
                            let body = self.parse_required_block();
                            Expr::Block { block: body, span }
                        } else {
                            Expr::Other {
                                tokens: Vec::new(),
                                span,
                            }
                        }
                    }
                    "return" => {
                        self.bump();
                        let value = self.opt_value(no_struct);
                        Expr::Return { value, span }
                    }
                    "break" => {
                        self.bump();
                        if matches!(self.peek(), Some(TokenTree::Lifetime(_))) {
                            self.bump();
                        }
                        let value = self.opt_value(no_struct);
                        Expr::Break { value, span }
                    }
                    "continue" => {
                        self.bump();
                        if matches!(self.peek(), Some(TokenTree::Lifetime(_))) {
                            self.bump();
                        }
                        Expr::Continue { span }
                    }
                    "let" => {
                        // let-condition inside if/while chains
                        self.bump();
                        let mut pat = Vec::new();
                        while let Some(t) = self.peek() {
                            if t.is_punct("=") {
                                break;
                            }
                            pat.push(self.bump().unwrap().clone());
                        }
                        if self.peek().is_some_and(|t| t.is_punct("=")) {
                            self.bump();
                        }
                        let value = self.parse_binary(1, true);
                        Expr::LetCond {
                            pat,
                            value: Box::new(value),
                            span,
                        }
                    }
                    _ => self.parse_path_like(no_struct),
                }
            }
        }
    }

    fn opt_value(&mut self, no_struct: bool) -> Option<Box<Expr>> {
        match self.peek() {
            None => None,
            Some(t) if t.is_punct(";") || t.is_punct(",") => None,
            Some(TokenTree::Punct(p)) if p.text == "=>" => None,
            Some(TokenTree::Group(g)) if g.delimiter == Delimiter::Brace && no_struct => None,
            _ => Some(Box::new(self.parse_expr(no_struct))),
        }
    }

    fn parse_closure(&mut self, span: Span) -> Expr {
        let mut params = Vec::new();
        match self.peek() {
            Some(t) if t.is_punct("||") => {
                self.bump();
            }
            Some(t) if t.is_punct("|") => {
                self.bump();
                while let Some(t) = self.peek() {
                    if t.is_punct("|") {
                        self.bump();
                        break;
                    }
                    // `|x: &u8|` — a closing pipe may be joined into
                    // `||` only when params are empty, handled above.
                    params.push(self.bump().unwrap().clone());
                }
            }
            _ => {}
        }
        // optional `-> Ty` return annotation before the body
        if self.peek().is_some_and(|t| t.is_punct("->")) {
            self.bump();
            let mut sink = Vec::new();
            while let Some(t) = self.peek() {
                if t.group(Delimiter::Brace).is_some() {
                    break;
                }
                if let TokenTree::Punct(p) = t {
                    if p.text == "," || p.text == ";" {
                        break;
                    }
                }
                sink.push(self.bump().unwrap().clone());
                if sink
                    .last()
                    .is_some_and(|t| matches!(t, TokenTree::Ident(_)))
                    && self
                        .peek()
                        .is_some_and(|t| t.group(Delimiter::Brace).is_some())
                {
                    break;
                }
            }
        }
        let body = if self.too_deep() {
            self.consume_rest_as_other()
        } else {
            self.parse_expr(false)
        };
        Expr::Closure {
            params,
            body: Box::new(body),
            span,
        }
    }

    fn parse_if(&mut self, span: Span) -> Expr {
        self.bump(); // `if`
        let cond = self.parse_cond();
        let then_branch = self.parse_required_block();
        let else_branch = if self.peek().is_some_and(|t| t.is_ident("else")) {
            self.bump();
            if self.peek().is_some_and(|t| t.is_ident("if")) {
                let sp = self.span_here();
                Some(Box::new(self.parse_if(sp)))
            } else if let Some(g) = self.peek().and_then(|t| t.group(Delimiter::Brace)) {
                let block = self.parse_group_block(g);
                let gspan = g.span;
                self.bump();
                Some(Box::new(Expr::Block { block, span: gspan }))
            } else {
                None
            }
        } else {
            None
        };
        Expr::If(ExprIf {
            cond: Box::new(cond),
            then_branch,
            else_branch,
            span,
        })
    }

    /// An `if`/`while` condition: struct literals are off, let-chains
    /// (`let pat = e && …`) are tolerated.
    fn parse_cond(&mut self) -> Expr {
        if self.too_deep() {
            return self.consume_rest_as_other();
        }
        self.parse_binary(0, true)
    }

    fn parse_match(&mut self, span: Span) -> Expr {
        self.bump(); // `match`
        let scrutinee = if self.too_deep() {
            self.consume_rest_as_other()
        } else {
            self.parse_expr(true)
        };
        let arms = if let Some(g) = self.peek().and_then(|t| t.group(Delimiter::Brace)) {
            let arms = self.parse_arms(g);
            self.bump();
            arms
        } else {
            Vec::new()
        };
        Expr::Match(ExprMatch {
            scrutinee: Box::new(scrutinee),
            arms,
            span,
        })
    }

    fn parse_arms(&mut self, g: &Group) -> Vec<Arm> {
        let mut p = self.sub(&g.stream);
        let mut arms = Vec::new();
        while !p.at_end() {
            let before = p.i;
            p.skip_attrs();
            // pattern tokens up to the `=>` (a top-level `if` splits off
            // the guard)
            let mut pat = Vec::new();
            let mut guard_toks = Vec::new();
            let mut in_guard = false;
            while let Some(t) = p.peek() {
                if t.is_punct("=>") {
                    break;
                }
                if t.is_ident("if") && !in_guard {
                    in_guard = true;
                    p.bump();
                    continue;
                }
                let tok = p.bump().unwrap().clone();
                if in_guard {
                    guard_toks.push(tok);
                } else {
                    pat.push(tok);
                }
            }
            if p.peek().is_some_and(|t| t.is_punct("=>")) {
                p.bump();
            }
            let guard = if guard_toks.is_empty() {
                None
            } else {
                let mut gp = p.sub(&guard_toks);
                Some(Box::new(gp.parse_expr(true)))
            };
            let body = if p.at_end() {
                Expr::Other {
                    tokens: Vec::new(),
                    span: g.span,
                }
            } else {
                p.parse_expr(false)
            };
            if p.peek().is_some_and(|t| t.is_punct(",")) {
                p.bump();
            }
            arms.push(Arm { pat, guard, body });
            if p.i == before {
                p.i += 1;
            }
        }
        arms
    }

    fn parse_for(&mut self, span: Span) -> Expr {
        self.bump(); // `for`
        let mut pat = Vec::new();
        while let Some(t) = self.peek() {
            if t.is_ident("in") {
                break;
            }
            pat.push(self.bump().unwrap().clone());
        }
        if self.peek().is_some_and(|t| t.is_ident("in")) {
            self.bump();
        }
        let iter = if self.too_deep() {
            self.consume_rest_as_other()
        } else {
            self.parse_expr(true)
        };
        let body = self.parse_required_block();
        Expr::ForLoop(ExprFor {
            pat,
            iter: Box::new(iter),
            body,
            span,
        })
    }

    fn parse_required_block(&mut self) -> Block {
        if let Some(g) = self.peek().and_then(|t| t.group(Delimiter::Brace)) {
            let b = self.parse_group_block(g);
            self.bump();
            b
        } else {
            Block {
                stmts: Vec::new(),
                span: self.span_here(),
            }
        }
    }

    fn parse_group_block(&mut self, g: &Group) -> Block {
        if self.too_deep() {
            return Block {
                stmts: vec![Stmt::Expr {
                    expr: Expr::Other {
                        tokens: g.stream.clone(),
                        span: g.span,
                    },
                    semi: false,
                }],
                span: g.span,
            };
        }
        let mut p = self.sub(&g.stream);
        Block {
            stmts: p.parse_stmts(),
            span: g.span,
        }
    }

    fn parse_group_primary(&mut self, g: &Group) -> Expr {
        if self.too_deep() {
            return Expr::Other {
                tokens: g.stream.clone(),
                span: g.span,
            };
        }
        match g.delimiter {
            Delimiter::Parenthesis => {
                let has_comma = top_level_comma(&g.stream);
                let exprs = {
                    let mut p = self.sub(&g.stream);
                    p.parse_comma_exprs()
                };
                Expr::Paren {
                    exprs,
                    tuple: has_comma,
                    span: g.span,
                }
            }
            Delimiter::Bracket => {
                // `[elem; len]` or `[a, b, c]` — parse both shapes into
                // elems.
                let parts = crate::split_top_level(&g.stream, ";");
                let mut elems = Vec::new();
                if parts.len() == 2 {
                    for part in &parts {
                        if !part.is_empty() {
                            let mut p = self.sub(part);
                            elems.push(p.parse_expr(false));
                        }
                    }
                } else {
                    let mut p = self.sub(&g.stream);
                    elems = p.parse_comma_exprs();
                }
                Expr::Array {
                    elems,
                    span: g.span,
                }
            }
            Delimiter::Brace => {
                let block = self.parse_group_block(g);
                Expr::Block {
                    block,
                    span: g.span,
                }
            }
        }
    }

    /// Path expression, optional macro bang, optional struct literal.
    fn parse_path_like(&mut self, no_struct: bool) -> Expr {
        let span = self.span_here();
        let mut segments = Vec::new();
        if let Some(TokenTree::Ident(id)) = self.peek() {
            segments.push(id.text.clone());
            self.bump();
        }
        loop {
            if self.peek().is_some_and(|t| t.is_punct("::")) {
                match self.peek_at(1) {
                    Some(TokenTree::Ident(id2)) => {
                        segments.push(id2.text.clone());
                        self.bump();
                        self.bump();
                    }
                    Some(t2) if t2.is_punct("<") => {
                        // turbofish in path position: `Vec::<u8>::new`
                        self.bump();
                        let mut sink = Vec::new();
                        self.consume_angles(&mut sink);
                    }
                    _ => break,
                }
            } else {
                break;
            }
        }
        let path = ExprPath { segments, span };
        // macro invocation
        if self.peek().is_some_and(|t| t.is_punct("!")) {
            if let Some(TokenTree::Group(g)) = self.peek_at(1) {
                let g = g.clone();
                self.bump();
                self.bump();
                let args = if self.too_deep() {
                    Vec::new()
                } else {
                    let mut p = self.sub(&g.stream);
                    p.parse_comma_exprs()
                };
                return Expr::Macro(ExprMacro {
                    path: path.segments,
                    args,
                    raw: g.stream.clone(),
                    delimiter: g.delimiter,
                    span,
                });
            }
        }
        // struct literal
        if !no_struct && looks_like_struct_path(&path.segments) {
            if let Some(g) = self.peek().and_then(|t| t.group(Delimiter::Brace)) {
                let gspan = g.span;
                let (fields, rest) = self.parse_struct_fields(g);
                self.bump();
                return Expr::Struct {
                    path,
                    fields,
                    rest,
                    span: gspan,
                };
            }
        }
        Expr::Path(path)
    }

    fn parse_struct_fields(&mut self, g: &Group) -> (Vec<(String, Expr)>, Option<Box<Expr>>) {
        let mut fields = Vec::new();
        let mut rest = None;
        if self.too_deep() {
            return (fields, rest);
        }
        for chunk in crate::split_top_level(&g.stream, ",") {
            if chunk.is_empty() {
                continue;
            }
            // `..base`
            if let TokenTree::Punct(p) = &chunk[0] {
                if p.text == ".." {
                    let mut p2 = self.sub(&chunk[1..]);
                    if !chunk[1..].is_empty() {
                        rest = Some(Box::new(p2.parse_expr(false)));
                    }
                    continue;
                }
            }
            match (chunk.first(), chunk.get(1)) {
                (Some(TokenTree::Ident(name)), Some(colon)) if colon.is_punct(":") => {
                    let mut p2 = self.sub(&chunk[2..]);
                    let value = if chunk.len() > 2 {
                        p2.parse_expr(false)
                    } else {
                        Expr::Other {
                            tokens: Vec::new(),
                            span: name.span,
                        }
                    };
                    fields.push((name.text.clone(), value));
                }
                (Some(TokenTree::Ident(name)), None) => {
                    // shorthand `field`
                    let value = Expr::Path(ExprPath {
                        segments: vec![name.text.clone()],
                        span: name.span,
                    });
                    fields.push((name.text.clone(), value));
                }
                _ => {
                    let mut p2 = self.sub(&chunk);
                    let value = p2.parse_expr(false);
                    fields.push((String::new(), value));
                }
            }
        }
        (fields, rest)
    }

    fn parse_group_exprs(&mut self, g: &Group) -> Vec<Expr> {
        if self.too_deep() {
            return vec![Expr::Other {
                tokens: g.stream.clone(),
                span: g.span,
            }];
        }
        let mut p = self.sub(&g.stream);
        p.parse_comma_exprs()
    }

    /// Comma-separated expressions, parsed sequentially (so closures
    /// containing commas in their parameter list stay intact).
    fn parse_comma_exprs(&mut self) -> Vec<Expr> {
        let mut out = Vec::new();
        while !self.at_end() {
            let before = self.i;
            self.skip_attrs();
            if self.at_end() {
                break;
            }
            out.push(self.parse_expr(false));
            if self.peek().is_some_and(|t| t.is_punct(",")) {
                self.bump();
            }
            if self.i == before {
                self.i += 1;
            }
        }
        out
    }

    fn consume_rest_as_other(&mut self) -> Expr {
        let span = self.span_here();
        let tokens = self.toks[self.i..].to_vec();
        self.i = self.toks.len();
        Expr::Other { tokens, span }
    }
}

/// `<` / `>` nesting delta of a punctuation spelling, counting the
/// shift operators as two.
fn angle_delta(text: &str) -> i32 {
    match text {
        "<" => 1,
        ">" => -1,
        "<<" => 2,
        ">>" => -2,
        _ => 0,
    }
}

fn top_level_comma(stream: &[TokenTree]) -> bool {
    stream.iter().any(|t| t.is_punct(","))
}

/// `[name]` or `[mut, name]` patterns bind exactly one identifier.
fn single_binding(pat: &[TokenTree]) -> Option<Ident> {
    match pat {
        [TokenTree::Ident(i)] if i.text != "_" => Some(Ident {
            text: i.text.clone(),
            span: i.span,
        }),
        [m, TokenTree::Ident(i)] if m.is_ident("mut") => Some(Ident {
            text: i.text.clone(),
            span: i.span,
        }),
        _ => None,
    }
}

/// Heuristic: `path {` is a struct literal only when the trailing
/// segment looks like a type name (capitalised) or the path is `Self`.
/// This keeps `x {}`-style misparses from swallowing blocks after
/// lower-case locals in tolerant mode.
fn looks_like_struct_path(segments: &[String]) -> bool {
    segments
        .last()
        .and_then(|s| s.chars().next())
        .is_some_and(|c| c.is_ascii_uppercase())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_file, Item};

    fn body_of(src: &str) -> Block {
        let file = parse_file(src).expect("parses");
        for item in &file.items {
            if let Item::Fn(f) = item {
                let g = f.body.as_ref().expect("has body");
                return parse_block(g);
            }
        }
        panic!("no fn in fixture");
    }

    fn count_exprs(block: &Block) -> usize {
        let mut n = 0usize;
        visit_block(block, &mut |_| n += 1);
        n
    }

    #[test]
    fn method_chain_and_spans() {
        let b = body_of("fn f(v: &[u64]) -> u64 {\n    v.iter().copied().max().unwrap_or(0)\n}");
        let mut methods = Vec::new();
        visit_block(&b, &mut |e| {
            if let Expr::MethodCall(m) = e {
                methods.push((m.method.text.clone(), m.span.line));
            }
        });
        let names: Vec<_> = methods.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["unwrap_or", "max", "copied", "iter"]);
        assert!(methods.iter().all(|(_, line)| *line == 2));
    }

    #[test]
    fn binary_precedence_modulo() {
        let b = body_of("fn f(x: u64, sets: u64) -> u64 { x % sets + 1 }");
        let Stmt::Expr { expr, .. } = &b.stmts[0] else {
            panic!()
        };
        let Expr::Binary { op, lhs, .. } = expr else {
            panic!("expected +, got {expr:?}")
        };
        assert_eq!(op, "+");
        assert!(matches!(lhs.as_ref(), Expr::Binary { op, .. } if op == "%"));
    }

    #[test]
    fn cast_binds_tighter_than_modulo() {
        let b = body_of("fn f(x: u64, s: usize) -> u64 { x % s as u64 }");
        let Stmt::Expr { expr, .. } = &b.stmts[0] else {
            panic!()
        };
        let Expr::Binary { op, rhs, .. } = expr else {
            panic!()
        };
        assert_eq!(op, "%");
        assert!(matches!(rhs.as_ref(), Expr::Cast { .. }));
    }

    #[test]
    fn cast_then_comparison_is_not_generics() {
        let b = body_of("fn f(a: u32, b: u64) -> bool { a as u64 < b && b as u32 > a }");
        let mut casts = 0;
        let mut cmps = 0;
        visit_block(&b, &mut |e| match e {
            Expr::Cast { ty, .. } => {
                casts += 1;
                assert_eq!(ty.len(), 1, "cast type over-consumed: {ty:?}");
            }
            Expr::Binary { op, .. } if op == "<" || op == ">" => cmps += 1,
            _ => {}
        });
        assert_eq!(casts, 2);
        assert_eq!(cmps, 2);
    }

    #[test]
    fn generics_in_cast_type_are_consumed() {
        let b = body_of("fn f(x: u8) -> u64 { (x as core::num::Wrapping<u64>).0 as u64 }");
        let mut saw_generic_cast = false;
        visit_block(&b, &mut |e| {
            if let Expr::Cast { ty, .. } = e {
                if crate::stream_to_string(ty).contains('<') {
                    saw_generic_cast = true;
                }
            }
        });
        assert!(saw_generic_cast);
    }

    #[test]
    fn index_with_cast_inside() {
        let b = body_of("fn f(t: &[u16], i: u64) -> u16 { t[(i & 0xfff) as usize] }");
        let mut found = false;
        visit_block(&b, &mut |e| {
            if let Expr::Index { index, .. } = e {
                let mut has_cast = false;
                visit_expr(index, &mut |e2| {
                    if matches!(e2, Expr::Cast { .. }) {
                        has_cast = true;
                    }
                });
                found = has_cast;
            }
        });
        assert!(found);
    }

    #[test]
    fn for_loop_over_map_iter() {
        let b = body_of(
            "fn f(m: &std::collections::HashMap<u64, u64>) -> u64 {\n\
             let mut acc = 0u64;\n\
             for (k, v) in m.iter() { acc += k + v; }\n\
             acc\n}",
        );
        let mut fors = 0;
        visit_block(&b, &mut |e| {
            if let Expr::ForLoop(f) = e {
                fors += 1;
                assert!(matches!(f.iter.as_ref(), Expr::MethodCall(m) if m.method.text == "iter"));
                assert_eq!(f.body.stmts.len(), 1);
            }
        });
        assert_eq!(fors, 1);
    }

    #[test]
    fn closures_with_commas_inside_args() {
        let b = body_of("fn f(v: Vec<(u64, u64)>) -> u64 { v.iter().map(|(a, b)| a + b).sum() }");
        let mut closures = 0;
        visit_block(&b, &mut |e| {
            if let Expr::Closure { params, .. } = e {
                closures += 1;
                // `|(a, b)|` — the tuple pattern (with its comma) is one
                // group token; the comma never splits the closure.
                let g = params[0].any_group().expect("tuple pattern group");
                assert!(g.stream.iter().any(|t| t.is_punct(",")));
            }
            if let Expr::MethodCall(m) = e {
                if m.method.text == "map" {
                    assert_eq!(m.args.len(), 1, "closure split across args");
                }
            }
        });
        assert_eq!(closures, 1);
    }

    #[test]
    fn match_arms_with_guards() {
        let b =
            body_of("fn f(x: u64) -> u64 { match x { 0 => 1, n if n % 2 == 0 => n, _ => x + 1 } }");
        let mut arms = 0;
        let mut guards = 0;
        visit_block(&b, &mut |e| {
            if let Expr::Match(m) = e {
                arms = m.arms.len();
                guards = m.arms.iter().filter(|a| a.guard.is_some()).count();
            }
        });
        assert_eq!(arms, 3);
        assert_eq!(guards, 1);
    }

    #[test]
    fn struct_literal_and_no_struct_cond() {
        let b = body_of(
            "fn f(w: usize) -> S { if w > shadow { return S { ways: w, tag: 0 }; } S { ways: 1, tag: 0 } }",
        );
        let mut lits = 0;
        visit_block(&b, &mut |e| {
            if let Expr::Struct { fields, .. } = e {
                lits += 1;
                assert_eq!(fields.len(), 2);
                assert_eq!(fields[0].0, "ways");
            }
        });
        assert_eq!(lits, 2);
    }

    #[test]
    fn turbofish_collect() {
        let b = body_of(
            "fn f(v: &[u64]) -> std::collections::BTreeSet<u64> { v.iter().copied().collect::<std::collections::BTreeSet<_>>() }",
        );
        let mut tf = None;
        visit_block(&b, &mut |e| {
            if let Expr::MethodCall(m) = e {
                if m.method.text == "collect" {
                    tf = m.turbofish.clone();
                }
            }
        });
        let tf = tf.expect("turbofish captured");
        assert!(crate::stream_to_string(&tf).contains("BTreeSet"));
    }

    #[test]
    fn let_else_and_ranges() {
        let b = body_of(
            "fn f(v: &[u64]) -> u64 { let Some(first) = v.first() else { return 0; }; v[1..v.len() - 1].len() as u64 + first }",
        );
        let Stmt::Let(l) = &b.stmts[0] else { panic!() };
        assert!(l.else_block.is_some());
        assert!(l.ident.is_none());
        let mut ranges = 0;
        visit_block(&b, &mut |e| {
            if matches!(e, Expr::Range { .. }) {
                ranges += 1;
            }
        });
        assert_eq!(ranges, 1);
    }

    #[test]
    fn atomics_shapes_parse() {
        let b = body_of(
            "fn f(r: &AtomicU64) -> bool {\n\
             let v = r.load(Ordering::Acquire);\n\
             r.compare_exchange_weak(v, v + 1, Ordering::AcqRel, Ordering::Acquire).is_ok()\n}",
        );
        let mut calls = Vec::new();
        visit_block(&b, &mut |e| {
            if let Expr::MethodCall(m) = e {
                if m.method.text == "load" || m.method.text == "compare_exchange_weak" {
                    let orderings: Vec<String> = m
                        .args
                        .iter()
                        .filter_map(|a| a.as_path().map(ExprPath::joined))
                        .filter(|p| p.starts_with("Ordering::"))
                        .collect();
                    calls.push((m.method.text.clone(), orderings));
                }
            }
        });
        assert_eq!(calls.len(), 2);
        assert_eq!(calls[0].0, "load");
        assert_eq!(calls[0].1, ["Ordering::Acquire"]);
        assert_eq!(calls[1].0, "compare_exchange_weak");
        assert_eq!(calls[1].1, ["Ordering::AcqRel", "Ordering::Acquire"]);
    }

    #[test]
    fn tolerant_fallback_keeps_tokens() {
        // A stray `@` and qualified-path syntax should degrade to Other
        // without losing the rest of the statement list.
        let b = body_of("fn f() { let x = <u8 as Default>::default(); @; let y = 1; }");
        assert!(b.stmts.len() >= 2);
        assert!(count_exprs(&b) > 0);
    }

    #[test]
    fn root_ident_through_chains() {
        let b = body_of("fn f(&self) -> u64 { self.ranges[3].load(Ordering::Acquire) }");
        let mut root = None;
        visit_block(&b, &mut |e| {
            if let Expr::MethodCall(m) = e {
                root = m.recv.root_ident().map(str::to_string);
            }
        });
        assert_eq!(root.as_deref(), Some("ranges"));
    }

    #[test]
    fn deep_nesting_does_not_overflow() {
        let mut src = String::from("fn f() { let x = ");
        for _ in 0..400 {
            src.push('(');
        }
        src.push('1');
        for _ in 0..400 {
            src.push(')');
        }
        src.push_str("; }");
        let file = parse_file(&src).expect("lexes");
        for item in &file.items {
            if let Item::Fn(f) = item {
                let _ = parse_block(f.body.as_ref().unwrap());
            }
        }
    }
}
