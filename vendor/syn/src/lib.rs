//! Offline stand-in for `syn`.
//!
//! The build environment has no network access to crates.io, so — like
//! the other `vendor/` crates — this is a minimal API-compatible
//! replacement covering exactly the surface the workspace uses: the
//! `crates/xtask` semantic analysis engine. It provides
//!
//! * a span-carrying lexer ([`lexer::lex`]) producing nested token
//!   trees ([`TokenTree`], [`Group`]) with comments stripped, doc
//!   comments desugared to `#[doc = "…"]`, and string/char/lifetime
//!   disambiguation done once, correctly, instead of per-rule text
//!   heuristics;
//! * an item-level parser ([`parse_file`]) producing a typed [`File`] of
//!   [`Item`]s — structs with fields, enums with variants, impl blocks
//!   with trait/self-type names and associated items, functions with
//!   bodies, consts with initializer expressions, nested modules — with
//!   attributes (including `#[cfg(test)]` and doc text) attached.
//!
//! * an expression-level grammar ([`expr::parse_block`]) lowering
//!   function bodies into a typed [`expr::Expr`] AST — blocks, lets,
//!   calls, method chains, field/index access, loops, closures, match,
//!   operators and casts, all span-carrying — used by the dataflow
//!   passes in `crates/xtask`.
//!
//! Differences from real `syn` are deliberate simplifications:
//! compound punctuation is one token, unrecognized item forms degrade
//! to [`Item::Other`] instead of erroring, and the expression parser is
//! tolerant — anything it cannot classify becomes [`expr::Expr::Other`]
//! carrying the raw tokens rather than an error.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod expr;
pub mod lexer;
mod parse;
mod token;

pub use parse::{
    parse_file, split_top_level, Attribute, Field, File, Item, ItemConst, ItemEnum, ItemFn,
    ItemImpl, ItemMod, ItemOther, ItemStruct, ItemTrait, Variant,
};
pub use token::{
    stream_to_string, Delimiter, Group, Ident, Lifetime, LitKind, Literal, Punct, Span,
    TokenStream, TokenTree,
};

use std::fmt;

/// A lexical error with its source position.
#[derive(Debug, Clone)]
pub struct Error {
    /// Where the problem was detected.
    pub span: Span,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.span, self.msg)
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(stream: &[TokenTree]) -> Vec<String> {
        stream
            .iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn lexes_comments_strings_chars_lifetimes() {
        let hash = "#";
        let src = format!(
            "// line comment with % sets\n\
             /* block /* nested */ with % entries */\n\
             fn f<'a>(s: &'a str) -> char {{\n\
                 let _p = \"100% of sets\";\n\
                 let _r = r{hash}\"raw % ways\"{hash};\n\
                 '%'\n\
             }}\n"
        );
        let toks = lexer::lex(&src).expect("lexes");
        // The `%` signs all live in comments, string literals or the char
        // literal — none may surface as a punctuation token.
        fn count_puncts(stream: &[TokenTree], text: &str) -> usize {
            stream
                .iter()
                .map(|t| match t {
                    TokenTree::Punct(p) if p.text == text => 1,
                    TokenTree::Group(g) => count_puncts(&g.stream, text),
                    _ => 0,
                })
                .sum()
        }
        fn has_ident(stream: &[TokenTree], name: &str) -> bool {
            stream.iter().any(|t| match t {
                TokenTree::Ident(i) => i.text == name,
                TokenTree::Group(g) => has_ident(&g.stream, name),
                _ => false,
            })
        }
        assert_eq!(count_puncts(&toks, "%"), 0);
        assert!(!has_ident(&toks, "sets"), "comment words leaked as idents");
        assert!(!has_ident(&toks, "entries"), "block comment leaked");
        let text = stream_to_string(&toks);
        assert!(text.contains("'a"), "lifetime lost: {text}");
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let toks = lexer::lex("let c = 'x'; fn f<'long>(v: &'long u8) {}").expect("lexes");
        let has_char = toks
            .iter()
            .any(|t| matches!(t, TokenTree::Literal(l) if l.kind == LitKind::Char));
        assert!(has_char);
        let flat = stream_to_string(&toks);
        assert!(flat.contains("'long"));
    }

    #[test]
    fn doc_comments_become_doc_attrs() {
        let f = parse_file("/// budget-key: a.b\npub const X: u32 = 4;\n").expect("parses");
        let Item::Const(c) = &f.items[0] else {
            panic!("expected const, got {:?}", f.items[0]);
        };
        assert_eq!(c.ident.text, "X");
        assert_eq!(c.attrs.len(), 1);
        assert_eq!(c.attrs[0].doc_text(), Some("budget-key: a.b"));
        assert_eq!(stream_to_string(&c.expr), "4");
    }

    #[test]
    fn inner_attrs_and_shebang() {
        let f = parse_file("#!/usr/bin/env rust\n#![forbid(unsafe_code)]\n//! docs\nfn main() {}")
            .expect("parses");
        assert!(f
            .attrs
            .iter()
            .any(|a| a.is("forbid") && a.arg_mentions("unsafe_code")));
        assert!(f.attrs.iter().any(|a| a.is("doc")));
        assert_eq!(f.items.len(), 1);
    }

    #[test]
    fn struct_fields_and_enum_variants() {
        let src = "
            pub struct S {
                /// docs
                pub a: u64,
                b: Vec<(u32, u32)>,
            }
            struct T(u8, pub u16);
            struct U;
            enum E { A, B(u32), C { x: u8 }, D = 3 }
        ";
        let f = parse_file(src).expect("parses");
        let Item::Struct(s) = &f.items[0] else {
            panic!("S");
        };
        assert_eq!(s.fields.len(), 2);
        assert_eq!(
            s.fields[0].ident.as_ref().map(|i| i.text.as_str()),
            Some("a")
        );
        let Item::Struct(t) = &f.items[1] else {
            panic!("T");
        };
        assert_eq!(t.fields.len(), 2);
        assert!(t.fields.iter().all(|fd| fd.ident.is_none()));
        let Item::Struct(u) = &f.items[2] else {
            panic!("U");
        };
        assert!(u.fields.is_empty());
        let Item::Enum(e) = &f.items[3] else {
            panic!("E");
        };
        let names: Vec<_> = e.variants.iter().map(|v| v.ident.text.clone()).collect();
        assert_eq!(names, ["A", "B", "C", "D"]);
        assert_eq!(idents(&e.variants[1].fields), ["u32"]);
    }

    #[test]
    fn impl_blocks_trait_and_self_names() {
        let src = "
            impl Cache<P> { fn inherent(&self) {} }
            impl ReplacementPolicy for AnyPolicy { fn on_access(&mut self) {} }
            impl<P: ReplacementPolicy> ReplacementPolicy for ValidatingPolicy<P> {}
            impl fe_cache::ReplacementPolicy for GhrpPolicy {}
        ";
        let f = parse_file(src).expect("parses");
        let Item::Impl(a) = &f.items[0] else { panic!() };
        assert_eq!(a.trait_name, None);
        assert_eq!(a.self_ty_name.as_deref(), Some("Cache"));
        assert!(!a.is_generic);
        assert_eq!(a.items.len(), 1);
        let Item::Impl(b) = &f.items[1] else { panic!() };
        assert_eq!(b.trait_name.as_deref(), Some("ReplacementPolicy"));
        assert_eq!(b.self_ty_name.as_deref(), Some("AnyPolicy"));
        let Item::Impl(c) = &f.items[2] else { panic!() };
        assert!(c.is_generic);
        assert_eq!(c.self_ty_name.as_deref(), Some("ValidatingPolicy"));
        let Item::Impl(d) = &f.items[3] else { panic!() };
        assert_eq!(d.trait_name.as_deref(), Some("ReplacementPolicy"));
        assert_eq!(d.self_ty_name.as_deref(), Some("GhrpPolicy"));
    }

    #[test]
    fn cfg_test_modules_nest() {
        let src = "
            fn hot() {}
            #[cfg(test)]
            mod tests {
                use super::*;
                #[test]
                fn t() { hot(); }
            }
        ";
        let f = parse_file(src).expect("parses");
        let Item::Mod(m) = &f.items[1] else { panic!() };
        assert!(m
            .attrs
            .iter()
            .any(|a| a.is("cfg") && a.arg_mentions("test")));
        assert_eq!(m.content.as_ref().map(Vec::len), Some(2));
    }

    #[test]
    fn macros_and_uses_survive_as_other() {
        let src = "
            use std::collections::HashMap;
            macro_rules! dispatch { ($x:expr) => { $x }; }
            static GLOBAL: [u8; 4] = [0; 4];
            type Alias = HashMap<u64, u64>;
            fn after() {}
        ";
        let f = parse_file(src).expect("parses");
        assert_eq!(f.items.len(), 5);
        assert!(matches!(f.items[0], Item::Other(_)));
        assert!(matches!(f.items[1], Item::Other(_)));
        assert!(matches!(
            f.items[2],
            Item::Const(ItemConst {
                is_static: true,
                ..
            })
        ));
        assert!(matches!(f.items[3], Item::Other(_)));
        assert!(matches!(f.items[4], Item::Fn(_)));
    }

    #[test]
    fn const_generics_and_shifts_do_not_derail() {
        let src = "
            pub const MASK: u64 = (1u64 << 12) - 1;
            fn shr(x: u64) -> u64 { x >> 3 }
            struct W<const N: usize> { data: [u64; N] }
        ";
        let f = parse_file(src).expect("parses");
        let Item::Const(c) = &f.items[0] else {
            panic!()
        };
        assert_eq!(stream_to_string(&c.expr), "(1u64 << 12) - 1");
        assert!(matches!(f.items[1], Item::Fn(_)));
        let Item::Struct(w) = &f.items[2] else {
            panic!()
        };
        assert_eq!(w.fields.len(), 1);
    }

    #[test]
    fn lex_error_reports_span() {
        let err = lexer::lex("fn broken( {").expect_err("unbalanced");
        assert!(err.span.line >= 1);
        let err2 = parse_file("let s = \"unterminated").expect_err("unterminated");
        assert!(err2.msg.contains("unterminated"));
    }
}
