//! Source → token-tree lexer.
//!
//! Handles the full surface the workspace's sources use: line and nested
//! block comments, doc comments (desugared to `#[doc = "…"]` /
//! `#![doc = "…"]` token runs, as rustc does), string/char/byte/raw
//! literals, lifetimes vs char literals, raw identifiers, numeric
//! literals with suffixes, compound punctuation, and a leading shebang.
//!
//! Known simplification versus rustc: block doc comments (`/** … */`)
//! are treated as plain comments — the workspace convention is
//! line-style doc comments, which is what the budget auditor's marker
//! scan relies on.

#![forbid(unsafe_code)]

use crate::token::{
    Delimiter, Group, Ident, Lifetime, LitKind, Literal, Punct, Span, TokenStream, TokenTree,
};
use crate::Error;

/// Compound operators, longest first so maximal munch is a linear scan.
const PUNCTS: [&str; 24] = [
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "|=", "&=", "..",
];

/// A flat token before group folding.
enum Flat {
    Tree(TokenTree),
    Open(Delimiter, Span),
    Close(Delimiter, Span),
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: usize,
    col: usize,
}

impl Lexer {
    fn new(src: &str) -> Lexer {
        Lexer {
            chars: src.chars().collect(),
            i: 0,
            line: 1,
            col: 1,
        }
    }

    fn span(&self) -> Span {
        Span::new(self.line, self.col)
    }

    fn peek(&self, k: usize) -> Option<char> {
        self.chars.get(self.i + k).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn err(&self, msg: impl Into<String>) -> Error {
        Error {
            span: self.span(),
            msg: msg.into(),
        }
    }

    fn is_ident_start(c: char) -> bool {
        c.is_alphabetic() || c == '_'
    }

    fn is_ident_continue(c: char) -> bool {
        c.is_alphanumeric() || c == '_'
    }

    /// Consume identifier characters starting at the current position.
    fn lex_ident_text(&mut self) -> String {
        let mut s = String::new();
        while self.peek(0).is_some_and(Self::is_ident_continue) {
            s.push(self.bump().unwrap_or_default());
        }
        s
    }

    /// Consume a `"…"` body (opening quote already consumed); returns the
    /// raw content between the quotes (escapes uninterpreted).
    fn lex_string_body(&mut self) -> Result<String, Error> {
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string literal")),
                Some('\\') => {
                    s.push('\\');
                    if let Some(c) = self.bump() {
                        s.push(c);
                    }
                }
                Some('"') => return Ok(s),
                Some(c) => s.push(c),
            }
        }
    }

    /// Consume a raw-string body: `#`-count already known, opening quote
    /// consumed.
    fn lex_raw_string_body(&mut self, hashes: usize) -> Result<String, Error> {
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated raw string literal")),
                Some('"') => {
                    let mut seen = 0;
                    while seen < hashes && self.peek(0) == Some('#') {
                        self.bump();
                        seen += 1;
                    }
                    if seen == hashes {
                        return Ok(s);
                    }
                    s.push('"');
                    for _ in 0..seen {
                        s.push('#');
                    }
                }
                Some(c) => s.push(c),
            }
        }
    }

    /// Consume a `'…'` char-literal body (opening quote consumed).
    fn lex_char_body(&mut self) -> Result<String, Error> {
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated char literal")),
                Some('\\') => {
                    s.push('\\');
                    if let Some(c) = self.bump() {
                        s.push(c);
                    }
                }
                Some('\'') => return Ok(s),
                Some(c) => s.push(c),
            }
        }
    }

    /// Consume a numeric literal starting at the current position.
    fn lex_number(&mut self) -> String {
        let mut s = String::new();
        // Integer/identifier-ish part: digits, hex digits, suffixes,
        // underscores and exponent letters all fall in this class.
        while self.peek(0).is_some_and(Self::is_ident_continue) {
            s.push(self.bump().unwrap_or_default());
            // `1e-5` / `1E+5`: the sign belongs to the exponent.
            if s.ends_with(['e', 'E'])
                && !s.starts_with("0x")
                && !s.starts_with("0b")
                && !s.starts_with("0o")
                // The char before the exponent marker must be numeric, so
                // suffixed ints like `3usize` never absorb a `-`.
                && s[..s.len() - 1]
                    .chars()
                    .next_back()
                    .is_some_and(|p| p.is_ascii_digit() || p == '_' || p == '.')
                && matches!(self.peek(0), Some('+' | '-'))
                && self.peek(1).is_some_and(|c| c.is_ascii_digit())
            {
                s.push(self.bump().unwrap_or_default());
            }
        }
        // Fractional part: a dot followed by a digit (not `..`, not a
        // method call like `1.max(2)`).
        if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            s.push(self.bump().unwrap_or_default());
            while self.peek(0).is_some_and(Self::is_ident_continue) {
                s.push(self.bump().unwrap_or_default());
            }
        }
        s
    }

    /// Skip a nested block comment; the leading `/*` is already consumed.
    fn skip_block_comment(&mut self) -> Result<(), Error> {
        let mut depth = 1usize;
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated block comment")),
                Some('/') if self.peek(0) == Some('*') => {
                    self.bump();
                    depth += 1;
                }
                Some('*') if self.peek(0) == Some('/') => {
                    self.bump();
                    depth -= 1;
                    if depth == 0 {
                        return Ok(());
                    }
                }
                Some(_) => {}
            }
        }
    }

    /// Emit the desugared attribute tokens for a doc comment.
    fn push_doc(out: &mut Vec<Flat>, span: Span, inner: bool, text: &str) {
        out.push(Flat::Tree(TokenTree::Punct(Punct {
            text: "#".into(),
            span,
        })));
        if inner {
            out.push(Flat::Tree(TokenTree::Punct(Punct {
                text: "!".into(),
                span,
            })));
        }
        out.push(Flat::Open(Delimiter::Bracket, span));
        out.push(Flat::Tree(TokenTree::Ident(Ident {
            text: "doc".into(),
            span,
        })));
        out.push(Flat::Tree(TokenTree::Punct(Punct {
            text: "=".into(),
            span,
        })));
        out.push(Flat::Tree(TokenTree::Literal(Literal {
            text: format!("{text:?}"),
            cooked: text.to_string(),
            kind: LitKind::Str,
            span,
        })));
        out.push(Flat::Close(Delimiter::Bracket, span));
    }

    fn lex_flat(&mut self) -> Result<Vec<Flat>, Error> {
        let mut out = Vec::new();
        // Shebang: `#!` on line 1 not followed by `[`.
        if self.peek(0) == Some('#') && self.peek(1) == Some('!') && self.peek(2) != Some('[') {
            while self.peek(0).is_some_and(|c| c != '\n') {
                self.bump();
            }
        }
        while let Some(c) = self.peek(0) {
            let span = self.span();
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => {
                    self.bump();
                    self.bump();
                    let (doc_inner, doc_outer) = match (self.peek(0), self.peek(1)) {
                        (Some('!'), _) => (true, false),
                        // `////…` is an ordinary comment, `///` is doc.
                        (Some('/'), next) => (false, next != Some('/')),
                        _ => (false, false),
                    };
                    if doc_inner || doc_outer {
                        self.bump(); // the `!` or third `/`
                    }
                    let mut text = String::new();
                    while self.peek(0).is_some_and(|c| c != '\n') {
                        text.push(self.bump().unwrap_or_default());
                    }
                    if doc_inner || doc_outer {
                        let text = text.strip_prefix(' ').unwrap_or(&text).to_string();
                        Self::push_doc(&mut out, span, doc_inner, &text);
                    }
                }
                '/' if self.peek(1) == Some('*') => {
                    self.bump();
                    self.bump();
                    self.skip_block_comment()?;
                }
                '\'' => {
                    self.bump();
                    // Lifetime: `'ident` not closed by a quote right after
                    // one character. Char literal otherwise.
                    let is_char = self.peek(0) == Some('\\')
                        || (self.peek(1) == Some('\'') && self.peek(0) != Some('\''));
                    if is_char {
                        let body = self.lex_char_body()?;
                        out.push(Flat::Tree(TokenTree::Literal(Literal {
                            text: format!("'{body}'"),
                            cooked: body,
                            kind: LitKind::Char,
                            span,
                        })));
                    } else if self.peek(0).is_some_and(Self::is_ident_start) {
                        let name = self.lex_ident_text();
                        out.push(Flat::Tree(TokenTree::Lifetime(Lifetime {
                            text: name,
                            span,
                        })));
                    } else {
                        return Err(self.err("expected char literal or lifetime after `'`"));
                    }
                }
                '"' => {
                    self.bump();
                    let body = self.lex_string_body()?;
                    out.push(Flat::Tree(TokenTree::Literal(Literal {
                        text: format!("\"{body}\""),
                        cooked: body,
                        kind: LitKind::Str,
                        span,
                    })));
                }
                _ if c.is_ascii_digit() => {
                    let text = self.lex_number();
                    out.push(Flat::Tree(TokenTree::Literal(Literal {
                        cooked: text.clone(),
                        text,
                        kind: LitKind::Number,
                        span,
                    })));
                }
                _ if Self::is_ident_start(c) => {
                    let text = self.lex_ident_text();
                    self.lex_after_ident(text, span, &mut out)?;
                }
                '(' => {
                    self.bump();
                    out.push(Flat::Open(Delimiter::Parenthesis, span));
                }
                ')' => {
                    self.bump();
                    out.push(Flat::Close(Delimiter::Parenthesis, span));
                }
                '[' => {
                    self.bump();
                    out.push(Flat::Open(Delimiter::Bracket, span));
                }
                ']' => {
                    self.bump();
                    out.push(Flat::Close(Delimiter::Bracket, span));
                }
                '{' => {
                    self.bump();
                    out.push(Flat::Open(Delimiter::Brace, span));
                }
                '}' => {
                    self.bump();
                    out.push(Flat::Close(Delimiter::Brace, span));
                }
                _ => {
                    let text = self.lex_punct()?;
                    out.push(Flat::Tree(TokenTree::Punct(Punct { text, span })));
                }
            }
        }
        Ok(out)
    }

    /// An identifier was just consumed; decide whether it prefixes a
    /// string/char literal (`r"…"`, `b'…'`, `r#raw_ident`, …).
    fn lex_after_ident(
        &mut self,
        text: String,
        span: Span,
        out: &mut Vec<Flat>,
    ) -> Result<(), Error> {
        let next = self.peek(0);
        match (text.as_str(), next) {
            // Raw identifier `r#ident`.
            ("r", Some('#')) if self.peek(1).is_some_and(Self::is_ident_start) => {
                self.bump(); // '#'
                let name = self.lex_ident_text();
                out.push(Flat::Tree(TokenTree::Ident(Ident { text: name, span })));
            }
            // Raw strings: r"…", r#"…"#, br#"…"#, cr"…", …
            ("r" | "br" | "cr", Some('"' | '#')) => {
                let mut hashes = 0usize;
                while self.peek(0) == Some('#') {
                    self.bump();
                    hashes += 1;
                }
                if self.peek(0) != Some('"') {
                    return Err(self.err("expected `\"` after raw-string prefix"));
                }
                self.bump();
                let body = self.lex_raw_string_body(hashes)?;
                out.push(Flat::Tree(TokenTree::Literal(Literal {
                    text: format!("{text}\"{body}\""),
                    cooked: body,
                    kind: LitKind::Str,
                    span,
                })));
            }
            // Byte / C strings with escapes: b"…", c"…".
            ("b" | "c", Some('"')) => {
                self.bump();
                let body = self.lex_string_body()?;
                out.push(Flat::Tree(TokenTree::Literal(Literal {
                    text: format!("{text}\"{body}\""),
                    cooked: body,
                    kind: LitKind::Str,
                    span,
                })));
            }
            // Byte char b'…'.
            ("b", Some('\'')) => {
                self.bump();
                let body = self.lex_char_body()?;
                out.push(Flat::Tree(TokenTree::Literal(Literal {
                    text: format!("b'{body}'"),
                    cooked: body,
                    kind: LitKind::Char,
                    span,
                })));
            }
            _ => out.push(Flat::Tree(TokenTree::Ident(Ident { text, span }))),
        }
        Ok(())
    }

    /// Maximal-munch punctuation.
    fn lex_punct(&mut self) -> Result<String, Error> {
        for p in PUNCTS {
            if p.chars()
                .enumerate()
                .all(|(k, pc)| self.peek(k) == Some(pc))
            {
                for _ in 0..p.chars().count() {
                    self.bump();
                }
                return Ok(p.to_string());
            }
        }
        let c = self.bump().ok_or_else(|| self.err("unexpected EOF"))?;
        if "+-*/%^!&|<>=.,;:#$?@~".contains(c) {
            Ok(c.to_string())
        } else {
            Err(Error {
                span: self.span(),
                msg: format!("unexpected character `{c}`"),
            })
        }
    }
}

/// Lex `src` into a token tree.
///
/// # Errors
///
/// Returns an [`Error`] with the offending span on unterminated
/// literals/comments, unbalanced delimiters, or characters outside the
/// Rust token grammar.
pub fn lex(src: &str) -> Result<TokenStream, Error> {
    let flat = Lexer::new(src).lex_flat()?;
    // Fold Open/Close runs into nested groups.
    let mut stack: Vec<(Delimiter, Span, TokenStream)> = Vec::new();
    let mut current: TokenStream = Vec::new();
    for tok in flat {
        match tok {
            Flat::Tree(t) => current.push(t),
            Flat::Open(d, span) => {
                stack.push((d, span, std::mem::take(&mut current)));
            }
            Flat::Close(d, span) => {
                let Some((open_d, open_span, parent)) = stack.pop() else {
                    return Err(Error {
                        span,
                        msg: "unmatched closing delimiter".into(),
                    });
                };
                if open_d != d {
                    return Err(Error {
                        span,
                        msg: format!("mismatched delimiter (opened at {open_span})"),
                    });
                }
                let group = Group {
                    delimiter: d,
                    stream: std::mem::take(&mut current),
                    span: open_span,
                };
                current = parent;
                current.push(TokenTree::Group(group));
            }
        }
    }
    if let Some((_, span, _)) = stack.pop() {
        return Err(Error {
            span,
            msg: "unclosed delimiter".into(),
        });
    }
    Ok(current)
}
