//! Token tree → typed items.
//!
//! A tolerant item-level parser: the item kinds the analysis engine
//! inspects (`struct`, `enum`, `impl`, `fn`, `const`/`static`, `mod`,
//! `trait`) are parsed into typed nodes; everything else (`use`, `type`,
//! macro definitions/invocations, `extern` blocks) is preserved as
//! [`ItemOther`] with its raw token stream, so token-level rule passes
//! still see every token of the file exactly once.

#![forbid(unsafe_code)]

use crate::token::{Delimiter, Group, Ident, LitKind, Span, TokenStream, TokenTree};
use crate::{lexer, Error};

/// A parsed source file.
#[derive(Debug, Clone)]
pub struct File {
    /// Inner attributes (`#![…]`), including desugared `//!` docs.
    pub attrs: Vec<Attribute>,
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

/// One attribute, inner or outer.
#[derive(Debug, Clone)]
pub struct Attribute {
    /// `true` for `#![…]`.
    pub inner: bool,
    /// The attribute path (e.g. `doc`, `cfg`, `derive`, `allow`).
    pub path: String,
    /// Tokens after the path (a parenthesized group, or `= literal`).
    pub tokens: TokenStream,
    /// Source position of the `#`.
    pub span: Span,
}

impl Attribute {
    /// Whether the attribute path is `name`.
    pub fn is(&self, name: &str) -> bool {
        self.path == name
    }

    /// For `#[doc = "…"]`: the documentation text.
    pub fn doc_text(&self) -> Option<&str> {
        if self.path != "doc" {
            return None;
        }
        match self.tokens.as_slice() {
            [eq, TokenTree::Literal(l)] if eq.is_punct("=") && l.kind == LitKind::Str => {
                Some(&l.cooked)
            }
            _ => None,
        }
    }

    /// Whether the attribute's argument list mentions `ident` at any
    /// nesting depth — `attr.is("cfg") && attr.arg_mentions("test")`
    /// detects `#[cfg(test)]`, `#[cfg(all(test, …))]`, ….
    pub fn arg_mentions(&self, ident: &str) -> bool {
        fn walk(stream: &[TokenTree], ident: &str) -> bool {
            stream.iter().any(|tt| match tt {
                TokenTree::Ident(i) => i.text == ident,
                TokenTree::Group(g) => walk(&g.stream, ident),
                _ => false,
            })
        }
        walk(&self.tokens, ident)
    }
}

/// A top-level (or impl-/trait-/mod-nested) item.
#[derive(Debug, Clone)]
pub enum Item {
    /// `struct` or `union`.
    Struct(ItemStruct),
    /// `enum`.
    Enum(ItemEnum),
    /// `impl` block.
    Impl(ItemImpl),
    /// Free or associated `fn`.
    Fn(ItemFn),
    /// `const` or `static` item.
    Const(ItemConst),
    /// `mod`, inline or out-of-line.
    Mod(ItemMod),
    /// `trait` definition.
    Trait(ItemTrait),
    /// Anything else, kept as raw tokens.
    Other(ItemOther),
}

impl Item {
    /// The item's outer attributes.
    pub fn attrs(&self) -> &[Attribute] {
        match self {
            Item::Struct(i) => &i.attrs,
            Item::Enum(i) => &i.attrs,
            Item::Impl(i) => &i.attrs,
            Item::Fn(i) => &i.attrs,
            Item::Const(i) => &i.attrs,
            Item::Mod(i) => &i.attrs,
            Item::Trait(i) => &i.attrs,
            Item::Other(i) => &i.attrs,
        }
    }

    /// The item's source position.
    pub fn span(&self) -> Span {
        match self {
            Item::Struct(i) => i.span,
            Item::Enum(i) => i.span,
            Item::Impl(i) => i.span,
            Item::Fn(i) => i.span,
            Item::Const(i) => i.span,
            Item::Mod(i) => i.span,
            Item::Trait(i) => i.span,
            Item::Other(i) => i.span,
        }
    }
}

/// One struct/union field.
#[derive(Debug, Clone)]
pub struct Field {
    /// Field attributes (including doc comments).
    pub attrs: Vec<Attribute>,
    /// Field name; `None` for tuple-struct fields.
    pub ident: Option<Ident>,
    /// The field type, as raw tokens.
    pub ty: TokenStream,
}

/// A `struct` or `union` item.
#[derive(Debug, Clone)]
pub struct ItemStruct {
    /// Outer attributes.
    pub attrs: Vec<Attribute>,
    /// Type name.
    pub ident: Ident,
    /// Fields (empty for unit structs).
    pub fields: Vec<Field>,
    /// Source position of the introducing keyword.
    pub span: Span,
}

/// One enum variant.
#[derive(Debug, Clone)]
pub struct Variant {
    /// Variant attributes (including doc comments).
    pub attrs: Vec<Attribute>,
    /// Variant name.
    pub ident: Ident,
    /// Payload tokens: the `(…)`/`{…}` group contents, empty for unit
    /// variants.
    pub fields: TokenStream,
}

/// An `enum` item.
#[derive(Debug, Clone)]
pub struct ItemEnum {
    /// Outer attributes.
    pub attrs: Vec<Attribute>,
    /// Type name.
    pub ident: Ident,
    /// Variants in source order.
    pub variants: Vec<Variant>,
    /// Source position.
    pub span: Span,
}

/// An `impl` block.
#[derive(Debug, Clone)]
pub struct ItemImpl {
    /// Outer attributes.
    pub attrs: Vec<Attribute>,
    /// Whether the impl has generic parameters (`impl<…>`).
    pub is_generic: bool,
    /// For trait impls, the trait's (unqualified) name.
    pub trait_name: Option<String>,
    /// The self type, as raw tokens.
    pub self_ty: TokenStream,
    /// The self type's principal path name (`Cache` for `Cache<P>`).
    pub self_ty_name: Option<String>,
    /// Associated items.
    pub items: Vec<Item>,
    /// Source position.
    pub span: Span,
}

/// A free or associated function.
#[derive(Debug, Clone)]
pub struct ItemFn {
    /// Outer attributes.
    pub attrs: Vec<Attribute>,
    /// Function name.
    pub ident: Ident,
    /// Signature tokens between the name and the body.
    pub sig: TokenStream,
    /// Body block; `None` for trait-method declarations.
    pub body: Option<Group>,
    /// Source position.
    pub span: Span,
}

/// A `const` or `static` item.
#[derive(Debug, Clone)]
pub struct ItemConst {
    /// Outer attributes.
    pub attrs: Vec<Attribute>,
    /// `true` for `static` items.
    pub is_static: bool,
    /// Item name.
    pub ident: Ident,
    /// Declared type tokens.
    pub ty: TokenStream,
    /// Initializer expression tokens.
    pub expr: TokenStream,
    /// Source position.
    pub span: Span,
}

/// A module.
#[derive(Debug, Clone)]
pub struct ItemMod {
    /// Outer attributes.
    pub attrs: Vec<Attribute>,
    /// Module name.
    pub ident: Ident,
    /// Inline contents; `None` for `mod foo;`.
    pub content: Option<Vec<Item>>,
    /// Source position.
    pub span: Span,
}

/// A trait definition.
#[derive(Debug, Clone)]
pub struct ItemTrait {
    /// Outer attributes.
    pub attrs: Vec<Attribute>,
    /// Trait name.
    pub ident: Ident,
    /// Associated item declarations.
    pub items: Vec<Item>,
    /// Source position.
    pub span: Span,
}

/// An item kept as raw tokens (`use`, `type`, macros, `extern` blocks).
#[derive(Debug, Clone)]
pub struct ItemOther {
    /// Outer attributes.
    pub attrs: Vec<Attribute>,
    /// The item's tokens, excluding attributes.
    pub tokens: TokenStream,
    /// Source position.
    pub span: Span,
}

/// Parse a complete source file.
///
/// # Errors
///
/// Only lexical problems (unterminated literals, unbalanced delimiters)
/// produce an error; unrecognized item shapes degrade to
/// [`Item::Other`].
pub fn parse_file(src: &str) -> Result<File, Error> {
    let tokens = lexer::lex(src)?;
    let mut parser = Parser::new(tokens);
    let (attrs, items) = parser.parse_items();
    Ok(File { attrs, items })
}

struct Parser {
    toks: TokenStream,
    i: usize,
}

impl Parser {
    fn new(toks: TokenStream) -> Parser {
        Parser { toks, i: 0 }
    }

    fn peek(&self, k: usize) -> Option<&TokenTree> {
        self.toks.get(self.i + k)
    }

    fn bump(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.i).cloned();
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.i >= self.toks.len()
    }

    fn span_here(&self) -> Span {
        self.peek(0).map(TokenTree::span).unwrap_or_default()
    }

    /// Parse a whole stream of items, separating inner attributes.
    fn parse_items(&mut self) -> (Vec<Attribute>, Vec<Item>) {
        let mut inner = Vec::new();
        let mut items = Vec::new();
        while !self.at_end() {
            let mut outer = Vec::new();
            self.collect_attrs(&mut inner, &mut outer);
            if self.at_end() {
                break;
            }
            items.push(self.parse_item(outer));
        }
        (inner, items)
    }

    /// Collect a run of attributes: inner ones into `inner`, outer ones
    /// into `outer`.
    fn collect_attrs(&mut self, inner: &mut Vec<Attribute>, outer: &mut Vec<Attribute>) {
        loop {
            match (self.peek(0), self.peek(1), self.peek(2)) {
                (Some(h), Some(b), Some(g))
                    if h.is_punct("#")
                        && b.is_punct("!")
                        && g.group(Delimiter::Bracket).is_some() =>
                {
                    let span = h.span();
                    self.bump();
                    self.bump();
                    let Some(TokenTree::Group(g)) = self.bump() else {
                        break;
                    };
                    if let Some(a) = attr_from_group(&g, true, span) {
                        inner.push(a);
                    }
                }
                (Some(h), Some(g), _)
                    if h.is_punct("#") && g.group(Delimiter::Bracket).is_some() =>
                {
                    let span = h.span();
                    self.bump();
                    let Some(TokenTree::Group(g)) = self.bump() else {
                        break;
                    };
                    if let Some(a) = attr_from_group(&g, false, span) {
                        outer.push(a);
                    }
                }
                _ => break,
            }
        }
    }

    /// Skip visibility/qualifier tokens preceding the item keyword.
    fn skip_qualifiers(&mut self) {
        loop {
            match self.peek(0) {
                Some(t) if t.is_ident("pub") => {
                    self.bump();
                    if self
                        .peek(0)
                        .is_some_and(|t| t.group(Delimiter::Parenthesis).is_some())
                    {
                        self.bump();
                    }
                }
                Some(t) if t.is_ident("default") || t.is_ident("async") || t.is_ident("unsafe") => {
                    self.bump();
                }
                // `const fn` — const as a qualifier, not an item.
                Some(t)
                    if t.is_ident("const") && self.peek(1).is_some_and(|n| n.is_ident("fn")) =>
                {
                    self.bump();
                }
                // `extern "C" fn …` (but not `extern crate`, an item form).
                Some(t)
                    if t.is_ident("extern")
                        && self
                            .peek(1)
                            .is_some_and(|n| matches!(n, TokenTree::Literal(_))) =>
                {
                    self.bump();
                    self.bump();
                }
                _ => break,
            }
        }
    }

    fn parse_item(&mut self, attrs: Vec<Attribute>) -> Item {
        let span = self.span_here();
        self.skip_qualifiers();
        let kw = self.peek(0).and_then(TokenTree::ident).map(str::to_string);
        match kw.as_deref() {
            Some("struct" | "union") => self.parse_struct(attrs, span),
            Some("enum") => self.parse_enum(attrs, span),
            Some("fn") => self.parse_fn(attrs, span),
            Some("const" | "static") => self.parse_const(attrs, span),
            Some("mod") => self.parse_mod(attrs, span),
            Some("impl") => self.parse_impl(attrs, span),
            Some("trait") => self.parse_trait(attrs, span),
            _ => self.parse_other(attrs, span),
        }
    }

    /// Skip a balanced `<…>` generic-parameter/argument list if one
    /// starts here. `<<`/`>>` count twice; `->` does not nest.
    fn skip_angles(&mut self) {
        if !self.peek(0).is_some_and(|t| t.is_punct("<")) {
            return;
        }
        let mut depth: i64 = 0;
        while let Some(t) = self.peek(0) {
            match t {
                t if t.is_punct("<") => depth += 1,
                t if t.is_punct("<<") => depth += 2,
                t if t.is_punct(">") => depth -= 1,
                t if t.is_punct(">>") => depth -= 2,
                _ => {}
            }
            self.bump();
            if depth <= 0 {
                return;
            }
        }
    }

    /// Consume tokens until (not including) the first top-level brace
    /// group or `;`, returning them.
    fn take_until_body(&mut self) -> TokenStream {
        let mut out = Vec::new();
        while let Some(t) = self.peek(0) {
            if t.is_punct(";") || t.group(Delimiter::Brace).is_some() {
                break;
            }
            if let Some(t) = self.bump() {
                out.push(t);
            }
        }
        out
    }

    fn expect_ident(&mut self, fallback: &str) -> Ident {
        match self.peek(0) {
            Some(TokenTree::Ident(_)) => {
                if let Some(TokenTree::Ident(i)) = self.bump() {
                    i
                } else {
                    Ident {
                        text: fallback.into(),
                        span: Span::default(),
                    }
                }
            }
            // `const _: () = …` — underscore lexes as an identifier
            // already; anything else gets the fallback name.
            _ => Ident {
                text: fallback.into(),
                span: self.span_here(),
            },
        }
    }

    fn parse_struct(&mut self, attrs: Vec<Attribute>, span: Span) -> Item {
        self.bump(); // struct/union
        let ident = self.expect_ident("?struct");
        self.skip_angles();
        let header = self.take_until_body(); // where clause or tuple fields
        let mut fields = Vec::new();
        // Tuple struct: the paren group rode along in `header`.
        if let Some(g) = header.iter().find_map(|t| t.group(Delimiter::Parenthesis)) {
            for chunk in split_top_level(&g.stream, ",") {
                let (f_attrs, rest) = strip_leading_attrs(&chunk);
                let ty = strip_leading_vis(&rest);
                if !ty.is_empty() {
                    fields.push(Field {
                        attrs: f_attrs,
                        ident: None,
                        ty,
                    });
                }
            }
            if self.peek(0).is_some_and(|t| t.is_punct(";")) {
                self.bump();
            }
            return Item::Struct(ItemStruct {
                attrs,
                ident,
                fields,
                span,
            });
        }
        match self.peek(0) {
            Some(t) if t.is_punct(";") => {
                self.bump(); // unit struct
            }
            Some(t) if t.group(Delimiter::Brace).is_some() => {
                let Some(TokenTree::Group(g)) = self.bump() else {
                    unreachable!("peek said brace group");
                };
                for chunk in split_top_level(&g.stream, ",") {
                    let (f_attrs, rest) = strip_leading_attrs(&chunk);
                    let rest = strip_leading_vis(&rest);
                    // `name : ty`
                    let mut it = rest.into_iter();
                    let name = it.next();
                    let colon = it.next();
                    let ty: TokenStream = it.collect();
                    if let (Some(TokenTree::Ident(name)), Some(c)) = (name, colon) {
                        if c.is_punct(":") {
                            fields.push(Field {
                                attrs: f_attrs,
                                ident: Some(name),
                                ty,
                            });
                        }
                    }
                }
            }
            _ => {}
        }
        Item::Struct(ItemStruct {
            attrs,
            ident,
            fields,
            span,
        })
    }

    fn parse_enum(&mut self, attrs: Vec<Attribute>, span: Span) -> Item {
        self.bump(); // enum
        let ident = self.expect_ident("?enum");
        self.skip_angles();
        let _where = self.take_until_body();
        let mut variants = Vec::new();
        if let Some(t) = self.peek(0) {
            if t.group(Delimiter::Brace).is_some() {
                if let Some(TokenTree::Group(g)) = self.bump() {
                    for chunk in split_top_level(&g.stream, ",") {
                        let (v_attrs, rest) = strip_leading_attrs(&chunk);
                        let mut it = rest.into_iter();
                        let Some(TokenTree::Ident(name)) = it.next() else {
                            continue;
                        };
                        let fields = match it.next() {
                            Some(TokenTree::Group(fg)) => fg.stream,
                            // unit variant or `= discriminant` (ignored)
                            _ => Vec::new(),
                        };
                        variants.push(Variant {
                            attrs: v_attrs,
                            ident: name,
                            fields,
                        });
                    }
                }
            }
        }
        Item::Enum(ItemEnum {
            attrs,
            ident,
            variants,
            span,
        })
    }

    fn parse_fn(&mut self, attrs: Vec<Attribute>, span: Span) -> Item {
        self.bump(); // fn
        let ident = self.expect_ident("?fn");
        let sig = self.take_until_body();
        let body = match self.peek(0) {
            Some(t) if t.group(Delimiter::Brace).is_some() => {
                if let Some(TokenTree::Group(g)) = self.bump() {
                    Some(g)
                } else {
                    None
                }
            }
            Some(t) if t.is_punct(";") => {
                self.bump();
                None
            }
            _ => None,
        };
        Item::Fn(ItemFn {
            attrs,
            ident,
            sig,
            body,
            span,
        })
    }

    fn parse_const(&mut self, attrs: Vec<Attribute>, span: Span) -> Item {
        let kw = self.bump(); // const/static
        let is_static = kw.is_some_and(|t| t.is_ident("static"));
        if self.peek(0).is_some_and(|t| t.is_ident("mut")) {
            self.bump();
        }
        let ident = self.expect_ident("_");
        // `: ty = expr ;` — split on top-level `=` / `;` outside angles.
        if self.peek(0).is_some_and(|t| t.is_punct(":")) {
            self.bump();
        }
        let mut ty = Vec::new();
        let mut expr = Vec::new();
        let mut in_expr = false;
        let mut angle: i64 = 0;
        while let Some(t) = self.peek(0) {
            if angle <= 0 {
                if t.is_punct(";") {
                    self.bump();
                    break;
                }
                if !in_expr && t.is_punct("=") {
                    in_expr = true;
                    self.bump();
                    continue;
                }
            }
            // Angle counting disambiguates `:` type generics only; in the
            // initializer, `<<`/`>>`/`<`/`>` are shift/compare operators
            // (`= 1 << 12;`) and must not swallow the terminating `;`.
            if !in_expr {
                match t {
                    t if t.is_punct("<") => angle += 1,
                    t if t.is_punct("<<") => angle += 2,
                    t if t.is_punct(">") => angle -= 1,
                    t if t.is_punct(">>") => angle -= 2,
                    _ => {}
                }
            }
            if let Some(t) = self.bump() {
                if in_expr {
                    expr.push(t);
                } else {
                    ty.push(t);
                }
            }
        }
        Item::Const(ItemConst {
            attrs,
            is_static,
            ident,
            ty,
            expr,
            span,
        })
    }

    fn parse_mod(&mut self, attrs: Vec<Attribute>, span: Span) -> Item {
        self.bump(); // mod
        let ident = self.expect_ident("?mod");
        match self.peek(0) {
            Some(t) if t.is_punct(";") => {
                self.bump();
                Item::Mod(ItemMod {
                    attrs,
                    ident,
                    content: None,
                    span,
                })
            }
            Some(t) if t.group(Delimiter::Brace).is_some() => {
                let Some(TokenTree::Group(g)) = self.bump() else {
                    unreachable!("peek said brace group");
                };
                let mut sub = Parser::new(g.stream);
                let (mut inner, items) = sub.parse_items();
                let mut attrs = attrs;
                attrs.append(&mut inner);
                Item::Mod(ItemMod {
                    attrs,
                    ident,
                    content: Some(items),
                    span,
                })
            }
            _ => Item::Mod(ItemMod {
                attrs,
                ident,
                content: None,
                span,
            }),
        }
    }

    fn parse_impl(&mut self, attrs: Vec<Attribute>, span: Span) -> Item {
        self.bump(); // impl
        let is_generic = self.peek(0).is_some_and(|t| t.is_punct("<"));
        self.skip_angles();
        let header = self.take_until_body();
        // Split the header at a top-level `for` into trait path and self
        // type; without `for` it is an inherent impl.
        let (trait_tokens, self_tokens) = split_at_for(&header);
        let (trait_name, self_ty) = match trait_tokens {
            Some(tr) => (last_path_name(&tr), self_tokens),
            None => (None, self_tokens),
        };
        let self_ty = strip_where(&self_ty);
        let self_ty_name = last_path_name(&self_ty);
        let mut items = Vec::new();
        if let Some(t) = self.peek(0) {
            if t.group(Delimiter::Brace).is_some() {
                if let Some(TokenTree::Group(g)) = self.bump() {
                    let mut sub = Parser::new(g.stream);
                    let (_inner, sub_items) = sub.parse_items();
                    items = sub_items;
                }
            }
        }
        Item::Impl(ItemImpl {
            attrs,
            is_generic,
            trait_name,
            self_ty,
            self_ty_name,
            items,
            span,
        })
    }

    fn parse_trait(&mut self, attrs: Vec<Attribute>, span: Span) -> Item {
        self.bump(); // trait
        let ident = self.expect_ident("?trait");
        self.skip_angles();
        let _bounds = self.take_until_body();
        let mut items = Vec::new();
        if let Some(t) = self.peek(0) {
            if t.group(Delimiter::Brace).is_some() {
                if let Some(TokenTree::Group(g)) = self.bump() {
                    let mut sub = Parser::new(g.stream);
                    let (_inner, sub_items) = sub.parse_items();
                    items = sub_items;
                }
            }
        }
        Item::Trait(ItemTrait {
            attrs,
            ident,
            items,
            span,
        })
    }

    /// Fallback: consume one item's worth of tokens. Stops after a
    /// top-level `;`, or after a top-level brace group when no `=` has
    /// been seen (macro invocations, `extern` blocks, `macro_rules!`).
    fn parse_other(&mut self, attrs: Vec<Attribute>, span: Span) -> Item {
        let mut tokens = Vec::new();
        let mut seen_eq = false;
        while let Some(t) = self.peek(0) {
            if t.is_punct(";") {
                if let Some(t) = self.bump() {
                    tokens.push(t);
                }
                break;
            }
            if t.is_punct("=") {
                seen_eq = true;
            }
            let is_brace = t.group(Delimiter::Brace).is_some();
            if let Some(t) = self.bump() {
                tokens.push(t);
            }
            if is_brace && !seen_eq {
                break;
            }
        }
        Item::Other(ItemOther {
            attrs,
            tokens,
            span,
        })
    }
}

/// Build an [`Attribute`] from a `[…]` group's contents.
fn attr_from_group(g: &Group, inner: bool, span: Span) -> Option<Attribute> {
    let mut iter = g.stream.iter();
    let first = iter.next()?;
    let path = first.ident()?.to_string();
    // Multi-segment paths (e.g. `clippy::pedantic` in tool attributes):
    // keep only the final segment, matching how the engine queries them.
    let mut tokens: TokenStream = Vec::new();
    let mut path = path;
    let mut rest: Vec<&TokenTree> = iter.collect();
    while rest.first().is_some_and(|t| t.is_punct("::")) {
        if let Some(seg) = rest.get(1).and_then(|t| t.ident()) {
            path = seg.to_string();
            rest.drain(..2);
        } else {
            break;
        }
    }
    for t in rest {
        tokens.push(t.clone());
    }
    Some(Attribute {
        inner,
        path,
        tokens,
        span,
    })
}

/// Split `stream` into chunks at top-level occurrences of `sep`.
pub fn split_top_level(stream: &[TokenTree], sep: &str) -> Vec<TokenStream> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle: i64 = 0;
    for t in stream {
        if angle <= 0 && t.is_punct(sep) {
            if !cur.is_empty() {
                out.push(std::mem::take(&mut cur));
            }
            continue;
        }
        match t {
            t if t.is_punct("<") => angle += 1,
            t if t.is_punct("<<") => angle += 2,
            t if t.is_punct(">") => angle -= 1,
            t if t.is_punct(">>") => angle -= 2,
            _ => {}
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Detach leading `#[…]` attribute runs (including desugared docs) from
/// a token chunk.
fn strip_leading_attrs(chunk: &[TokenTree]) -> (Vec<Attribute>, TokenStream) {
    let mut attrs = Vec::new();
    let mut i = 0;
    while i + 1 < chunk.len() {
        let (h, g) = (&chunk[i], &chunk[i + 1]);
        if h.is_punct("#") {
            if let Some(g) = g.group(Delimiter::Bracket) {
                if let Some(a) = attr_from_group(g, false, h.span()) {
                    attrs.push(a);
                }
                i += 2;
                continue;
            }
        }
        break;
    }
    (attrs, chunk[i..].to_vec())
}

/// Drop a leading `pub` / `pub(…)` from a token chunk.
fn strip_leading_vis(chunk: &[TokenTree]) -> TokenStream {
    let mut i = 0;
    if chunk.first().is_some_and(|t| t.is_ident("pub")) {
        i = 1;
        if chunk
            .get(1)
            .is_some_and(|t| t.group(Delimiter::Parenthesis).is_some())
        {
            i = 2;
        }
    }
    chunk[i..].to_vec()
}

/// Split an impl header at the top-level `for` keyword, if present.
fn split_at_for(header: &[TokenTree]) -> (Option<TokenStream>, TokenStream) {
    let mut angle: i64 = 0;
    for (i, t) in header.iter().enumerate() {
        match t {
            t if t.is_punct("<") => angle += 1,
            t if t.is_punct("<<") => angle += 2,
            t if t.is_punct(">") => angle -= 1,
            t if t.is_punct(">>") => angle -= 2,
            // `for<'a>` higher-ranked binders start a new angle run and
            // are not the trait/self split point.
            t if angle <= 0 && t.is_ident("for") => {
                if header.get(i + 1).is_some_and(|n| n.is_punct("<")) {
                    continue;
                }
                return (Some(header[..i].to_vec()), header[i + 1..].to_vec());
            }
            _ => {}
        }
    }
    (None, header.to_vec())
}

/// Remove a trailing top-level `where …` clause.
fn strip_where(tokens: &[TokenTree]) -> TokenStream {
    let mut angle: i64 = 0;
    for (i, t) in tokens.iter().enumerate() {
        match t {
            t if t.is_punct("<") => angle += 1,
            t if t.is_punct("<<") => angle += 2,
            t if t.is_punct(">") => angle -= 1,
            t if t.is_punct(">>") => angle -= 2,
            t if angle <= 0 && t.is_ident("where") => return tokens[..i].to_vec(),
            _ => {}
        }
    }
    tokens.to_vec()
}

/// The final path-segment name of a type/trait token run: skips `&`,
/// `mut`, `dyn` and lifetimes, then reads `seg(::seg)*`, stopping at a
/// generic-argument list.
fn last_path_name(tokens: &[TokenTree]) -> Option<String> {
    let mut i = 0;
    loop {
        match tokens.get(i) {
            Some(t) if t.is_punct("&") || t.is_ident("mut") || t.is_ident("dyn") => i += 1,
            Some(TokenTree::Lifetime(_)) => i += 1,
            _ => break,
        }
    }
    let mut name: Option<String> = None;
    while let Some(t) = tokens.get(i) {
        match t {
            TokenTree::Ident(id) => {
                name = Some(id.text.clone());
                i += 1;
            }
            t if t.is_punct("::") => i += 1,
            t if t.is_punct("<") => break,
            _ => break,
        }
    }
    name
}
