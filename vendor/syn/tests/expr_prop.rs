//! Property tests for the tolerant expression parser.
//!
//! Two guarantees back the analysis engine's use of [`syn::expr`]:
//!
//! 1. **Never panics.** Arbitrary token soup — balanced or not, Rust or
//!    not — must flow through `lex` → `parse_block`/`parse_exprs`
//!    without panicking. Lex errors are fine (that's an `Err`, not a
//!    panic); parse "errors" do not exist by construction, everything
//!    degrades to `Expr::Other`.
//! 2. **Spans round-trip.** Every token span and every expression span
//!    produced from real-ish source maps back to a byte offset in the
//!    original text whose content starts with that token's spelling.

use proptest::prelude::*;
use syn::expr::{self, Expr};
use syn::{lexer, Delimiter, Group, Span, TokenTree};

/// Fragment pool for random "source". Mixes valid Rust shapes with
/// stray operators, keywords in odd positions, and unbalanced-looking
/// text (unbalanced delimiters fail in the lexer, which is fine).
const FRAGMENTS: &[&str] = &[
    "fn",
    "let",
    "if",
    "else",
    "match",
    "for",
    "while",
    "loop",
    "in",
    "as",
    "move",
    "return",
    "break",
    "continue",
    "unsafe",
    "async",
    "const",
    "mut",
    "impl",
    "struct",
    "x",
    "foo",
    "Bar",
    "self",
    "Self",
    "Ordering",
    "Acquire",
    "ways",
    "sets",
    "0",
    "1",
    "42u64",
    "0xfff",
    "2.5",
    "\"str % lit\"",
    "'c'",
    "'static",
    "'a",
    "+",
    "-",
    "*",
    "/",
    "%",
    "=",
    "==",
    "!=",
    "<",
    ">",
    "<=",
    ">=",
    "<<",
    ">>",
    "&",
    "&&",
    "|",
    "||",
    "^",
    "!",
    "?",
    ".",
    "..",
    "..=",
    "::",
    "->",
    "=>",
    "#",
    "@",
    ",",
    ";",
    ":",
    "()",
    "(1, 2)",
    "[0; 4]",
    "[a, b]",
    "{ x }",
    "{}",
    "(v.len())",
    "|a, b| a",
    "x.load(Ordering::Acquire)",
    "m.iter()",
    "t[(i & 3) as usize]",
    "vec![1, 2]",
    "S { a: 1 }",
    "#[inline]",
    "r#type",
    "y.0.1",
];

fn assemble(indices: &[usize]) -> String {
    let mut out = String::new();
    for &i in indices {
        out.push_str(FRAGMENTS[i % FRAGMENTS.len()]);
        // Vary separators a little so multi-line spans get exercised.
        if i % 7 == 0 {
            out.push('\n');
        } else {
            out.push(' ');
        }
    }
    out
}

/// Byte offset of a 1-based (line, column) position in `src`, counting
/// columns in characters as the lexer does.
fn offset_of(src: &str, span: Span) -> Option<usize> {
    let mut line = 1usize;
    let mut col = 1usize;
    for (off, ch) in src.char_indices() {
        if line == span.line && col == span.column {
            return Some(off);
        }
        if ch == '\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    if line == span.line && col == span.column {
        return Some(src.len());
    }
    None
}

/// The source spelling a token's span must point at.
fn expected_prefix(tok: &TokenTree) -> String {
    match tok {
        TokenTree::Ident(i) => i.text.clone(),
        TokenTree::Punct(p) => p.text.clone(),
        TokenTree::Literal(l) => l.text.clone(),
        TokenTree::Lifetime(l) => format!("'{}", l.text),
        TokenTree::Group(g) => match g.delimiter {
            Delimiter::Parenthesis => "(".to_string(),
            Delimiter::Bracket => "[".to_string(),
            Delimiter::Brace => "{".to_string(),
        },
    }
}

fn check_token_spans(src: &str, stream: &[TokenTree]) -> Result<(), TestCaseError> {
    for tok in stream {
        let want = expected_prefix(tok);
        // Raw identifiers/doc-desugared attrs have synthesized text; skip
        // tokens whose spelling can differ from the source.
        let off = offset_of(src, tok.span());
        prop_assert!(
            off.is_some(),
            "span {:?} not a valid source position",
            tok.span()
        );
        let at = &src[off.unwrap()..];
        let matches_raw = at.starts_with(&want)
            || at.starts_with(&format!("r#{want}"))
            || want.starts_with("r#") && at.starts_with(want.trim_start_matches("r#"))
            // doc comments desugar to `#[doc = "…"]` attr tokens
            || at.starts_with("//") || at.starts_with("/*");
        prop_assert!(
            matches_raw,
            "span {:?} points at {:?}, expected {:?}",
            tok.span(),
            &at[..at.len().min(12)],
            want
        );
        if let TokenTree::Group(g) = tok {
            check_token_spans(src, &g.stream)?;
        }
    }
    Ok(())
}

proptest! {
    #[test]
    fn parser_never_panics(indices in prop::collection::vec(any::<u64>(), 0..48)) {
        let idx: Vec<usize> = indices.iter().map(|&i| i as usize).collect();
        let src = assemble(&idx);
        if let Ok(toks) = lexer::lex(&src) {
            // As a free expression list…
            let _ = expr::parse_exprs(&toks);
            // …and as a block body.
            let group = Group {
                delimiter: Delimiter::Brace,
                stream: toks,
                span: Span::new(1, 1),
            };
            let block = expr::parse_block(&group);
            // The visitor must terminate too.
            let mut n = 0usize;
            expr::visit_block(&block, &mut |_| n += 1);
        }
    }

    #[test]
    fn token_spans_round_trip(indices in prop::collection::vec(any::<u64>(), 0..48)) {
        let idx: Vec<usize> = indices.iter().map(|&i| i as usize).collect();
        let src = assemble(&idx);
        if let Ok(toks) = lexer::lex(&src) {
            check_token_spans(&src, &toks)?;
        }
    }
}

/// Expression spans from a corpus of real shapes point at the operator
/// or name they claim to represent.
#[test]
fn expr_spans_round_trip_on_real_shapes() {
    let src = "fn f(v: &[u64], m: &HashMap<u64, u64>) -> u64 {\n\
               let mut acc = 0u64;\n\
               for (k, val) in m.iter() {\n\
                   acc += val % (v.len() as u64);\n\
                   let x = v[(k & 0xfff) as usize];\n\
                   acc = acc.wrapping_add(x).max(1);\n\
               }\n\
               acc\n\
               }\n";
    let file = syn::parse_file(src).expect("parses");
    let syn::Item::Fn(f) = &file.items[0] else {
        panic!("expected fn");
    };
    let block = expr::parse_block(f.body.as_ref().expect("body"));
    let mut checked = 0usize;
    expr::visit_block(&block, &mut |e| {
        let (span, want) = match e {
            Expr::MethodCall(m) => (m.span, m.method.text.clone()),
            Expr::Binary { op, span, .. } => (*span, op.clone()),
            Expr::Cast { span, .. } => (*span, "as".to_string()),
            Expr::ForLoop(fl) => (fl.span, "for".to_string()),
            _ => return,
        };
        let off = offset_of(src, span).expect("valid span");
        assert!(
            src[off..].starts_with(&want),
            "span {span:?} points at {:?}, expected {want:?}",
            &src[off..off + want.len().min(src.len() - off)]
        );
        checked += 1;
    });
    assert!(checked >= 8, "only {checked} spans checked");
}
