//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! a minimal serialization framework with the same *surface* syntax the
//! code uses — `use serde::{Serialize, Deserialize}` plus
//! `#[derive(Serialize, Deserialize)]` — but a much simpler internals
//! contract: every type converts to and from a [`Value`] tree, and
//! `serde_json` (also vendored) renders/parses that tree as JSON.
//!
//! Supported shapes (everything this workspace derives or nests):
//! structs with named fields, unit-variant enums, primitives, `String`,
//! `Option<T>`, `Vec<T>`, slices, arrays, tuples up to arity 4, and maps
//! with string-like keys.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// The interchange tree: a JSON-shaped value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer (kept exact; never routed through f64).
    UInt(u64),
    /// Signed integer (used when negative).
    Int(i64),
    /// Floating point.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Human label for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

impl fmt::Display for Value {
    /// Compact JSON rendering (what `println!("{}", json!(..))` prints).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
            Value::UInt(n) => write!(f, "{n}"),
            Value::Int(n) => write!(f, "{n}"),
            Value::Float(x) => {
                if x.is_nan() || x.is_infinite() {
                    // Real serde_json emits null for non-finite floats.
                    f.write_str("null")
                } else if *x == x.trunc() && x.abs() < 1e15 {
                    // Keep integral floats recognizable as numbers,
                    // matching serde_json's `1.0` formatting.
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => write_json_string(s, f),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_json_string(k, f)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Write `s` as a JSON string literal (quoted, escaped).
pub fn write_json_string(s: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Construct from any message.
    pub fn new(msg: impl Into<String>) -> DeError {
        DeError { msg: msg.into() }
    }

    /// "expected X, found Y" helper.
    pub fn expected(what: &str, found: &Value) -> DeError {
        DeError::new(format!("expected {what}, found {}", found.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Convert a value into the interchange tree.
pub trait Serialize {
    /// Build the [`Value`] representation.
    fn to_value(&self) -> Value;
}

/// Rebuild a value from the interchange tree.
pub trait Deserialize: Sized {
    /// Parse from a [`Value`], with a descriptive error on shape mismatch.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---- primitives ----

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(u64::from(*self)) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match *v {
                    Value::UInt(n) => n,
                    Value::Int(n) if n >= 0 => n as u64,
                    ref other => return Err(DeError::expected("unsigned integer", other)),
                };
                <$t>::try_from(n).map_err(|_| DeError::new(format!(
                    "integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

ser_uint!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::UInt(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let n = u64::from_value(v)?;
        usize::try_from(n).map_err(|_| DeError::new(format!("integer {n} out of range for usize")))
    }
}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = i64::from(*self);
                if n >= 0 { Value::UInt(n as u64) } else { Value::Int(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: i64 = match *v {
                    Value::Int(n) => n,
                    Value::UInt(n) => i64::try_from(n)
                        .map_err(|_| DeError::new(format!("integer {n} out of range")))?,
                    ref other => return Err(DeError::expected("integer", other)),
                };
                <$t>::try_from(n).map_err(|_| DeError::new(format!(
                    "integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

ser_int!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        (*self as i64).to_value()
    }
}

impl Deserialize for isize {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let n = i64::from_value(v)?;
        isize::try_from(n).map_err(|_| DeError::new(format!("integer {n} out of range for isize")))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::Float(f) => Ok(f),
            Value::UInt(n) => Ok(n as f64),
            Value::Int(n) => Ok(n as f64),
            ref other => Err(DeError::expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::Bool(b) => Ok(b),
            ref other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = String::from_value(v)?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::new("expected single-character string")),
        }
    }
}

// ---- containers ----

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::new(format!("expected array of length {N}, found {n}")))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) => {
                        let mut it = items.iter();
                        let out = ($(
                            $t::from_value(it.next().ok_or_else(|| {
                                DeError::new("tuple too short")
                            })?)?,
                        )+);
                        if it.next().is_some() {
                            return Err(DeError::new("tuple too long"));
                        }
                        Ok(out)
                    }
                    other => Err(DeError::expected("array (tuple)", other)),
                }
            }
        }
    )*};
}

ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::expected("object", other)),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort for stable output.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        Value::Object(
            keys.into_iter()
                .map(|k| (k.clone(), self[k].to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::expected("object", other)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn narrowing_is_checked() {
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(u64::from_value(&Value::Int(-1)).is_err());
    }
}
