//! Offline stand-in for the `memmap2` crate.
//!
//! The build environment has no network access to crates.io, so this
//! crate mirrors exactly the subset of the real `memmap2` API the
//! workspace uses behind fe-trace's `mmap` feature: a read-only
//! [`Mmap`] created from a [`File`] that derefs to `[u8]`.
//!
//! Deliberate divergences from the real crate:
//!
//! * No actual memory mapping happens — [`Mmap::map`] reads the whole
//!   file into an owned buffer. Semantics (shared immutable bytes,
//!   one load per file) match; the page-cache-only storage win does
//!   not. Swapping in the real crate restores it without code changes.
//! * The real `Mmap::map` is `unsafe fn` (the mapping's validity
//!   depends on the file not being truncated concurrently). The
//!   stand-in has no such hazard, so it is safe — call sites wrap it
//!   in no `unsafe` block, which keeps first-party crates
//!   `#![forbid(unsafe_code)]`-clean today and requires only adding
//!   the block if the real crate is ever vendored.

#![forbid(unsafe_code)]

use std::fs::File;
use std::io::{self, Read};
use std::ops::Deref;

/// A read-only "memory map" of a file (here: an owned copy of it).
#[derive(Debug)]
pub struct Mmap {
    data: Vec<u8>,
}

impl Mmap {
    /// Load the entire contents of `file` and expose them as `[u8]`.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from reading the file.
    pub fn map(file: &File) -> io::Result<Mmap> {
        let mut data = Vec::new();
        let mut f = file.try_clone()?;
        f.read_to_end(&mut data)?;
        Ok(Mmap { data })
    }

    /// Length of the mapped region in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the mapped region is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Mmap {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn maps_file_contents() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("memmap2-standin-{}", std::process::id()));
        let mut f = File::create(&path).unwrap();
        f.write_all(b"hello mapping").unwrap();
        drop(f);
        let f = File::open(&path).unwrap();
        let m = Mmap::map(&f).unwrap();
        assert_eq!(&m[..], b"hello mapping");
        assert_eq!(m.len(), 13);
        assert!(!m.is_empty());
        std::fs::remove_file(&path).ok();
    }
}
