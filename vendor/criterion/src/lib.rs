//! Offline stand-in for `criterion`.
//!
//! Provides the API surface this workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Throughput`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — with a simple
//! wall-clock engine: warm up briefly, time a fixed batch of
//! iterations, and print mean time per iteration (plus derived
//! throughput when configured). No statistics, plots, or baselines.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    /// Minimum measured batch duration before reporting.
    target_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            target_time: Duration::from_millis(200),
        }
    }
}

/// Work-per-iteration label used to derive throughput numbers.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements each.
    Elements(u64),
    /// Iterations process this many bytes each.
    Bytes(u64),
}

/// A parameterized benchmark name.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{parameter}", name.into()),
        }
    }

    /// Parameter-only id (group name supplies the rest).
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Accepts both `&str` names and [`BenchmarkId`]s.
pub trait IntoBenchmarkId {
    /// The display label.
    fn label(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn label(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn label(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn label(self) -> String {
        self.label
    }
}

/// Passed to the closure under test; call [`Bencher::iter`].
pub struct Bencher<'a> {
    target_time: Duration,
    result: &'a mut Option<Measurement>,
}

struct Measurement {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher<'_> {
    /// Measure `routine` until the batch exceeds the target time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and batch-size calibration: double until the batch
        // takes at least ~1/10 of the target time.
        let mut batch: u64 = 1;
        let calibrated = loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let took = start.elapsed();
            if took >= self.target_time / 10 || batch >= 1 << 30 {
                break took.max(Duration::from_nanos(1));
            }
            batch *= 2;
        };
        // Scale to roughly the target time, then take the real batch.
        let per_iter = calibrated.as_secs_f64() / batch as f64;
        let want = (self.target_time.as_secs_f64() / per_iter).ceil() as u64;
        let iterations = want.clamp(batch, 1 << 32);
        let start = Instant::now();
        for _ in 0..iterations {
            black_box(routine());
        }
        *self.result = Some(Measurement {
            iterations,
            elapsed: start.elapsed(),
        });
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration work label for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the stub sizes batches by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.criterion.target_time = time.min(Duration::from_secs(2));
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let label = format!("{}/{}", self.name, id.label());
        run_one(&label, self.criterion.target_time, self.throughput, f);
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let label = format!("{}/{}", self.name, id.label());
        run_one(&label, self.criterion.target_time, self.throughput, |b| {
            f(b, input);
        });
        self
    }

    /// End the group (prints nothing extra in the stub).
    pub fn finish(&mut self) {}
}

impl Criterion {
    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        run_one(name, self.target_time, None, f);
        self
    }

    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            criterion: self,
        }
    }
}

fn run_one<F>(label: &str, target_time: Duration, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher<'_>),
{
    let mut result = None;
    let mut bencher = Bencher {
        target_time,
        result: &mut result,
    };
    f(&mut bencher);
    match result {
        Some(m) => {
            let per_iter = m.elapsed.as_secs_f64() / m.iterations as f64;
            let rate = match throughput {
                Some(Throughput::Elements(n)) => {
                    format!("  ({:.1} Melem/s)", n as f64 / per_iter / 1e6)
                }
                Some(Throughput::Bytes(n)) => {
                    format!("  ({:.1} MiB/s)", n as f64 / per_iter / (1024.0 * 1024.0))
                }
                None => String::new(),
            };
            println!(
                "{label:<40} {:>12.3} ns/iter  [{} iters]{rate}",
                per_iter * 1e9,
                m.iterations
            );
        }
        None => println!("{label:<40} (no measurement: Bencher::iter never called)"),
    }
}

/// Bundle benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion {
            target_time: Duration::from_millis(5),
        };
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(10));
        g.bench_with_input(BenchmarkId::from_parameter("x"), &3u64, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
    }
}
