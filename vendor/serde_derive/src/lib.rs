//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! two shapes this workspace actually derives:
//!
//! * structs with named fields, and
//! * enums whose variants are all unit variants (optionally with explicit
//!   discriminants).
//!
//! The generated code targets the vendored `serde` stub's value-model
//! traits (`to_value`/`from_value`). Anything fancier — generics, tuple
//! structs, payload variants, `#[serde(...)]` attributes — is rejected
//! with a compile error naming the limitation, so a future use shows up
//! as a loud build failure rather than silent misbehavior.
//!
//! Parsing walks the raw [`proc_macro::TokenTree`] stream (the build
//! environment has no network, so `syn`/`quote` are unavailable).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What we learned about the item under derive.
enum Item {
    /// Named-field struct: name + field identifiers.
    Struct { name: String, fields: Vec<String> },
    /// Unit-variant enum: name + variant identifiers.
    Enum { name: String, variants: Vec<String> },
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let generated = match parse_item(input) {
        Ok(Item::Struct { name, fields }) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(::std::vec![{pushes}])\n\
                     }}\n\
                 }}"
            )
        }
        Ok(Item::Enum { name, variants }) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => \
                         ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match *self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
        Err(msg) => return compile_error(&msg),
    };
    generated
        .parse()
        .expect("derive(Serialize): generated code must parse")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let generated = match parse_item(input) {
        Ok(Item::Struct { name, fields }) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                             v.get(\"{f}\").unwrap_or(&::serde::Value::Null))\
                             .map_err(|e| ::serde::DeError::new(::std::format!(\
                                 \"{name}.{f}: {{e}}\")))?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         if !::std::matches!(v, ::serde::Value::Object(_)) {{\n\
                             return ::std::result::Result::Err(\
                                 ::serde::DeError::expected(\"object ({name})\", v));\n\
                         }}\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Ok(Item::Enum { name, variants }) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {arms}\n\
                                 other => ::std::result::Result::Err(::serde::DeError::new(\
                                     ::std::format!(\"unknown {name} variant `{{other}}`\"))),\n\
                             }},\n\
                             other => ::std::result::Result::Err(\
                                 ::serde::DeError::expected(\"string ({name})\", other)),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
        Err(msg) => return compile_error(&msg),
    };
    generated
        .parse()
        .expect("derive(Deserialize): generated code must parse")
}

fn compile_error(msg: &str) -> TokenStream {
    format!("::std::compile_error!({msg:?});")
        .parse()
        .expect("compile_error tokens must parse")
}

/// Parse the derive input into an [`Item`], or a user-facing error.
fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut toks = input.into_iter().peekable();

    // Skip outer attributes (`#[...]`, including expanded doc comments)
    // and the visibility qualifier.
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                match toks.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                    _ => return Err("malformed attribute on derive input".into()),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                toks.next();
                // `pub(crate)` / `pub(in ...)` restriction group.
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next();
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "serde stub derive: generic type `{name}` is not supported"
            ));
        }
    }
    let body = match toks.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
            return Err(format!(
                "serde stub derive: unit struct `{name}` is not supported"
            ))
        }
        Some(TokenTree::Group(_)) => {
            return Err(format!(
                "serde stub derive: tuple struct `{name}` is not supported"
            ))
        }
        other => return Err(format!("expected item body for `{name}`, found {other:?}")),
    };

    match kind.as_str() {
        "struct" => Ok(Item::Struct {
            fields: parse_named_fields(body, &name)?,
            name,
        }),
        "enum" => Ok(Item::Enum {
            variants: parse_unit_variants(body, &name)?,
            name,
        }),
        other => Err(format!("cannot derive serde traits for `{other} {name}`")),
    }
}

/// Field identifiers of a named-field struct body.
fn parse_named_fields(body: TokenStream, item: &str) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        // Skip per-field attributes and visibility.
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    toks.next(); // the bracket group
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    toks.next();
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(tok) = toks.next() else { break };
        let field = match tok {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("{item}: expected field name, found {other:?}")),
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => {
                return Err(format!(
                    "serde stub derive: `{item}` must use named fields (at `{field}`)"
                ))
            }
        }
        fields.push(field);
        // Skip the type: consume until a comma at angle-bracket depth 0.
        // `->` inside `Fn(..) -> T` must not close a `<`.
        let mut depth = 0i32;
        let mut prev_dash = false;
        for t in toks.by_ref() {
            if let TokenTree::Punct(p) = &t {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' if !prev_dash => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
                prev_dash = p.as_char() == '-';
            } else {
                prev_dash = false;
            }
        }
    }
    if fields.is_empty() {
        return Err(format!("serde stub derive: `{item}` has no named fields"));
    }
    Ok(fields)
}

/// Variant identifiers of an all-unit-variant enum body.
fn parse_unit_variants(body: TokenStream, item: &str) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        // Skip per-variant attributes.
        while let Some(TokenTree::Punct(p)) = toks.peek() {
            if p.as_char() == '#' {
                toks.next();
                toks.next();
            } else {
                break;
            }
        }
        let Some(tok) = toks.next() else { break };
        let variant = match tok {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("{item}: expected variant name, found {other:?}")),
        };
        // Only unit variants (optionally `= discriminant`) are supported.
        match toks.next() {
            None => {
                variants.push(variant);
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => variants.push(variant),
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Consume the discriminant expression up to the comma.
                for t in toks.by_ref() {
                    if let TokenTree::Punct(p) = &t {
                        if p.as_char() == ',' {
                            break;
                        }
                    }
                }
                variants.push(variant);
            }
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "serde stub derive: `{item}::{variant}` carries data; \
                     only unit variants are supported"
                ))
            }
            other => return Err(format!("{item}::{variant}: unexpected token {other:?}")),
        }
    }
    if variants.is_empty() {
        return Err(format!("serde stub derive: `{item}` has no variants"));
    }
    Ok(variants)
}
