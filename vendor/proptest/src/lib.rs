//! Offline stand-in for `proptest`.
//!
//! Same test-authoring surface as the subset of real proptest this
//! workspace uses — `proptest! { fn t(x in strategy) { .. } }`,
//! `prop_assert!`/`prop_assert_eq!`, `any::<T>()`, integer/float range
//! strategies, tuple strategies, `Strategy::prop_map`, and
//! `prop::collection::vec` — but with a simpler engine: each test runs a
//! fixed number of deterministic random cases (seeded from the test
//! name, overridable via `PROPTEST_CASES`) and reports the first failing
//! input without shrinking.

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Deterministic per-test random source.
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    fn for_case(test_name: &str, case: u64) -> TestRng {
        // FNV-1a over the test name keeps seeds stable across runs and
        // platforms, so failures reproduce.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: SmallRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    fn below(&mut self, n: u64) -> u64 {
        self.inner.gen_range(0..n)
    }

    fn bits(&mut self) -> u64 {
        self.inner.gen_range(0..=u64::MAX)
    }
}

/// A failed property: carries the assertion message.
#[derive(Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Build a failure from a message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError { msg: msg.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The generated input type.
    type Value: fmt::Debug;

    /// Draw one input.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated inputs.
    fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical full-range strategy ([`any`]).
pub trait Arbitrary: Sized + fmt::Debug {
    /// Draw a fully random value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.bits() as $t
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.bits() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.bits() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

// Unsigned only: every range strategy in this workspace has non-negative
// bounds, and unsigned-only keeps the span arithmetic overflow-free.
range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($(($($t:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($t,)+) = self;
                ($($t.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Collection strategies (`prop::collection::*`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt;
    use std::ops::{Range, RangeInclusive};

    /// Bounds on a generated collection's length.
    pub trait SizeRange {
        /// Draw a length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            Strategy::sample(self, rng)
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            Strategy::sample(self, rng)
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// `Vec` strategy: each element from `element`, length from `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R>
    where
        S::Value: fmt::Debug,
    {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample_len(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Number of cases each property runs (env `PROPTEST_CASES`, default 64).
fn case_count() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
}

/// Drive one property across its random cases. Called by the
/// [`proptest!`] expansion; panics (failing the surrounding `#[test]`)
/// on the first case whose body returns an error.
pub fn run_cases<F>(test_name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let n = case_count();
    for i in 0..n {
        let mut rng = TestRng::for_case(test_name, i);
        if let Err(e) = case(&mut rng) {
            panic!(
                "proptest `{test_name}` failed at case {i}/{n}: {e}\n\
                 (cases are deterministic: the same test name and case \
                 index regenerate the same input)"
            );
        }
    }
}

/// Define property tests: `proptest! { #[test] fn t(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(::std::stringify!($name), |__proptest_rng| {
                    $(let $arg = $crate::Strategy::sample(&($strat), __proptest_rng);)+
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                });
            }
        )*
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", ::std::stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    ::std::stringify!($left),
                    ::std::stringify!($right),
                    __l,
                    __r
                );
            }
        }
    };
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l != *__r,
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    ::std::stringify!($left),
                    ::std::stringify!($right),
                    __l
                );
            }
        }
    };
}

/// The names tests import: `use proptest::prelude::*;`.
pub mod prelude {
    /// Alias so `prop::collection::vec(..)` resolves, as with real
    /// proptest's prelude.
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u64..10, y in 2u32..=5, z in any::<u16>()) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((2..=5).contains(&y));
            let _ = z;
        }

        #[test]
        fn vec_lengths_respect_bounds(v in prop::collection::vec(any::<bool>(), 1..40)) {
            prop_assert!(!v.is_empty() && v.len() < 40);
        }

        #[test]
        fn map_applies(v in (0u64..8).prop_map(|x| x * 64)) {
            prop_assert_eq!(v % 64, 0);
            prop_assert!(v < 512);
        }
    }

    #[test]
    fn failure_reports_case() {
        let r = std::panic::catch_unwind(|| {
            crate::run_cases("always_fails", |_| Err(TestCaseError::fail("nope")));
        });
        assert!(r.is_err());
    }

    #[test]
    fn deterministic_across_runs() {
        let mut first = Vec::new();
        crate::run_cases("det", |rng| {
            first.push(crate::Strategy::sample(&(0u64..1000), rng));
            Ok(())
        });
        let mut second = Vec::new();
        crate::run_cases("det", |rng| {
            second.push(crate::Strategy::sample(&(0u64..1000), rng));
            Ok(())
        });
        assert_eq!(first, second);
    }
}
