//! Offline stand-in for `serde_json`.
//!
//! Renders and parses JSON over the vendored `serde` stub's [`Value`]
//! tree. Covers the API surface this workspace uses: [`to_writer`],
//! [`from_reader`], [`to_string`], [`to_string_pretty`], [`from_str`],
//! [`from_slice`], the [`json!`] macro (object/array/expression forms),
//! and an [`Error`] convertible from I/O and shape errors.

#![forbid(unsafe_code)]

use serde::{DeError, Deserialize, Serialize};
use std::fmt;
use std::io::{Read, Write};

pub use serde::Value;

/// Serialization/deserialization failure.
#[derive(Debug)]
pub enum Error {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// JSON text that does not parse, with a byte offset.
    Syntax {
        /// Human-readable description.
        msg: String,
        /// Byte offset where parsing failed.
        offset: usize,
    },
    /// Parsed JSON whose shape does not match the target type.
    Shape(DeError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "io error: {e}"),
            Error::Syntax { msg, offset } => write!(f, "syntax error at byte {offset}: {msg}"),
            Error::Shape(e) => write!(f, "shape error: {e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Error {
        Error::Io(e)
    }
}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error::Shape(e)
    }
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(render_compact(&value.to_value()))
}

/// Pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render_pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

/// Write compact JSON to `w`.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut w: W, value: &T) -> Result<(), Error> {
    w.write_all(render_compact(&value.to_value()).as_bytes())?;
    Ok(())
}

/// Parse a value from a reader.
pub fn from_reader<R: Read, T: Deserialize>(mut r: R) -> Result<T, Error> {
    let mut buf = String::new();
    r.read_to_string(&mut buf)?;
    from_str(&buf)
}

/// Parse a value from a string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

/// Parse a value from bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::Syntax {
        msg: format!("invalid UTF-8: {e}"),
        offset: e.valid_up_to(),
    })?;
    from_str(s)
}

/// Build a [`Value`] with JSON-literal syntax.
///
/// Supports the forms this workspace uses: `json!(null)`, object
/// literals with string-literal keys and expression values, and array
/// literals of expressions. Expression values go through
/// [`serde::Serialize`].
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(::std::vec![
            $((::std::string::String::from($key), $crate::to_value(&$val)),)*
        ])
    };
    ([ $($val:expr),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![$($crate::to_value(&$val),)*])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

// ---- rendering ----
//
// Compact rendering lives on `serde::Value`'s `Display` impl (so
// `println!("{}", json!(..))` works); this module adds the pretty
// printer on top.

fn render_compact(v: &Value) -> String {
    v.to_string()
}

fn render_string(s: &str, out: &mut String) {
    out.push_str(&Value::Str(s.to_owned()).to_string());
}

fn render_pretty(v: &Value, depth: usize, out: &mut String) {
    let pad = |n: usize, out: &mut String| {
        for _ in 0..n {
            out.push_str("  ");
        }
    };
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                pad(depth + 1, out);
                render_pretty(item, depth + 1, out);
            }
            out.push('\n');
            pad(depth, out);
            out.push(']');
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                pad(depth + 1, out);
                render_string(k, out);
                out.push_str(": ");
                render_pretty(val, depth + 1, out);
            }
            out.push('\n');
            pad(depth, out);
            out.push('}');
        }
        other => out.push_str(&other.to_string()),
    }
}

// ---- parsing ----

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> Error {
        Error::Syntax {
            msg: msg.into(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Value::Null),
            Some(b't') => self.eat_lit("true", Value::Bool(true)),
            Some(b'f') => self.eat_lit("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected `{}`", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are unsupported (this stub
                            // never emits them); map them to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("empty input"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| self.err(format!("bad number `{text}`: {e}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|e| self.err(format!("bad number `{text}`: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|e| self.err(format!("bad number `{text}`: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for text in ["null", "true", "false", "42", "-7", "1.5", "\"hi\\n\""] {
            let v: Value = from_str(text).unwrap();
            let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
            assert_eq!(v, back, "{text}");
        }
    }

    #[test]
    fn roundtrip_nested() {
        let text = r#"{"a":[1,2,{"b":null}],"c":"x","d":-2.5}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(to_string(&v).unwrap(), text);
        assert_eq!(v.get("c"), Some(&Value::Str("x".into())));
    }

    #[test]
    fn pretty_has_indentation() {
        let v = json!({"k": 1u64, "arr": [1u64, 2u64]});
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"k\": 1"));
    }

    #[test]
    fn json_macro_object() {
        let v = json!({"name": "lru", "misses": 3u64});
        assert_eq!(v.get("name"), Some(&Value::Str("lru".into())));
        assert_eq!(v.get("misses"), Some(&Value::UInt(3)));
    }

    #[test]
    fn syntax_errors_have_offsets() {
        let e = from_str::<Value>("[1, ").unwrap_err();
        assert!(matches!(e, Error::Syntax { .. }), "{e}");
    }
}
