//! Facade crate for the GHRP reproduction workspace.
//!
//! Re-exports the public APIs of every workspace crate so examples and
//! integration tests can depend on a single crate. See the individual
//! crates for detailed documentation:
//!
//! * [`trace`] — branch trace format, synthetic workloads, fetch streams.
//! * [`cache`] — set-associative cache framework and baseline policies.
//! * [`ghrp`] — Global History Reuse Prediction (the paper's contribution).
//! * [`sdbp`] — modified Sampling Dead Block Prediction.
//! * [`btb`] — branch target buffer models.
//! * [`branch`] — branch direction predictors (hashed perceptron et al.).
//! * [`frontend`] — the trace-driven front-end simulator and experiment
//!   harness.

#![forbid(unsafe_code)]

pub use fe_branch as branch;
pub use fe_btb as btb;
pub use fe_cache as cache;
pub use fe_frontend as frontend;
pub use fe_sdbp as sdbp;
pub use fe_trace as trace;
pub use ghrp_core as ghrp;
