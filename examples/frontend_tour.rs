//! A guided tour of the decoupled front end: drive the I-cache, BTB and
//! GHRP by hand (without the `Simulator` convenience wrapper), inspect
//! GHRP's internal diagnostics, and render a cache-efficiency heat map.
//!
//! ```sh
//! cargo run --release --example frontend_tour
//! ```

#![forbid(unsafe_code)]

use ghrp_repro::btb::{btb_config, Btb, GhrpBtbPolicy};
use ghrp_repro::cache::{Cache, CacheConfig};
use ghrp_repro::ghrp::{GhrpConfig, GhrpPolicy, SharedGhrp, StorageReport};
use ghrp_repro::trace::fetch::FetchStream;
use ghrp_repro::trace::synth::{WorkloadCategory, WorkloadSpec};

fn main() {
    let trace = WorkloadSpec::new(WorkloadCategory::LongServer, 3)
        .instructions(1_500_000)
        .generate();

    // One shared GHRP instance serves both structures (§III.E).
    let icache_cfg = CacheConfig::with_capacity(16 * 1024, 8, 64).expect("geometry");
    let btb_cfg = btb_config(1024, 4).expect("geometry");
    let shared = SharedGhrp::new(GhrpConfig::default(), icache_cfg.offset_bits());
    let mut icache = Cache::new(icache_cfg, GhrpPolicy::new(icache_cfg, shared.clone()));
    let mut btb = Btb::new(
        btb_cfg,
        GhrpBtbPolicy::new(btb_cfg, shared.clone(), icache_cfg.block_bytes()),
    );
    icache.enable_efficiency_tracking();

    // Drive the fetch stream by hand: one I-cache access per fetch group,
    // one BTB update per taken branch.
    let mut stream = FetchStream::new(trace.records.iter().copied(), icache_cfg.block_bytes());
    for chunk in stream.by_ref() {
        if chunk.starts_group {
            icache.access(chunk.block_addr, chunk.first_pc);
        }
        if let Some(branch) = chunk.branch {
            if branch.taken {
                btb.lookup_and_update(branch.pc, branch.target);
            }
        }
    }
    let instructions = stream.instructions();

    let ic = icache.stats();
    println!("I-cache ({icache_cfg}):");
    println!(
        "  {} accesses, {} misses ({:.3} MPKI), {} bypassed",
        ic.accesses,
        ic.misses,
        ic.misses as f64 * 1000.0 / instructions as f64,
        ic.bypasses
    );
    let g = icache.policy().stats();
    println!(
        "  GHRP victims: {} by dead prediction, {} by LRU fallback",
        g.dead_victims, g.lru_victims
    );
    println!(
        "  predictor health: {} false-dead hits, {} unpredicted deaths, {:.1}% counters saturated",
        g.false_dead_hits,
        g.unpredicted_deaths,
        shared.table_saturation() * 100.0
    );

    let bs = btb.stats();
    println!("\nBTB (1K entries, 4-way):");
    println!(
        "  {} taken-branch lookups, {} misses ({:.3} MPKI), {} retargets",
        bs.lookups,
        bs.misses,
        bs.misses as f64 * 1000.0 / instructions as f64,
        bs.target_mismatches
    );

    let map = icache.finish_efficiency().expect("tracking enabled");
    println!(
        "\nI-cache efficiency heat map (mean {:.3}; rows = sets, darker = deader):",
        map.mean()
    );
    print!("{}", map.to_ascii());

    let report = StorageReport::new(&shared.config(), icache_cfg, 1024);
    println!(
        "GHRP storage for this configuration: {:.2} KiB",
        report.total_kib()
    );
}
