//! Quickstart: generate a synthetic server workload, run it through the
//! front-end simulator under LRU and GHRP, and compare MPKIs.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

#![forbid(unsafe_code)]

use ghrp_repro::frontend::{policy::PolicyKind, simulator::SimConfig, Simulator};
use ghrp_repro::trace::synth::{WorkloadCategory, WorkloadSpec};

fn main() {
    // 1. Describe a workload: a SHORT-SERVER trace of two million
    //    instructions, fully determined by its seed.
    let spec = WorkloadSpec::new(WorkloadCategory::ShortServer, 42).instructions(2_000_000);
    let trace = spec.generate();
    println!(
        "workload {}: {} branch records, {} instructions, {} KB of code",
        trace.name(),
        trace.records.len(),
        trace.instructions,
        trace.code_bytes / 1024
    );

    // 2. Simulate the paper's front end: 64 KB 8-way I-cache, 4K-entry
    //    4-way BTB, hashed-perceptron direction predictor.
    let base = SimConfig::paper_default();
    for policy in [PolicyKind::Lru, PolicyKind::Srrip, PolicyKind::Ghrp] {
        let sim = Simulator::new(base.with_policy(policy));
        let r = sim.run(&trace.records, trace.instructions);
        println!(
            "{policy:<6} icache {:.3} MPKI | btb {:.3} MPKI | branch predictor {:.2} MPKI",
            r.icache_mpki(),
            r.btb_mpki(),
            r.branch_mpki()
        );
    }
    println!("\nAcross a full suite GHRP gives the lowest average I-cache and BTB MPKI\n(single traces vary; see `cargo run -p fe-bench --bin headline`).");
}
