//! Exploring the synthetic CBP-5-style workload suite.
//!
//! Generates one workload per category, prints its descriptive statistics
//! (branch mix, footprint, taken rate), measures branch-predictor
//! difficulty, and demonstrates the binary trace format round-trip.
//!
//! ```sh
//! cargo run --release --example workload_explorer
//! ```

#![forbid(unsafe_code)]

use ghrp_repro::branch::{Bimodal, DirectionPredictor, Gshare, HashedPerceptron, PredictorStats};
use ghrp_repro::trace::io;
use ghrp_repro::trace::synth::{WorkloadCategory, WorkloadSpec};
use ghrp_repro::trace::{BranchKind, TraceStats};

fn main() {
    for (i, category) in WorkloadCategory::ALL.into_iter().enumerate() {
        let spec = WorkloadSpec::new(category, 11 + i as u64).instructions(1_000_000);
        let trace = spec.generate();
        let stats = TraceStats::compute(&trace.records);
        println!("== {} ==", trace.name());
        println!(
            "  {} branches over {} instructions ({:.1} instructions/branch)",
            stats.branches,
            stats.instructions,
            stats.instructions as f64 / stats.branches as f64
        );
        println!(
            "  static code {} KB, dynamic footprint {} KB, {} branch sites",
            trace.code_bytes / 1024,
            stats.footprint_bytes() / 1024,
            stats.distinct_branch_pcs
        );
        print!("  branch mix:");
        for k in BranchKind::ALL {
            let n = stats.by_kind[k.index()];
            if n > 0 {
                print!(" {k}={:.1}%", n as f64 / stats.branches as f64 * 100.0);
            }
        }
        println!();
        println!(
            "  conditional taken rate {:.1}%",
            stats.cond_taken_rate * 100.0
        );

        // How hard is this workload for direction predictors?
        let mut bimodal = Bimodal::default();
        let mut gshare = Gshare::default();
        let mut perceptron = HashedPerceptron::default();
        let mut s_b = PredictorStats::default();
        let mut s_g = PredictorStats::default();
        let mut s_p = PredictorStats::default();
        for r in trace.records.iter().filter(|r| r.kind.is_conditional()) {
            s_b.record(bimodal.predict(r.pc) == r.taken);
            bimodal.update(r.pc, r.taken);
            s_g.record(gshare.predict(r.pc) == r.taken);
            gshare.update(r.pc, r.taken);
            s_p.record(perceptron.predict(r.pc) == r.taken);
            perceptron.update(r.pc, r.taken);
        }
        println!(
            "  direction accuracy: bimodal {:.2}%  gshare {:.2}%  hashed-perceptron {:.2}%",
            s_b.accuracy() * 100.0,
            s_g.accuracy() * 100.0,
            s_p.accuracy() * 100.0
        );

        // Round-trip through the binary trace format.
        let mut buf = Vec::new();
        io::write_binary(&mut buf, &trace.records).expect("serialize");
        let back = io::read_binary(buf.as_slice()).expect("deserialize");
        assert_eq!(back, trace.records);
        println!(
            "  binary trace: {} bytes ({:.1} bytes/record), round-trips exactly\n",
            buf.len(),
            buf.len() as f64 / trace.records.len() as f64
        );
    }
}
