//! Implementing your own replacement policy.
//!
//! The `fe-cache` framework accepts any type implementing
//! [`ReplacementPolicy`]. This example implements **tree-PLRU** (the
//! binary-tree pseudo-LRU approximation most real L1 caches use) from
//! scratch and races it against true LRU and GHRP on a server workload.
//!
//! ```sh
//! cargo run --release --example custom_policy
//! ```

#![forbid(unsafe_code)]

use ghrp_repro::cache::{AccessContext, Cache, CacheConfig, ReplacementPolicy};
use ghrp_repro::ghrp::{GhrpConfig, GhrpPolicy, SharedGhrp};
use ghrp_repro::trace::fetch::FetchStream;
use ghrp_repro::trace::synth::{WorkloadCategory, WorkloadSpec};

/// Binary-tree pseudo-LRU: `ways - 1` direction bits per set arranged as
/// a complete binary tree. A touch flips the bits along the block's path
/// to point *away* from it; the victim walk follows the bits.
struct TreePlru {
    ways: usize,
    /// `sets × (ways - 1)` tree bits; `false` = left subtree is older.
    bits: Vec<bool>,
}

impl TreePlru {
    fn new(cfg: CacheConfig) -> TreePlru {
        assert!(cfg.ways().is_power_of_two() && cfg.ways() >= 2);
        TreePlru {
            ways: cfg.ways() as usize,
            bits: vec![false; cfg.sets() as usize * (cfg.ways() as usize - 1)],
        }
    }

    fn touch(&mut self, set: usize, way: usize) {
        let base = set * (self.ways - 1);
        let mut node = 0usize; // tree index, root = 0
        let mut lo = 0usize;
        let mut hi = self.ways;
        while hi - lo > 1 {
            let mid = usize::midpoint(lo, hi);
            let right = way >= mid;
            // Point away from the touched side.
            self.bits[base + node] = !right;
            node = 2 * node + if right { 2 } else { 1 };
            if right {
                lo = mid;
            } else {
                hi = mid;
            }
        }
    }
}

impl ReplacementPolicy for TreePlru {
    fn on_hit(&mut self, way: usize, ctx: &AccessContext) {
        self.touch(ctx.set, way);
    }

    fn choose_victim(&mut self, ctx: &AccessContext) -> usize {
        let base = ctx.set * (self.ways - 1);
        let mut node = 0usize;
        let mut lo = 0usize;
        let mut hi = self.ways;
        while hi - lo > 1 {
            let mid = usize::midpoint(lo, hi);
            let right = self.bits[base + node];
            node = 2 * node + if right { 2 } else { 1 };
            if right {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }

    fn on_evict(&mut self, _way: usize, _victim: u64, _ctx: &AccessContext) {}

    fn on_fill(&mut self, way: usize, ctx: &AccessContext) {
        self.touch(ctx.set, way);
    }

    fn reset(&mut self) {
        self.bits.fill(false);
    }

    fn name(&self) -> String {
        "tree-PLRU".to_owned()
    }
}

fn run<P: ReplacementPolicy>(
    mut cache: Cache<P>,
    trace: &[ghrp_repro::trace::BranchRecord],
) -> f64 {
    // Warm over the first half (predictive policies need training time),
    // measure over the second, like the paper's methodology.
    let half = trace.len() / 2;
    let mut stream = FetchStream::new(trace.iter().copied(), 64);
    let mut seen = 0usize;
    let mut measured_start = 0u64;
    while let Some(chunk) = stream.next() {
        if chunk.starts_group {
            cache.access(chunk.block_addr, chunk.first_pc);
        }
        if chunk.branch.is_some() {
            seen += 1;
            if seen == half {
                cache.reset_stats();
                measured_start = stream.instructions();
            }
        }
    }
    cache.stats().misses as f64 * 1000.0 / (stream.instructions() - measured_start) as f64
}

fn main() {
    let trace = WorkloadSpec::new(WorkloadCategory::ShortServer, 7)
        .instructions(2_000_000)
        .generate();
    let cfg = CacheConfig::with_capacity(64 * 1024, 8, 64).expect("paper geometry");

    let lru = run(
        Cache::new(cfg, ghrp_repro::cache::policy::Lru::new(cfg)),
        &trace.records,
    );
    let plru = run(Cache::new(cfg, TreePlru::new(cfg)), &trace.records);
    let shared = SharedGhrp::new(GhrpConfig::default(), cfg.offset_bits());
    let ghrp = run(
        Cache::new(cfg, GhrpPolicy::new(cfg, shared)),
        &trace.records,
    );

    println!(
        "64KB 8-way I-cache on {} ({} instructions):",
        trace.name(),
        trace.instructions
    );
    println!("  true LRU   {lru:.3} MPKI");
    println!("  tree-PLRU  {plru:.3} MPKI  (the cheap hardware approximation)");
    println!("  GHRP       {ghrp:.3} MPKI  (predictive replacement)");
}
