//! GHRP as an I-cache replacement policy (Algorithm 1 of the paper).

#![forbid(unsafe_code)]

use crate::shared::SharedGhrp;
use fe_cache::{AccessContext, CacheConfig, ReplacementPolicy};
use serde::{Deserialize, Serialize};

/// Diagnostic counters for a GHRP policy instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GhrpPolicyStats {
    /// Victims chosen because they were predicted dead.
    pub dead_victims: u64,
    /// Victims chosen by LRU fallback (no dead block in the set).
    pub lru_victims: u64,
    /// Misses bypassed by prediction.
    pub bypasses: u64,
    /// Hits to blocks whose prediction bit said dead (false-dead
    /// predictions that did not yet cost a miss).
    pub false_dead_hits: u64,
    /// Evictions of blocks whose prediction bit said live (deaths the
    /// predictor missed — lost coverage).
    pub unpredicted_deaths: u64,
}

/// GHRP replacement + bypass for the instruction cache.
///
/// Implements the access protocol of [`ReplacementPolicy`] following
/// Algorithm 1:
///
/// * every access computes the current signature and advances the shared
///   speculative path history;
/// * hits decrement the counters under the block's old signature, then
///   re-tag the block with the current signature and a fresh prediction;
/// * misses may bypass; otherwise the victim is the first predicted-dead
///   block, else the LRU block; the victim's stored signature trains the
///   tables dead; the incoming block is tagged with the current signature.
///
/// With [`crate::GhrpConfig::shadow_training`] enabled (the default), the
/// train-on-hit/train-on-evict events come from a shadow LRU tag array of
/// the same geometry rather than from the policy's own decisions, which
/// keeps the learned label a stable "dead under LRU" (see the config
/// field's documentation for the rationale).
#[derive(Debug, Clone)]
// The bools are hot-path caches of independent GhrpConfig flags, not state.
#[allow(clippy::struct_excessive_bools)]
pub struct GhrpPolicy {
    shared: SharedGhrp,
    ways: usize,
    /// LRU stamps per frame (the paper's 3 LRU-stack bits, implemented as
    /// exact timestamps).
    stamps: Vec<u64>,
    clock: u64,
    /// Which block occupies each frame (policy-side mirror of the tag
    /// array, needed to read victim metadata during victim selection).
    frame_block: Vec<Option<u64>>,
    /// Signature of the in-flight access, computed in `on_access`.
    current_sig: u16,
    /// Shadow LRU tag array used for decoupled training.
    shadow_block: Vec<Option<u64>>,
    shadow_sig: Vec<u16>,
    shadow_stamps: Vec<u64>,
    shadow_training: bool,
    // Immutable-after-construction config flags, cached out of the shared
    // state so the hot path skips a borrow + config copy per query.
    enable_bypass: bool,
    protect_mru: bool,
    prefer_young_dead: bool,
    fresh_victim_prediction: bool,
    stats: GhrpPolicyStats,
}

impl GhrpPolicy {
    /// Create a GHRP policy for a cache with geometry `cfg`, backed by the
    /// `shared` predictor (which the BTB may also hold).
    pub fn new(cfg: CacheConfig, shared: SharedGhrp) -> GhrpPolicy {
        let gcfg = shared.config();
        let shadow_training = gcfg.shadow_training;
        GhrpPolicy {
            shared,
            ways: cfg.ways() as usize,
            stamps: vec![0; cfg.frames()],
            clock: 0,
            frame_block: vec![None; cfg.frames()],
            current_sig: 0,
            shadow_block: vec![None; if shadow_training { cfg.frames() } else { 0 }],
            shadow_sig: vec![0; if shadow_training { cfg.frames() } else { 0 }],
            shadow_stamps: vec![0; if shadow_training { cfg.frames() } else { 0 }],
            shadow_training,
            enable_bypass: gcfg.enable_bypass,
            protect_mru: gcfg.protect_mru,
            prefer_young_dead: gcfg.prefer_young_dead,
            fresh_victim_prediction: gcfg.fresh_victim_prediction,
            stats: GhrpPolicyStats::default(),
        }
    }

    /// Handle to the shared predictor.
    pub fn shared(&self) -> &SharedGhrp {
        &self.shared
    }

    /// Diagnostic counters.
    pub fn stats(&self) -> GhrpPolicyStats {
        self.stats
    }

    fn touch(&mut self, set: usize, way: usize) {
        self.clock += 1;
        self.stamps[set * self.ways + way] = self.clock;
    }

    /// Drive the shadow LRU array for one access: its hits and evictions
    /// are the (policy-independent) training events.
    fn shadow_access(&mut self, ctx: &AccessContext) {
        let base = ctx.set * self.ways;
        self.clock += 1;
        for w in 0..self.ways {
            if self.shadow_block[base + w] == Some(ctx.block_addr) {
                // Shadow hit: the previous signature led to a reuse.
                self.shared.train(self.shadow_sig[base + w], false);
                self.shadow_sig[base + w] = self.current_sig;
                self.shadow_stamps[base + w] = self.clock;
                return;
            }
        }
        // Shadow miss: evict shadow-LRU, training its signature dead.
        let victim = (0..self.ways)
            .min_by_key(|&w| {
                (
                    self.shadow_block[base + w].is_some(),
                    self.shadow_stamps[base + w],
                )
            })
            .unwrap_or(0); // ways >= 1 by construction; hot path stays panic-free
        if self.shadow_block[base + victim].is_some() {
            self.shared.train(self.shadow_sig[base + victim], true);
        }
        self.shadow_block[base + victim] = Some(ctx.block_addr);
        self.shadow_sig[base + victim] = self.current_sig;
        self.shadow_stamps[base + victim] = self.clock;
    }
}

impl ReplacementPolicy for GhrpPolicy {
    fn on_access(&mut self, ctx: &AccessContext) {
        // Signature first (from the history *excluding* this access), then
        // advance the speculative history with this access — one shared
        // borrow via the combined hot-path entry.
        self.current_sig = self.shared.access_signature(ctx.block_addr);
        if self.shadow_training {
            self.shadow_access(ctx);
        }
    }

    fn on_hit(&mut self, way: usize, ctx: &AccessContext) {
        // The block proved live under the conditions of its previous
        // access (Algorithm 1 lines 21–25). With shadow training the
        // equivalent event was already recorded by the shadow array, so
        // the old signature trains live only in direct-training mode.
        // Re-tag with the current signature and a fresh prediction bit.
        let old = self
            .shared
            .rehit_meta(ctx.block_addr, self.current_sig, !self.shadow_training);
        if old.is_some_and(|o| o.predicted_dead) {
            self.stats.false_dead_hits += 1;
        }
        self.touch(ctx.set, way);
    }

    fn should_bypass(&mut self, _ctx: &AccessContext) -> bool {
        if !self.enable_bypass {
            return false;
        }
        let bypass = self.shared.predict_bypass(self.current_sig);
        if bypass {
            self.stats.bypasses += 1;
        }
        bypass
    }

    fn choose_victim(&mut self, ctx: &AccessContext) -> usize {
        let base = ctx.set * self.ways;
        // Algorithm 5: first predicted-dead block, else LRU. Optionally
        // exempt the MRU way (see `GhrpConfig::protect_mru`).
        let mru = (0..self.ways)
            .max_by_key(|&w| self.stamps[base + w])
            .unwrap_or(0); // ways >= 1 by construction; hot path stays panic-free
        let mut best: Option<(u64, usize)> = None;
        for w in 0..self.ways {
            if self.protect_mru && w == mru {
                continue;
            }
            if let Some(block) = self.frame_block[base + w] {
                let dead = self
                    .shared
                    .victim_is_dead(block, self.fresh_victim_prediction);
                if dead {
                    if !self.prefer_young_dead {
                        self.stats.dead_victims += 1;
                        return w;
                    }
                    let stamp = self.stamps[base + w];
                    if best.is_none_or(|(s, _)| stamp > s) {
                        best = Some((stamp, w));
                    }
                }
            }
        }
        if let Some((_, w)) = best {
            self.stats.dead_victims += 1;
            return w;
        }
        self.stats.lru_victims += 1;
        (0..self.ways)
            .min_by_key(|&w| self.stamps[base + w])
            .unwrap_or(0) // ways >= 1 by construction; hot path stays panic-free
    }

    fn on_evict(&mut self, way: usize, victim_block: u64, ctx: &AccessContext) {
        // The victim just proved dead (Algorithm 1 lines 15–17, Algorithm
        // 6). With shadow training the dead label instead comes from the
        // shadow array's own eviction of this block, so the signature
        // trains dead only in direct-training mode.
        let meta = self.shared.evict_meta(victim_block, !self.shadow_training);
        if meta.is_some_and(|m| !m.predicted_dead) {
            self.stats.unpredicted_deaths += 1;
        }
        self.frame_block[ctx.set * self.ways + way] = None;
    }

    fn on_fill(&mut self, way: usize, ctx: &AccessContext) {
        self.shared.fill_meta(ctx.block_addr, self.current_sig);
        self.frame_block[ctx.set * self.ways + way] = Some(ctx.block_addr);
        self.touch(ctx.set, way);
    }

    fn reset(&mut self) {
        // Private fields only; the pair's owner resets `SharedGhrp` once
        // so the shared tables are not cleared per policy.
        self.stamps.fill(0);
        self.clock = 0;
        self.frame_block.fill(None);
        self.current_sig = 0;
        self.shadow_block.fill(None);
        self.shadow_sig.fill(0);
        self.shadow_stamps.fill(0);
        self.stats = GhrpPolicyStats::default();
    }

    fn name(&self) -> String {
        "GHRP".to_owned()
    }
}

impl fe_cache::policy::PolicyInvariants for GhrpPolicy {
    fn check_invariants(&self) -> Result<(), String> {
        // Recency stamps (and the shadow array's, when enabled) must form
        // an LRU stack per set.
        fe_cache::policy::check_lru_stack(&self.stamps, self.ways, self.clock)?;
        if self.shadow_training {
            fe_cache::policy::check_lru_stack(&self.shadow_stamps, self.ways, self.clock)?;
        }
        // Every resident block must carry metadata in the shared store —
        // the BTB side reads predictions through it.
        for (frame, block) in self.frame_block.iter().enumerate() {
            if let Some(b) = block {
                if self.shared.meta(*b).is_none() {
                    return Err(format!(
                        "frame {frame}: resident block {b:#x} has no shared metadata"
                    ));
                }
            }
        }
        // Counter ranges, skewed-index bounds and exact misprediction
        // recovery (paper §III.F) live in the shared predictor.
        self.shared.check_invariants()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shared::BlockMeta;
    use crate::GhrpConfig;
    use fe_cache::Cache;

    fn mk(cfg_mod: impl FnOnce(&mut GhrpConfig)) -> (Cache<GhrpPolicy>, SharedGhrp) {
        let cache_cfg = CacheConfig::with_sets(4, 2, 64).unwrap();
        let mut gcfg = GhrpConfig::default();
        cfg_mod(&mut gcfg);
        let shared = SharedGhrp::new(gcfg, cache_cfg.offset_bits());
        let cache = Cache::new(cache_cfg, GhrpPolicy::new(cache_cfg, shared.clone()));
        (cache, shared)
    }

    #[test]
    fn behaves_like_lru_before_training() {
        let (mut c, _s) = mk(|c| c.enable_bypass = false);
        // Set 0 holds blocks 0x000 and 0x100 (4 sets × 64B).
        c.access(0x000, 0);
        c.access(0x100, 0);
        c.access(0x000, 0); // MRU
        let r = c.access(0x200, 0);
        assert_eq!(
            r,
            fe_cache::AccessResult::Miss {
                evicted: Some(0x100)
            }
        );
    }

    #[test]
    fn metadata_tracks_residency() {
        let (mut c, s) = mk(|c| c.enable_bypass = false);
        c.access(0x000, 0);
        assert!(s.meta(0x000).is_some());
        c.access(0x100, 0);
        c.access(0x200, 0); // evicts one of them
        let live = [0x000u64, 0x100, 0x200]
            .iter()
            .filter(|&&b| s.meta(b).is_some())
            .count();
        assert_eq!(live, 2);
        assert_eq!(s.meta_len(), 2);
    }

    #[test]
    fn eviction_trains_dead_and_reuse_trains_live() {
        let (mut c, s) = mk(|c| c.enable_bypass = false);
        for _ in 0..50 {
            for b in [0x000u64, 0x100, 0x200] {
                c.access(b, 0);
            }
        }
        assert!(
            s.table_saturation() > 0.0,
            "training must move some counters"
        );
    }

    #[test]
    fn direct_training_mode_trains_from_policy_events() {
        let (mut c, s) = mk(|c| {
            c.enable_bypass = false;
            c.shadow_training = false;
        });
        for _ in 0..50 {
            for b in [0x000u64, 0x100, 0x200] {
                c.access(b, 0);
            }
        }
        assert!(s.table_saturation() > 0.0);
    }

    #[test]
    fn dead_predicted_victim_preferred_over_lru() {
        let (mut c, s) = mk(|c| {
            c.enable_bypass = false;
            // Drive the decision from the stored prediction bits alone so
            // the test controls exactly which block is marked dead.
            c.protect_mru = false;
            c.shadow_training = false;
            c.fresh_victim_prediction = false;
        });
        c.access(0x000, 0);
        c.access(0x100, 0);
        // Mark the MRU block (0x100) dead via its stored prediction bit.
        let meta = s.meta(0x100).unwrap();
        s.set_meta(
            0x100,
            BlockMeta {
                signature: meta.signature,
                predicted_dead: true,
            },
        );
        // Miss: GHRP should evict predicted-dead 0x100, not LRU 0x000.
        let r = c.access(0x200, 0);
        assert_eq!(
            r,
            fe_cache::AccessResult::Miss {
                evicted: Some(0x100)
            }
        );
        assert_eq!(c.policy().stats().dead_victims, 1);
    }

    #[test]
    fn mru_protection_exempts_most_recent_way() {
        let (mut c, s) = mk(|c| {
            c.enable_bypass = false;
            c.protect_mru = true;
        });
        c.access(0x000, 0);
        c.access(0x100, 0); // 0x100 is MRU
                            // Mark MRU 0x100 dead; with protection the victim must be LRU
                            // 0x000 instead.
        let meta = s.meta(0x100).unwrap();
        s.set_meta(
            0x100,
            BlockMeta {
                signature: meta.signature,
                predicted_dead: true,
            },
        );
        let r = c.access(0x200, 0);
        assert_eq!(
            r,
            fe_cache::AccessResult::Miss {
                evicted: Some(0x000)
            }
        );
    }

    #[test]
    fn bypass_skips_fill_after_saturation() {
        let (mut c, s) = mk(|c| c.enable_bypass = true);
        for _ in 0..300 {
            for b in [0x000u64, 0x100, 0x200, 0x300] {
                c.access(b, 0);
            }
        }
        let st = c.policy().stats();
        assert!(
            st.bypasses > 0,
            "cyclic thrash must eventually trigger bypasses (stats {st:?}, sat {})",
            s.table_saturation()
        );
    }

    #[test]
    fn bypass_disabled_never_bypasses() {
        let (mut c, _s) = mk(|c| c.enable_bypass = false);
        for i in 0..500u64 {
            c.access((i % 5) * 0x100, 0);
        }
        assert_eq!(c.policy().stats().bypasses, 0);
        assert_eq!(c.stats().bypasses, 0);
    }

    #[test]
    fn ghrp_beats_lru_on_predictable_streaming_mix() {
        // A hot block is reused every iteration; a stream of cold blocks
        // passes through the same set. Under LRU the stream evicts the hot
        // block; GHRP learns the stream's path signatures are dead and
        // protects the hot block.
        let cache_cfg = CacheConfig::with_sets(1, 2, 64).unwrap();
        let run_lru = {
            let mut c = Cache::new(cache_cfg, fe_cache::policy::Lru::new(cache_cfg));
            let mut miss = 0u64;
            for i in 0..3000u64 {
                if c.access(0x0, 0).is_miss() {
                    miss += 1;
                }
                let cold = 0x1000 + (i % 8) * 0x40;
                if c.access(cold, 0).is_miss() {
                    miss += 1;
                }
            }
            miss
        };
        let run_ghrp = {
            let shared = SharedGhrp::new(GhrpConfig::default(), cache_cfg.offset_bits());
            let mut c = Cache::new(cache_cfg, GhrpPolicy::new(cache_cfg, shared));
            let mut miss = 0u64;
            for i in 0..3000u64 {
                if c.access(0x0, 0).is_miss() {
                    miss += 1;
                }
                let cold = 0x1000 + (i % 8) * 0x40;
                if c.access(cold, 0).is_miss() {
                    miss += 1;
                }
            }
            miss
        };
        assert!(
            run_ghrp < run_lru,
            "GHRP misses {run_ghrp} should beat LRU misses {run_lru}"
        );
    }
}
