//! The skewed prediction tables and vote aggregation.
//!
//! Three tables of 4,096 two-bit saturating counters (by default), indexed
//! by distinct hashes of the signature. A counter is incremented when a
//! block carrying that signature is evicted dead (Algorithm 6, `isDead =
//! true`) and decremented when such a block is reused. Predictions
//! threshold each counter and combine per [`crate::Aggregation`]; the
//! paper finds **majority vote** superior to SDBP-style summation for
//! instruction streams because it tolerates single-table aliasing without
//! demanding a high (coverage-killing) threshold.

#![forbid(unsafe_code)]

use crate::config::{Aggregation, GhrpConfig};
use crate::signature::table_index;

/// The GHRP counter arrays.
#[derive(Debug, Clone)]
pub struct PredictionTables {
    counters: Vec<Vec<u8>>,
    index_bits: u32,
    counter_max: u8,
    aggregation: Aggregation,
    num_tables: usize,
}

impl PredictionTables {
    /// Allocate zeroed tables per `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`GhrpConfig::validate`].
    pub fn new(cfg: &GhrpConfig) -> PredictionTables {
        if let Err(e) = cfg.validate() {
            // lint:allow(panic-path): constructor-time config validation, documented `# Panics`; never on the per-access path
            panic!("invalid GhrpConfig: {e}");
        }
        PredictionTables {
            counters: vec![vec![0u8; cfg.table_entries]; cfg.num_tables],
            index_bits: cfg.index_bits(),
            counter_max: cfg.counter_max(),
            aggregation: cfg.aggregation,
            num_tables: cfg.num_tables,
        }
    }

    /// Number of tables.
    pub fn num_tables(&self) -> usize {
        self.num_tables
    }

    /// Read the counters a signature maps to (Algorithm 4, `GetCounters`).
    pub fn counters(&self, signature: u16) -> Vec<u8> {
        (0..self.num_tables)
            .map(|t| self.counters[t][table_index(signature, t, self.index_bits)])
            .collect()
    }

    /// Train the tables for `signature` (Algorithm 6): increment each
    /// counter when the block proved dead, decrement when it proved live.
    pub fn update(&mut self, signature: u16, is_dead: bool) {
        for t in 0..self.num_tables {
            let i = table_index(signature, t, self.index_bits);
            let c = &mut self.counters[t][i];
            if is_dead {
                *c = c.saturating_add(1).min(self.counter_max);
            } else {
                *c = c.saturating_sub(1);
            }
        }
    }

    /// Predict whether a block accessed under `signature` is dead, using
    /// the given per-counter threshold (Algorithm 3).
    ///
    /// Allocation-free: this runs several times per I-cache access in the
    /// simulator hot path (hit re-tag, fill, victim scan, BTB coupling),
    /// so the votes are folded inline rather than collected via
    /// [`PredictionTables::counters`].
    pub fn predict(&self, signature: u16, threshold: u8) -> bool {
        match self.aggregation {
            Aggregation::MajorityVote => {
                let dead = (0..self.num_tables)
                    .filter(|&t| {
                        self.counters[t][table_index(signature, t, self.index_bits)] >= threshold
                    })
                    .count();
                dead * 2 > self.num_tables
            }
            Aggregation::Sum => {
                let sum: u32 = (0..self.num_tables)
                    .map(|t| {
                        u32::from(self.counters[t][table_index(signature, t, self.index_bits)])
                    })
                    .sum();
                // Truncation-safe: GhrpConfig::validate caps num_tables
                // at 8.
                #[allow(clippy::cast_possible_truncation)]
                let tables = self.num_tables as u32;
                sum >= u32::from(threshold) * tables
            }
        }
    }

    /// Fraction of counters that are saturated at max — a diagnostic for
    /// table pressure.
    pub fn saturation(&self) -> f64 {
        let total: usize = self.counters.iter().map(Vec::len).sum();
        let sat: usize = self
            .counters
            .iter()
            .flatten()
            .filter(|&&c| c == self.counter_max)
            .count();
        sat as f64 / total as f64
    }

    /// Validate the table invariants: every table has exactly
    /// `2^index_bits` entries, every counter is within `[0, counter_max]`,
    /// and the skewed index hashes stay in bounds for representative
    /// signatures.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        let entries = 1usize << self.index_bits;
        for (t, table) in self.counters.iter().enumerate() {
            if table.len() != entries {
                return Err(format!(
                    "table {t}: {} entries, expected 2^{} = {entries}",
                    table.len(),
                    self.index_bits
                ));
            }
            if let Some(i) = table.iter().position(|&c| c > self.counter_max) {
                return Err(format!(
                    "table {t} counter {i}: value {} exceeds max {}",
                    table[i], self.counter_max
                ));
            }
        }
        // The skewed hashes must land inside the tables for any signature;
        // probe the corners and a couple of mixed patterns.
        for sig in [0u16, 1, 0x5555, 0xAAAA, u16::MAX] {
            for t in 0..self.num_tables {
                let i = table_index(sig, t, self.index_bits);
                if i >= entries {
                    return Err(format!(
                        "table {t}: index {i} for signature {sig:#06x} outside \
                         the {entries}-entry bound"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Reset all counters to zero.
    pub fn clear(&mut self) {
        for t in &mut self.counters {
            t.fill(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's nominal geometry (3 x 4096 x 2-bit), which these unit
    /// tests are written against.
    fn paper_cfg() -> GhrpConfig {
        GhrpConfig {
            table_entries: 4096,
            counter_bits: 2,
            dead_threshold: 2,
            bypass_threshold: 3,
            btb_dead_threshold: 3,
            ..GhrpConfig::default()
        }
    }

    fn tables() -> PredictionTables {
        PredictionTables::new(&paper_cfg())
    }

    #[test]
    fn fresh_tables_predict_live() {
        let t = tables();
        assert!(!t.predict(0x1234, 2));
        assert_eq!(t.counters(0x1234), vec![0, 0, 0]);
    }

    #[test]
    fn training_dead_flips_prediction() {
        let mut t = tables();
        t.update(0xBEEF, true);
        assert!(!t.predict(0xBEEF, 2), "one increment is not enough");
        t.update(0xBEEF, true);
        assert!(t.predict(0xBEEF, 2), "counters at 2 clear threshold 2");
    }

    #[test]
    fn training_live_undoes_dead() {
        let mut t = tables();
        for _ in 0..3 {
            t.update(0xBEEF, true);
        }
        assert!(t.predict(0xBEEF, 2));
        for _ in 0..2 {
            t.update(0xBEEF, false);
        }
        assert!(!t.predict(0xBEEF, 2));
    }

    #[test]
    fn counters_saturate_both_ends() {
        let mut t = tables();
        for _ in 0..10 {
            t.update(0x1, true);
        }
        assert_eq!(t.counters(0x1), vec![3, 3, 3]);
        for _ in 0..10 {
            t.update(0x1, false);
        }
        assert_eq!(t.counters(0x1), vec![0, 0, 0]);
    }

    #[test]
    fn majority_vote_tolerates_single_aliased_table() {
        let mut t = tables();
        // Saturate the signature everywhere, then drive *one* table's
        // counter down via direct manipulation to model aliasing.
        for _ in 0..3 {
            t.update(0x42, true);
        }
        let idx0 = table_index(0x42, 0, 12);
        t.counters[0][idx0] = 0;
        assert!(
            t.predict(0x42, 2),
            "2 of 3 tables above threshold still predicts dead"
        );
        // Two aliased tables defeat the vote.
        let idx1 = table_index(0x42, 1, 12);
        t.counters[1][idx1] = 0;
        assert!(!t.predict(0x42, 2));
    }

    #[test]
    fn sum_aggregation_differs_from_vote() {
        let mut cfg = paper_cfg();
        cfg.aggregation = Aggregation::Sum;
        let mut sum_t = PredictionTables::new(&cfg);
        let mut vote_t = tables();
        // One table saturated high, two at zero → sum = 3 < 2*3=6,
        // vote = 1 of 3.
        let sig = 0x7;
        for t in [&mut sum_t, &mut vote_t] {
            t.update(sig, true);
            t.update(sig, true);
        }
        // Both at [2,2,2]: sum 6 >= 6 → dead; vote 3of3 → dead.
        assert!(sum_t.predict(sig, 2));
        assert!(vote_t.predict(sig, 2));
        // Now knock one table to 0: sum 4 < 6 → live; vote 2of3 → dead.
        let i = table_index(sig, 2, 12);
        sum_t.counters[2][i] = 0;
        vote_t.counters[2][i] = 0;
        assert!(!sum_t.predict(sig, 2));
        assert!(vote_t.predict(sig, 2));
    }

    #[test]
    fn distinct_signatures_mostly_independent() {
        let mut t = tables();
        for _ in 0..3 {
            t.update(0x1111, true);
        }
        // An unrelated signature stays live.
        assert!(!t.predict(0x2222, 2));
    }

    #[test]
    fn clear_resets() {
        let mut t = tables();
        for _ in 0..3 {
            t.update(0x1, true);
        }
        assert!(t.saturation() > 0.0);
        t.clear();
        assert!(t.saturation().abs() < f64::EPSILON);
        assert!(!t.predict(0x1, 2));
    }

    #[test]
    #[should_panic(expected = "invalid GhrpConfig")]
    fn invalid_config_panics() {
        let cfg = GhrpConfig {
            table_entries: 1000,
            ..GhrpConfig::default()
        };
        let _ = PredictionTables::new(&cfg);
    }
}
