//! Signature construction and prediction-table index hashing.
//!
//! The signature is the XOR of the 16-bit path history with the (shifted)
//! PC of the access being predicted (Algorithm 2, line 4). The zero bits
//! interleaved in the history let some PC bits pass into the signature
//! unmodified, "yielding a useful hash of the history and PC".
//!
//! Each of the three prediction tables is indexed by a *distinct* hash of
//! the signature (Algorithm 2, line 7; the skewing mirrors SDBP's three
//! tables and fights aliasing).

#![forbid(unsafe_code)]

/// Compute the GHRP signature for an access.
///
/// `history` is the current (speculative) path history; `pc` must already
/// be shifted to the granularity the structure is indexed at (block
/// address bits for the I-cache, instruction address bits for the BTB).
///
/// ```
/// let sig = ghrp_core::signature::signature(0b1010, 0x1234, 16);
/// assert_eq!(sig, (0b1010 ^ 0x1234) & 0xFFFF);
/// ```
pub fn signature(history: u64, pc: u64, signature_bits: u32) -> u16 {
    let keep = if signature_bits >= 16 {
        0xFFFF
    } else {
        (1u64 << signature_bits) - 1
    };
    // Truncation-safe: masked to at most 16 bits on the previous line.
    #[allow(clippy::cast_possible_truncation)]
    let sig = ((history ^ pc) & keep) as u16;
    sig
}

/// Multiplicative-xorshift hashing constants, one per table. Odd constants
/// give a bijective multiply over `u32`; the xorshift folds high bits down.
const HASH_MULT: [u32; 8] = [
    0x9E37_79B9,
    0x85EB_CA6B,
    0xC2B2_AE35,
    0x27D4_EB2F,
    0x1656_67B1,
    0xB529_7A4D,
    0x68E3_1DA5,
    0x71D6_7FFF,
];

/// Hash `signature` into a `index_bits`-wide index for table `table`.
///
/// Distinct tables use distinct constants, producing decorrelated
/// ("skewed") indices so that aliasing in one table is voted down by the
/// other two.
///
/// # Panics
///
/// Panics if `table >= 8` or `index_bits` is 0 or > 31.
pub fn table_index(signature: u16, table: usize, index_bits: u32) -> usize {
    assert!(table < HASH_MULT.len(), "table {table} out of range");
    assert!(
        (1..=31).contains(&index_bits),
        "index_bits must be 1..=31, got {index_bits}"
    );
    let x = u32::from(signature).wrapping_mul(HASH_MULT[table]);
    let x = x ^ (x >> 15);
    // lint:allow(pow2-mask): multiplier pick from a small constant table, not a cache index
    let x = x.wrapping_mul(HASH_MULT[(table + 3) % HASH_MULT.len()]);
    let x = x ^ (x >> (32 - index_bits));
    fe_cache::index::mask(u64::from(x), 1usize << index_bits)
}

/// Compute all `num_tables` indices for a signature (Algorithm 4's
/// `ComputeIndices`).
pub fn compute_indices(signature: u16, num_tables: usize, index_bits: u32) -> Vec<usize> {
    (0..num_tables)
        .map(|t| table_index(signature, t, index_bits))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signature_is_xor_masked() {
        assert_eq!(signature(0xFFFF_FFFF, 0, 16), 0xFFFF);
        assert_eq!(signature(0xAAAA, 0x5555, 16), 0xFFFF);
        assert_eq!(signature(0x1_0000, 0, 16), 0, "only low 16 bits");
        assert_eq!(signature(0xFF, 0xFF, 16), 0);
    }

    #[test]
    fn narrower_signatures_mask_harder() {
        assert_eq!(signature(0xFFFF, 0, 8), 0xFF);
        assert_eq!(signature(0xFFFF, 0, 12), 0xFFF);
    }

    #[test]
    fn indices_fit_width() {
        for sig in [0u16, 1, 0xFFFF, 0x1234, 0xBEEF] {
            for t in 0..3 {
                let i = table_index(sig, t, 12);
                assert!(i < 4096);
            }
        }
    }

    #[test]
    fn tables_are_decorrelated() {
        // For a spread of signatures, the three tables should rarely agree
        // on the same index.
        let mut collisions = 0;
        let n = 4096u16;
        for s in 0..n {
            let i = compute_indices(s, 3, 12);
            if i[0] == i[1] || i[1] == i[2] || i[0] == i[2] {
                collisions += 1;
            }
        }
        // Random chance of any pairwise collision ≈ 3/4096 per signature.
        assert!(collisions < n / 100, "{collisions} collisions out of {n}");
    }

    #[test]
    fn index_distribution_is_roughly_uniform() {
        let mut histogram = vec![0u32; 4096];
        for s in 0..=u16::MAX {
            histogram[table_index(s, 0, 12)] += 1;
        }
        // 65,536 signatures over 4,096 buckets: mean 16 per bucket.
        let max = *histogram.iter().max().unwrap();
        let zero_buckets = histogram.iter().filter(|&&c| c == 0).count();
        assert!(max < 64, "worst bucket holds {max}");
        assert!(zero_buckets < 41, "{zero_buckets} empty buckets");
    }

    #[test]
    fn deterministic() {
        assert_eq!(table_index(0x1234, 1, 12), table_index(0x1234, 1, 12));
        assert_ne!(
            compute_indices(0x1234, 3, 12),
            compute_indices(0x1235, 3, 12)
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn too_many_tables_panics() {
        let _ = table_index(0, 8, 12);
    }
}
