//! Global path history with speculative/retired duals.
//!
//! Algorithm 2 of the paper: on every access the history shifts left by
//! four and the three lowest-order bits of the PC are inserted, followed by
//! one zero bit. The 16-bit register therefore records four prior accesses,
//! and the trailing zeros let PC bits pass through the signature XOR
//! unmodified.
//!
//! §III.F: to survive branch mispredictions, GHRP keeps **two** histories —
//! a speculative one advanced with the fetch stream and a non-speculative
//! one advanced at retirement. On a misprediction the speculative history
//! is restored from the retired one, exactly as branch predictors manage
//! speculative global history.

#![forbid(unsafe_code)]

use crate::GhrpConfig;

/// Dual (speculative + retired) path history register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpeculativeHistory {
    spec: u64,
    retired: u64,
    mask: u64,
    pc_bits: u32,
    pad_bits: u32,
}

impl SpeculativeHistory {
    /// Create an empty history pair configured per `cfg`.
    pub fn new(cfg: &GhrpConfig) -> SpeculativeHistory {
        SpeculativeHistory {
            spec: 0,
            retired: 0,
            mask: if cfg.history_bits == 64 {
                u64::MAX
            } else {
                (1u64 << cfg.history_bits) - 1
            },
            pc_bits: cfg.pc_bits_per_access,
            pad_bits: cfg.pad_bits_per_access,
        }
    }

    fn mix(&self, history: u64, pc: u64) -> u64 {
        let pc_mask = (1u64 << self.pc_bits) - 1;
        let shifted = history << (self.pc_bits + self.pad_bits);
        (shifted | ((pc & pc_mask) << self.pad_bits)) & self.mask
    }

    /// Advance the speculative history with an access at `pc` (already
    /// shifted to instruction/block granularity by the caller).
    pub fn update_speculative(&mut self, pc: u64) {
        self.spec = self.mix(self.spec, pc);
    }

    /// Advance the retired history with a committed access at `pc`.
    pub fn retire(&mut self, pc: u64) {
        self.retired = self.mix(self.retired, pc);
    }

    /// Misprediction recovery: restore the speculative history from the
    /// retired one.
    pub fn recover(&mut self) {
        self.spec = self.retired;
    }

    /// Clear both registers back to the empty (freshly-constructed)
    /// history; the configured geometry is preserved.
    pub fn reset(&mut self) {
        self.spec = 0;
        self.retired = 0;
    }

    /// Current speculative history value (used for all predictions).
    pub fn speculative(&self) -> u64 {
        self.spec
    }

    /// Current retired history value.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Validate the dual-history invariants: both registers fit the
    /// configured width, and misprediction recovery restores *exactly* the
    /// retired state (§III.F) — checked on a copy so the live histories
    /// are untouched.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.spec & !self.mask != 0 {
            return Err(format!(
                "speculative history {:#x} overflows the configured mask {:#x}",
                self.spec, self.mask
            ));
        }
        if self.retired & !self.mask != 0 {
            return Err(format!(
                "retired history {:#x} overflows the configured mask {:#x}",
                self.retired, self.mask
            ));
        }
        let mut copy = *self;
        copy.recover();
        if copy.speculative() != self.retired() || copy.retired() != self.retired() {
            return Err(format!(
                "recovery does not restore the retired state exactly: \
                 spec {:#x}, retired {:#x} after recovery (retired was {:#x})",
                copy.speculative(),
                copy.retired(),
                self.retired()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h() -> SpeculativeHistory {
        SpeculativeHistory::new(&GhrpConfig::default())
    }

    #[test]
    fn update_shifts_three_pc_bits_and_a_zero() {
        let mut hist = h();
        hist.update_speculative(0b101);
        // 101 followed by one zero bit.
        assert_eq!(hist.speculative(), 0b1010);
        hist.update_speculative(0b111);
        assert_eq!(hist.speculative(), 0b1010_1110);
    }

    #[test]
    fn history_is_sixteen_bits() {
        let mut hist = h();
        for _ in 0..10 {
            hist.update_speculative(0b111);
        }
        assert!(hist.speculative() <= 0xFFFF);
        assert_eq!(hist.speculative(), 0xEEEE);
    }

    #[test]
    fn four_accesses_fill_the_register() {
        let mut hist = h();
        for pc in [0b001u64, 0b010, 0b011, 0b100] {
            hist.update_speculative(pc);
        }
        assert_eq!(hist.speculative(), 0b0010_0100_0110_1000);
        // A fifth access pushes the first out.
        hist.update_speculative(0b111);
        assert_eq!(hist.speculative(), 0b0100_0110_1000_1110);
    }

    #[test]
    fn only_low_pc_bits_enter() {
        let mut a = h();
        let mut b = h();
        a.update_speculative(0xABCD_E005);
        b.update_speculative(0x5);
        assert_eq!(a.speculative(), b.speculative());
    }

    #[test]
    fn recovery_restores_retired_state() {
        let mut hist = h();
        // Retire two accesses; speculate two more beyond them.
        for pc in [1u64, 2] {
            hist.update_speculative(pc);
            hist.retire(pc);
        }
        let retired_point = hist.speculative();
        hist.update_speculative(3); // wrong path
        hist.update_speculative(4); // wrong path
        assert_ne!(hist.speculative(), retired_point);
        hist.recover();
        assert_eq!(hist.speculative(), retired_point);
        assert_eq!(hist.speculative(), hist.retired());
    }

    #[test]
    fn spec_and_retired_advance_independently() {
        let mut hist = h();
        hist.update_speculative(7);
        assert_eq!(hist.retired(), 0);
        hist.retire(7);
        assert_eq!(hist.retired(), hist.speculative());
    }

    #[test]
    fn custom_widths_respected() {
        let cfg = GhrpConfig {
            history_bits: 8,
            pc_bits_per_access: 2,
            pad_bits_per_access: 0,
            ..GhrpConfig::default()
        };
        let mut hist = SpeculativeHistory::new(&cfg);
        for _ in 0..10 {
            hist.update_speculative(0b11);
        }
        assert_eq!(hist.speculative(), 0xFF);
    }
}
