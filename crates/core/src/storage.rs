//! Storage accounting (the paper's Table I).
//!
//! Table I of the paper reports the storage GHRP adds to a 64 KB 8-way
//! I-cache: per-block metadata (16-bit signature, prediction bit, 3 LRU
//! bits, valid bit) plus three 4,096-entry tables of 2-bit counters, about
//! 5 KB total — roughly 8% of the I-cache data capacity.

#![forbid(unsafe_code)]

use crate::GhrpConfig;
use fe_cache::CacheConfig;
use serde::{Deserialize, Serialize};

/// Itemized GHRP storage for one configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StorageReport {
    /// Signature bits per block.
    pub signature_bits_per_block: u32,
    /// Prediction bits per block.
    pub prediction_bits_per_block: u32,
    /// LRU-stack bits per block.
    pub lru_bits_per_block: u32,
    /// Valid bits per block.
    pub valid_bits_per_block: u32,
    /// Number of block frames carrying metadata.
    pub blocks: u64,
    /// Total metadata bits across all blocks.
    pub metadata_bits: u64,
    /// Total prediction-table bits.
    pub table_bits: u64,
    /// History register bits (speculative + retired).
    pub history_bits: u64,
    /// Extra BTB bits (one prediction bit per BTB entry), if a BTB is
    /// attached.
    pub btb_bits: u64,
}

impl StorageReport {
    /// Storage for GHRP attached to an I-cache of geometry `cache`, and
    /// optionally driving a BTB with `btb_entries` entries.
    pub fn new(ghrp: &GhrpConfig, cache: CacheConfig, btb_entries: u64) -> StorageReport {
        let lru_bits = 32 - (cache.ways() - 1).leading_zeros().min(31);
        let lru_bits = if cache.ways() == 1 { 0 } else { lru_bits };
        let sig = ghrp.history_bits.min(16);
        let per_block = sig + 1 + lru_bits + 1;
        let blocks = cache.frames() as u64;
        StorageReport {
            signature_bits_per_block: sig,
            prediction_bits_per_block: 1,
            lru_bits_per_block: lru_bits,
            valid_bits_per_block: 1,
            blocks,
            metadata_bits: blocks * u64::from(per_block),
            table_bits: (ghrp.num_tables * ghrp.table_entries) as u64
                * u64::from(ghrp.counter_bits),
            history_bits: u64::from(ghrp.history_bits) * 2,
            btb_bits: btb_entries,
        }
    }

    /// Total additional bits.
    pub fn total_bits(&self) -> u64 {
        self.metadata_bits + self.table_bits + self.history_bits + self.btb_bits
    }

    /// Total additional storage in kibibytes.
    pub fn total_kib(&self) -> f64 {
        self.total_bits() as f64 / 8.0 / 1024.0
    }

    /// Overhead relative to a cache of `capacity_bytes` of data.
    pub fn overhead_fraction(&self, capacity_bytes: u64) -> f64 {
        (self.total_bits() as f64 / 8.0) / capacity_bytes as f64
    }

    /// Render the Table I rows.
    pub fn to_table(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        // Writing to a String cannot fail, so the Results are discarded.
        s.push_str("component                          bits\n");
        let _ = writeln!(
            s,
            "per-block signature ({} b x {})   {}",
            self.signature_bits_per_block,
            self.blocks,
            u64::from(self.signature_bits_per_block) * self.blocks
        );
        let _ = writeln!(
            s,
            "per-block prediction (1 b x {})   {}",
            self.blocks, self.blocks
        );
        let _ = writeln!(
            s,
            "per-block LRU ({} b x {})          {}",
            self.lru_bits_per_block,
            self.blocks,
            u64::from(self.lru_bits_per_block) * self.blocks
        );
        let _ = writeln!(
            s,
            "per-block valid (1 b x {})        {}",
            self.blocks, self.blocks
        );
        let _ = writeln!(s, "prediction tables                  {}", self.table_bits);
        let _ = writeln!(
            s,
            "history registers                  {}",
            self.history_bits
        );
        if self.btb_bits > 0 {
            let _ = writeln!(s, "BTB prediction bits                {}", self.btb_bits);
        }
        let _ = writeln!(
            s,
            "TOTAL                              {} ({:.2} KiB)",
            self.total_bits(),
            self.total_kib()
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_cfg() -> GhrpConfig {
        GhrpConfig::paper_nominal()
    }

    #[test]
    fn paper_configuration_is_about_five_kib() {
        // 64KB, 8-way, 64B blocks: 1024 blocks × 21 bits + 3×4096×2 bits.
        let cache = crate::paper::paper_cache_config().unwrap();
        let r = StorageReport::new(&paper_cfg(), cache, 0);
        assert_eq!(r.blocks, 1024);
        assert_eq!(r.lru_bits_per_block, 3);
        assert_eq!(r.metadata_bits, 1024 * 21);
        assert_eq!(r.table_bits, 3 * 4096 * 2);
        let kib = r.total_kib();
        assert!(
            (5.0..6.0).contains(&kib),
            "expected ~5 KiB (paper: 5.13), got {kib:.2}"
        );
        // ~8% of the I-cache capacity, as the paper states for the M1.
        let frac = r.overhead_fraction(64 * 1024);
        assert!(frac < 0.10, "overhead {frac:.3}");
    }

    #[test]
    fn btb_adds_one_bit_per_entry() {
        let cache = CacheConfig::with_capacity(64 * 1024, 8, 64).unwrap();
        let without = StorageReport::new(&paper_cfg(), cache, 0);
        let with = StorageReport::new(&paper_cfg(), cache, 4096);
        assert_eq!(with.total_bits() - without.total_bits(), 4096);
    }

    #[test]
    fn direct_mapped_has_no_lru_bits() {
        let cache = CacheConfig::with_capacity(8 * 1024, 1, 64).unwrap();
        let r = StorageReport::new(&paper_cfg(), cache, 0);
        assert_eq!(r.lru_bits_per_block, 0);
    }

    #[test]
    fn table_rendering_mentions_total() {
        let cache = CacheConfig::with_capacity(64 * 1024, 8, 64).unwrap();
        let r = StorageReport::new(&paper_cfg(), cache, 4096);
        let t = r.to_table();
        assert!(t.contains("TOTAL"));
        assert!(t.contains("BTB"));
    }
}
