//! The paper's published hardware design point (Table I, §IV.A).
//!
//! Every constant below carries a `budget-key:` doc marker. The
//! workspace auditor (`cargo xtask audit`) locates these markers in the
//! AST, const-evaluates the initializers, re-derives the paper's storage
//! arithmetic (41 984 added bits = 5.13 KB for GHRP on the nominal
//! I-cache) and diffs every figure against the checked-in
//! `budgets.toml`. Changing any number here — or the expressions they
//! feed — fails CI until the budget file is deliberately re-pinned.
//!
//! The *simulation defaults* ([`GhrpConfig::default`]) intentionally
//! deviate from this design point (larger tables, wider counters) to
//! compensate for the reduced trace scale of the synthetic workloads;
//! these constants pin what the **hardware proposal** costs, which is
//! what Table I reports.

#![forbid(unsafe_code)]

use crate::{Aggregation, GhrpConfig};
use fe_cache::{CacheConfig, ConfigError};

/// Baseline I-cache data capacity: 64 KB (§IV.A, Exynos M1-like).
///
/// budget-key: `icache.capacity_bytes`
pub const PAPER_ICACHE_CAPACITY_BYTES: u64 = 64 * 1024;

/// Baseline I-cache block size in bytes.
///
/// budget-key: `icache.block_bytes`
pub const PAPER_ICACHE_BLOCK_BYTES: u64 = 64;

/// Baseline I-cache associativity.
///
/// budget-key: `icache.ways`
pub const PAPER_ICACHE_WAYS: u32 = 8;

/// Entries per skewed GHRP prediction table (Table I: 4,096).
///
/// budget-key: `ghrp.table_entries`
pub const PAPER_GHRP_TABLE_ENTRIES: usize = 1 << 12;

/// Number of skewed GHRP prediction tables.
///
/// budget-key: `ghrp.num_tables`
pub const PAPER_GHRP_NUM_TABLES: usize = 3;

/// GHRP saturating-counter width in bits.
///
/// budget-key: `ghrp.counter_bits`
pub const PAPER_GHRP_COUNTER_BITS: u32 = 2;

/// Path-history register width in bits (§III.B).
///
/// budget-key: `ghrp.history_bits`
pub const PAPER_GHRP_HISTORY_BITS: u32 = 16;

/// Signature bits stored per cache block (the full 16-bit history XOR).
///
/// budget-key: `ghrp.signature_bits`
pub const PAPER_GHRP_SIGNATURE_BITS: u32 = 16;

/// Dead-prediction bits stored per cache block.
///
/// budget-key: `ghrp.prediction_bits`
pub const PAPER_GHRP_PREDICTION_BITS: u32 = 1;

/// The nominal I-cache geometry Table I budgets against.
///
/// # Errors
///
/// Never fails for the pinned constants; the `Result` is `CacheConfig`'s
/// constructor contract.
pub fn paper_cache_config() -> Result<CacheConfig, ConfigError> {
    CacheConfig::with_capacity(
        PAPER_ICACHE_CAPACITY_BYTES,
        PAPER_ICACHE_WAYS,
        PAPER_ICACHE_BLOCK_BYTES,
    )
}

impl GhrpConfig {
    /// The paper's hardware design point: 3 × 4,096 × 2-bit tables, 16-bit
    /// history/signature, majority vote, bypass enabled for both
    /// structures, and none of this reproduction's scaled-trace
    /// refinements (shadow training, fresh victim prediction, absent-block
    /// coupling) — those default on only for the simulation geometry.
    #[must_use]
    pub fn paper_nominal() -> GhrpConfig {
        GhrpConfig {
            table_entries: PAPER_GHRP_TABLE_ENTRIES,
            num_tables: PAPER_GHRP_NUM_TABLES,
            counter_bits: PAPER_GHRP_COUNTER_BITS,
            dead_threshold: 2,
            bypass_threshold: 3,
            btb_dead_threshold: 3,
            enable_bypass: true,
            btb_enable_bypass: true,
            history_bits: PAPER_GHRP_HISTORY_BITS,
            pc_bits_per_access: 3,
            pad_bits_per_access: 1,
            aggregation: Aggregation::MajorityVote,
            protect_mru: false,
            shadow_training: false,
            fresh_victim_prediction: false,
            prefer_young_dead: false,
            btb_absent_block_is_dead: false,
        }
    }
}

// Compile-time guards: the stored signature must fit both the history
// register it is derived from and the 16-bit per-block metadata field.
const _: () = assert!(PAPER_GHRP_SIGNATURE_BITS <= PAPER_GHRP_HISTORY_BITS);
const _: () = assert!(PAPER_GHRP_SIGNATURE_BITS <= 16);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StorageReport;

    #[test]
    fn paper_nominal_validates() {
        let c = GhrpConfig::paper_nominal();
        assert_eq!(c.validate(), Ok(()));
        assert_eq!(c.index_bits(), 12);
        assert_eq!(c.counter_max(), 3);
        assert_eq!(c.history_depth(), 4);
    }

    /// Table I's headline: 41,984 added bits (signature + prediction per
    /// block, plus the tables) ≈ 5.13 KB on the nominal geometry.
    #[test]
    fn table_one_headline_figure() {
        let cache = paper_cache_config().expect("paper geometry is valid");
        assert_eq!(cache.frames(), 1024);
        let r = StorageReport::new(&GhrpConfig::paper_nominal(), cache, 0);
        let added = u64::from(PAPER_GHRP_SIGNATURE_BITS + PAPER_GHRP_PREDICTION_BITS) * r.blocks
            + r.table_bits;
        assert_eq!(added, 41_984);
        assert!((added as f64 / 8192.0 - 5.125).abs() < 1e-9);
    }
}
