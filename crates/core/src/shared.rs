//! Shared GHRP predictor state.
//!
//! One GHRP instance serves both the I-cache and the BTB (§III.E: "All of
//! the other structures for the GHRP algorithm are already present for use
//! by the I-cache dead block prediction, so BTB replacement comes with
//! almost no additional overhead"). [`SharedGhrp`] is a cheaply clonable
//! handle (`Rc<RefCell<…>>` — the simulator is single-threaded) that the
//! I-cache policy ([`crate::GhrpPolicy`]) and the BTB policy (in `fe-btb`)
//! both hold.
//!
//! Besides the tables and the dual path history, the shared state keeps a
//! view of the I-cache per-block metadata keyed by block address, which is
//! exactly what the BTB needs: "the signature recorded for that I-cache
//! block is used to index the I-cache GHRP prediction tables to generate
//! … a dead-entry prediction for that BTB entry".

#![forbid(unsafe_code)]

use crate::config::GhrpConfig;
use crate::history::SpeculativeHistory;
use crate::signature::signature;
use crate::tables::PredictionTables;
use fe_cache::FastMap;
use std::cell::RefCell;
use std::rc::Rc;

// The checked index primitives every predictor-side index computation
// must go through (enforced by `cargo xtask lint`): `mask` for
// power-of-two bucket selection, `idx` for bounds-checked `u64 → usize`
// narrowing. Canonical implementations live in `fe_cache::index`; this
// re-export is the predictor-facing path.
pub use fe_cache::index::{idx, mask};

/// Per-I-cache-block GHRP metadata (16-bit signature + prediction bit;
/// the valid and LRU bits live in the policy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockMeta {
    /// Signature recorded at fill or last reuse.
    pub signature: u16,
    /// Dead-block prediction bit, refreshed on each access to the block.
    pub predicted_dead: bool,
}

#[derive(Debug)]
struct GhrpState {
    cfg: GhrpConfig,
    tables: PredictionTables,
    history: SpeculativeHistory,
    /// I-cache block metadata, keyed by block address. Probed several
    /// times per I-cache access (hit re-tag, victim scan, BTB coupling),
    /// so it uses the deterministic [`FastMap`] hasher; keyed access
    /// only, never iterated.
    meta: FastMap<u64, BlockMeta>,
    /// Right-shift applied to I-cache block addresses before they enter
    /// the history/signature (the block offset width).
    icache_shift: u32,
}

/// Clonable handle to the shared GHRP predictor.
#[derive(Debug, Clone)]
pub struct SharedGhrp {
    state: Rc<RefCell<GhrpState>>,
}

impl SharedGhrp {
    /// Create a fresh predictor.
    ///
    /// `icache_offset_bits` is the I-cache block-offset width: I-cache
    /// accesses enter the history at fetch-block granularity, so the low
    /// (always-zero) offset bits are shifted away first.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`GhrpConfig::validate`].
    pub fn new(cfg: GhrpConfig, icache_offset_bits: u32) -> SharedGhrp {
        let tables = PredictionTables::new(&cfg);
        let history = SpeculativeHistory::new(&cfg);
        SharedGhrp {
            state: Rc::new(RefCell::new(GhrpState {
                cfg,
                tables,
                history,
                meta: FastMap::default(),
                icache_shift: icache_offset_bits,
            })),
        }
    }

    /// The configuration this predictor was built with.
    pub fn config(&self) -> GhrpConfig {
        self.state.borrow().cfg
    }

    /// Compute the signature for an I-cache access to `block_addr` under
    /// the *current* speculative history (before the access updates it).
    pub fn icache_signature(&self, block_addr: u64) -> u16 {
        let s = self.state.borrow();
        signature(
            s.history.speculative(),
            block_addr >> s.icache_shift,
            s.cfg.history_bits.min(16),
        )
    }

    /// Compute a signature for an arbitrary (pre-shifted) PC — the BTB
    /// fallback when the branch's I-cache block has no metadata.
    pub fn pc_signature(&self, shifted_pc: u64) -> u16 {
        let s = self.state.borrow();
        signature(
            s.history.speculative(),
            shifted_pc,
            s.cfg.history_bits.min(16),
        )
    }

    /// Advance the speculative history with an I-cache access.
    pub fn update_history(&self, block_addr: u64) {
        let mut s = self.state.borrow_mut();
        let pc = block_addr >> s.icache_shift;
        s.history.update_speculative(pc);
    }

    /// Hot-path combination of [`SharedGhrp::icache_signature`] followed
    /// by [`SharedGhrp::update_history`]: compute the signature for an
    /// I-cache access under the history *excluding* this access, then
    /// advance the speculative history — in one borrow.
    pub fn access_signature(&self, block_addr: u64) -> u16 {
        let mut s = self.state.borrow_mut();
        let pc = block_addr >> s.icache_shift;
        let sig = signature(s.history.speculative(), pc, s.cfg.history_bits.min(16));
        s.history.update_speculative(pc);
        sig
    }

    /// Hot-path re-tag on an I-cache hit (Algorithm 1 lines 21–25): read
    /// the block's previous metadata, optionally train its old signature
    /// live (`train_live`, i.e. direct-training mode), then store fresh
    /// metadata under `sig` with a fresh dead prediction. Returns the
    /// previous metadata. One borrow, one map probe beyond the insert.
    pub fn rehit_meta(&self, block_addr: u64, sig: u16, train_live: bool) -> Option<BlockMeta> {
        let mut s = self.state.borrow_mut();
        let old = s.meta.get(&block_addr).copied();
        if train_live {
            if let Some(o) = old {
                s.tables.update(o.signature, false);
            }
        }
        let predicted_dead = s.tables.predict(sig, s.cfg.dead_threshold);
        s.meta.insert(
            block_addr,
            BlockMeta {
                signature: sig,
                predicted_dead,
            },
        );
        old
    }

    /// Hot-path fill: store metadata for a newly filled I-cache block
    /// under `sig` with a fresh dead prediction, in one borrow.
    pub fn fill_meta(&self, block_addr: u64, sig: u16) {
        let mut s = self.state.borrow_mut();
        let predicted_dead = s.tables.predict(sig, s.cfg.dead_threshold);
        s.meta.insert(
            block_addr,
            BlockMeta {
                signature: sig,
                predicted_dead,
            },
        );
    }

    /// Hot-path eviction (Algorithm 1 lines 15–17): remove the victim's
    /// metadata, optionally training its signature dead (`train_dead`,
    /// i.e. direct-training mode). Returns the removed metadata. One
    /// borrow, one map operation.
    pub fn evict_meta(&self, block_addr: u64, train_dead: bool) -> Option<BlockMeta> {
        let mut s = self.state.borrow_mut();
        let old = s.meta.remove(&block_addr);
        if train_dead {
            if let Some(o) = old {
                s.tables.update(o.signature, true);
            }
        }
        old
    }

    /// Hot-path victim scan: whether the resident block at `block_addr`
    /// is considered dead — by a fresh table vote on its stored signature
    /// (`fresh`) or by its stored prediction bit. Blocks without metadata
    /// are live. One borrow per candidate way.
    pub fn victim_is_dead(&self, block_addr: u64, fresh: bool) -> bool {
        let s = self.state.borrow();
        match s.meta.get(&block_addr) {
            Some(m) if fresh => s.tables.predict(m.signature, s.cfg.dead_threshold),
            Some(m) => m.predicted_dead,
            None => false,
        }
    }

    /// Hot-path BTB access prediction (§III.E): look up the I-cache
    /// metadata for the branch's block; fall back to a PC signature when
    /// the block is absent. Returns `(used_fallback, predicted_dead)`
    /// under the BTB's own threshold — in one borrow.
    pub fn btb_access_prediction(&self, block_addr: u64, shifted_pc: u64) -> (bool, bool) {
        let s = self.state.borrow();
        let (fallback, sig) = match s.meta.get(&block_addr) {
            Some(m) => (false, m.signature),
            None => (
                true,
                signature(
                    s.history.speculative(),
                    shifted_pc,
                    s.cfg.history_bits.min(16),
                ),
            ),
        };
        (fallback, s.tables.predict(sig, s.cfg.btb_dead_threshold))
    }

    /// Hot-path BTB victim scan: dead prediction for the BTB entry whose
    /// branch lives at `shifted_pc` in I-cache block `block_addr`. When
    /// the block has no metadata, `absent_is_dead` short-circuits the
    /// vote (see [`GhrpConfig::btb_absent_block_is_dead`]). One borrow.
    pub fn btb_victim_is_dead(
        &self,
        block_addr: u64,
        shifted_pc: u64,
        absent_is_dead: bool,
    ) -> bool {
        let s = self.state.borrow();
        match s.meta.get(&block_addr) {
            Some(m) => s.tables.predict(m.signature, s.cfg.btb_dead_threshold),
            None if absent_is_dead => true,
            None => {
                let sig = signature(
                    s.history.speculative(),
                    shifted_pc,
                    s.cfg.history_bits.min(16),
                );
                s.tables.predict(sig, s.cfg.btb_dead_threshold)
            }
        }
    }

    /// Advance the retired (non-speculative) history with a committed
    /// access.
    pub fn retire(&self, block_addr: u64) {
        let mut s = self.state.borrow_mut();
        let pc = block_addr >> s.icache_shift;
        s.history.retire(pc);
    }

    /// Branch-misprediction recovery: restore the speculative history
    /// from the retired one (§III.F).
    pub fn recover(&self) {
        self.state.borrow_mut().history.recover();
    }

    /// Current speculative history value (diagnostics/tests).
    pub fn speculative_history(&self) -> u64 {
        self.state.borrow().history.speculative()
    }

    /// Dead-block prediction for replacement (I-cache threshold).
    pub fn predict_dead(&self, sig: u16) -> bool {
        let s = self.state.borrow();
        s.tables.predict(sig, s.cfg.dead_threshold)
    }

    /// Dead-block prediction for bypass (higher threshold).
    pub fn predict_bypass(&self, sig: u16) -> bool {
        let s = self.state.borrow();
        s.tables.predict(sig, s.cfg.bypass_threshold)
    }

    /// Dead-entry prediction for the BTB (independently tuned threshold,
    /// §III.E point 4).
    pub fn predict_btb_dead(&self, sig: u16) -> bool {
        let s = self.state.borrow();
        s.tables.predict(sig, s.cfg.btb_dead_threshold)
    }

    /// Train the tables: the block carrying `sig` proved dead (eviction
    /// without reuse) or live (reuse).
    pub fn train(&self, sig: u16, is_dead: bool) {
        self.state.borrow_mut().tables.update(sig, is_dead);
    }

    /// Look up the I-cache metadata for `block_addr`.
    pub fn meta(&self, block_addr: u64) -> Option<BlockMeta> {
        self.state.borrow().meta.get(&block_addr).copied()
    }

    /// Install/update metadata for a resident I-cache block.
    pub fn set_meta(&self, block_addr: u64, meta: BlockMeta) {
        self.state.borrow_mut().meta.insert(block_addr, meta);
    }

    /// Remove and return metadata for an evicted I-cache block.
    pub fn take_meta(&self, block_addr: u64) -> Option<BlockMeta> {
        self.state.borrow_mut().meta.remove(&block_addr)
    }

    /// Restore the shared predictor to its freshly-constructed state,
    /// reusing the table allocations: all counters zeroed, both history
    /// registers cleared, and every block's metadata dropped.
    ///
    /// Policies sharing this state reset only their private fields; the
    /// pair's owner calls this once so the shared state is not cleared
    /// twice.
    pub fn reset(&self) {
        let mut s = self.state.borrow_mut();
        s.tables.clear();
        s.history.reset();
        s.meta.clear();
    }

    /// Number of blocks currently carrying metadata.
    pub fn meta_len(&self) -> usize {
        self.state.borrow().meta.len()
    }

    /// Fraction of saturated counters (diagnostics).
    pub fn table_saturation(&self) -> f64 {
        self.state.borrow().tables.saturation()
    }

    /// Validate the shared predictor state: table counters within
    /// `[0, counter_max]` and in-bounds skewed indices
    /// ([`PredictionTables::check_invariants`]), plus the dual-history
    /// width and exact misprediction recovery
    /// ([`SpeculativeHistory::check_invariants`], §III.F).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        let s = self.state.borrow();
        s.tables.check_invariants()?;
        s.history.check_invariants()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shared() -> SharedGhrp {
        SharedGhrp::new(GhrpConfig::default(), 6)
    }

    #[test]
    fn clones_share_state() {
        let a = shared();
        let b = a.clone();
        a.update_history(0x40);
        assert_eq!(a.speculative_history(), b.speculative_history());
        a.set_meta(
            0x40,
            BlockMeta {
                signature: 7,
                predicted_dead: false,
            },
        );
        assert_eq!(b.meta(0x40).unwrap().signature, 7);
    }

    #[test]
    fn signature_uses_block_granularity() {
        let s = shared();
        // Same block, different offsets → same signature.
        assert_eq!(s.icache_signature(0x1000), s.icache_signature(0x103f));
        assert_ne!(s.icache_signature(0x1000), s.icache_signature(0x1040));
    }

    #[test]
    fn signature_changes_with_history() {
        let s = shared();
        let before = s.icache_signature(0x1000);
        s.update_history(0x2040);
        let after = s.icache_signature(0x1000);
        assert_ne!(before, after);
    }

    #[test]
    fn train_and_predict_roundtrip() {
        let s = shared();
        let cfg = s.config();
        let sig = s.icache_signature(0x8000);
        assert!(!s.predict_dead(sig));
        for _ in 0..cfg.dead_threshold {
            s.train(sig, true);
        }
        assert!(s.predict_dead(sig));
        // The bypass threshold is strictly higher than the dead threshold.
        assert!(!s.predict_bypass(sig));
        for _ in cfg.dead_threshold..cfg.bypass_threshold {
            s.train(sig, true);
        }
        assert!(s.predict_bypass(sig));
    }

    #[test]
    fn meta_lifecycle() {
        let s = shared();
        assert_eq!(s.meta(0x40), None);
        s.set_meta(
            0x40,
            BlockMeta {
                signature: 0xAB,
                predicted_dead: true,
            },
        );
        assert_eq!(s.meta_len(), 1);
        let taken = s.take_meta(0x40).unwrap();
        assert!(taken.predicted_dead);
        assert_eq!(s.meta_len(), 0);
        assert_eq!(s.take_meta(0x40), None);
    }

    #[test]
    fn recovery_matches_retired_stream() {
        let s = shared();
        s.update_history(0x40);
        s.retire(0x40);
        s.update_history(0x80); // speculative-only (wrong path)
        s.recover();
        let expected = {
            let t = shared();
            t.update_history(0x40);
            t.speculative_history()
        };
        assert_eq!(s.speculative_history(), expected);
    }
}
