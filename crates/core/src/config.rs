//! GHRP configuration.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize};

/// How the three per-table votes combine into one prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Aggregation {
    /// A majority of tables must individually clear the threshold — the
    /// paper's choice for instruction streams (§III.C).
    MajorityVote,
    /// Sum the counters and compare against `threshold × num_tables` — the
    /// SDBP-style aggregation, kept for the ablation study.
    Sum,
}

/// Tunable parameters of the GHRP predictor.
///
/// Defaults follow §IV.A of the paper: three skewed tables of 4,096
/// two-bit counters, a 16-bit history/signature with three PC bits plus a
/// zero bit shifted in per access, majority-vote aggregation, and separate
/// dead/bypass thresholds (the BTB threshold is tuned independently,
/// §III.E point 4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
// Each bool is an independent ablation switch; a state machine would
// obscure that they compose freely.
#[allow(clippy::struct_excessive_bools)]
pub struct GhrpConfig {
    /// Entries per prediction table (power of two).
    pub table_entries: usize,
    /// Number of skewed prediction tables.
    pub num_tables: usize,
    /// Saturating-counter width in bits (1..=8).
    pub counter_bits: u32,
    /// A counter ≥ this value votes "dead" for replacement.
    pub dead_threshold: u8,
    /// A counter ≥ this value votes "dead" for bypass (more conservative).
    pub bypass_threshold: u8,
    /// Dead threshold used for BTB-entry predictions.
    pub btb_dead_threshold: u8,
    /// Whether misses may bypass the I-cache.
    pub enable_bypass: bool,
    /// Whether misses may bypass the BTB.
    pub btb_enable_bypass: bool,
    /// Width of the path-history register in bits.
    pub history_bits: u32,
    /// PC bits shifted into the history per access.
    pub pc_bits_per_access: u32,
    /// Zero bits appended after the PC bits per access.
    pub pad_bits_per_access: u32,
    /// Vote aggregation mode.
    pub aggregation: Aggregation,
    /// Never choose the MRU way as a predicted-dead victim. Blocks are
    /// frequently mid-burst when (falsely) marked dead; protecting the
    /// MRU position bounds the cost of a false-dead prediction at one
    /// re-reference, in the spirit of cache-burst prediction (Liu et al.),
    /// which only predicts once a block leaves the MRU position.
    pub protect_mru: bool,
    /// Train the prediction tables from a *shadow* LRU tag array instead
    /// of the policy's own hits/evictions. Algorithm 1 trains on the real
    /// cache's events, which couples the training labels to the policy's
    /// own decisions: a false dead prediction evicts a block early, the
    /// early eviction trains its signature dead again, and the error
    /// self-amplifies. Decoupling training from the managed structure is
    /// exactly the role of SDBP's sampler (which the paper already sizes
    /// equal to the cache for instruction streams, SIV.A); the shadow
    /// array applies the same idea to GHRP, making the learned label a
    /// stable "dead under LRU". The ablation harness can disable this to
    /// reproduce the self-training feedback effect.
    pub shadow_training: bool,
    /// Recompute dead predictions from the *current* tables during victim
    /// selection (using each candidate's stored signature) instead of
    /// consuming the prediction bit stored at the block's last access.
    /// The stored bit ages with the block: the least-recent blocks — the
    /// very candidates victim selection inspects — carry the oldest
    /// predictions. Re-indexing three tables for up to eight candidates
    /// happens off the critical path on a miss.
    pub fresh_victim_prediction: bool,
    /// Among predicted-dead candidates, evict the most recently used one
    /// first. A block marked dead at its final touch is typically fresh
    /// streaming code; evicting it immediately (rather than the first or
    /// oldest dead-marked way) leaves older resident blocks — the ones a
    /// pure LRU would sacrifice — undisturbed for longer.
    pub prefer_young_dead: bool,
    /// During BTB victim selection, treat an entry whose branch's I-cache
    /// block is no longer resident as predicted dead. §III.E's coupling
    /// argument runs both ways: "if a cache block is mostly live, the
    /// corresponding BTB entries will be predicted as live" — and a block
    /// that has left the I-cache entirely is the strongest evidence its
    /// branches' BTB entries are dead.
    pub btb_absent_block_is_dead: bool,
}

impl Default for GhrpConfig {
    fn default() -> GhrpConfig {
        GhrpConfig {
            // The paper's hardware design point is 4,096 entries (Table
            // I), tuned on 100M–1B-instruction industrial traces. Our
            // synthetic workloads pack the same path diversity into a few
            // million instructions, so the default scales the tables to
            // 16,384 entries to keep the aliasing rate comparable; the
            // Table I storage bin reports the paper's nominal geometry.
            table_entries: 16384,
            num_tables: 3,
            // 3-bit counters: one bit wider than the paper's 2-bit design
            // point. At our scaled-down trace lengths the extra dynamic
            // range resists the flicker of sparsely trained signatures;
            // the ablation harness measures the 2-bit (paper) variant.
            counter_bits: 3,
            // §III.C: "Instruction accesses are less likely to be dead,
            // requiring lower thresholds for reasonable coverage. Majority
            // vote avoids the effects of aliasing without needing a high
            // threshold." A block predicts dead once a majority of its
            // counters have seen one more death than reuse.
            dead_threshold: 1,
            bypass_threshold: 7,
            btb_dead_threshold: 1,
            enable_bypass: true,
            // BTB bypass is off by default: the bypass decision must be
            // made at insert time under the *arrival* signature, which at
            // this reproduction's trace scale mispredicts often enough
            // that the re-miss cost exceeds the pollution saved (the
            // ablate_bypass harness quantifies this; the paper's design
            // enables it, and `btb_enable_bypass = true` restores that).
            btb_enable_bypass: false,
            history_bits: 16,
            pc_bits_per_access: 3,
            pad_bits_per_access: 1,
            aggregation: Aggregation::MajorityVote,
            protect_mru: false,
            shadow_training: true,
            fresh_victim_prediction: true,
            prefer_young_dead: false,
            btb_absent_block_is_dead: true,
        }
    }
}

impl GhrpConfig {
    /// Maximum counter value for the configured width.
    pub fn counter_max(&self) -> u8 {
        // Truncation-safe: validate() caps counter_bits at 8, so the
        // all-ones value fits in u8.
        #[allow(clippy::cast_possible_truncation)]
        let max = ((1u16 << self.counter_bits) - 1) as u8;
        max
    }

    /// Total history shift per access (PC bits + padding).
    pub fn shift_per_access(&self) -> u32 {
        self.pc_bits_per_access + self.pad_bits_per_access
    }

    /// Number of prior accesses the history can represent.
    pub fn history_depth(&self) -> u32 {
        self.history_bits / self.shift_per_access()
    }

    /// Bits needed to index one prediction table.
    pub fn index_bits(&self) -> u32 {
        self.table_entries.trailing_zeros()
    }

    /// Check invariants; called by the predictor constructors.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if !self.table_entries.is_power_of_two() || self.table_entries == 0 {
            return Err(format!(
                "table_entries must be a power of two, got {}",
                self.table_entries
            ));
        }
        if self.num_tables == 0 || self.num_tables > 8 {
            return Err(format!("num_tables must be 1..=8, got {}", self.num_tables));
        }
        if !(1..=8).contains(&self.counter_bits) {
            return Err(format!(
                "counter_bits must be 1..=8, got {}",
                self.counter_bits
            ));
        }
        let max = self.counter_max();
        if self.dead_threshold > max || self.bypass_threshold > max || self.btb_dead_threshold > max
        {
            return Err(format!(
                "thresholds must be <= counter max {max}: dead={} bypass={} btb={}",
                self.dead_threshold, self.bypass_threshold, self.btb_dead_threshold
            ));
        }
        if self.history_bits == 0 || self.history_bits > 64 {
            return Err(format!(
                "history_bits must be 1..=64, got {}",
                self.history_bits
            ));
        }
        if self.shift_per_access() == 0 || self.shift_per_access() > self.history_bits {
            return Err(format!(
                "shift per access ({}) must be 1..=history_bits",
                self.shift_per_access()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_paper_shaped() {
        let c = GhrpConfig::default();
        // Structure follows the paper: 3 skewed tables, 16-bit history,
        // 3 PC bits + 1 zero bit per access, majority vote.
        assert_eq!(c.num_tables, 3);
        assert_eq!(c.history_bits, 16);
        assert_eq!(c.shift_per_access(), 4);
        assert_eq!(c.history_depth(), 4, "four previous accesses recorded");
        assert_eq!(c.aggregation, Aggregation::MajorityVote);
        assert_eq!(c.validate(), Ok(()));
    }

    /// The paper's published hardware design point must stay expressible
    /// (used by the Table I storage report and the ablation harness).
    #[test]
    fn paper_nominal_configuration_is_valid() {
        let c = GhrpConfig::paper_nominal();
        assert_eq!(c.table_entries, 4096);
        assert_eq!(c.counter_bits, 2);
        assert_eq!(c.index_bits(), 12);
        assert_eq!(c.counter_max(), 3);
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_bad_tables() {
        let c = GhrpConfig {
            table_entries: 1000,
            ..GhrpConfig::default()
        };
        assert!(c.validate().is_err());
        let c = GhrpConfig {
            num_tables: 0,
            ..GhrpConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_rejects_threshold_overflow() {
        let c = GhrpConfig {
            counter_bits: 2,
            dead_threshold: 4, // > 2-bit max of 3
            bypass_threshold: 3,
            btb_dead_threshold: 3,
            ..GhrpConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_history() {
        let c = GhrpConfig {
            history_bits: 0,
            ..GhrpConfig::default()
        };
        assert!(c.validate().is_err());
        let c = GhrpConfig {
            pc_bits_per_access: 0,
            pad_bits_per_access: 0,
            ..GhrpConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn wider_counters_raise_max() {
        let c = GhrpConfig {
            counter_bits: 8,
            ..GhrpConfig::default()
        };
        assert_eq!(c.counter_max(), 255);
    }
}
