//! Global History Reuse Prediction (GHRP).
//!
//! This crate implements the primary contribution of *"Exploring Predictive
//! Replacement Policies for Instruction Cache and Branch Target Buffer"*
//! (Mirbagher Ajorpaz, Garza, Jindal, Jiménez — ISCA 2018): a dead-block
//! replacement and bypass policy driven by the **global path history of
//! instruction addresses**.
//!
//! # How GHRP works
//!
//! * A 16-bit **path history** register records the last four accesses: on
//!   each access the three lowest-order (post-shift) PC bits are shifted in,
//!   followed by one zero bit ([`history`]).
//! * A **signature** is the XOR of the history with the accessed PC; the
//!   zero padding lets PC bits pass through unmodified ([`signature`]).
//! * Three **prediction tables** of 4,096 two-bit saturating counters are
//!   indexed by three distinct 12-bit hashes of the signature. Counters
//!   above a threshold vote "dead"; the aggregate prediction is a
//!   **majority vote** (unlike SDBP's summation) ([`tables`]).
//! * Each cache block carries metadata: its filling/last-use signature and a
//!   prediction bit. On a **hit** the counters under the block's *old*
//!   signature are decremented (the block proved live) and the metadata is
//!   refreshed under the current history. On an **eviction** the counters
//!   under the victim's stored signature are incremented (it proved dead).
//!   On a **miss** the incoming block may be **bypassed** when the vote
//!   clears a separate bypass threshold; otherwise the victim is the first
//!   predicted-dead block, falling back to LRU ([`policy`]).
//! * The **BTB** reuses the same tables and history: a BTB entry's
//!   dead-entry prediction is made with the signature stored in the I-cache
//!   block containing the branch (see the `fe-btb` crate).
//! * Two histories — speculative and retired — support misprediction
//!   recovery as in branch predictors (§III.F of the paper).
//!
//! # Example
//!
//! ```
//! use fe_cache::{Cache, CacheConfig};
//! use ghrp_core::{GhrpConfig, GhrpPolicy, SharedGhrp};
//!
//! let cache_cfg = CacheConfig::with_capacity(64 * 1024, 8, 64)?;
//! let shared = SharedGhrp::new(GhrpConfig::default(), cache_cfg.offset_bits());
//! let mut icache = Cache::new(cache_cfg, GhrpPolicy::new(cache_cfg, shared.clone()));
//! icache.access(0x1_0000, 0x1_0000);
//! # Ok::<(), fe_cache::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
pub mod history;
pub mod paper;
pub mod policy;
pub mod shared;
pub mod signature;
pub mod storage;
pub mod tables;

pub use config::{Aggregation, GhrpConfig};
pub use history::SpeculativeHistory;
pub use policy::GhrpPolicy;
pub use shared::{BlockMeta, SharedGhrp};
pub use storage::StorageReport;
pub use tables::PredictionTables;
