//! Branch target buffer models.
//!
//! The BTB caches the targets of previously taken branches. This crate
//! models a set-associative BTB (the paper's 4,096-entry, 4-way Mongoose
//! configuration by default) on top of the `fe-cache` tag framework:
//! entries are indexed by the branch PC at instruction granularity
//! (*modulo indexing*, so branches within one I-cache block map to
//! distinct BTB sets — §III.E point 3), tagged with the full PC, and
//! managed by any [`ReplacementPolicy`].
//!
//! Per the paper's model, only **taken** branches allocate or refresh BTB
//! entries: "a branch that is never taken will not get a BTB entry", and a
//! seldom-taken branch's entry ages toward LRU between takes. BTB MPKI
//! counts taken branches that miss.
//!
//! [`GhrpBtbPolicy`] implements the paper's §III.E coupling: the dead-entry
//! prediction for a BTB entry is made with the signature stored in the
//! I-cache block containing the branch, read through the shared
//! [`SharedGhrp`] predictor; each BTB entry carries a single extra
//! prediction bit and no other GHRP state.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use fe_cache::{AccessContext, Cache, CacheConfig, ConfigError, ReplacementPolicy};
use fe_trace::record::INSTRUCTION_BYTES;
use ghrp_core::SharedGhrp;

// Canonical BTB design-point constants (§IV.A; Mongoose-like geometry).
// The `budget-key:` markers are consumed by `cargo xtask audit`.

/// Nominal BTB capacity in entries.
///
/// budget-key: `btb.entries`
pub const PAPER_BTB_ENTRIES: u32 = 1 << 12;

/// Nominal BTB associativity.
///
/// budget-key: `btb.ways`
pub const PAPER_BTB_WAYS: u32 = 4;

/// GHRP adds one dead-prediction bit per BTB entry (§III.E).
///
/// budget-key: `btb.prediction_bits`
pub const PAPER_BTB_PREDICTION_BITS: u32 = 1;

/// The nominal BTB geometry (4,096 entries, 4-way).
///
/// # Errors
///
/// Never fails for the pinned constants; the `Result` is
/// [`btb_config`]'s contract.
pub fn paper_btb_config() -> Result<CacheConfig, ConfigError> {
    btb_config(PAPER_BTB_ENTRIES, PAPER_BTB_WAYS)
}

/// Statistics for a BTB instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BtbStats {
    /// Taken-branch lookups.
    pub lookups: u64,
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found no entry (the figure-of-merit misses).
    pub misses: u64,
    /// Hits whose stored target was stale (retargeted branches).
    pub target_mismatches: u64,
}

/// A set-associative branch target buffer.
///
/// ```
/// use fe_btb::{btb_config, Btb};
/// use fe_cache::policy::Lru;
///
/// let cfg = btb_config(4096, 4)?; // 4K entries, 4-way
/// let mut btb = Btb::new(cfg, Lru::new(cfg));
/// assert!(!btb.lookup_and_update(0x4000, 0x5000)); // cold miss, allocates
/// assert!(btb.lookup_and_update(0x4000, 0x5000));  // hit
/// # Ok::<(), fe_cache::ConfigError>(())
/// ```
#[derive(Debug)]
pub struct Btb<P> {
    entries: Cache<P>,
    /// Stored target per frame, parallel to the tag array. A taken branch
    /// writes its entry's slot on every hit/fill (the hot path — one per
    /// taken branch per policy lane), so this is a flat array indexed by
    /// the frame the tag store reports rather than a map keyed by PC; the
    /// tag array already says which entry a PC owns.
    targets: Vec<u64>,
    stats: BtbStats,
}

/// Geometry for a BTB of `entries` total entries and `ways` associativity.
/// Entries are "blocks" of one instruction, giving the paper's modulo
/// indexing by branch PC.
///
/// # Errors
///
/// Returns an error when `entries / ways` is not a power of two.
pub fn btb_config(entries: u32, ways: u32) -> Result<CacheConfig, ConfigError> {
    CacheConfig::with_sets(entries / ways, ways, INSTRUCTION_BYTES)
}

impl<P: ReplacementPolicy> Btb<P> {
    /// Create an empty BTB.
    pub fn new(cfg: CacheConfig, policy: P) -> Btb<P> {
        Btb {
            entries: Cache::new(cfg, policy),
            targets: vec![0; cfg.frames()],
            stats: BtbStats::default(),
        }
    }

    /// Side-effect-free probe: the predicted target for the branch at
    /// `pc`, if an entry exists.
    pub fn predict(&self, pc: u64) -> Option<u64> {
        self.entries.locate(pc).map(|frame| self.targets[frame])
    }

    /// Process a **taken** branch at `pc` with actual target `target`:
    /// refresh or allocate its entry (subject to the policy's bypass
    /// decision) and record hit/miss. Returns `true` on a hit.
    pub fn lookup_and_update(&mut self, pc: u64, target: u64) -> bool {
        self.stats.lookups += 1;
        let (result, frame) = self.entries.access_locate(pc, pc);
        match result {
            fe_cache::AccessResult::Hit => {
                self.stats.hits += 1;
                if let Some(frame) = frame {
                    if self.targets[frame] != target {
                        self.stats.target_mismatches += 1;
                    }
                    self.targets[frame] = target;
                }
                true
            }
            fe_cache::AccessResult::Miss { evicted: _ } => {
                self.stats.misses += 1;
                // The fill overwrote the victim's frame, so its stale
                // target needs no separate removal.
                if let Some(frame) = frame {
                    self.targets[frame] = target;
                }
                false
            }
            fe_cache::AccessResult::Bypassed => {
                self.stats.misses += 1;
                false
            }
        }
    }

    /// Running statistics.
    pub fn stats(&self) -> BtbStats {
        self.stats
    }

    /// Reset statistics (after warm-up), preserving contents.
    pub fn reset_stats(&mut self) {
        self.stats = BtbStats::default();
        self.entries.reset_stats();
    }

    /// Restore the BTB to its freshly-constructed state (entries
    /// invalidated, targets and statistics zeroed, policy rewound),
    /// keeping every allocation. See [`Cache::reset`].
    pub fn reset(&mut self) {
        self.entries.reset();
        self.targets.fill(0);
        self.stats = BtbStats::default();
    }

    /// The underlying tag store (for efficiency tracking etc.).
    pub fn entries(&self) -> &Cache<P> {
        &self.entries
    }

    /// Mutable access to the underlying tag store.
    pub fn entries_mut(&mut self) -> &mut Cache<P> {
        &mut self.entries
    }
}

/// GHRP-driven BTB replacement (§III.E).
///
/// Holds a clone of the I-cache's [`SharedGhrp`]. On each BTB access the
/// branch's I-cache block metadata provides the signature; the shared
/// tables vote with the separately tuned BTB threshold; the entry's
/// prediction bit is refreshed. Victims are predicted-dead entries first,
/// then LRU. The shared history is *not* advanced by BTB accesses (the
/// I-cache access to the branch's block already advanced it), and the BTB
/// performs no table training of its own — that is what makes the BTB
/// adaptation nearly free (one bit per entry).
#[derive(Debug, Clone)]
// The bools are hot-path caches of independent GhrpConfig flags, not state.
#[allow(clippy::struct_excessive_bools)]
pub struct GhrpBtbPolicy {
    shared: SharedGhrp,
    ways: usize,
    /// I-cache block mask, to map a branch PC to its fetch block.
    icache_block_mask: u64,
    stamps: Vec<u64>,
    clock: u64,
    predicted_dead: Vec<bool>,
    /// Branch PC resident in each frame (simulator-side mirror, used to
    /// recompute fresh predictions during victim selection).
    frame_pc: Vec<Option<u64>>,
    current_pred: bool,
    // Immutable-after-construction config flags, cached out of the shared
    // state so the hot path skips a borrow + config copy per query.
    btb_enable_bypass: bool,
    fresh_victim_prediction: bool,
    absent_block_is_dead: bool,
    /// How many predictions fell back to the PC signature because the
    /// branch's block was absent from the I-cache.
    pub fallback_predictions: u64,
    /// Victims chosen by dead prediction.
    pub dead_victims: u64,
}

impl GhrpBtbPolicy {
    /// Fresh victim-scan dead prediction for the branch at `pc` (see
    /// [`ghrp_core::GhrpConfig::btb_absent_block_is_dead`] for the
    /// absent-block behaviour).
    fn predict_for_victim(&self, pc: u64) -> bool {
        let block = pc & self.icache_block_mask;
        self.shared
            .btb_victim_is_dead(block, pc >> 2, self.absent_block_is_dead)
    }

    /// Create the policy for a BTB of geometry `btb_cfg`, coupled to the
    /// I-cache GHRP `shared` state. `icache_block_bytes` must match the
    /// I-cache the shared predictor serves.
    ///
    /// # Panics
    ///
    /// Panics if `icache_block_bytes` is not a power of two.
    pub fn new(btb_cfg: CacheConfig, shared: SharedGhrp, icache_block_bytes: u64) -> GhrpBtbPolicy {
        assert!(
            icache_block_bytes.is_power_of_two(),
            "icache_block_bytes must be a power of two"
        );
        let gcfg = shared.config();
        GhrpBtbPolicy {
            shared,
            ways: btb_cfg.ways() as usize,
            icache_block_mask: !(icache_block_bytes - 1),
            stamps: vec![0; btb_cfg.frames()],
            clock: 0,
            predicted_dead: vec![false; btb_cfg.frames()],
            frame_pc: vec![None; btb_cfg.frames()],
            current_pred: false,
            btb_enable_bypass: gcfg.btb_enable_bypass,
            fresh_victim_prediction: gcfg.fresh_victim_prediction,
            absent_block_is_dead: gcfg.btb_absent_block_is_dead,
            fallback_predictions: 0,
            dead_victims: 0,
        }
    }

    fn touch(&mut self, set: usize, way: usize) {
        self.clock += 1;
        self.stamps[set * self.ways + way] = self.clock;
    }
}

impl ReplacementPolicy for GhrpBtbPolicy {
    fn on_access(&mut self, ctx: &AccessContext) {
        let block = ctx.addr & self.icache_block_mask;
        let (fallback, pred) = self.shared.btb_access_prediction(block, ctx.addr >> 2);
        if fallback {
            self.fallback_predictions += 1;
        }
        self.current_pred = pred;
    }

    fn on_hit(&mut self, way: usize, ctx: &AccessContext) {
        self.predicted_dead[ctx.set * self.ways + way] = self.current_pred;
        self.frame_pc[ctx.set * self.ways + way] = Some(ctx.addr);
        self.touch(ctx.set, way);
    }

    fn should_bypass(&mut self, _ctx: &AccessContext) -> bool {
        self.btb_enable_bypass && self.current_pred
    }

    fn choose_victim(&mut self, ctx: &AccessContext) -> usize {
        let base = ctx.set * self.ways;
        let fresh = self.fresh_victim_prediction;
        for w in 0..self.ways {
            let dead = if fresh {
                self.frame_pc[base + w].is_some_and(|pc| self.predict_for_victim(pc))
            } else {
                self.predicted_dead[base + w]
            };
            if dead {
                self.dead_victims += 1;
                return w;
            }
        }
        (0..self.ways)
            .min_by_key(|&w| self.stamps[base + w])
            .expect("at least one way")
    }

    fn on_evict(&mut self, way: usize, _victim_block: u64, ctx: &AccessContext) {
        self.predicted_dead[ctx.set * self.ways + way] = false;
        self.frame_pc[ctx.set * self.ways + way] = None;
    }

    fn on_fill(&mut self, way: usize, ctx: &AccessContext) {
        self.predicted_dead[ctx.set * self.ways + way] = self.current_pred;
        self.frame_pc[ctx.set * self.ways + way] = Some(ctx.addr);
        self.touch(ctx.set, way);
    }

    fn reset(&mut self) {
        // Per the trait contract this rewinds only the policy's own
        // state; the coupled `SharedGhrp` is reset by whoever owns the
        // I-cache/BTB pair (it is shared with the I-cache policy).
        self.stamps.fill(0);
        self.clock = 0;
        self.predicted_dead.fill(false);
        self.frame_pc.fill(None);
        self.current_pred = false;
        self.fallback_predictions = 0;
        self.dead_victims = 0;
    }

    fn name(&self) -> String {
        "GHRP".to_owned()
    }
}

impl fe_cache::policy::PolicyInvariants for GhrpBtbPolicy {
    fn check_invariants(&self) -> Result<(), String> {
        fe_cache::policy::check_lru_stack(&self.stamps, self.ways, self.clock)?;
        if self.predicted_dead.len() != self.stamps.len()
            || self.frame_pc.len() != self.stamps.len()
        {
            return Err("per-frame arrays disagree on the frame count".into());
        }
        self.shared.check_invariants()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fe_cache::policy::Lru;
    use ghrp_core::{BlockMeta, GhrpConfig};

    fn lru_btb(entries: u32, ways: u32) -> Btb<Lru> {
        let cfg = btb_config(entries, ways).unwrap();
        Btb::new(cfg, Lru::new(cfg))
    }

    #[test]
    fn modulo_indexing_separates_same_block_branches() {
        let cfg = btb_config(256, 8).unwrap();
        // Two branches 4 bytes apart (same 64B I-cache block) map to
        // different BTB sets.
        assert_ne!(cfg.set_of(0x1000), cfg.set_of(0x1004));
    }

    #[test]
    fn hit_after_allocate() {
        let mut btb = lru_btb(64, 4);
        assert!(!btb.lookup_and_update(0x4000, 0x5000));
        assert!(btb.lookup_and_update(0x4000, 0x5000));
        assert_eq!(btb.predict(0x4000), Some(0x5000));
        let s = btb.stats();
        assert_eq!((s.lookups, s.hits, s.misses), (2, 1, 1));
    }

    #[test]
    fn retarget_counts_mismatch() {
        let mut btb = lru_btb(64, 4);
        btb.lookup_and_update(0x4000, 0x5000);
        btb.lookup_and_update(0x4000, 0x6000);
        assert_eq!(btb.stats().target_mismatches, 1);
        assert_eq!(btb.predict(0x4000), Some(0x6000));
    }

    #[test]
    fn eviction_removes_target() {
        // 1-way, 16 sets: two PCs 16 instructions apart collide.
        let mut btb = lru_btb(16, 1);
        let a = 0x1000;
        let b = a + 16 * 4;
        btb.lookup_and_update(a, 0xAA);
        btb.lookup_and_update(b, 0xBB);
        assert_eq!(btb.predict(a), None, "a was evicted");
        assert!(!btb.lookup_and_update(a, 0xAA), "re-allocate misses");
    }

    #[test]
    fn capacity_pressure_produces_misses() {
        let mut btb = lru_btb(64, 4);
        // 128 distinct branches round-robin: 2x capacity → mostly misses.
        for round in 0..10 {
            for i in 0..128u64 {
                btb.lookup_and_update(0x1000 + i * 4, 0x9000 + i);
            }
            let _ = round;
        }
        let s = btb.stats();
        assert!(s.misses > s.hits, "misses {} hits {}", s.misses, s.hits);
    }

    fn ghrp_btb(shared: &SharedGhrp) -> Btb<GhrpBtbPolicy> {
        let cfg = btb_config(16, 2).unwrap();
        Btb::new(cfg, GhrpBtbPolicy::new(cfg, shared.clone(), 64))
    }

    #[test]
    fn ghrp_btb_uses_icache_metadata_signature() {
        let cfg = GhrpConfig {
            btb_enable_bypass: true, // this test exercises the bypass path
            ..GhrpConfig::default()
        };
        let shared = SharedGhrp::new(cfg, 6);
        // Train a signature to saturation and attach it to block 0x1000.
        let sig = 0x123;
        for _ in 0..3 {
            shared.train(sig, true);
        }
        shared.set_meta(
            0x1000,
            BlockMeta {
                signature: sig,
                predicted_dead: true,
            },
        );
        let mut btb = ghrp_btb(&shared);
        // Bypass: branch in block 0x1000 predicts dead → never allocated.
        assert!(!btb.lookup_and_update(0x1004, 0x42));
        assert_eq!(btb.predict(0x1004), None, "bypassed, not allocated");
        // A branch in a block with no metadata falls back to PC signature
        // (untrained → live → allocated).
        assert!(!btb.lookup_and_update(0x2004, 0x43));
        assert!(btb.lookup_and_update(0x2004, 0x43));
        assert!(btb.entries().policy().fallback_predictions > 0);
    }

    #[test]
    fn ghrp_btb_evicts_predicted_dead_first() {
        let cfg = GhrpConfig {
            btb_enable_bypass: false,
            ..GhrpConfig::default()
        };
        let shared = SharedGhrp::new(cfg, 6);
        let mut btb = ghrp_btb(&shared);
        // Two branches in one BTB set (8 sets × 2 ways; pc step = 8*4
        // bytes). Both allocate live.
        let a = 0x1000u64;
        let b = a + 8 * 4;
        let c = b + 8 * 4;
        btb.lookup_and_update(a, 1);
        btb.lookup_and_update(b, 2);
        // Mark a's block metadata dead with a saturated signature.
        let sig = 0x77;
        for _ in 0..3 {
            shared.train(sig, true);
        }
        shared.set_meta(
            a & !63,
            BlockMeta {
                signature: sig,
                predicted_dead: true,
            },
        );
        // Refresh a's prediction bit (hit) so the entry is marked dead,
        // then insert c — the victim must be a (dead), not LRU order.
        btb.lookup_and_update(a, 1); // a is now MRU but predicted dead
        btb.lookup_and_update(c, 3);
        assert_eq!(btb.predict(a), None, "dead-predicted entry evicted");
        assert_eq!(btb.predict(b), Some(2), "LRU entry survived");
    }

    /// The nominal geometry the storage audit budgets against: 4,096
    /// entries in 1,024 sets of 4 ways.
    #[test]
    fn paper_geometry_is_valid() {
        let cfg = paper_btb_config().unwrap();
        assert_eq!(cfg.sets(), 1024);
        assert_eq!(cfg.ways(), 4);
        assert_eq!(cfg.frames(), 4096);
    }
}
