//! CLI-level tests for the `fe-sim` binary, driven via `CARGO_BIN_EXE`.

#![forbid(unsafe_code)]

use std::process::{Command, Output};

fn fe_sim(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_fe-sim"))
        .args(args)
        .output()
        .expect("spawn fe-sim")
}

#[test]
fn unknown_policy_lists_every_spelling_and_exits_2() {
    let out = fe_sim(&[
        "run",
        "--category",
        "short_mobile",
        "--instr",
        "1000",
        "--policy",
        "bogus",
    ]);
    assert_eq!(out.status.code(), Some(2), "exit code");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown policy `bogus`"), "stderr:\n{err}");
    // The full spelling list, composite grammar included.
    for needle in [
        "lru",
        "srrip",
        "ghrp",
        "opt|belady",
        "duel(",
        "phase(",
        "window=N",
    ] {
        assert!(err.contains(needle), "stderr is missing `{needle}`:\n{err}");
    }
}

#[test]
fn malformed_composite_policy_also_exits_2_with_help() {
    let out = fe_sim(&[
        "run",
        "--category",
        "short_mobile",
        "--instr",
        "1000",
        "--policy",
        "duel(ghrp,opt)",
    ]);
    assert_eq!(out.status.code(), Some(2), "exit code");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("valid policies"), "stderr:\n{err}");
}

#[test]
fn composite_policy_runs_end_to_end() {
    let out = fe_sim(&[
        "run",
        "--category",
        "short_mobile",
        "--seed",
        "3",
        "--instr",
        "20000",
        "--policy",
        "duel(ghrp,srrip,sdbp)",
        "--json",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("\"Duel(GHRP,SRRIP,SDBP)\""),
        "stdout:\n{stdout}"
    );
}
