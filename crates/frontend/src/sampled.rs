//! SimPoint-style phase-sampled replay.
//!
//! Full replay costs one pass over every trace for every
//! (geometry-group, policy-chunk) task; the paper-scale sweeps we want
//! (hundreds of geometry × policy points) are wall-clock-intractable
//! that way. This module implements the classic phase-sampling recipe
//! over the corpus signature sidecars ([`fe_trace::signature`]):
//!
//! 1. group the trace's base windows into at most `windows` sampling
//!    intervals covering the **measured region** (the same second half
//!    of the trace, capped, that full replay measures — sampling the
//!    warmup half would estimate a different quantity);
//! 2. cluster the intervals' normalized signature vectors with the
//!    deterministic k-means ([`fe_trace::sample::kmeans`]), seeded from
//!    the trace name, and keep one representative interval per cluster;
//! 3. replay only the representatives ([`run_lanes_sampled`]), each
//!    preceded by a `warmup` instruction prefix of functional warming,
//!    and combine per-interval MPKI into a cluster-weight-averaged
//!    estimate with a reported heterogeneity-based error estimate.
//!
//! When `k` covers every interval (or the trace is too small to
//! sample), the plan is **exact** and the drivers delegate to the full
//! single-pass engine — bit-identical to unsampled replay, which is the
//! anchor the equivalence proptests pin.
//!
//! Everything is deterministic: plans are a pure function of
//! (sidecar bytes, config, params), so repeated sampled runs are
//! byte-identical.

#![forbid(unsafe_code)]

use crate::engine::{run_lanes_multi, run_lanes_sampled, EngineArena, SampledSegment};
use crate::policy::PolicyKind;
use crate::schedule::{self, SchedulerStats};
use crate::simulator::{RunResult, SimConfig};
use crate::stats;
use fe_cache::CacheConfig;
use fe_trace::corpus::{fnv1a64, CorpusTrace, SuiteCorpus};
use fe_trace::sample::{kmeans, KMEANS_MAX_ITERATIONS};
use fe_trace::signature::{
    compute_signatures, splitmix64, TraceSignatures, BASE_WINDOW_INSTRUCTIONS, SIGNATURE_DIM,
};
use fe_trace::synth::WorkloadSpec;
use serde::{Deserialize, Serialize};

/// User-facing sampling knobs (`--sampled=windows,k,warmup`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SampleParams {
    /// Maximum sampling intervals the measured region is grouped into.
    pub windows: u32,
    /// Clusters (= replayed representatives) per trace.
    pub k: u32,
    /// Functional-warming instructions replayed before each
    /// representative with measurement off.
    pub warmup: u64,
}

impl Default for SampleParams {
    fn default() -> SampleParams {
        SampleParams {
            windows: 32,
            k: 6,
            warmup: 2048,
        }
    }
}

impl std::fmt::Display for SampleParams {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "w{},k{},u{}", self.windows, self.k, self.warmup)
    }
}

/// Aggregated sampling observability attached to a sampled
/// [`crate::experiment::SuiteResult`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SampledInfo {
    /// Instructions actually replayed (warmup + measured) across all
    /// traces.
    pub replayed_instructions: u64,
    /// Full-replay instruction total of the same traces.
    pub total_instructions: u64,
    /// Worst per-trace error estimate (see [`SamplePlan::est_error`]).
    pub est_error: f64,
    /// Whether every trace's plan degenerated to exact full replay.
    pub exact: bool,
}

impl SampledInfo {
    /// Full-replay instructions per replayed instruction — the
    /// per-trace work reduction the sampler achieved.
    #[must_use]
    pub fn speedup_proxy(&self) -> f64 {
        if self.replayed_instructions == 0 {
            1.0
        } else {
            self.total_instructions as f64 / self.replayed_instructions as f64
        }
    }
}

/// A per-trace sampling plan: which record ranges to replay and how to
/// weight their measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplePlan {
    /// `true` when the plan is full replay (small trace, or `k` covers
    /// every interval): the drivers delegate to the unsampled engine
    /// and results are bit-identical to it.
    pub exact: bool,
    /// Replay segments in ascending trace order (empty when `exact`).
    pub segments: Vec<SampledSegment>,
    /// Heuristic error estimate: the cluster-weighted mean L1 distance
    /// between each interval's signature vector and its
    /// representative's, halved (total-variation style, in `[0, 1]`).
    /// Homogeneous phases → near 0; a trace whose intervals scatter far
    /// from their representatives reports a large value.
    pub est_error: f64,
    /// Instructions the plan replays (warmup + measured).
    pub replayed_instructions: u64,
    /// Full-replay instruction total of the trace.
    pub total_instructions: u64,
}

/// Build the sampling plan for one corpus trace.
///
/// Signatures come from the trace's sidecar; a trace without one (or
/// with a malformed one — its checksum is already covered by corpus
/// verification) falls back to recomputing them on the fly, so sampling
/// never hard-fails on an old cache.
#[must_use]
pub fn build_plan(trace: &CorpusTrace, base: &SimConfig, params: &SampleParams) -> SamplePlan {
    let sigs = trace.signatures().unwrap_or_else(|_| {
        compute_signatures(trace.cursor(), BASE_WINDOW_INSTRUCTIONS, SIGNATURE_DIM)
    });
    plan_from_signatures(&sigs, trace.name(), trace.instructions(), base, params)
}

/// Plan construction from already-parsed signatures (unit-testable
/// without a corpus).
#[allow(clippy::too_many_lines)] // one linear pipeline: group -> cluster -> weight -> segment; runs once per trace
fn plan_from_signatures(
    sigs: &TraceSignatures,
    name: &str,
    trace_instructions: u64,
    base: &SimConfig,
    params: &SampleParams,
) -> SamplePlan {
    let total = sigs.total_instructions();
    let exact = |total: u64| SamplePlan {
        exact: true,
        segments: Vec::new(),
        est_error: 0.0,
        replayed_instructions: total,
        total_instructions: total,
    };
    let nwin = sigs.window_count();
    if nwin == 0 {
        return exact(total);
    }
    let wins = sigs.windows();
    // Sample only the measured region: full replay warms on the first
    // half of the trace (capped) and measures the rest, so the sampled
    // estimate must target the same interval population.
    let measure_start = (trace_instructions / 2).min(base.warmup_cap);
    let w0 = wins
        .partition_point(|w| w.instr_start < measure_start)
        .min(nwin - 1);
    let nmeasured = nwin - w0;
    // Group consecutive base windows into at most `windows` intervals.
    let group = nmeasured.div_ceil(params.windows.max(1) as usize).max(1);
    let ngroups = nmeasured.div_ceil(group);
    if params.k as usize >= ngroups {
        // Every interval would be its own representative: sampling wins
        // nothing, and full replay is the exact answer.
        return exact(total);
    }

    // Normalized signature vector per interval (base-window sums).
    let dim = sigs.dim() as usize;
    let instr_at = |b: usize| {
        if b < nwin {
            wins[b].instr_start
        } else {
            total
        }
    };
    let rec_at = |b: usize| {
        if b < nwin {
            wins[b].rec_start
        } else {
            sigs.total_records()
        }
    };
    let mut bounds: Vec<(usize, usize)> = Vec::with_capacity(ngroups);
    let mut vectors: Vec<f64> = Vec::with_capacity(ngroups * dim);
    let mut sum = vec![0u64; dim];
    for g in 0..ngroups {
        let lo = w0 + g * group;
        let hi = (lo + group).min(nwin);
        sum.fill(0);
        for b in lo..hi {
            for (s, &c) in sum.iter_mut().zip(sigs.counts_of(b)) {
                *s += u64::from(c);
            }
        }
        let mass: u64 = sum.iter().sum();
        let norm = if mass == 0 { 1.0 } else { mass as f64 };
        vectors.extend(sum.iter().map(|&s| s as f64 / norm));
        bounds.push((lo, hi));
    }

    // Deterministic clustering, seeded from the trace name alone.
    let seed = splitmix64(fnv1a64(name.as_bytes()));
    let clustering = kmeans(
        &vectors,
        dim,
        params.k as usize,
        seed,
        KMEANS_MAX_ITERATIONS,
    );
    let k = clustering.k();

    // Cluster weights: measured instructions, not interval counts — the
    // last interval can be shorter than the rest.
    let glen = |g: usize| instr_at(bounds[g].1) - instr_at(bounds[g].0);
    let total_measured: u64 = (0..ngroups).map(glen).sum();
    if total_measured == 0 {
        return exact(total);
    }
    let mut cluster_instr = vec![0u64; k];
    for g in 0..ngroups {
        let c = clustering.assignments[g] as usize;
        cluster_instr[c] += glen(g);
    }

    // Error estimate: weighted mean L1 distance to the representative,
    // halved (the vectors are L1-normalized, so this lives in [0, 1]).
    let mut est_error = 0.0;
    for g in 0..ngroups {
        let c = clustering.assignments[g] as usize;
        let rep = clustering.representatives[c] as usize;
        let l1: f64 = vectors[g * dim..(g + 1) * dim]
            .iter()
            .zip(&vectors[rep * dim..(rep + 1) * dim])
            .map(|(a, b)| (a - b).abs())
            .sum();
        est_error += (glen(g) as f64 / total_measured as f64) * l1 / 2.0;
    }

    // One segment per representative, in ascending trace order, each
    // with up to `warmup` instructions of functional warming walked back
    // in whole base windows (never overlapping the previous segment —
    // replayed regions are disjoint).
    let mut reps: Vec<usize> = clustering
        .representatives
        .iter()
        .map(|&r| r as usize)
        .collect();
    reps.sort_unstable();
    let mut segments = Vec::with_capacity(k);
    let mut replayed = 0u64;
    let mut prev_end_b = 0usize;
    for &g in &reps {
        let (lo_b, hi_b) = bounds[g];
        let m_start = instr_at(lo_b);
        let mut warm_b = lo_b;
        while warm_b > prev_end_b && m_start - instr_at(warm_b) < params.warmup {
            warm_b -= 1;
        }
        let c = clustering.assignments[g] as usize;
        let weight = cluster_instr[c] as f64 / total_measured as f64;
        segments.push(SampledSegment {
            rec_lo: rec_at(warm_b),
            rec_hi: rec_at(hi_b),
            warmup_instructions: m_start - instr_at(warm_b),
            weight,
        });
        replayed += instr_at(hi_b) - instr_at(warm_b);
        prev_end_b = hi_b;
    }

    SamplePlan {
        exact: false,
        segments,
        est_error,
        replayed_instructions: replayed,
        total_instructions: total,
    }
}

/// Weighted per-policy metrics of one (trace, policy-slice) task.
#[derive(Debug, Clone, Default)]
struct PartialRow {
    instructions: u64,
    branch_mpki: f64,
    icache_mpki: Vec<f64>,
    btb_mpki: Vec<f64>,
}

impl PartialRow {
    fn from_full(results: &[RunResult]) -> PartialRow {
        PartialRow {
            instructions: results.first().map_or(0, |r| r.instructions),
            branch_mpki: results.first().map_or(0.0, RunResult::branch_mpki),
            icache_mpki: results.iter().map(RunResult::icache_mpki).collect(),
            btb_mpki: results.iter().map(RunResult::btb_mpki).collect(),
        }
    }

    /// Cluster-weight-average one geometry's per-segment results
    /// (`seg_results[s][p]`, ascending segment order).
    fn from_segments(seg_results: &[&[RunResult]], segments: &[SampledSegment]) -> PartialRow {
        let npols = seg_results.first().map_or(0, |r| r.len());
        let mut out = PartialRow {
            instructions: 0,
            branch_mpki: 0.0,
            icache_mpki: vec![0.0; npols],
            btb_mpki: vec![0.0; npols],
        };
        for (results, seg) in seg_results.iter().zip(segments) {
            let measured = results.first().map_or(0, |r| r.instructions);
            out.instructions += measured;
            // A segment whose measurement never started contributes
            // nothing (its MPKI would be 0/0).
            if measured == 0 || seg.weight == 0.0 {
                continue;
            }
            out.branch_mpki += seg.weight * results.first().map_or(0.0, RunResult::branch_mpki);
            for (p, r) in results.iter().enumerate() {
                out.icache_mpki[p] += seg.weight * r.icache_mpki();
                out.btb_mpki[p] += seg.weight * r.btb_mpki();
            }
        }
        out
    }
}

/// Aggregate per-trace plans into the suite-level [`SampledInfo`].
fn info_from_plans(plans: &[SamplePlan]) -> SampledInfo {
    SampledInfo {
        replayed_instructions: plans.iter().map(|p| p.replayed_instructions).sum(),
        total_instructions: plans.iter().map(|p| p.total_instructions).sum(),
        est_error: plans.iter().map(|p| p.est_error).fold(0.0, f64::max),
        exact: plans.iter().all(|p| p.exact),
    }
}

/// Phase-sampled counterpart of [`crate::experiment::run_suite_from`]
/// over a corpus source.
///
/// Per-trace plans are built once (from the signature sidecars), then
/// the same chunk-major task grid as the full-suite driver drains over
/// `threads` workers. Traces whose plan is exact replay in full through
/// [`run_lanes_multi`] — bit-identical to the unsampled path — and
/// sampled traces replay only their plan's segments. The result carries
/// a [`SampledInfo`] describing the achieved work reduction and error
/// estimate.
///
/// # Panics
///
/// Panics if the corpus does not match `specs` (length or names), if
/// `policies` contains an offline policy and any plan samples, or if a
/// worker thread panics.
pub fn run_suite_sampled(
    specs: &[WorkloadSpec],
    base: &SimConfig,
    policies: &[PolicyKind],
    threads: usize,
    corpus: &SuiteCorpus,
    params: &SampleParams,
) -> crate::experiment::SuiteResult {
    crate::experiment::SuiteSource::Corpus(corpus).validate(specs);
    let workers = schedule::resolve_threads(threads);
    let nspecs = specs.len();
    let npols = policies.len();
    let plans: Vec<SamplePlan> = (0..nspecs)
        .map(|s| build_plan(corpus.trace(s), base, params))
        .collect();
    let nchunks = workers.div_ceil(nspecs.max(1)).clamp(1, npols.max(1));
    let chunk_bounds = crate::experiment::split_bounds(npols, nchunks);

    let (chunk_results, scheduler) = schedule::run_grid(
        nchunks * nspecs,
        workers,
        |_| EngineArena::new(),
        |arena, t| {
            let c = t / nspecs.max(1);
            let s = t - c * nspecs.max(1);
            let (lo, hi) = chunk_bounds[c];
            let trace = corpus.trace(s);
            let plan = &plans[s];
            if plan.exact {
                // lint:allow(panic-path): arena-build-time BTB geometry validation in build_pair, documented `# Panics`; never on the per-record path
                let results = run_lanes_multi(
                    base,
                    std::slice::from_ref(&base.icache),
                    &policies[lo..hi],
                    true,
                    trace,
                    arena,
                )
                .pop()
                .unwrap_or_default();
                PartialRow::from_full(&results)
            } else {
                // lint:allow(panic-path): arena-build-time BTB geometry validation in build_pair, documented `# Panics`; never on the per-record path
                let seg_results = run_lanes_sampled(
                    base,
                    std::slice::from_ref(&base.icache),
                    &policies[lo..hi],
                    true,
                    trace,
                    &plan.segments,
                    arena,
                );
                let per_geometry: Vec<&[RunResult]> =
                    seg_results.iter().map(|g| g[0].as_slice()).collect();
                PartialRow::from_segments(&per_geometry, &plan.segments)
            }
        },
    );

    let rows = specs
        .iter()
        .enumerate()
        .map(|(s, spec)| {
            let mut icache_mpki = Vec::with_capacity(npols);
            let mut btb_mpki = Vec::with_capacity(npols);
            for c in 0..nchunks {
                let part = &chunk_results[c * nspecs + s];
                icache_mpki.extend_from_slice(&part.icache_mpki);
                btb_mpki.extend_from_slice(&part.btb_mpki);
            }
            let first = &chunk_results[s];
            crate::experiment::TraceRow {
                name: spec.name.clone(),
                category: spec.category,
                instructions: first.instructions,
                icache_mpki,
                btb_mpki,
                branch_mpki: first.branch_mpki,
            }
        })
        .collect();
    crate::experiment::SuiteResult {
        policies: policies.to_vec(),
        rows,
        scheduler,
        sampled: Some(info_from_plans(&plans)),
    }
}

/// Phase-sampled counterpart of [`crate::sweep::run_sweep_from`] over a
/// corpus source, with optional per-lane BTB measurement (wide sweeps
/// score BTB geometries too).
///
/// Same geometry-fused, group-major grid as the full sweep; exact plans
/// delegate to [`run_lanes_multi`] per geometry group, sampled plans
/// replay their segments once per group. Returns per-point I-cache and
/// BTB means plus the aggregated [`SampledInfo`].
///
/// # Panics
///
/// As [`run_suite_sampled`], plus invalid sweep geometries.
#[allow(clippy::too_many_arguments)]
pub fn run_sweep_sampled(
    specs: &[WorkloadSpec],
    base: &SimConfig,
    policies: &[PolicyKind],
    geometries: &[(u64, u32)],
    threads: usize,
    corpus: &SuiteCorpus,
    params: &SampleParams,
    measure_btb: bool,
) -> (crate::sweep::SweepResult, SampledInfo) {
    crate::experiment::SuiteSource::Corpus(corpus).validate(specs);
    let workers = schedule::resolve_threads(threads);
    let nspecs = specs.len();
    let ngeoms = geometries.len();
    let npols = policies.len();
    let plans: Vec<SamplePlan> = (0..nspecs)
        .map(|s| build_plan(corpus.trace(s), base, params))
        .collect();
    let info = info_from_plans(&plans);
    if ngeoms == 0 {
        return (
            crate::sweep::SweepResult {
                policies: policies.to_vec(),
                points: Vec::new(),
                scheduler: SchedulerStats::default(),
            },
            info,
        );
    }
    let icaches: Vec<CacheConfig> = geometries
        .iter()
        .map(|&(capacity, ways)| {
            CacheConfig::with_capacity(capacity, ways, base.icache.block_bytes())
                // lint:allow(no-panic): once-per-sweep geometry validation before any replay, documented `# Panics`; mirrors the full sweep's contract
                .expect("valid sweep geometry")
        })
        .collect();
    let ngroups = workers.div_ceil(nspecs.max(1)).clamp(1, ngeoms);
    let group_bounds = crate::experiment::split_bounds(ngeoms, ngroups);

    // Task t = group-major (g · nspecs + s); each task yields one
    // PartialRow per geometry of its group.
    let (group_results, scheduler) = schedule::run_grid(
        ngroups * nspecs,
        workers,
        |_| EngineArena::new(),
        |arena, t| {
            let g = t / nspecs.max(1);
            let s = t - g * nspecs.max(1);
            let (lo, hi) = group_bounds[g];
            let trace = corpus.trace(s);
            let plan = &plans[s];
            if plan.exact {
                let lanes = &icaches[lo..hi];
                // lint:allow(panic-path): arena-build-time BTB geometry validation in build_pair, documented `# Panics`; never on the per-record path
                let results = run_lanes_multi(base, lanes, policies, measure_btb, trace, arena);
                results
                    .iter()
                    .map(|geo| PartialRow::from_full(geo))
                    .collect::<Vec<_>>()
            } else {
                // lint:allow(panic-path): arena-build-time BTB geometry validation in build_pair, documented `# Panics`; never on the per-record path
                let seg_results = run_lanes_sampled(
                    base,
                    &icaches[lo..hi],
                    policies,
                    measure_btb,
                    trace,
                    &plan.segments,
                    arena,
                );
                (0..hi - lo)
                    .map(|gi| {
                        let per_geometry: Vec<&[RunResult]> =
                            seg_results.iter().map(|seg| seg[gi].as_slice()).collect();
                        PartialRow::from_segments(&per_geometry, &plan.segments)
                    })
                    .collect::<Vec<_>>()
            }
        },
    );

    let mut points = Vec::with_capacity(ngeoms);
    let mut column = vec![0.0f64; nspecs];
    for (gi, &(capacity, ways)) in geometries.iter().enumerate() {
        let (g, (lo, _)) = group_bounds
            .iter()
            .enumerate()
            .map(|(g, &b)| (g, b))
            .find(|&(_, (lo, hi))| lo <= gi && gi < hi)
            .unwrap_or((0, (0, 0)));
        let mut mean = |metric: &dyn Fn(&PartialRow) -> &Vec<f64>, p: usize| {
            for (s, dst) in column.iter_mut().enumerate() {
                *dst = metric(&group_results[g * nspecs + s][gi - lo])[p];
            }
            stats::mean(&column)
        };
        // lint:allow(alloc-in-hot-loop): per-point result vectors — one allocation per sweep geometry, not per replayed record
        let icache_means: Vec<f64> = (0..npols).map(|p| mean(&|r| &r.icache_mpki, p)).collect();
        // lint:allow(alloc-in-hot-loop): per-point result vectors — one allocation per sweep geometry, not per replayed record
        let btb_means: Vec<f64> = (0..npols).map(|p| mean(&|r| &r.btb_mpki, p)).collect();
        points.push(crate::sweep::SweepPoint {
            capacity_bytes: capacity,
            ways,
            icache_means,
            btb_means,
        });
    }
    (
        crate::sweep::SweepResult {
            policies: policies.to_vec(),
            points,
            scheduler,
        },
        info,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{run_suite_from, SuiteSource};
    use fe_trace::corpus::{Corpus, CorpusBuilder};
    use fe_trace::synth::suite;

    fn corpus_for(specs: &[WorkloadSpec]) -> SuiteCorpus {
        let mut b = CorpusBuilder::new();
        for s in specs {
            b.push_synthetic(&s.generate()).unwrap();
        }
        SuiteCorpus::from_corpus(&Corpus::from_bytes(b.finish()).unwrap())
    }

    fn specs(n: usize, instr: u64) -> Vec<WorkloadSpec> {
        suite(n, 42)
            .into_iter()
            .map(|s| s.instructions(instr))
            .collect()
    }

    #[test]
    fn plans_are_deterministic() {
        let specs = specs(2, 150_000);
        let corpus = corpus_for(&specs);
        let base = SimConfig::paper_default();
        let params = SampleParams::default();
        let a: Vec<SamplePlan> = (0..2)
            .map(|s| build_plan(corpus.trace(s), &base, &params))
            .collect();
        let b: Vec<SamplePlan> = (0..2)
            .map(|s| build_plan(corpus.trace(s), &base, &params))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn plan_segments_are_disjoint_ascending_and_weighted() {
        let specs = specs(1, 200_000);
        let corpus = corpus_for(&specs);
        let base = SimConfig::paper_default();
        let params = SampleParams {
            windows: 16,
            k: 4,
            warmup: 2048,
        };
        let plan = build_plan(corpus.trace(0), &base, &params);
        assert!(!plan.exact, "200k instructions should be sampleable");
        assert_eq!(plan.segments.len(), 4);
        for pair in plan.segments.windows(2) {
            assert!(pair[0].rec_hi <= pair[1].rec_lo, "segments overlap");
        }
        let wsum: f64 = plan.segments.iter().map(|s| s.weight).sum();
        assert!((wsum - 1.0).abs() < 1e-9, "weights sum to {wsum}");
        assert!(plan.replayed_instructions < plan.total_instructions);
        assert!(plan.est_error >= 0.0 && plan.est_error <= 1.0);
    }

    #[test]
    fn huge_k_plan_is_exact_and_delegates_bit_identically() {
        let specs = specs(3, 100_000);
        let corpus = corpus_for(&specs);
        let base = SimConfig::paper_default();
        let pols = [PolicyKind::Lru, PolicyKind::Ghrp];
        let params = SampleParams {
            windows: 8,
            k: 8, // k = windows: every interval its own representative
            warmup: 1024,
        };
        let sampled = run_suite_sampled(&specs, &base, &pols, 2, &corpus, &params);
        let full = run_suite_from(&specs, &base, &pols, 2, SuiteSource::Corpus(&corpus));
        assert_eq!(sampled, full);
        let info = sampled.sampled.unwrap();
        assert!(info.exact);
        assert_eq!(info.replayed_instructions, info.total_instructions);
    }

    #[test]
    fn sampled_suite_is_deterministic_across_threads_and_repeats() {
        let specs = specs(2, 150_000);
        let corpus = corpus_for(&specs);
        let base = SimConfig::paper_default();
        let pols = [PolicyKind::Lru, PolicyKind::Srrip];
        let params = SampleParams {
            windows: 16,
            k: 3,
            warmup: 2048,
        };
        let serial = run_suite_sampled(&specs, &base, &pols, 1, &corpus, &params);
        let parallel = run_suite_sampled(&specs, &base, &pols, 6, &corpus, &params);
        let again = run_suite_sampled(&specs, &base, &pols, 6, &corpus, &params);
        assert_eq!(serial, parallel);
        assert_eq!(parallel, again);
        let info = serial.sampled.unwrap();
        assert!(!info.exact);
        assert!(info.speedup_proxy() > 1.0);
    }

    #[test]
    fn sampled_sweep_matches_full_when_exact_and_reports_btb() {
        let specs = specs(2, 80_000);
        let corpus = corpus_for(&specs);
        let base = SimConfig::paper_default();
        let pols = [PolicyKind::Lru, PolicyKind::Ghrp];
        let geoms = [(8 * 1024, 4), (32 * 1024, 8)];
        let params = SampleParams {
            windows: 4,
            k: 4,
            warmup: 1024,
        };
        let (sampled, info) =
            run_sweep_sampled(&specs, &base, &pols, &geoms, 2, &corpus, &params, true);
        assert!(info.exact);
        let full = crate::sweep::run_sweep_with(
            &specs,
            &base,
            &pols,
            &geoms,
            2,
            SuiteSource::Corpus(&corpus),
            true,
        );
        assert_eq!(sampled, full);
        assert!(sampled
            .points
            .iter()
            .all(|p| p.btb_means.iter().all(|&m| m > 0.0)));
    }

    #[test]
    fn sampled_mpki_stays_within_calibrated_error_bound() {
        // Seeded accuracy pin at unit-test scale. At 200k instructions
        // the intervals are tiny (a handful of 4k-instruction base
        // windows), so aggressive sampling has real representative and
        // cold-start bias; the pin asserts the reported heterogeneity
        // estimate scales that bias: |sampled - full| stays within
        // C * est_error * (sampled + 1 MPKI) with C calibrated to ~2x
        // margin over the observed seeds. The <1% frontier claim lives
        // in lab_sampled_fidelity's exact corner, not here.
        let specs = specs(2, 200_000);
        let corpus = corpus_for(&specs);
        let base = SimConfig::paper_default();
        let pols = [PolicyKind::Lru];
        let params = SampleParams {
            windows: 24,
            k: 6,
            warmup: 4096,
        };
        let sampled = run_suite_sampled(&specs, &base, &pols, 2, &corpus, &params);
        let full = run_suite_from(&specs, &base, &pols, 2, SuiteSource::Corpus(&corpus));
        for (i, (s, f)) in sampled.rows.iter().zip(&full.rows).enumerate() {
            let plan = build_plan(corpus.trace(i), &base, &params);
            let (sm, fm) = (s.icache_mpki[0], f.icache_mpki[0]);
            let bound = 10.0 * plan.est_error * (sm + 1.0);
            assert!(
                (sm - fm).abs() <= bound,
                "{}: sampled {sm} vs full {fm}, |drift| {} exceeds bound {bound}",
                s.name,
                (sm - fm).abs()
            );
        }
    }
}
