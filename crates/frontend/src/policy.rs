//! Runtime policy selection: building matched I-cache/BTB policy pairs.

#![forbid(unsafe_code)]

use fe_btb::{btb_config, Btb, GhrpBtbPolicy};
use fe_cache::policy::{BeladyOpt, Drrip, Fifo, Lru, RandomPolicy, Srrip};
use fe_cache::{Cache, CacheConfig, ReplacementPolicy};
use fe_sdbp::{CounterDbpPolicy, SdbpConfig, SdbpPolicy, ShipConfig, ShipPolicy};
use ghrp_core::{GhrpConfig, GhrpPolicy, SharedGhrp};
use serde::{Deserialize, Serialize};

/// The replacement policies under study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Least-recently-used (the paper's baseline).
    Lru,
    /// First-in-first-out.
    Fifo,
    /// Uniform random victims.
    Random,
    /// Static re-reference interval prediction (SRRIP-HP).
    Srrip,
    /// Dynamic RRIP (set-dueling SRRIP vs BRRIP) — extension baseline.
    Drrip,
    /// Signature-based hit predictor (SHiP-PC) — extension baseline.
    Ship,
    /// Counter-based (AIP-style) dead block prediction — extension
    /// baseline (§II.B).
    CounterDbp,
    /// Modified sampling dead block prediction.
    Sdbp,
    /// Global history reuse prediction — the paper's contribution.
    Ghrp,
    /// Belady's OPT (offline oracle; bound studies only, not in the paper).
    Opt,
}

impl PolicyKind {
    /// The five policies the paper's figures compare.
    pub const PAPER_SET: &'static [PolicyKind] = &[
        PolicyKind::Lru,
        PolicyKind::Random,
        PolicyKind::Srrip,
        PolicyKind::Sdbp,
        PolicyKind::Ghrp,
    ];

    /// Every online policy (excludes the offline oracle).
    pub const ALL_ONLINE: &'static [PolicyKind] = &[
        PolicyKind::Lru,
        PolicyKind::Fifo,
        PolicyKind::Random,
        PolicyKind::Srrip,
        PolicyKind::Drrip,
        PolicyKind::Ship,
        PolicyKind::CounterDbp,
        PolicyKind::Sdbp,
        PolicyKind::Ghrp,
    ];

    /// Parse from the names used on experiment command lines.
    pub fn parse(s: &str) -> Option<PolicyKind> {
        match s.to_ascii_lowercase().as_str() {
            "lru" => Some(PolicyKind::Lru),
            "fifo" => Some(PolicyKind::Fifo),
            "random" | "rand" => Some(PolicyKind::Random),
            "srrip" => Some(PolicyKind::Srrip),
            "drrip" => Some(PolicyKind::Drrip),
            "ship" => Some(PolicyKind::Ship),
            "counterdbp" | "aip" => Some(PolicyKind::CounterDbp),
            "sdbp" => Some(PolicyKind::Sdbp),
            "ghrp" => Some(PolicyKind::Ghrp),
            "opt" | "belady" => Some(PolicyKind::Opt),
            _ => None,
        }
    }

    /// Whether this policy needs the full block sequence ahead of time.
    pub fn is_offline(self) -> bool {
        self == PolicyKind::Opt
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PolicyKind::Lru => "LRU",
            PolicyKind::Fifo => "FIFO",
            PolicyKind::Random => "Random",
            PolicyKind::Srrip => "SRRIP",
            PolicyKind::Drrip => "DRRIP",
            PolicyKind::Ship => "SHiP",
            PolicyKind::CounterDbp => "CounterDBP",
            PolicyKind::Sdbp => "SDBP",
            PolicyKind::Ghrp => "GHRP",
            PolicyKind::Opt => "OPT",
        };
        f.write_str(s)
    }
}

/// A matched I-cache + BTB pair built for one policy, plus the shared GHRP
/// handle when the policy is GHRP (the simulator uses it for commit-time
/// history retirement and misprediction recovery).
pub struct FrontendPair {
    /// The instruction cache.
    pub icache: Cache<Box<dyn ReplacementPolicy>>,
    /// The branch target buffer.
    pub btb: Btb<Box<dyn ReplacementPolicy>>,
    /// Present only for GHRP.
    pub ghrp: Option<SharedGhrp>,
}

impl std::fmt::Debug for FrontendPair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrontendPair")
            .field("icache", &self.icache.config())
            .field("btb", &self.btb.entries().config())
            .field("ghrp", &self.ghrp.is_some())
            .finish()
    }
}

/// Build the I-cache/BTB pair for `kind`.
///
/// `icache_opt_blocks` / `btb_opt_pcs` supply the offline access sequences
/// and are required only for [`PolicyKind::Opt`].
///
/// # Panics
///
/// Panics if `kind` is `Opt` and the offline sequences are missing, or if
/// the BTB geometry is invalid.
#[allow(clippy::too_many_arguments)] // a constructor-style fan-in; callers use named locals
pub fn build_pair(
    kind: PolicyKind,
    icache_cfg: CacheConfig,
    btb_entries: u32,
    btb_ways: u32,
    ghrp_cfg: GhrpConfig,
    sdbp_cfg: SdbpConfig,
    seed: u64,
    icache_opt_blocks: Option<&[u64]>,
    btb_opt_pcs: Option<&[u64]>,
) -> FrontendPair {
    let btb_cfg = btb_config(btb_entries, btb_ways).expect("valid BTB geometry");
    let (ipol, bpol, ghrp): (
        Box<dyn ReplacementPolicy>,
        Box<dyn ReplacementPolicy>,
        Option<SharedGhrp>,
    ) = match kind {
        PolicyKind::Lru => (
            Box::new(Lru::new(icache_cfg)),
            Box::new(Lru::new(btb_cfg)),
            None,
        ),
        PolicyKind::Fifo => (
            Box::new(Fifo::new(icache_cfg)),
            Box::new(Fifo::new(btb_cfg)),
            None,
        ),
        PolicyKind::Random => (
            Box::new(RandomPolicy::new(icache_cfg, seed)),
            Box::new(RandomPolicy::new(btb_cfg, seed ^ 0xB7B_5EED)),
            None,
        ),
        PolicyKind::Srrip => (
            Box::new(Srrip::new(icache_cfg)),
            Box::new(Srrip::new(btb_cfg)),
            None,
        ),
        PolicyKind::Drrip => (
            Box::new(Drrip::new(icache_cfg)),
            Box::new(Drrip::new(btb_cfg)),
            None,
        ),
        PolicyKind::Ship => (
            Box::new(ShipPolicy::new(icache_cfg, ShipConfig::default())),
            Box::new(ShipPolicy::new(btb_cfg, ShipConfig::default())),
            None,
        ),
        PolicyKind::CounterDbp => (
            Box::new(CounterDbpPolicy::new(icache_cfg, 16 * 1024)),
            Box::new(CounterDbpPolicy::new(btb_cfg, 16 * 1024)),
            None,
        ),
        PolicyKind::Sdbp => (
            Box::new(SdbpPolicy::new(icache_cfg, sdbp_cfg)),
            Box::new(SdbpPolicy::new(btb_cfg, sdbp_cfg)),
            None,
        ),
        PolicyKind::Ghrp => {
            let shared = SharedGhrp::new(ghrp_cfg, icache_cfg.offset_bits());
            (
                Box::new(GhrpPolicy::new(icache_cfg, shared.clone())),
                Box::new(GhrpBtbPolicy::new(
                    btb_cfg,
                    shared.clone(),
                    icache_cfg.block_bytes(),
                )),
                Some(shared),
            )
        }
        PolicyKind::Opt => {
            let blocks = icache_opt_blocks.expect("OPT requires the I-cache block sequence");
            let pcs = btb_opt_pcs.expect("OPT requires the BTB access sequence");
            (
                Box::new(BeladyOpt::from_trace(icache_cfg, blocks)),
                Box::new(BeladyOpt::from_trace(btb_cfg, pcs)),
                None,
            )
        }
    };
    FrontendPair {
        icache: Cache::new(icache_cfg, ipol),
        btb: Btb::new(btb_cfg, bpol),
        ghrp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CacheConfig {
        CacheConfig::with_capacity(16 * 1024, 8, 64).unwrap()
    }

    #[test]
    fn parse_roundtrip() {
        for k in PolicyKind::ALL_ONLINE {
            assert_eq!(PolicyKind::parse(&k.to_string()), Some(*k));
        }
        assert_eq!(PolicyKind::parse("belady"), Some(PolicyKind::Opt));
        assert_eq!(PolicyKind::parse("nope"), None);
    }

    #[test]
    fn paper_set_is_the_papers_five() {
        let names: Vec<String> = PolicyKind::PAPER_SET
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        assert_eq!(names, ["LRU", "Random", "SRRIP", "SDBP", "GHRP"]);
    }

    #[test]
    fn build_all_online_pairs() {
        for k in PolicyKind::ALL_ONLINE {
            let mut pair = build_pair(
                *k,
                cfg(),
                1024,
                4,
                GhrpConfig::default(),
                SdbpConfig::default(),
                7,
                None,
                None,
            );
            assert!(pair.icache.access(0x1000, 0x1000).is_miss());
            assert!(pair.icache.access(0x1000, 0x1000).is_hit());
            assert!(!pair.btb.lookup_and_update(0x1004, 0x2000));
            assert!(pair.btb.lookup_and_update(0x1004, 0x2000));
            assert_eq!(pair.ghrp.is_some(), *k == PolicyKind::Ghrp);
        }
    }

    #[test]
    #[should_panic(expected = "OPT requires")]
    fn opt_without_sequences_panics() {
        let _ = build_pair(
            PolicyKind::Opt,
            cfg(),
            1024,
            4,
            GhrpConfig::default(),
            SdbpConfig::default(),
            0,
            None,
            None,
        );
    }
}
