//! Runtime policy selection: building matched I-cache/BTB policy pairs.

#![forbid(unsafe_code)]

use fe_btb::{btb_config, Btb, GhrpBtbPolicy};
use fe_cache::policy::{BeladyOpt, Drrip, Fifo, Lru, RandomPolicy, Srrip};
use fe_cache::{AccessContext, Cache, CacheConfig, ReplacementPolicy};
use fe_sdbp::{CounterDbpPolicy, SdbpConfig, SdbpPolicy, ShipConfig, ShipPolicy};
use ghrp_core::{GhrpConfig, GhrpPolicy, SharedGhrp};
use serde::{Deserialize, Serialize};

/// The replacement policies under study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Least-recently-used (the paper's baseline).
    Lru,
    /// First-in-first-out.
    Fifo,
    /// Uniform random victims.
    Random,
    /// Static re-reference interval prediction (SRRIP-HP).
    Srrip,
    /// Dynamic RRIP (set-dueling SRRIP vs BRRIP) — extension baseline.
    Drrip,
    /// Signature-based hit predictor (SHiP-PC) — extension baseline.
    Ship,
    /// Counter-based (AIP-style) dead block prediction — extension
    /// baseline (§II.B).
    CounterDbp,
    /// Modified sampling dead block prediction.
    Sdbp,
    /// Global history reuse prediction — the paper's contribution.
    Ghrp,
    /// Belady's OPT (offline oracle; bound studies only, not in the paper).
    Opt,
}

impl PolicyKind {
    /// The five policies the paper's figures compare.
    pub const PAPER_SET: &'static [PolicyKind] = &[
        PolicyKind::Lru,
        PolicyKind::Random,
        PolicyKind::Srrip,
        PolicyKind::Sdbp,
        PolicyKind::Ghrp,
    ];

    /// Every online policy (excludes the offline oracle).
    pub const ALL_ONLINE: &'static [PolicyKind] = &[
        PolicyKind::Lru,
        PolicyKind::Fifo,
        PolicyKind::Random,
        PolicyKind::Srrip,
        PolicyKind::Drrip,
        PolicyKind::Ship,
        PolicyKind::CounterDbp,
        PolicyKind::Sdbp,
        PolicyKind::Ghrp,
    ];

    /// Parse from the names used on experiment command lines.
    pub fn parse(s: &str) -> Option<PolicyKind> {
        match s.to_ascii_lowercase().as_str() {
            "lru" => Some(PolicyKind::Lru),
            "fifo" => Some(PolicyKind::Fifo),
            "random" | "rand" => Some(PolicyKind::Random),
            "srrip" => Some(PolicyKind::Srrip),
            "drrip" => Some(PolicyKind::Drrip),
            "ship" => Some(PolicyKind::Ship),
            "counterdbp" | "aip" => Some(PolicyKind::CounterDbp),
            "sdbp" => Some(PolicyKind::Sdbp),
            "ghrp" => Some(PolicyKind::Ghrp),
            "opt" | "belady" => Some(PolicyKind::Opt),
            _ => None,
        }
    }

    /// Whether this policy needs the full block sequence ahead of time.
    pub fn is_offline(self) -> bool {
        self == PolicyKind::Opt
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PolicyKind::Lru => "LRU",
            PolicyKind::Fifo => "FIFO",
            PolicyKind::Random => "Random",
            PolicyKind::Srrip => "SRRIP",
            PolicyKind::Drrip => "DRRIP",
            PolicyKind::Ship => "SHiP",
            PolicyKind::CounterDbp => "CounterDBP",
            PolicyKind::Sdbp => "SDBP",
            PolicyKind::Ghrp => "GHRP",
            PolicyKind::Opt => "OPT",
        };
        f.write_str(s)
    }
}

/// Closed sum of every concrete replacement policy the experiments use.
///
/// The simulator drives the policy callbacks on every cache access, so the
/// per-lane structures dispatch through this enum (a `match` on a fixed
/// discriminant that the optimizer can inline through) instead of
/// `Box<dyn ReplacementPolicy>`, whose indirect calls defeat cross-crate
/// inlining on the hottest loop in the workspace.
#[allow(missing_docs, clippy::large_enum_variant)] // variants mirror PolicyKind; lanes are few
pub enum AnyPolicy {
    Lru(Lru),
    Fifo(Fifo),
    Random(RandomPolicy),
    Srrip(Srrip),
    Drrip(Drrip),
    Ship(ShipPolicy),
    CounterDbp(CounterDbpPolicy),
    Sdbp(SdbpPolicy),
    Ghrp(GhrpPolicy),
    GhrpBtb(GhrpBtbPolicy),
    Opt(BeladyOpt),
}

macro_rules! dispatch {
    ($self:ident, $p:ident => $body:expr) => {
        match $self {
            AnyPolicy::Lru($p) => $body,
            AnyPolicy::Fifo($p) => $body,
            AnyPolicy::Random($p) => $body,
            AnyPolicy::Srrip($p) => $body,
            AnyPolicy::Drrip($p) => $body,
            AnyPolicy::Ship($p) => $body,
            AnyPolicy::CounterDbp($p) => $body,
            AnyPolicy::Sdbp($p) => $body,
            AnyPolicy::Ghrp($p) => $body,
            AnyPolicy::GhrpBtb($p) => $body,
            AnyPolicy::Opt($p) => $body,
        }
    };
}

impl ReplacementPolicy for AnyPolicy {
    fn on_access(&mut self, ctx: &AccessContext) {
        dispatch!(self, p => p.on_access(ctx));
    }
    fn on_hit(&mut self, way: usize, ctx: &AccessContext) {
        dispatch!(self, p => p.on_hit(way, ctx));
    }
    fn should_bypass(&mut self, ctx: &AccessContext) -> bool {
        dispatch!(self, p => p.should_bypass(ctx))
    }
    fn choose_victim(&mut self, ctx: &AccessContext) -> usize {
        dispatch!(self, p => p.choose_victim(ctx))
    }
    fn on_evict(&mut self, way: usize, victim_block: u64, ctx: &AccessContext) {
        dispatch!(self, p => p.on_evict(way, victim_block, ctx));
    }
    fn on_fill(&mut self, way: usize, ctx: &AccessContext) {
        dispatch!(self, p => p.on_fill(way, ctx));
    }
    fn reset(&mut self) {
        dispatch!(self, p => p.reset());
    }
    fn name(&self) -> String {
        dispatch!(self, p => p.name())
    }
}

/// A matched I-cache + BTB pair built for one policy, plus the shared GHRP
/// handle when the policy is GHRP (the simulator uses it for commit-time
/// history retirement and misprediction recovery).
pub struct FrontendPair {
    /// The instruction cache.
    pub icache: Cache<AnyPolicy>,
    /// The branch target buffer.
    pub btb: Btb<AnyPolicy>,
    /// Present only for GHRP.
    pub ghrp: Option<SharedGhrp>,
}

impl std::fmt::Debug for FrontendPair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrontendPair")
            .field("icache", &self.icache.config())
            .field("btb", &self.btb.entries().config())
            .field("ghrp", &self.ghrp.is_some())
            .finish()
    }
}

/// Build the I-cache/BTB pair for `kind`.
///
/// `icache_opt_blocks` / `btb_opt_pcs` supply the offline access sequences
/// and are required only for [`PolicyKind::Opt`].
///
/// # Panics
///
/// Panics if `kind` is `Opt` and the offline sequences are missing, or if
/// the BTB geometry is invalid.
#[allow(clippy::too_many_arguments)] // a constructor-style fan-in; callers use named locals
pub fn build_pair(
    kind: PolicyKind,
    icache_cfg: CacheConfig,
    btb_entries: u32,
    btb_ways: u32,
    ghrp_cfg: GhrpConfig,
    sdbp_cfg: SdbpConfig,
    seed: u64,
    icache_opt_blocks: Option<&[u64]>,
    btb_opt_pcs: Option<&[u64]>,
) -> FrontendPair {
    let btb_cfg = btb_config(btb_entries, btb_ways).expect("valid BTB geometry");
    let (ipol, bpol, ghrp): (AnyPolicy, AnyPolicy, Option<SharedGhrp>) = match kind {
        PolicyKind::Lru => (
            AnyPolicy::Lru(Lru::new(icache_cfg)),
            AnyPolicy::Lru(Lru::new(btb_cfg)),
            None,
        ),
        PolicyKind::Fifo => (
            AnyPolicy::Fifo(Fifo::new(icache_cfg)),
            AnyPolicy::Fifo(Fifo::new(btb_cfg)),
            None,
        ),
        PolicyKind::Random => (
            AnyPolicy::Random(RandomPolicy::new(icache_cfg, seed)),
            AnyPolicy::Random(RandomPolicy::new(btb_cfg, seed ^ 0xB7B_5EED)),
            None,
        ),
        PolicyKind::Srrip => (
            AnyPolicy::Srrip(Srrip::new(icache_cfg)),
            AnyPolicy::Srrip(Srrip::new(btb_cfg)),
            None,
        ),
        PolicyKind::Drrip => (
            AnyPolicy::Drrip(Drrip::new(icache_cfg)),
            AnyPolicy::Drrip(Drrip::new(btb_cfg)),
            None,
        ),
        PolicyKind::Ship => (
            AnyPolicy::Ship(ShipPolicy::new(icache_cfg, ShipConfig::default())),
            AnyPolicy::Ship(ShipPolicy::new(btb_cfg, ShipConfig::default())),
            None,
        ),
        PolicyKind::CounterDbp => (
            AnyPolicy::CounterDbp(CounterDbpPolicy::new(icache_cfg, 16 * 1024)),
            AnyPolicy::CounterDbp(CounterDbpPolicy::new(btb_cfg, 16 * 1024)),
            None,
        ),
        PolicyKind::Sdbp => (
            AnyPolicy::Sdbp(SdbpPolicy::new(icache_cfg, sdbp_cfg)),
            AnyPolicy::Sdbp(SdbpPolicy::new(btb_cfg, sdbp_cfg)),
            None,
        ),
        PolicyKind::Ghrp => {
            let shared = SharedGhrp::new(ghrp_cfg, icache_cfg.offset_bits());
            (
                AnyPolicy::Ghrp(GhrpPolicy::new(icache_cfg, shared.clone())),
                AnyPolicy::GhrpBtb(GhrpBtbPolicy::new(
                    btb_cfg,
                    shared.clone(),
                    icache_cfg.block_bytes(),
                )),
                Some(shared),
            )
        }
        PolicyKind::Opt => {
            let blocks = icache_opt_blocks.expect("OPT requires the I-cache block sequence");
            let pcs = btb_opt_pcs.expect("OPT requires the BTB access sequence");
            (
                AnyPolicy::Opt(BeladyOpt::from_trace(icache_cfg, blocks)),
                AnyPolicy::Opt(BeladyOpt::from_trace(btb_cfg, pcs)),
                None,
            )
        }
    };
    FrontendPair {
        icache: Cache::new(icache_cfg, ipol),
        btb: Btb::new(btb_cfg, bpol),
        ghrp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CacheConfig {
        CacheConfig::with_capacity(16 * 1024, 8, 64).unwrap()
    }

    #[test]
    fn parse_roundtrip() {
        for k in PolicyKind::ALL_ONLINE {
            assert_eq!(PolicyKind::parse(&k.to_string()), Some(*k));
        }
        assert_eq!(PolicyKind::parse("belady"), Some(PolicyKind::Opt));
        assert_eq!(PolicyKind::parse("nope"), None);
    }

    #[test]
    fn paper_set_is_the_papers_five() {
        let names: Vec<String> = PolicyKind::PAPER_SET
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        assert_eq!(names, ["LRU", "Random", "SRRIP", "SDBP", "GHRP"]);
    }

    #[test]
    fn build_all_online_pairs() {
        for k in PolicyKind::ALL_ONLINE {
            let mut pair = build_pair(
                *k,
                cfg(),
                1024,
                4,
                GhrpConfig::default(),
                SdbpConfig::default(),
                7,
                None,
                None,
            );
            assert!(pair.icache.access(0x1000, 0x1000).is_miss());
            assert!(pair.icache.access(0x1000, 0x1000).is_hit());
            assert!(!pair.btb.lookup_and_update(0x1004, 0x2000));
            assert!(pair.btb.lookup_and_update(0x1004, 0x2000));
            assert_eq!(pair.ghrp.is_some(), *k == PolicyKind::Ghrp);
        }
    }

    #[test]
    #[should_panic(expected = "OPT requires")]
    fn opt_without_sequences_panics() {
        let _ = build_pair(
            PolicyKind::Opt,
            cfg(),
            1024,
            4,
            GhrpConfig::default(),
            SdbpConfig::default(),
            0,
            None,
            None,
        );
    }
}
