//! Runtime policy selection: building matched I-cache/BTB policy pairs.

#![forbid(unsafe_code)]

use fe_btb::{btb_config, Btb, GhrpBtbPolicy};
use fe_cache::policy::{
    BeladyOpt, Drrip, DuelConfig, DuelSelect, Fifo, Lru, RandomPolicy, Srrip, DUEL_DEFAULT_WINDOW,
    MAX_DUEL_CANDIDATES,
};
use fe_cache::{AccessContext, Cache, CacheConfig, ReplacementPolicy};
use fe_sdbp::{CounterDbpPolicy, SdbpConfig, SdbpPolicy, ShipConfig, ShipPolicy};
use ghrp_core::{GhrpConfig, GhrpPolicy, SharedGhrp};
use serde::{DeError, Deserialize, Serialize, Value};

/// An online, non-composite policy usable as a set-dueling candidate.
///
/// Mirrors the unit [`PolicyKind`] variants minus the offline oracle and
/// the composites themselves (hybrids don't nest — the hardware story is
/// one PSEL register file, not a tree of them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)] // variants mirror PolicyKind's documented ones
pub enum BasePolicy {
    Lru,
    Fifo,
    Random,
    Srrip,
    Drrip,
    Ship,
    CounterDbp,
    Sdbp,
    Ghrp,
}

impl BasePolicy {
    /// Parse a candidate token (the same spellings the static policies
    /// use on experiment command lines).
    pub fn parse(s: &str) -> Option<BasePolicy> {
        match s.to_ascii_lowercase().as_str() {
            "lru" => Some(BasePolicy::Lru),
            "fifo" => Some(BasePolicy::Fifo),
            "random" | "rand" => Some(BasePolicy::Random),
            "srrip" => Some(BasePolicy::Srrip),
            "drrip" => Some(BasePolicy::Drrip),
            "ship" => Some(BasePolicy::Ship),
            "counterdbp" | "aip" => Some(BasePolicy::CounterDbp),
            "sdbp" => Some(BasePolicy::Sdbp),
            "ghrp" => Some(BasePolicy::Ghrp),
            _ => None,
        }
    }

    /// The static [`PolicyKind`] this candidate corresponds to.
    pub fn as_kind(self) -> PolicyKind {
        match self {
            BasePolicy::Lru => PolicyKind::Lru,
            BasePolicy::Fifo => PolicyKind::Fifo,
            BasePolicy::Random => PolicyKind::Random,
            BasePolicy::Srrip => PolicyKind::Srrip,
            BasePolicy::Drrip => PolicyKind::Drrip,
            BasePolicy::Ship => PolicyKind::Ship,
            BasePolicy::CounterDbp => PolicyKind::CounterDbp,
            BasePolicy::Sdbp => PolicyKind::Sdbp,
            BasePolicy::Ghrp => PolicyKind::Ghrp,
        }
    }
}

impl std::fmt::Display for BasePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.as_kind().fmt(f)
    }
}

/// The candidate list + selection window of a composite policy.
///
/// Stored inline (a fixed array and a length) so [`PolicyKind`] stays
/// `Copy` and hashable for arena keys and request canonicalization.
/// Construction canonicalizes the padding, so derived equality and
/// hashing see one representation per distinct hybrid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HybridSpec {
    /// Candidates, padded past `len` with `BasePolicy::Lru`.
    candidates: [BasePolicy; MAX_DUEL_CANDIDATES],
    len: u8,
    /// Re-decision window in accesses (`0` = continuous dueling).
    window: u32,
}

impl HybridSpec {
    /// Build a spec from 1..=[`MAX_DUEL_CANDIDATES`] candidates; `None`
    /// outside that range.
    pub fn new(candidates: &[BasePolicy], window: u32) -> Option<HybridSpec> {
        if candidates.is_empty() || candidates.len() > MAX_DUEL_CANDIDATES {
            return None;
        }
        let mut padded = [BasePolicy::Lru; MAX_DUEL_CANDIDATES];
        padded[..candidates.len()].copy_from_slice(candidates);
        Some(HybridSpec {
            candidates: padded,
            len: u8::try_from(candidates.len()).ok()?,
            window,
        })
    }

    /// The candidate policies, in duel order.
    pub fn candidates(&self) -> &[BasePolicy] {
        &self.candidates[..usize::from(self.len)]
    }

    /// The phase window in accesses (`0` for continuous dueling).
    pub fn window(&self) -> u32 {
        self.window
    }
}

/// The replacement policies under study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PolicyKind {
    /// Least-recently-used (the paper's baseline).
    Lru,
    /// First-in-first-out.
    Fifo,
    /// Uniform random victims.
    Random,
    /// Static re-reference interval prediction (SRRIP-HP).
    Srrip,
    /// Dynamic RRIP (set-dueling SRRIP vs BRRIP) — extension baseline.
    Drrip,
    /// Signature-based hit predictor (SHiP-PC) — extension baseline.
    Ship,
    /// Counter-based (AIP-style) dead block prediction — extension
    /// baseline (§II.B).
    CounterDbp,
    /// Modified sampling dead block prediction.
    Sdbp,
    /// Global history reuse prediction — the paper's contribution.
    Ghrp,
    /// Belady's OPT (offline oracle; bound studies only, not in the paper).
    Opt,
    /// Set-dueling hybrid: the candidates race continuously on leader
    /// sets, followers adopt the PSEL winner (`duel(ghrp,srrip,sdbp)`).
    Duel(HybridSpec),
    /// Phase-adaptive hybrid: like `Duel`, but the winner is committed
    /// only at fixed access-window boundaries
    /// (`phase(ghrp,srrip;window=8192)`).
    Phase(HybridSpec),
}

impl PolicyKind {
    /// The five policies the paper's figures compare.
    pub const PAPER_SET: &'static [PolicyKind] = &[
        PolicyKind::Lru,
        PolicyKind::Random,
        PolicyKind::Srrip,
        PolicyKind::Sdbp,
        PolicyKind::Ghrp,
    ];

    /// Every online policy (excludes the offline oracle).
    pub const ALL_ONLINE: &'static [PolicyKind] = &[
        PolicyKind::Lru,
        PolicyKind::Fifo,
        PolicyKind::Random,
        PolicyKind::Srrip,
        PolicyKind::Drrip,
        PolicyKind::Ship,
        PolicyKind::CounterDbp,
        PolicyKind::Sdbp,
        PolicyKind::Ghrp,
    ];

    /// Parse from the names used on experiment command lines.
    ///
    /// Besides the static spellings, two composite forms are accepted
    /// (case-insensitive, matching what [`Display`](std::fmt::Display)
    /// emits):
    ///
    /// * `duel(p1,...,pN)` — continuous set-dueling over 1..=4
    ///   candidates, e.g. `duel(ghrp,srrip,sdbp)`;
    /// * `phase(p1,...,pN;window=W)` — phase-adaptive selection
    ///   re-deciding every `W` accesses (default 8192 when the
    ///   `;window=` part is omitted), e.g. `phase(ghrp,srrip)`.
    ///
    /// Candidates use the static spellings; `opt` and nested composites
    /// are rejected.
    pub fn parse(s: &str) -> Option<PolicyKind> {
        let lower = s.to_ascii_lowercase();
        if let Some(body) = strip_call(&lower, "duel") {
            let spec = parse_candidate_list(body, 0)?;
            return Some(PolicyKind::Duel(spec));
        }
        if let Some(body) = strip_call(&lower, "phase") {
            let (list, window) = match body.split_once(';') {
                Some((list, tail)) => {
                    let w: u32 = tail.strip_prefix("window=")?.parse().ok()?;
                    if w == 0 {
                        return None;
                    }
                    (list, w)
                }
                None => (body, DUEL_DEFAULT_WINDOW),
            };
            let spec = parse_candidate_list(list, window)?;
            return Some(PolicyKind::Phase(spec));
        }
        match lower.as_str() {
            "lru" => Some(PolicyKind::Lru),
            "fifo" => Some(PolicyKind::Fifo),
            "random" | "rand" => Some(PolicyKind::Random),
            "srrip" => Some(PolicyKind::Srrip),
            "drrip" => Some(PolicyKind::Drrip),
            "ship" => Some(PolicyKind::Ship),
            "counterdbp" | "aip" => Some(PolicyKind::CounterDbp),
            "sdbp" => Some(PolicyKind::Sdbp),
            "ghrp" => Some(PolicyKind::Ghrp),
            "opt" | "belady" => Some(PolicyKind::Opt),
            _ => None,
        }
    }

    /// A continuous set-dueling hybrid over `candidates`.
    ///
    /// # Panics
    ///
    /// Panics unless `1..=MAX_DUEL_CANDIDATES` candidates are given.
    pub fn duel(candidates: &[BasePolicy]) -> PolicyKind {
        let spec =
            HybridSpec::new(candidates, 0).expect("duel takes 1..=MAX_DUEL_CANDIDATES candidates");
        PolicyKind::Duel(spec)
    }

    /// A phase-adaptive hybrid over `candidates` re-deciding every
    /// `window` accesses (`0` selects the default window).
    ///
    /// # Panics
    ///
    /// Panics unless `1..=MAX_DUEL_CANDIDATES` candidates are given.
    pub fn phase(candidates: &[BasePolicy], window: u32) -> PolicyKind {
        let w = if window == 0 {
            DUEL_DEFAULT_WINDOW
        } else {
            window
        };
        let spec =
            HybridSpec::new(candidates, w).expect("phase takes 1..=MAX_DUEL_CANDIDATES candidates");
        PolicyKind::Phase(spec)
    }

    /// Whether this policy needs the full block sequence ahead of time.
    pub fn is_offline(self) -> bool {
        self == PolicyKind::Opt
    }

    /// One line per valid config-string spelling, for error messages
    /// (see `fe-sim --policy` and the experiment drivers).
    pub fn spellings_help() -> String {
        let mut out = String::from("valid policies:\n");
        for line in [
            "  lru fifo random|rand srrip drrip ship counterdbp|aip sdbp ghrp opt|belady",
            "  duel(p1,...,p4)              set-dueling hybrid, e.g. duel(ghrp,srrip,sdbp)",
            "  phase(p1,...,p4;window=N)    phase-adaptive hybrid, e.g. phase(ghrp,srrip;window=8192)",
            "                               (candidates: any spelling above except opt/belady)",
        ] {
            out.push_str(line);
            out.push('\n');
        }
        out
    }
}

/// `name(body)` → `body`, or `None` if `s` is not that call form.
fn strip_call<'a>(s: &'a str, name: &str) -> Option<&'a str> {
    s.strip_prefix(name)?.strip_prefix('(')?.strip_suffix(')')
}

/// Parse a comma-separated candidate list into a canonical spec.
fn parse_candidate_list(list: &str, window: u32) -> Option<HybridSpec> {
    let mut candidates = Vec::new();
    for token in list.split(',') {
        candidates.push(BasePolicy::parse(token.trim())?);
    }
    HybridSpec::new(&candidates, window)
}

impl Serialize for PolicyKind {
    fn to_value(&self) -> Value {
        // Unit variants keep the derive-era spelling (`"Lru"`, `"Ghrp"`,
        // ...) so existing manifests and keys stay byte-stable;
        // composites serialize as their canonical config string, which
        // `parse` round-trips.
        let s = match self {
            PolicyKind::Lru => "Lru".to_owned(),
            PolicyKind::Fifo => "Fifo".to_owned(),
            PolicyKind::Random => "Random".to_owned(),
            PolicyKind::Srrip => "Srrip".to_owned(),
            PolicyKind::Drrip => "Drrip".to_owned(),
            PolicyKind::Ship => "Ship".to_owned(),
            PolicyKind::CounterDbp => "CounterDbp".to_owned(),
            PolicyKind::Sdbp => "Sdbp".to_owned(),
            PolicyKind::Ghrp => "Ghrp".to_owned(),
            PolicyKind::Opt => "Opt".to_owned(),
            PolicyKind::Duel(_) | PolicyKind::Phase(_) => self.to_string().to_ascii_lowercase(),
        };
        Value::Str(s)
    }
}

impl Deserialize for PolicyKind {
    fn from_value(v: &Value) -> Result<PolicyKind, DeError> {
        let Value::Str(s) = v else {
            return Err(DeError::expected("policy string", v));
        };
        // Derive-era variant names first (exact), then the config-string
        // grammar (case-insensitive, covers composites).
        let unit = match s.as_str() {
            "Lru" => Some(PolicyKind::Lru),
            "Fifo" => Some(PolicyKind::Fifo),
            "Random" => Some(PolicyKind::Random),
            "Srrip" => Some(PolicyKind::Srrip),
            "Drrip" => Some(PolicyKind::Drrip),
            "Ship" => Some(PolicyKind::Ship),
            "CounterDbp" => Some(PolicyKind::CounterDbp),
            "Sdbp" => Some(PolicyKind::Sdbp),
            "Ghrp" => Some(PolicyKind::Ghrp),
            "Opt" => Some(PolicyKind::Opt),
            _ => None,
        };
        unit.or_else(|| PolicyKind::parse(s))
            .ok_or_else(|| DeError::new(format!("unknown policy string `{s}`")))
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PolicyKind::Lru => "LRU",
            PolicyKind::Fifo => "FIFO",
            PolicyKind::Random => "Random",
            PolicyKind::Srrip => "SRRIP",
            PolicyKind::Drrip => "DRRIP",
            PolicyKind::Ship => "SHiP",
            PolicyKind::CounterDbp => "CounterDBP",
            PolicyKind::Sdbp => "SDBP",
            PolicyKind::Ghrp => "GHRP",
            PolicyKind::Opt => "OPT",
            PolicyKind::Duel(spec) => {
                return write!(f, "Duel({})", join_candidates(spec));
            }
            PolicyKind::Phase(spec) => {
                return write!(
                    f,
                    "Phase({};window={})",
                    join_candidates(spec),
                    spec.window()
                );
            }
        };
        f.write_str(s)
    }
}

/// Comma-joined candidate names of a hybrid spec.
fn join_candidates(spec: &HybridSpec) -> String {
    let names: Vec<String> = spec.candidates().iter().map(ToString::to_string).collect();
    names.join(",")
}

/// Closed sum of every concrete replacement policy the experiments use.
///
/// The simulator drives the policy callbacks on every cache access, so the
/// per-lane structures dispatch through this enum (a `match` on a fixed
/// discriminant that the optimizer can inline through) instead of
/// `Box<dyn ReplacementPolicy>`, whose indirect calls defeat cross-crate
/// inlining on the hottest loop in the workspace.
#[allow(missing_docs, clippy::large_enum_variant)] // variants mirror PolicyKind; lanes are few
pub enum AnyPolicy {
    Lru(Lru),
    Fifo(Fifo),
    Random(RandomPolicy),
    Srrip(Srrip),
    Drrip(Drrip),
    Ship(ShipPolicy),
    CounterDbp(CounterDbpPolicy),
    Sdbp(SdbpPolicy),
    Ghrp(GhrpPolicy),
    GhrpBtb(GhrpBtbPolicy),
    Opt(BeladyOpt),
    Duel(DuelPolicy),
    Phase(PhasePolicy),
}

macro_rules! dispatch {
    ($self:ident, $p:ident => $body:expr) => {
        match $self {
            AnyPolicy::Lru($p) => $body,
            AnyPolicy::Fifo($p) => $body,
            AnyPolicy::Random($p) => $body,
            AnyPolicy::Srrip($p) => $body,
            AnyPolicy::Drrip($p) => $body,
            AnyPolicy::Ship($p) => $body,
            AnyPolicy::CounterDbp($p) => $body,
            AnyPolicy::Sdbp($p) => $body,
            AnyPolicy::Ghrp($p) => $body,
            AnyPolicy::GhrpBtb($p) => $body,
            AnyPolicy::Opt($p) => $body,
            AnyPolicy::Duel($p) => $body,
            AnyPolicy::Phase($p) => $body,
        }
    };
}

impl AnyPolicy {
    /// Clear the *intentionally sticky* cross-trace state of the
    /// dueling hybrids (PSEL tallies and the committed winner) on top of
    /// the ordinary [`ReplacementPolicy::reset`] contract; a no-op for
    /// every static policy, whose `reset` is already bit-identical to a
    /// rebuild. Lane arenas call this so arena reuse order can never
    /// show through in results.
    pub fn cold_restart(&mut self) {
        match self {
            AnyPolicy::Duel(p) => p.0.cold_restart(),
            AnyPolicy::Phase(p) => p.0.cold_restart(),
            _ => {}
        }
    }
}

/// Continuous set-dueling over [`AnyPolicy`] candidates, as a concrete
/// type so [`AnyPolicy`] can carry it (the `Vec` inside [`DuelSelect`]
/// breaks the type recursion) and the dispatch-drift lint can account
/// for it.
pub struct DuelPolicy(pub DuelSelect<AnyPolicy>);

/// Phase-adaptive set-dueling over [`AnyPolicy`] candidates; the same
/// runtime shape as [`DuelPolicy`] with a windowed re-decision cadence,
/// kept as its own type so the two selection modes stay distinguishable
/// end to end (config grammar → `PolicyKind` → dispatch).
pub struct PhasePolicy(pub DuelSelect<AnyPolicy>);

impl ReplacementPolicy for DuelPolicy {
    fn on_access(&mut self, ctx: &AccessContext) {
        self.0.on_access(ctx);
    }
    fn on_hit(&mut self, way: usize, ctx: &AccessContext) {
        self.0.on_hit(way, ctx);
    }
    fn should_bypass(&mut self, ctx: &AccessContext) -> bool {
        self.0.should_bypass(ctx)
    }
    fn choose_victim(&mut self, ctx: &AccessContext) -> usize {
        self.0.choose_victim(ctx)
    }
    fn on_evict(&mut self, way: usize, victim_block: u64, ctx: &AccessContext) {
        self.0.on_evict(way, victim_block, ctx);
    }
    fn on_fill(&mut self, way: usize, ctx: &AccessContext) {
        self.0.on_fill(way, ctx);
    }
    fn reset(&mut self) {
        self.0.reset();
    }
    fn name(&self) -> String {
        self.0.name()
    }
}

impl ReplacementPolicy for PhasePolicy {
    fn on_access(&mut self, ctx: &AccessContext) {
        self.0.on_access(ctx);
    }
    fn on_hit(&mut self, way: usize, ctx: &AccessContext) {
        self.0.on_hit(way, ctx);
    }
    fn should_bypass(&mut self, ctx: &AccessContext) -> bool {
        self.0.should_bypass(ctx)
    }
    fn choose_victim(&mut self, ctx: &AccessContext) -> usize {
        self.0.choose_victim(ctx)
    }
    fn on_evict(&mut self, way: usize, victim_block: u64, ctx: &AccessContext) {
        self.0.on_evict(way, victim_block, ctx);
    }
    fn on_fill(&mut self, way: usize, ctx: &AccessContext) {
        self.0.on_fill(way, ctx);
    }
    fn reset(&mut self) {
        self.0.reset();
    }
    fn name(&self) -> String {
        self.0.name()
    }
}

impl ReplacementPolicy for AnyPolicy {
    fn on_access(&mut self, ctx: &AccessContext) {
        dispatch!(self, p => p.on_access(ctx));
    }
    fn on_hit(&mut self, way: usize, ctx: &AccessContext) {
        dispatch!(self, p => p.on_hit(way, ctx));
    }
    fn should_bypass(&mut self, ctx: &AccessContext) -> bool {
        dispatch!(self, p => p.should_bypass(ctx))
    }
    fn choose_victim(&mut self, ctx: &AccessContext) -> usize {
        dispatch!(self, p => p.choose_victim(ctx))
    }
    fn on_evict(&mut self, way: usize, victim_block: u64, ctx: &AccessContext) {
        dispatch!(self, p => p.on_evict(way, victim_block, ctx));
    }
    fn on_fill(&mut self, way: usize, ctx: &AccessContext) {
        dispatch!(self, p => p.on_fill(way, ctx));
    }
    fn reset(&mut self) {
        dispatch!(self, p => p.reset());
    }
    fn name(&self) -> String {
        dispatch!(self, p => p.name())
    }
}

/// A matched I-cache + BTB pair built for one policy, plus the shared GHRP
/// handle when the policy is GHRP (the simulator uses it for commit-time
/// history retirement and misprediction recovery).
pub struct FrontendPair {
    /// The instruction cache.
    pub icache: Cache<AnyPolicy>,
    /// The branch target buffer.
    pub btb: Btb<AnyPolicy>,
    /// Present only for GHRP.
    pub ghrp: Option<SharedGhrp>,
}

impl std::fmt::Debug for FrontendPair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrontendPair")
            .field("icache", &self.icache.config())
            .field("btb", &self.btb.entries().config())
            .field("ghrp", &self.ghrp.is_some())
            .finish()
    }
}

/// Build the I-cache/BTB pair for `kind`.
///
/// `icache_opt_blocks` / `btb_opt_pcs` supply the offline access sequences
/// and are required only for [`PolicyKind::Opt`].
///
/// # Panics
///
/// Panics if `kind` is `Opt` and the offline sequences are missing, or if
/// the BTB geometry is invalid.
#[allow(clippy::too_many_arguments)] // a constructor-style fan-in; callers use named locals
pub fn build_pair(
    kind: PolicyKind,
    icache_cfg: CacheConfig,
    btb_entries: u32,
    btb_ways: u32,
    ghrp_cfg: GhrpConfig,
    sdbp_cfg: SdbpConfig,
    seed: u64,
    icache_opt_blocks: Option<&[u64]>,
    btb_opt_pcs: Option<&[u64]>,
) -> FrontendPair {
    let btb_cfg = btb_config(btb_entries, btb_ways).expect("valid BTB geometry");
    let (ipol, bpol, ghrp): (AnyPolicy, AnyPolicy, Option<SharedGhrp>) = match kind {
        PolicyKind::Lru => (
            AnyPolicy::Lru(Lru::new(icache_cfg)),
            AnyPolicy::Lru(Lru::new(btb_cfg)),
            None,
        ),
        PolicyKind::Fifo => (
            AnyPolicy::Fifo(Fifo::new(icache_cfg)),
            AnyPolicy::Fifo(Fifo::new(btb_cfg)),
            None,
        ),
        PolicyKind::Random => (
            AnyPolicy::Random(RandomPolicy::new(icache_cfg, seed)),
            AnyPolicy::Random(RandomPolicy::new(btb_cfg, seed ^ 0xB7B_5EED)),
            None,
        ),
        PolicyKind::Srrip => (
            AnyPolicy::Srrip(Srrip::new(icache_cfg)),
            AnyPolicy::Srrip(Srrip::new(btb_cfg)),
            None,
        ),
        PolicyKind::Drrip => (
            AnyPolicy::Drrip(Drrip::new(icache_cfg)),
            AnyPolicy::Drrip(Drrip::new(btb_cfg)),
            None,
        ),
        PolicyKind::Ship => (
            AnyPolicy::Ship(ShipPolicy::new(icache_cfg, ShipConfig::default())),
            AnyPolicy::Ship(ShipPolicy::new(btb_cfg, ShipConfig::default())),
            None,
        ),
        PolicyKind::CounterDbp => (
            AnyPolicy::CounterDbp(CounterDbpPolicy::new(icache_cfg, 16 * 1024)),
            AnyPolicy::CounterDbp(CounterDbpPolicy::new(btb_cfg, 16 * 1024)),
            None,
        ),
        PolicyKind::Sdbp => (
            AnyPolicy::Sdbp(SdbpPolicy::new(icache_cfg, sdbp_cfg)),
            AnyPolicy::Sdbp(SdbpPolicy::new(btb_cfg, sdbp_cfg)),
            None,
        ),
        PolicyKind::Ghrp => {
            let shared = SharedGhrp::new(ghrp_cfg, icache_cfg.offset_bits());
            (
                AnyPolicy::Ghrp(GhrpPolicy::new(icache_cfg, shared.clone())),
                AnyPolicy::GhrpBtb(GhrpBtbPolicy::new(
                    btb_cfg,
                    shared.clone(),
                    icache_cfg.block_bytes(),
                )),
                Some(shared),
            )
        }
        PolicyKind::Opt => {
            let blocks = icache_opt_blocks.expect("OPT requires the I-cache block sequence");
            let pcs = btb_opt_pcs.expect("OPT requires the BTB access sequence");
            (
                AnyPolicy::Opt(BeladyOpt::from_trace(icache_cfg, blocks)),
                AnyPolicy::Opt(BeladyOpt::from_trace(btb_cfg, pcs)),
                None,
            )
        }
        PolicyKind::Duel(spec) => {
            let duel = DuelConfig::continuous();
            let (ic, bc, shared) =
                hybrid_candidates(&spec, icache_cfg, btb_cfg, ghrp_cfg, sdbp_cfg, seed);
            (
                AnyPolicy::Duel(DuelPolicy(DuelSelect::new(icache_cfg, duel, ic))),
                AnyPolicy::Duel(DuelPolicy(DuelSelect::new(btb_cfg, duel, bc))),
                shared,
            )
        }
        PolicyKind::Phase(spec) => {
            let duel = DuelConfig::phase_adaptive(spec.window());
            let (ic, bc, shared) =
                hybrid_candidates(&spec, icache_cfg, btb_cfg, ghrp_cfg, sdbp_cfg, seed);
            (
                AnyPolicy::Phase(PhasePolicy(DuelSelect::new(icache_cfg, duel, ic))),
                AnyPolicy::Phase(PhasePolicy(DuelSelect::new(btb_cfg, duel, bc))),
                shared,
            )
        }
    };
    FrontendPair {
        icache: Cache::new(icache_cfg, ipol),
        btb: Btb::new(btb_cfg, bpol),
        ghrp,
    }
}

/// Build the matched I-cache/BTB candidate lists of a hybrid.
///
/// Each candidate is constructed exactly as its static `build_pair` arm
/// would build it (same seeds, same shared-GHRP wiring), which is what
/// makes the single-candidate hybrid bit-identical to the static policy
/// (pinned by the engine equivalence proptests). A GHRP candidate's
/// shared predictor is returned so the simulator can retire history
/// into it, just like the static GHRP pair.
fn hybrid_candidates(
    spec: &HybridSpec,
    icache_cfg: CacheConfig,
    btb_cfg: CacheConfig,
    ghrp_cfg: GhrpConfig,
    sdbp_cfg: SdbpConfig,
    seed: u64,
) -> (Vec<AnyPolicy>, Vec<AnyPolicy>, Option<SharedGhrp>) {
    let mut ghrp = None;
    let mut icache = Vec::with_capacity(spec.candidates().len());
    let mut btb = Vec::with_capacity(spec.candidates().len());
    for c in spec.candidates() {
        let (ipol, bpol) = match c {
            BasePolicy::Lru => (
                AnyPolicy::Lru(Lru::new(icache_cfg)),
                AnyPolicy::Lru(Lru::new(btb_cfg)),
            ),
            BasePolicy::Fifo => (
                AnyPolicy::Fifo(Fifo::new(icache_cfg)),
                AnyPolicy::Fifo(Fifo::new(btb_cfg)),
            ),
            BasePolicy::Random => (
                AnyPolicy::Random(RandomPolicy::new(icache_cfg, seed)),
                AnyPolicy::Random(RandomPolicy::new(btb_cfg, seed ^ 0xB7B_5EED)),
            ),
            BasePolicy::Srrip => (
                AnyPolicy::Srrip(Srrip::new(icache_cfg)),
                AnyPolicy::Srrip(Srrip::new(btb_cfg)),
            ),
            BasePolicy::Drrip => (
                AnyPolicy::Drrip(Drrip::new(icache_cfg)),
                AnyPolicy::Drrip(Drrip::new(btb_cfg)),
            ),
            BasePolicy::Ship => (
                AnyPolicy::Ship(ShipPolicy::new(icache_cfg, ShipConfig::default())),
                AnyPolicy::Ship(ShipPolicy::new(btb_cfg, ShipConfig::default())),
            ),
            BasePolicy::CounterDbp => (
                AnyPolicy::CounterDbp(CounterDbpPolicy::new(icache_cfg, 16 * 1024)),
                AnyPolicy::CounterDbp(CounterDbpPolicy::new(btb_cfg, 16 * 1024)),
            ),
            BasePolicy::Sdbp => (
                AnyPolicy::Sdbp(SdbpPolicy::new(icache_cfg, sdbp_cfg)),
                AnyPolicy::Sdbp(SdbpPolicy::new(btb_cfg, sdbp_cfg)),
            ),
            BasePolicy::Ghrp => {
                let shared = SharedGhrp::new(ghrp_cfg, icache_cfg.offset_bits());
                let pair = (
                    AnyPolicy::Ghrp(GhrpPolicy::new(icache_cfg, shared.clone())),
                    AnyPolicy::GhrpBtb(GhrpBtbPolicy::new(
                        btb_cfg,
                        shared.clone(),
                        icache_cfg.block_bytes(),
                    )),
                );
                ghrp.get_or_insert(shared);
                pair
            }
        };
        icache.push(ipol);
        btb.push(bpol);
    }
    (icache, btb, ghrp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CacheConfig {
        CacheConfig::with_capacity(16 * 1024, 8, 64).unwrap()
    }

    #[test]
    fn parse_roundtrip() {
        for k in PolicyKind::ALL_ONLINE {
            assert_eq!(PolicyKind::parse(&k.to_string()), Some(*k));
        }
        assert_eq!(PolicyKind::parse("belady"), Some(PolicyKind::Opt));
        assert_eq!(PolicyKind::parse("nope"), None);
        // Composites round-trip through their Display form too.
        for k in [
            PolicyKind::duel(&[BasePolicy::Ghrp, BasePolicy::Srrip, BasePolicy::Sdbp]),
            PolicyKind::phase(&[BasePolicy::Ghrp, BasePolicy::Srrip], 8192),
            PolicyKind::phase(&[BasePolicy::Lru], 64),
        ] {
            assert_eq!(PolicyKind::parse(&k.to_string()), Some(k), "{k}");
        }
    }

    #[test]
    fn composite_grammar_parses() {
        let duel = PolicyKind::parse("duel(ghrp,srrip,sdbp)").unwrap();
        let PolicyKind::Duel(spec) = duel else {
            panic!("expected Duel, got {duel:?}");
        };
        assert_eq!(
            spec.candidates(),
            [BasePolicy::Ghrp, BasePolicy::Srrip, BasePolicy::Sdbp]
        );
        assert_eq!(spec.window(), 0);

        // Window defaults when omitted; explicit windows stick; spaces ok.
        let phase = PolicyKind::parse("phase(ghrp, srrip)").unwrap();
        let PolicyKind::Phase(spec) = phase else {
            panic!("expected Phase, got {phase:?}");
        };
        assert_eq!(spec.window(), DUEL_DEFAULT_WINDOW);
        let phase = PolicyKind::parse("PHASE(GHRP,SRRIP;window=4096)").unwrap();
        let PolicyKind::Phase(spec) = phase else {
            panic!("expected Phase, got {phase:?}");
        };
        assert_eq!(spec.window(), 4096);
    }

    #[test]
    fn composite_grammar_rejects_malformed_specs() {
        for bad in [
            "duel()",                         // empty candidate list
            "duel(ghrp,srrip,sdbp,lru,fifo)", // more than MAX_DUEL_CANDIDATES
            "duel(opt)",                      // offline oracle can't duel
            "duel(duel(lru))",                // no nesting
            "duel(ghrp,srrip",                // unbalanced
            "phase(ghrp;window=0)",           // zero window
            "phase(ghrp;window=x)",           // non-numeric window
            "phase(ghrp;w=8)",                // unknown key
            "phase()",
        ] {
            assert_eq!(PolicyKind::parse(bad), None, "{bad} should not parse");
        }
    }

    #[test]
    fn spellings_help_names_every_grammar_form() {
        let help = PolicyKind::spellings_help();
        for needle in ["lru", "ghrp", "opt|belady", "duel(", "phase(", "window=N"] {
            assert!(help.contains(needle), "help is missing `{needle}`:\n{help}");
        }
    }

    #[test]
    fn serde_roundtrips_and_keeps_legacy_unit_spellings() {
        use serde::{Deserialize as _, Serialize as _};
        // Unit variants keep the derive-era string form.
        assert_eq!(PolicyKind::Ghrp.to_value(), Value::Str("Ghrp".into()));
        assert_eq!(
            PolicyKind::from_value(&Value::Str("CounterDbp".into())).unwrap(),
            PolicyKind::CounterDbp
        );
        // Everything round-trips, composites included.
        let mut kinds = PolicyKind::ALL_ONLINE.to_vec();
        kinds.push(PolicyKind::Opt);
        kinds.push(PolicyKind::duel(&[BasePolicy::Ghrp, BasePolicy::Srrip]));
        kinds.push(PolicyKind::phase(
            &[BasePolicy::Ghrp, BasePolicy::Sdbp],
            2048,
        ));
        for k in kinds {
            assert_eq!(PolicyKind::from_value(&k.to_value()).unwrap(), k, "{k}");
        }
        assert!(PolicyKind::from_value(&Value::Str("bogus".into())).is_err());
        assert!(PolicyKind::from_value(&Value::UInt(3)).is_err());
    }

    #[test]
    fn build_hybrid_pairs() {
        for k in [
            PolicyKind::duel(&[BasePolicy::Ghrp, BasePolicy::Srrip, BasePolicy::Sdbp]),
            PolicyKind::phase(&[BasePolicy::Ghrp, BasePolicy::Srrip], 1024),
            PolicyKind::duel(&[BasePolicy::Srrip, BasePolicy::Sdbp]),
        ] {
            let mut pair = build_pair(
                k,
                cfg(),
                1024,
                4,
                GhrpConfig::default(),
                SdbpConfig::default(),
                7,
                None,
                None,
            );
            assert!(pair.icache.access(0x1000, 0x1000).is_miss());
            assert!(pair.icache.access(0x1000, 0x1000).is_hit());
            assert!(!pair.btb.lookup_and_update(0x1004, 0x2000));
            assert!(pair.btb.lookup_and_update(0x1004, 0x2000));
            // The GHRP handle is exposed iff a GHRP candidate exists.
            let wants_ghrp = match k {
                PolicyKind::Duel(s) | PolicyKind::Phase(s) => {
                    s.candidates().contains(&BasePolicy::Ghrp)
                }
                _ => false,
            };
            assert_eq!(pair.ghrp.is_some(), wants_ghrp, "{k}");
        }
    }

    #[test]
    fn cold_restart_clears_sticky_duel_state() {
        let k = PolicyKind::duel(&[BasePolicy::Srrip, BasePolicy::Lru]);
        let mut pair = build_pair(
            k,
            cfg(),
            1024,
            4,
            GhrpConfig::default(),
            SdbpConfig::default(),
            7,
            None,
            None,
        );
        for i in 0..50_000u64 {
            let addr = (i * 2_654_435_761) % (1 << 16);
            pair.icache.access(addr, addr);
        }
        pair.icache.reset();
        let AnyPolicy::Duel(d) = pair.icache.policy() else {
            panic!("expected a duel policy");
        };
        assert!(
            d.0.psel_tallies().iter().any(|&t| t > 0),
            "reset alone must keep the sticky PSEL tallies"
        );
        pair.icache.policy_mut().cold_restart();
        let AnyPolicy::Duel(d) = pair.icache.policy() else {
            panic!("expected a duel policy");
        };
        assert!(d.0.psel_tallies().iter().all(|&t| t == 0));
        assert_eq!(d.0.current_winner(), 0);
    }

    #[test]
    fn paper_set_is_the_papers_five() {
        let names: Vec<String> = PolicyKind::PAPER_SET
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        assert_eq!(names, ["LRU", "Random", "SRRIP", "SDBP", "GHRP"]);
    }

    #[test]
    fn build_all_online_pairs() {
        for k in PolicyKind::ALL_ONLINE {
            let mut pair = build_pair(
                *k,
                cfg(),
                1024,
                4,
                GhrpConfig::default(),
                SdbpConfig::default(),
                7,
                None,
                None,
            );
            assert!(pair.icache.access(0x1000, 0x1000).is_miss());
            assert!(pair.icache.access(0x1000, 0x1000).is_hit());
            assert!(!pair.btb.lookup_and_update(0x1004, 0x2000));
            assert!(pair.btb.lookup_and_update(0x1004, 0x2000));
            assert_eq!(pair.ghrp.is_some(), *k == PolicyKind::Ghrp);
        }
    }

    #[test]
    #[should_panic(expected = "OPT requires")]
    fn opt_without_sequences_panics() {
        let _ = build_pair(
            PolicyKind::Opt,
            cfg(),
            1024,
            4,
            GhrpConfig::default(),
            SdbpConfig::default(),
            0,
            None,
            None,
        );
    }
}
