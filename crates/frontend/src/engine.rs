//! The single-pass multi-policy simulation engine.
//!
//! The paper's methodology (§IV) evaluates every replacement policy on the
//! same trace stream. The policy-independent work — fetch-group decode,
//! the hashed-perceptron direction predictor, the return-address stack and
//! the indirect target cache — dominates a run, yet the legacy path
//! ([`crate::simulator::Simulator::run`]) repeats all of it once per
//! policy. This engine replays a trace **once**, decoding the fetch stream
//! and driving the shared predictors a single time, and broadcasts every
//! fetch group and branch event to N independent **policy lanes**.
//!
//! Each lane owns exactly the per-policy state of a standalone run: its
//! I-cache, its BTB, and (for GHRP/SDBP) its predictor tables including
//! the §III.F dual history. The branch-predictor outcome stream that
//! triggers wrong-path injection is policy-independent — the shared
//! predictors never read cache state — so each lane observes the same
//! event sequence, in the same order, as a standalone simulation, and its
//! counters stay **bit-identical** to the legacy per-policy path (proved
//! by the `engine_equivalence` property suite).
//!
//! Traces enter through [`ReplaySource`], which abstracts over a
//! materialized record slice ([`SliceReplay`]) and a streaming replay of a
//! synthetic workload ([`fe_trace::synth::StreamedTrace`]). The streaming
//! path never materializes a `Vec<BranchRecord>`, so paper-scale traces
//! (100 M+ instructions, §IV.C) cost walker state instead of gigabytes.

#![forbid(unsafe_code)]

use crate::policy::{build_pair, FrontendPair, PolicyKind};
use crate::simulator::{offline_sequences, RunResult, SimConfig};
use fe_branch::{HashedPerceptron, PredictorStats, ReturnAddressStack, TargetCache};
use fe_trace::fetch::{FetchChunk, FetchStream};
use fe_trace::record::{BranchKind, BranchRecord};
use fe_trace::synth::{StreamedTrace, SyntheticTrace, Walker};

/// A trace that can be replayed from the start any number of times.
///
/// The engine makes one pass for the simulation itself plus, when the
/// policy set contains an offline (OPT) policy, one precompute pass. Both
/// passes must observe identical record streams.
pub trait ReplaySource {
    /// The record iterator for one replay pass.
    type Iter<'a>: Iterator<Item = BranchRecord>
    where
        Self: 'a;

    /// Start a fresh pass over the branch records, in program order.
    fn replay(&self) -> Self::Iter<'_>;

    /// Exact instruction total of the trace (sizes the warm-up window,
    /// §IV.C: first half of the trace, capped).
    fn total_instructions(&self) -> u64;
}

/// Replay of a materialized record slice (the legacy representation).
#[derive(Debug, Clone, Copy)]
pub struct SliceReplay<'r> {
    records: &'r [BranchRecord],
    instructions: u64,
}

impl<'r> SliceReplay<'r> {
    /// Wrap `records` whose walk implies `instructions` instructions.
    pub fn new(records: &'r [BranchRecord], instructions: u64) -> SliceReplay<'r> {
        SliceReplay {
            records,
            instructions,
        }
    }

    /// Replay a fully materialized synthetic trace.
    pub fn from_trace(trace: &'r SyntheticTrace) -> SliceReplay<'r> {
        SliceReplay {
            records: &trace.records,
            instructions: trace.instructions,
        }
    }
}

impl ReplaySource for SliceReplay<'_> {
    type Iter<'a>
        = std::iter::Copied<std::slice::Iter<'a, BranchRecord>>
    where
        Self: 'a;

    fn replay(&self) -> Self::Iter<'_> {
        self.records.iter().copied()
    }

    fn total_instructions(&self) -> u64 {
        self.instructions
    }
}

impl ReplaySource for StreamedTrace {
    type Iter<'a> = Walker<'a>;

    fn replay(&self) -> Walker<'_> {
        StreamedTrace::replay(self)
    }

    fn total_instructions(&self) -> u64 {
        self.instructions()
    }
}

impl ReplaySource for fe_trace::corpus::CorpusTrace {
    type Iter<'a> = fe_trace::corpus::CorpusCursor<'a>;

    /// Zero-copy replay: every pass opens a fresh chunked cursor over
    /// the corpus's shared column buffer — no parsing, no cloning, no
    /// per-record allocation, and safe to share across scheduler
    /// workers (each worker's cursor reads the same immutable bytes).
    fn replay(&self) -> fe_trace::corpus::CorpusCursor<'_> {
        self.cursor()
    }

    fn total_instructions(&self) -> u64 {
        self.instructions()
    }
}

/// The policy-independent front end, driven exactly once per trace: the
/// conditional-direction predictor, the return-address stack and the
/// indirect target cache. None of these read cache or BTB state, so their
/// outcome stream is identical for every lane.
#[derive(Debug, Default)]
struct SharedFrontEnd {
    bp: HashedPerceptron,
    ras: ReturnAddressStack,
    itp: TargetCache,
    bp_stats: PredictorStats,
    ras_mispredictions: u64,
    /// (predicted, mispredicted) indirect jumps/calls.
    indirect: (u64, u64),
}

impl SharedFrontEnd {
    /// Predict and train on one branch record; returns whether the front
    /// end mispredicted it (the trigger for wrong-path injection).
    fn observe(&mut self, branch: &BranchRecord) -> bool {
        let mut mispredicted = false;
        match branch.kind {
            BranchKind::CondDirect => {
                let pred = self.bp.predict_and_update(branch.pc, branch.taken);
                let correct = pred == branch.taken;
                self.bp_stats.record(correct);
                mispredicted = !correct;
            }
            BranchKind::Call => {
                self.ras.push(branch.fall_through());
            }
            BranchKind::IndirectCall => {
                self.ras.push(branch.fall_through());
                self.indirect.0 += 1;
                if self.itp.predict(branch.pc) != Some(branch.target) {
                    self.indirect.1 += 1;
                    mispredicted = true;
                }
                self.itp.update(branch.pc, branch.target);
            }
            BranchKind::Indirect => {
                self.indirect.0 += 1;
                if self.itp.predict(branch.pc) != Some(branch.target) {
                    self.indirect.1 += 1;
                    mispredicted = true;
                }
                self.itp.update(branch.pc, branch.target);
            }
            BranchKind::Return => {
                let predicted = self.ras.pop();
                if predicted != Some(branch.target) {
                    self.ras_mispredictions += 1;
                    mispredicted = true;
                }
            }
            BranchKind::UncondDirect => {}
        }
        mispredicted
    }

    /// End-of-warm-up counter reset (predictor state itself stays warm).
    fn reset_stats(&mut self) {
        self.bp_stats = PredictorStats::default();
        self.ras_mispredictions = 0;
        self.indirect = (0, 0);
    }
}

/// One policy lane: the complete per-policy state of a standalone run.
struct Lane {
    policy: PolicyKind,
    pair: FrontendPair,
    /// Wrong-path pollution, excluded from the figure of merit (wrong-path
    /// fetches do not retire, so they cannot be MPKI events).
    wrong_path_misses: u64,
    wrong_path_accesses: u64,
    /// Fetch groups this lane processed (cross-lane lockstep check).
    groups: u64,
}

impl Lane {
    /// One I-cache access per fetch group (§IV.A), plus prefetch and
    /// commit-time GHRP history retirement — the per-lane half of what
    /// the legacy loop does per `starts_group` chunk.
    fn access_group(&mut self, chunk: &FetchChunk, cfg: &SimConfig) {
        self.groups += 1;
        let result = self.pair.icache.access(chunk.block_addr, chunk.first_pc);
        // Miss-triggered next-line prefetching.
        if result.is_miss() && cfg.prefetch_degree > 0 {
            for i in 1..=u64::from(cfg.prefetch_degree) {
                self.pair
                    .icache
                    .prefetch(chunk.block_addr + i * cfg.icache.block_bytes());
            }
        }
        // Commit-time (right-path) history retirement for GHRP: in this
        // trace-driven model every fetched group retires.
        if let (Some(shared), Some(_wp)) = (&self.pair.ghrp, cfg.wrong_path.as_ref()) {
            shared.retire(chunk.block_addr);
        }
    }

    /// The per-lane half of a branch event: BTB refresh/allocate on taken
    /// branches (skippable when the caller never reads BTB results — the
    /// GHRP BTB policy only *reads* the shared predictor, so skipping it
    /// leaves every I-cache counter bit-identical), then wrong-path
    /// injection if the (shared) front end mispredicted.
    fn observe_branch(
        &mut self,
        branch: &BranchRecord,
        mispredicted: bool,
        cfg: &SimConfig,
        measure_btb: bool,
    ) {
        if measure_btb && branch.taken {
            self.pair.btb.lookup_and_update(branch.pc, branch.target);
        }
        if mispredicted {
            if let Some(wp) = cfg.wrong_path {
                let block_bytes = cfg.icache.block_bytes();
                // The wrong path is the direction not taken.
                let wrong_start = if branch.taken {
                    branch.fall_through()
                } else {
                    branch.target
                };
                let mut block = wrong_start & !(block_bytes - 1);
                for _ in 0..wp.blocks_per_misprediction {
                    let r = self.pair.icache.access(block, block);
                    self.wrong_path_accesses += 1;
                    if r.is_miss() {
                        self.wrong_path_misses += 1;
                    }
                    block += block_bytes;
                }
                if wp.recover_history {
                    if let Some(shared) = &self.pair.ghrp {
                        shared.recover();
                    }
                }
            }
        }
    }

    fn reset_stats(&mut self) {
        self.pair.icache.reset_stats();
        self.pair.btb.reset_stats();
        self.wrong_path_misses = 0;
        self.wrong_path_accesses = 0;
    }

    /// Restore the lane to its freshly-built state, reusing every
    /// allocation (cache arrays, BTB tables, predictor tables). Offline
    /// lanes cannot be reused — their policy state is trace-derived.
    fn reset_for_reuse(&mut self) {
        self.pair.icache.reset();
        self.pair.btb.reset();
        // The dueling hybrids keep their PSEL tallies across `reset()`
        // on purpose (production adaptivity); arena reuse must stay
        // bit-identical to a rebuild, so clear the sticky state too.
        self.pair.icache.policy_mut().cold_restart();
        self.pair.btb.entries_mut().policy_mut().cold_restart();
        // The shared GHRP state is external to both policies; reset it
        // exactly once here, as the pair's owner.
        if let Some(shared) = &self.pair.ghrp {
            shared.reset();
        }
        self.wrong_path_misses = 0;
        self.wrong_path_accesses = 0;
        self.groups = 0;
    }

    fn finish(&self, measured_instructions: u64, fe: &SharedFrontEnd) -> RunResult {
        let mut icache_stats = self.pair.icache.stats();
        // Subtract wrong-path pollution from the figure of merit.
        icache_stats.misses -= self.wrong_path_misses.min(icache_stats.misses);
        icache_stats.accesses -= self.wrong_path_accesses.min(icache_stats.accesses);
        let btb_stats = self.pair.btb.stats();
        RunResult {
            policy: self.policy,
            instructions: measured_instructions,
            icache: icache_stats,
            btb_lookups: btb_stats.lookups,
            btb_misses: btb_stats.misses,
            cond_branches: fe.bp_stats.predictions,
            cond_mispredictions: fe.bp_stats.mispredictions,
            ras_mispredictions: fe.ras_mispredictions,
            indirect_branches: fe.indirect.0,
            indirect_mispredictions: fe.indirect.1,
            prefetch_fills: icache_stats.prefetch_fills,
        }
    }
}

/// The configuration a set of arena lanes was built for.
#[derive(Debug, Clone, PartialEq)]
struct ArenaKey {
    base: SimConfig,
    icaches: Vec<fe_cache::CacheConfig>,
    policies: Vec<PolicyKind>,
}

/// Reusable per-worker lane storage.
///
/// Building a lane allocates its I-cache arrays, BTB tables and (for the
/// predictive policies) predictor tables. A scheduler worker runs many
/// tasks with the identical configuration back to back, so the arena
/// keeps the lanes of the previous task and, when the configuration
/// matches, resets them **in place** — same post-construction state,
/// zero allocation — instead of rebuilding. A configuration change (or an
/// offline policy, whose state is derived from the concrete trace)
/// rebuilds from scratch.
#[derive(Debug, Default)]
pub struct EngineArena {
    key: Option<ArenaKey>,
    lanes: Vec<Lane>,
}

impl EngineArena {
    /// An empty arena; the first task always builds its lanes.
    pub fn new() -> EngineArena {
        EngineArena::default()
    }

    /// Whether the arena currently holds reusable lanes.
    pub fn is_primed(&self) -> bool {
        self.key.is_some()
    }
}

impl std::fmt::Debug for Lane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Lane")
            .field("policy", &self.policy)
            .field("groups", &self.groups)
            .finish_non_exhaustive()
    }
}

/// Simulate every policy in `policies` over one replay of `source`,
/// returning one [`RunResult`] per policy (in input order).
///
/// The shared pass decodes the fetch stream and drives the direction
/// predictor, RAS and indirect target cache exactly once; per-policy work
/// is limited to each lane's I-cache/BTB accesses. `base.policy` is
/// ignored — each lane is built for its own policy. Results are
/// bit-identical to running [`crate::simulator::Simulator::run`] once per
/// policy on the same trace.
///
/// # Panics
///
/// Panics if the BTB geometry in `base` is invalid.
pub fn run_lanes<S: ReplaySource>(
    base: &SimConfig,
    policies: &[PolicyKind],
    source: &S,
) -> Vec<RunResult> {
    let mut arena = EngineArena::new();
    run_lanes_multi(
        base,
        std::slice::from_ref(&base.icache),
        policies,
        true,
        source,
        &mut arena,
    )
    .pop()
    .unwrap_or_default()
}

/// Geometry-fused variant of [`run_lanes`]: one replay of `source` drives
/// an independent lane grid of `icaches.len() × policies.len()` lanes,
/// returning results geometry-major (`out[g][p]`).
///
/// Every geometry must share `base.icache`'s block size — the fetch
/// stream is chunked once at that granularity. Within that constraint the
/// *entire* policy-independent front end (decode, direction predictor,
/// RAS, indirect target cache) is shared across all geometries, so an
/// 8-geometry sweep costs one trace replay instead of eight. Each lane's
/// counters stay bit-identical to a standalone run of its
/// (geometry, policy) pair.
///
/// `measure_btb = false` skips the per-lane BTB entirely (its stats come
/// back zero); the GHRP BTB policy only reads the shared predictor, so
/// I-cache results are unaffected. Use it for sweeps, which consume only
/// I-cache means.
///
/// `arena` carries lane allocations across calls on the same worker; pass
/// a fresh [`EngineArena`] when no reuse is wanted.
///
/// # Panics
///
/// Panics if a geometry's block size differs from `base.icache`'s, or if
/// the BTB geometry in `base` is invalid.
pub fn run_lanes_multi<S: ReplaySource>(
    base: &SimConfig,
    icaches: &[fe_cache::CacheConfig],
    policies: &[PolicyKind],
    measure_btb: bool,
    source: &S,
    arena: &mut EngineArena,
) -> Vec<Vec<RunResult>> {
    let block_bytes = base.icache.block_bytes();
    assert!(
        icaches.iter().all(|c| c.block_bytes() == block_bytes),
        "fused geometries must share the base block size"
    );
    let npols = policies.len();
    if npols == 0 || icaches.is_empty() {
        return icaches.iter().map(|_| Vec::new()).collect();
    }

    let reusable = !policies.iter().any(|p| p.is_offline());
    let key_matches = reusable
        && arena
            .key
            .as_ref()
            .is_some_and(|k| k.base == *base && k.icaches == icaches && k.policies == policies);
    if key_matches {
        for lane in &mut arena.lanes {
            lane.reset_for_reuse();
        }
    } else {
        rebuild_arena(arena, base, icaches, policies, reusable, source);
    }
    let lanes = &mut arena.lanes;

    let mut fe = SharedFrontEnd::default();
    let warmup = (source.total_instructions() / 2).min(base.warmup_cap);
    let mut warmed = warmup == 0;
    let mut instructions = 0u64;
    let mut measured_instructions = 0u64;

    for chunk in FetchStream::new(source.replay(), block_bytes) {
        instructions += u64::from(chunk.n_instr);
        if warmed {
            measured_instructions += u64::from(chunk.n_instr);
        }
        if chunk.starts_group {
            for lane in lanes.iter_mut() {
                lane.access_group(&chunk, base);
            }
        }
        if let Some(branch) = chunk.branch {
            let mispredicted = fe.observe(&branch);
            for lane in lanes.iter_mut() {
                lane.observe_branch(&branch, mispredicted, base, measure_btb);
            }
        }
        if !warmed && instructions >= warmup {
            warmed = true;
            fe.reset_stats();
            for lane in lanes.iter_mut() {
                lane.reset_stats();
            }
        }
    }

    // Every lane consumed the identical event stream.
    debug_assert!(
        lanes.windows(2).all(|w| w[0].groups == w[1].groups),
        "policy lanes diverged: fetch-group counts {:?}",
        lanes.iter().map(|l| l.groups).collect::<Vec<_>>()
    );

    (0..icaches.len())
        .map(|g| {
            lanes[g * npols..(g + 1) * npols]
                .iter()
                .map(|lane| lane.finish(measured_instructions, &fe))
                .collect()
        })
        .collect()
}

/// One replayed slice of a phase-sampled run: the record range to
/// replay, how much of its prefix is functional warming (measurement
/// off), and the cluster weight its measured metrics carry in the
/// combined estimate.
///
/// Segments are produced by [`crate::sampled::SamplePlan`] in ascending
/// trace order; [`run_lanes_sampled`] replays them back to back over one
/// persistent front end and lane grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampledSegment {
    /// First record of the segment (inclusive).
    pub rec_lo: u64,
    /// One past the last record of the segment.
    pub rec_hi: u64,
    /// Instructions at the segment start replayed with measurement off
    /// (functional warming of caches, BTB and predictors).
    pub warmup_instructions: u64,
    /// Cluster weight of the measured interval (fractions sum to 1).
    pub weight: f64,
}

/// Phase-sampled variant of [`run_lanes_multi`]: replay only the given
/// `segments` of `trace`, returning per-segment results
/// (`out[s][g][p]`, segment-major then geometry-major).
///
/// Cache, BTB and predictor **state** persists across segments (the
/// previous segment is the best available approximation of the skipped
/// gap); **counters** reset at each segment's warmup boundary, so each
/// segment's [`RunResult`] covers exactly its measured interval. A
/// segment with `warmup_instructions == 0` resets counters before its
/// first record.
///
/// Offline (OPT) policies are not supported: their precompute is defined
/// over a full replay, which sampling never performs.
///
/// # Panics
///
/// Panics if `policies` contains an offline policy, or if a geometry's
/// block size differs from `base.icache`'s.
pub fn run_lanes_sampled(
    base: &SimConfig,
    icaches: &[fe_cache::CacheConfig],
    policies: &[PolicyKind],
    measure_btb: bool,
    trace: &fe_trace::corpus::CorpusTrace,
    segments: &[SampledSegment],
    arena: &mut EngineArena,
) -> Vec<Vec<Vec<RunResult>>> {
    let block_bytes = base.icache.block_bytes();
    assert!(
        icaches.iter().all(|c| c.block_bytes() == block_bytes),
        "fused geometries must share the base block size"
    );
    assert!(
        !policies.iter().any(|p| p.is_offline()),
        "offline policies cannot be phase-sampled"
    );
    let npols = policies.len();
    if npols == 0 || icaches.is_empty() {
        return segments
            .iter()
            .map(|_| icaches.iter().map(|_| Vec::new()).collect())
            .collect();
    }

    let key_matches = arena
        .key
        .as_ref()
        .is_some_and(|k| k.base == *base && k.icaches == icaches && k.policies == policies);
    if key_matches {
        for lane in &mut arena.lanes {
            lane.reset_for_reuse();
        }
    } else {
        rebuild_arena(arena, base, icaches, policies, true, trace);
    }
    let lanes = &mut arena.lanes;

    let mut fe = SharedFrontEnd::default();
    let mut out = Vec::with_capacity(segments.len());
    for seg in segments {
        let warmup = seg.warmup_instructions;
        let mut warmed = warmup == 0;
        if warmed {
            // No warmup prefix: counters carried over from the previous
            // segment must still be cleared at the measurement start.
            fe.reset_stats();
            for lane in lanes.iter_mut() {
                lane.reset_stats();
            }
        }
        let mut instructions = 0u64;
        let mut measured_instructions = 0u64;
        for chunk in FetchStream::new(trace.cursor_range(seg.rec_lo, seg.rec_hi), block_bytes) {
            instructions += u64::from(chunk.n_instr);
            if warmed {
                measured_instructions += u64::from(chunk.n_instr);
            }
            if chunk.starts_group {
                for lane in lanes.iter_mut() {
                    lane.access_group(&chunk, base);
                }
            }
            if let Some(branch) = chunk.branch {
                let mispredicted = fe.observe(&branch);
                for lane in lanes.iter_mut() {
                    lane.observe_branch(&branch, mispredicted, base, measure_btb);
                }
            }
            if !warmed && instructions >= warmup {
                warmed = true;
                fe.reset_stats();
                for lane in lanes.iter_mut() {
                    lane.reset_stats();
                }
            }
        }
        out.push(
            (0..icaches.len())
                .map(|g| {
                    lanes[g * npols..(g + 1) * npols]
                        .iter()
                        .map(|lane| lane.finish(measured_instructions, &fe))
                        .collect()
                })
                .collect(),
        );
    }
    out
}

/// Rebuild an arena's lane grid from scratch for a new
/// (config, geometries, policies) key.
fn rebuild_arena<S: ReplaySource>(
    arena: &mut EngineArena,
    base: &SimConfig,
    icaches: &[fe_cache::CacheConfig],
    policies: &[PolicyKind],
    reusable: bool,
    source: &S,
) {
    // Offline (OPT) lanes need the full access sequences ahead of time:
    // precompute them once per trace and share across all offline lanes
    // (the block sequence is geometry-independent).
    let offline = if reusable {
        None
    } else {
        Some(offline_sequences(
            source.replay(),
            base.icache.block_bytes(),
        ))
    };
    arena.lanes.clear();
    for &icache in icaches {
        for &p in policies {
            let seq = if p.is_offline() {
                offline.as_ref()
            } else {
                None
            };
            arena.lanes.push(Lane {
                policy: p,
                pair: build_pair(
                    p,
                    icache,
                    base.btb_entries,
                    base.btb_ways,
                    base.ghrp,
                    base.sdbp,
                    base.seed,
                    seq.map(|(blocks, _)| blocks.as_slice()),
                    seq.map(|(_, pcs)| pcs.as_slice()),
                ),
                wrong_path_misses: 0,
                wrong_path_accesses: 0,
                groups: 0,
            });
        }
    }
    arena.key = reusable.then(|| ArenaKey {
        base: *base,
        icaches: icaches.to_vec(),
        policies: policies.to_vec(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::{Simulator, WrongPathConfig};
    use fe_trace::synth::{WorkloadCategory, WorkloadSpec};

    fn spec(seed: u64, n: u64) -> WorkloadSpec {
        WorkloadSpec::new(WorkloadCategory::ShortServer, seed).instructions(n)
    }

    const SEVEN: &[PolicyKind] = &[
        PolicyKind::Lru,
        PolicyKind::Fifo,
        PolicyKind::Random,
        PolicyKind::Srrip,
        PolicyKind::Drrip,
        PolicyKind::Sdbp,
        PolicyKind::Ghrp,
    ];

    #[test]
    fn lanes_match_legacy_per_policy_runs() {
        let trace = spec(3, 200_000).generate();
        let base = SimConfig::paper_default();
        let results = run_lanes(&base, SEVEN, &SliceReplay::from_trace(&trace));
        assert_eq!(results.len(), SEVEN.len());
        for (r, &p) in results.iter().zip(SEVEN) {
            let legacy =
                Simulator::new(base.with_policy(p)).run(&trace.records, trace.instructions);
            assert_eq!(*r, legacy, "lane {p} diverged from legacy");
        }
    }

    #[test]
    fn lanes_match_legacy_with_wrong_path() {
        let trace = spec(5, 150_000).generate();
        let mut base = SimConfig::paper_default();
        base.wrong_path = Some(WrongPathConfig::default());
        let pols = [PolicyKind::Lru, PolicyKind::Ghrp, PolicyKind::Sdbp];
        let results = run_lanes(&base, &pols, &SliceReplay::from_trace(&trace));
        for (r, &p) in results.iter().zip(&pols) {
            let legacy =
                Simulator::new(base.with_policy(p)).run(&trace.records, trace.instructions);
            assert_eq!(*r, legacy, "lane {p} diverged from legacy (wrong-path)");
        }
    }

    #[test]
    fn streaming_source_matches_slice_source() {
        let s = spec(7, 120_000);
        let base = SimConfig::paper_default();
        let trace = s.generate();
        let from_slice = run_lanes(&base, SEVEN, &SliceReplay::from_trace(&trace));
        let from_stream = run_lanes(&base, SEVEN, &s.streamed());
        assert_eq!(from_slice, from_stream);
    }

    #[test]
    fn offline_lane_shares_precompute_with_online_lanes() {
        let trace = spec(11, 100_000).generate();
        let base = SimConfig::paper_default();
        let pols = [PolicyKind::Opt, PolicyKind::Lru];
        let results = run_lanes(&base, &pols, &SliceReplay::from_trace(&trace));
        for (r, &p) in results.iter().zip(&pols) {
            let legacy =
                Simulator::new(base.with_policy(p)).run(&trace.records, trace.instructions);
            assert_eq!(*r, legacy, "lane {p} diverged from legacy (OPT)");
        }
    }

    #[test]
    fn prefetch_lanes_match_legacy() {
        let trace = spec(13, 150_000).generate();
        let mut base = SimConfig::paper_default();
        base.prefetch_degree = 2;
        let pols = [PolicyKind::Lru, PolicyKind::Srrip];
        let results = run_lanes(&base, &pols, &SliceReplay::from_trace(&trace));
        for (r, &p) in results.iter().zip(&pols) {
            let legacy =
                Simulator::new(base.with_policy(p)).run(&trace.records, trace.instructions);
            assert_eq!(*r, legacy, "lane {p} diverged from legacy (prefetch)");
        }
    }

    #[test]
    fn empty_policy_set_yields_nothing() {
        let trace = spec(17, 50_000).generate();
        let results = run_lanes(
            &SimConfig::paper_default(),
            &[],
            &SliceReplay::from_trace(&trace),
        );
        assert!(results.is_empty());
    }

    #[test]
    fn empty_trace_runs_all_lanes() {
        let results = run_lanes(
            &SimConfig::paper_default(),
            &[PolicyKind::Lru, PolicyKind::Ghrp],
            &SliceReplay::new(&[], 0),
        );
        assert_eq!(results.len(), 2);
        for r in &results {
            assert_eq!(r.instructions, 0);
            assert_eq!(r.icache.accesses, 0);
        }
    }
}
