//! `fe-sim` — command-line front-end simulator.
//!
//! Subcommands:
//!
//! ```text
//! fe-sim generate --category short_server --seed 7 --instr 2000000 --out trace.bin
//! fe-sim stats    --trace trace.bin
//! fe-sim run      --trace trace.bin --policy ghrp [--icache-kb 64 --ways 8 ...]
//! fe-sim run      --category long_mobile --seed 3 --policy lru   # synthetic, no file
//! fe-sim compare  --category short_server --seed 7               # all policies
//! ```
//!
//! Traces use the `fe-trace` binary format, so externally produced traces
//! in the same format can be simulated too.

#![forbid(unsafe_code)]

use fe_cache::CacheConfig;
use fe_frontend::{policy::PolicyKind, simulator::SimConfig, Simulator};
use fe_trace::synth::{WorkloadCategory, WorkloadSpec};
use fe_trace::{io as trace_io, BranchRecord, TraceStats};
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: fe-sim <generate|stats|run|compare> [options]
  common trace source options:
    --trace FILE          read a binary trace file
    --category C          synthesize (short_mobile|long_mobile|short_server|long_server)
    --seed N              workload seed (default 1)
    --instr N             instruction budget (default: category default)
  generate:
    --out FILE            where to write the binary trace (required)
  run:
    --policy P            lru|fifo|random|srrip|drrip|ship|sdbp|ghrp|opt (default ghrp),
                          or a hybrid: duel(ghrp,srrip,sdbp) / phase(ghrp,srrip;window=8192)
    --icache-kb N         I-cache capacity in KB (default 64)
    --ways N              I-cache associativity (default 8)
    --block N             I-cache block bytes (default 64)
    --btb-entries N       BTB entries (default 4096)
    --btb-ways N          BTB associativity (default 4)
    --prefetch N          next-line prefetch degree (default 0)
    --json                machine-readable output"
    );
    exit(2)
}

#[derive(Debug, Default)]
struct Opts {
    trace: Option<String>,
    category: Option<String>,
    seed: u64,
    instr: Option<u64>,
    out: Option<String>,
    policy: Option<String>,
    icache_kb: u64,
    ways: u32,
    block: u64,
    btb_entries: u32,
    btb_ways: u32,
    prefetch: u32,
    json: bool,
}

fn parse_opts(args: &[String]) -> Opts {
    let mut o = Opts {
        seed: 1,
        icache_kb: 64,
        ways: 8,
        block: 64,
        btb_entries: 4096,
        btb_ways: 4,
        ..Opts::default()
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = || {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("missing value for {a}");
                    usage()
                })
                .clone()
        };
        match a.as_str() {
            "--trace" => o.trace = Some(val()),
            "--category" => o.category = Some(val()),
            "--seed" => o.seed = val().parse().unwrap_or_else(|_| usage()),
            "--instr" => o.instr = Some(val().parse().unwrap_or_else(|_| usage())),
            "--out" => o.out = Some(val()),
            "--policy" => o.policy = Some(val()),
            "--icache-kb" => o.icache_kb = val().parse().unwrap_or_else(|_| usage()),
            "--ways" => o.ways = val().parse().unwrap_or_else(|_| usage()),
            "--block" => o.block = val().parse().unwrap_or_else(|_| usage()),
            "--btb-entries" => o.btb_entries = val().parse().unwrap_or_else(|_| usage()),
            "--btb-ways" => o.btb_ways = val().parse().unwrap_or_else(|_| usage()),
            "--prefetch" => o.prefetch = val().parse().unwrap_or_else(|_| usage()),
            "--json" => o.json = true,
            _ => {
                eprintln!("unknown option {a}");
                usage()
            }
        }
    }
    o
}

fn parse_category(s: &str) -> WorkloadCategory {
    match s.to_ascii_lowercase().as_str() {
        "short_mobile" | "sm" => WorkloadCategory::ShortMobile,
        "long_mobile" | "lm" => WorkloadCategory::LongMobile,
        "short_server" | "ss" => WorkloadCategory::ShortServer,
        "long_server" | "ls" => WorkloadCategory::LongServer,
        other => {
            eprintln!("unknown category {other}");
            usage()
        }
    }
}

/// Load or synthesize the trace per the options.
fn load_trace(o: &Opts) -> (Vec<BranchRecord>, u64, String) {
    if let Some(path) = &o.trace {
        let file = std::fs::File::open(path).unwrap_or_else(|e| {
            eprintln!("cannot open {path}: {e}");
            exit(1)
        });
        let records = trace_io::read_binary(std::io::BufReader::new(file)).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            exit(1)
        });
        let stats = TraceStats::compute(&records);
        (records, stats.instructions, path.clone())
    } else if let Some(cat) = &o.category {
        let mut spec = WorkloadSpec::new(parse_category(cat), o.seed);
        if let Some(n) = o.instr {
            spec = spec.instructions(n);
        }
        let t = spec.generate();
        (t.records, t.instructions, t.spec.name)
    } else {
        eprintln!("need --trace or --category");
        usage()
    }
}

fn sim_config(o: &Opts, policy: PolicyKind) -> SimConfig {
    let mut cfg = SimConfig::paper_default().with_policy(policy);
    cfg.icache =
        CacheConfig::with_capacity(o.icache_kb * 1024, o.ways, o.block).unwrap_or_else(|e| {
            eprintln!("bad I-cache geometry: {e}");
            exit(1)
        });
    cfg.btb_entries = o.btb_entries;
    cfg.btb_ways = o.btb_ways;
    cfg.prefetch_degree = o.prefetch;
    cfg
}

fn print_run(name: &str, cfg: &SimConfig, r: &fe_frontend::RunResult, json: bool) {
    if json {
        println!(
            "{}",
            serde_json::json!({
                "trace": name,
                "policy": r.policy.to_string(),
                "instructions": r.instructions,
                "icache_mpki": r.icache_mpki(),
                "btb_mpki": r.btb_mpki(),
                "branch_mpki": r.branch_mpki(),
                "indirect_mpki": r.indirect_mpki(),
                "icache": r.icache,
                "prefetch_fills": r.prefetch_fills,
            })
        );
    } else {
        println!(
            "{name} | {} | {} | icache {:.3} MPKI, btb {:.3} MPKI, cond {:.2} MPKI, indirect {:.2} MPKI",
            cfg.icache,
            r.policy,
            r.icache_mpki(),
            r.btb_mpki(),
            r.branch_mpki(),
            r.indirect_mpki(),
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        usage()
    };
    let o = parse_opts(rest);
    match cmd.as_str() {
        "generate" => {
            let (records, instructions, name) = load_trace(&o);
            let Some(out) = &o.out else {
                eprintln!("generate requires --out");
                usage()
            };
            let file = std::fs::File::create(out).unwrap_or_else(|e| {
                eprintln!("cannot create {out}: {e}");
                exit(1)
            });
            trace_io::write_binary(std::io::BufWriter::new(file), &records).unwrap_or_else(|e| {
                eprintln!("write failed: {e}");
                exit(1)
            });
            println!(
                "{name}: wrote {} records ({instructions} instructions) to {out}",
                records.len()
            );
        }
        "stats" => {
            let (records, _, name) = load_trace(&o);
            let s = TraceStats::compute(&records);
            if o.json {
                println!("{}", serde_json::to_string_pretty(&s).expect("serialize"));
            } else {
                println!("{name}:");
                println!("  branches              {}", s.branches);
                println!("  instructions          {}", s.instructions);
                println!("  cond taken rate       {:.1}%", s.cond_taken_rate * 100.0);
                println!("  distinct branch sites {}", s.distinct_branch_pcs);
                println!("  dynamic footprint     {} KB", s.footprint_bytes() / 1024);
            }
        }
        "run" => {
            let (records, instructions, name) = load_trace(&o);
            let policy = o.policy.as_deref().map_or(PolicyKind::Ghrp, |p| {
                PolicyKind::parse(p).unwrap_or_else(|| {
                    eprintln!("unknown policy `{p}`");
                    eprint!("{}", PolicyKind::spellings_help());
                    exit(2)
                })
            });
            let cfg = sim_config(&o, policy);
            let r = Simulator::new(cfg).run(&records, instructions);
            print_run(&name, &cfg, &r, o.json);
        }
        "compare" => {
            let (records, instructions, name) = load_trace(&o);
            for &p in PolicyKind::ALL_ONLINE {
                let cfg = sim_config(&o, p);
                let r = Simulator::new(cfg).run(&records, instructions);
                print_run(&name, &cfg, &r, o.json);
            }
        }
        _ => usage(),
    }
}
