//! Dependency-free work-stealing scheduler for suite/sweep task grids.
//!
//! [`crate::experiment::run_suite`] and [`crate::sweep::run_sweep`] flatten
//! their work into a grid of independent tasks (workload × policy-chunk, or
//! workload × geometry-group) and drain it through [`run_grid`]. Three
//! strategies cover the grid shapes that occur in practice:
//!
//! * **Inline** — one worker (or ≤ 1 task): no threads are spawned at all.
//! * **Shared index** — small grids (fewer than two tasks per worker):
//!   a single shared atomic cursor; every claim is one `fetch_add`, and
//!   load balance is perfect because there is no ownership to rebalance.
//! * **Work stealing** — larger grids: each worker starts with a
//!   contiguous range of task indices packed into one `AtomicU64`
//!   (`head << 32 | tail`). The owner pops from the head; an idle worker
//!   CASes the *back half* off a victim's range — the tasks the owner
//!   would reach last — and publishes the stolen range as its own. Ranges
//!   only ever split and shrink, and every index is claimed exactly once,
//!   so a packed value can never recur (no ABA) and an all-empty scan is a
//!   safe exit condition.
//!
//! Determinism: the scheduler decides only *where* a task runs, never what
//! it computes. Each task's result is written back to its own slot of the
//! output vector, so the returned `Vec` is in task order regardless of the
//! interleaving — callers get output bit-identical to a serial loop.
//!
//! Contiguous initial ranges also give per-worker state (the engine's
//! [`crate::engine::EngineArena`]) the best possible reuse locality: a
//! worker's consecutive tasks usually share a configuration, so lane
//! allocations reset in place instead of being rebuilt.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Resolve a user-facing thread count: `0` means "use every available
/// hardware thread", anything else is taken literally.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        threads
    }
}

/// Which drain strategy [`run_grid`] picked for a grid.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Strategy {
    /// Single worker, no threads spawned.
    #[default]
    Inline,
    /// Shared atomic-cursor queue (small grids).
    SharedIndex,
    /// Per-worker deques with back-half stealing.
    Stealing,
}

/// Per-worker counters from one grid drain.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerStats {
    /// Tasks this worker executed (its own plus any it stole).
    pub tasks: u64,
    /// Successful steals this worker performed.
    pub steals: u64,
    /// Nanoseconds spent inside task bodies (excludes idle spinning).
    pub busy_ns: u64,
}

/// Scheduler observability for one grid drain.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SchedulerStats {
    /// Strategy the grid was drained with.
    pub strategy: Strategy,
    /// Worker count actually used (after clamping to the task count).
    pub workers: usize,
    /// Total tasks in the grid.
    pub tasks: u64,
    /// Total successful steals across all workers.
    pub steals: u64,
    /// Wall-clock nanoseconds for the whole drain.
    pub wall_ns: u64,
    /// One entry per worker.
    pub per_worker: Vec<WorkerStats>,
}

impl SchedulerStats {
    /// Mean fraction of the drain's wall-clock each worker spent inside
    /// task bodies — 1.0 is a perfectly balanced, never-idle pool.
    pub fn utilization(&self) -> f64 {
        if self.workers == 0 || self.wall_ns == 0 {
            return 0.0;
        }
        let busy: u64 = self.per_worker.iter().map(|w| w.busy_ns).sum();
        // wall_ns covers thread spawn/join too, so this underestimates
        // slightly; it can still nudge past 1.0 from timer granularity.
        (busy as f64 / (self.wall_ns as f64 * self.workers as f64)).min(1.0)
    }

    /// Tasks per wall-clock second.
    pub fn tasks_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.tasks as f64 / (self.wall_ns as f64 / 1e9)
    }
}

/// Grids are bounded so a task index always fits the 32-bit halves of a
/// packed range. Suite/sweep grids are orders of magnitude smaller.
const MAX_TASKS: u64 = (1 << 32) - 1;

fn to_u64(x: usize) -> u64 {
    // Infallible on every supported target (usize ≤ 64 bits); the
    // fallback is never reached once `run_grid` has validated the grid.
    u64::try_from(x).unwrap_or(MAX_TASKS)
}

fn to_index(x: u64) -> usize {
    usize::try_from(x).unwrap_or(usize::MAX)
}

fn to_nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Pack a `head..tail` task-index range into one atomic word.
fn pack(head: u64, tail: u64) -> u64 {
    debug_assert!(head <= MAX_TASKS && tail <= MAX_TASKS && head <= tail);
    (head << 32) | tail
}

fn unpack(v: u64) -> (u64, u64) {
    (v >> 32, v & MAX_TASKS)
}

/// Owner/thief pop from the front of a packed range.
fn pop_front(range: &AtomicU64) -> Option<u64> {
    let mut v = range.load(Ordering::Acquire);
    loop {
        let (head, tail) = unpack(v);
        if head >= tail {
            return None;
        }
        match range.compare_exchange_weak(
            v,
            pack(head + 1, tail),
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => return Some(head),
            Err(cur) => v = cur,
        }
    }
}

/// Steal the back half of `victim`'s range and publish it as `me`'s.
///
/// Only called when `me` is empty, so the plain `store` cannot race a
/// concurrent claim on `me` (thieves never CAS an empty range, and a CAS
/// armed with a stale non-empty value fails by value inequality — exact
/// range values never recur because every task index is claimed once).
fn try_steal(victim: &AtomicU64, me: &AtomicU64) -> bool {
    let mut v = victim.load(Ordering::Acquire);
    loop {
        let (head, tail) = unpack(v);
        let len = tail.saturating_sub(head);
        if len == 0 {
            return false;
        }
        // Ceil-half keeps a lone straggler task stealable, which is what
        // rebalances a heavily skewed grid (one 10× workload).
        let take = len.div_ceil(2);
        match victim.compare_exchange_weak(
            v,
            pack(head, tail - take),
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => {
                me.store(pack(tail - take, tail), Ordering::Release);
                return true;
            }
            Err(cur) => v = cur,
        }
    }
}

/// Execute `tasks` independent tasks on `workers` OS threads and return
/// the results **in task order** plus scheduler counters.
///
/// `mk_ctx(worker)` builds one per-worker context (e.g. a lane arena) on
/// the worker's own thread; `run(&mut ctx, task)` executes one task. The
/// scheduler never splits or reorders a task's effects — output is
/// bit-identical to `(0..tasks).map(|t| run(&mut ctx, t))`.
///
/// # Panics
///
/// Panics if `tasks` exceeds the 32-bit grid bound, or propagates the
/// first worker panic.
pub fn run_grid<C, R, F, G>(
    tasks: usize,
    workers: usize,
    mk_ctx: F,
    run: G,
) -> (Vec<R>, SchedulerStats)
where
    R: Send,
    F: Fn(usize) -> C + Sync,
    G: Fn(&mut C, usize) -> R + Sync,
{
    assert!(
        to_u64(tasks) < MAX_TASKS,
        "task grid exceeds the 32-bit bound"
    );
    let workers = workers.max(1).min(tasks.max(1));
    let start = Instant::now();

    if workers == 1 || tasks <= 1 {
        let mut ctx = mk_ctx(0);
        let mut stats = WorkerStats::default();
        let out: Vec<R> = (0..tasks)
            .map(|t| {
                let t0 = Instant::now();
                let r = run(&mut ctx, t);
                stats.tasks += 1;
                stats.busy_ns += to_nanos(t0.elapsed());
                r
            })
            .collect();
        let sched = SchedulerStats {
            strategy: Strategy::Inline,
            workers: 1,
            tasks: to_u64(tasks),
            steals: 0,
            wall_ns: to_nanos(start.elapsed()),
            per_worker: vec![stats],
        };
        return (out, sched);
    }

    let (strategy, per_worker) = if tasks < 2 * workers {
        (
            Strategy::SharedIndex,
            drain_shared(tasks, workers, &mk_ctx, &run),
        )
    } else {
        (
            Strategy::Stealing,
            drain_stealing(tasks, workers, &mk_ctx, &run),
        )
    };

    let mut slots: Vec<Option<R>> = Vec::with_capacity(tasks);
    slots.resize_with(tasks, || None);
    let mut worker_stats = Vec::with_capacity(workers);
    for (results, stats) in per_worker {
        for (i, r) in results {
            slots[i] = Some(r);
        }
        worker_stats.push(stats);
    }
    let out: Vec<R> = slots.into_iter().flatten().collect();
    assert_eq!(out.len(), tasks, "scheduler lost a task result");
    let sched = SchedulerStats {
        strategy,
        workers,
        tasks: to_u64(tasks),
        steals: worker_stats.iter().map(|w| w.steals).sum(),
        wall_ns: to_nanos(start.elapsed()),
        per_worker: worker_stats,
    };
    (out, sched)
}

type WorkerOut<R> = (Vec<(usize, R)>, WorkerStats);

fn join_all<R>(handles: Vec<std::thread::ScopedJoinHandle<'_, WorkerOut<R>>>) -> Vec<WorkerOut<R>> {
    handles
        .into_iter()
        .map(|h| match h.join() {
            Ok(v) => v,
            Err(payload) => std::panic::resume_unwind(payload),
        })
        .collect()
}

/// Small grids: one shared atomic cursor, one `fetch_add` per claim.
fn drain_shared<C, R, F, G>(tasks: usize, workers: usize, mk_ctx: &F, run: &G) -> Vec<WorkerOut<R>>
where
    R: Send,
    F: Fn(usize) -> C + Sync,
    G: Fn(&mut C, usize) -> R + Sync,
{
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let next = &next;
                scope.spawn(move || {
                    let mut ctx = mk_ctx(w);
                    let mut results = Vec::new();
                    let mut stats = WorkerStats::default();
                    loop {
                        let t = next.fetch_add(1, Ordering::Relaxed);
                        if t >= tasks {
                            break;
                        }
                        let t0 = Instant::now();
                        results.push((t, run(&mut ctx, t)));
                        stats.tasks += 1;
                        stats.busy_ns += to_nanos(t0.elapsed());
                    }
                    (results, stats)
                })
            })
            .collect();
        join_all(handles)
    })
}

/// Larger grids: per-worker packed ranges with back-half stealing.
fn drain_stealing<C, R, F, G>(
    tasks: usize,
    workers: usize,
    mk_ctx: &F,
    run: &G,
) -> Vec<WorkerOut<R>>
where
    R: Send,
    F: Fn(usize) -> C + Sync,
    G: Fn(&mut C, usize) -> R + Sync,
{
    // Contiguous initial ranges: worker w owns [w·T/n, (w+1)·T/n).
    let ranges: Vec<AtomicU64> = (0..workers)
        .map(|w| {
            let lo = to_u64(w * tasks / workers);
            let hi = to_u64((w + 1) * tasks / workers);
            AtomicU64::new(pack(lo, hi))
        })
        .collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let ranges = &ranges;
                scope.spawn(move || {
                    let n = ranges.len();
                    let mut ctx = mk_ctx(w);
                    let mut results = Vec::new();
                    let mut stats = WorkerStats::default();
                    'drain: loop {
                        while let Some(t) = pop_front(&ranges[w]) {
                            let t0 = Instant::now();
                            let i = to_index(t);
                            results.push((i, run(&mut ctx, i)));
                            stats.tasks += 1;
                            stats.busy_ns += to_nanos(t0.elapsed());
                        }
                        for off in 1..n {
                            let victim = (w + off) % n;
                            if try_steal(&ranges[victim], &ranges[w]) {
                                stats.steals += 1;
                                continue 'drain;
                            }
                        }
                        // Every range observed empty ⇒ all indices are
                        // claimed (ranges only shrink). A steal still in
                        // its publish window only makes *this* worker
                        // exit early; the thief owns those tasks.
                        if ranges.iter().all(|r| {
                            let (h, t) = unpack(r.load(Ordering::Acquire));
                            h >= t
                        }) {
                            break;
                        }
                        std::thread::yield_now();
                    }
                    (results, stats)
                })
            })
            .collect();
        join_all(handles)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as TestAtomic;

    fn grid_squares(tasks: usize, workers: usize) -> (Vec<usize>, SchedulerStats) {
        run_grid(tasks, workers, |_| (), |(), t| t * t)
    }

    #[test]
    fn inline_small_and_stealing_agree() {
        let (serial, s1) = grid_squares(37, 1);
        assert_eq!(s1.strategy, Strategy::Inline);
        let (shared, s2) = grid_squares(5, 4);
        assert_eq!(s2.strategy, Strategy::SharedIndex);
        assert_eq!(shared, (0..5).map(|t| t * t).collect::<Vec<_>>());
        let (stolen, s3) = grid_squares(37, 4);
        assert_eq!(s3.strategy, Strategy::Stealing);
        assert_eq!(serial, stolen);
        assert_eq!(serial, (0..37).map(|t| t * t).collect::<Vec<_>>());
    }

    #[test]
    fn results_in_task_order_for_every_worker_count() {
        for workers in 1..=8 {
            for tasks in [0, 1, 2, 3, 7, 16, 33] {
                let (out, stats) = grid_squares(tasks, workers);
                assert_eq!(out, (0..tasks).map(|t| t * t).collect::<Vec<_>>());
                assert_eq!(stats.tasks, to_u64(tasks));
                let executed: u64 = stats.per_worker.iter().map(|w| w.tasks).sum();
                assert_eq!(executed, to_u64(tasks), "every task runs exactly once");
            }
        }
    }

    #[test]
    fn skewed_grid_gets_stolen() {
        // Task 0 is ~10× the rest: the owner of the front range gets
        // stuck on it and the others must steal to stay busy.
        let slow = TestAtomic::new(0);
        let (out, stats) = run_grid(
            64,
            4,
            |_| (),
            |(), t| {
                let spins = if t == 0 { 200_000u64 } else { 20_000 };
                let mut acc = 0u64;
                for i in 0..spins {
                    acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(i);
                }
                // Sink `acc` so the spin loop cannot be optimized away.
                slow.fetch_add(acc | 1, Ordering::Relaxed);
                to_u64(t)
            },
        );
        assert_eq!(out, (0..64u64).collect::<Vec<_>>());
        assert_eq!(stats.strategy, Strategy::Stealing);
        assert_eq!(stats.per_worker.len(), 4);
    }

    #[test]
    fn per_worker_contexts_are_private() {
        // Each context counts its own tasks; totals must add up even
        // though no locking protects the contexts.
        let (out, stats) = run_grid(
            40,
            3,
            |w| (w, 0usize),
            |ctx, t| {
                ctx.1 += 1;
                (ctx.0, t)
            },
        );
        assert_eq!(out.len(), 40);
        for (i, (_, t)) in out.iter().enumerate() {
            assert_eq!(*t, i);
        }
        assert_eq!(stats.per_worker.iter().map(|w| w.tasks).sum::<u64>(), 40);
    }

    #[test]
    fn utilization_and_rate_are_sane() {
        let (_, stats) = run_grid(
            16,
            2,
            |_| (),
            |(), t| {
                std::thread::sleep(std::time::Duration::from_micros(200));
                t
            },
        );
        assert!(stats.wall_ns > 0);
        assert!(stats.utilization() > 0.0);
        assert!(stats.utilization() <= 1.0);
        assert!(stats.tasks_per_sec() > 0.0);
    }

    #[test]
    fn workers_clamped_to_tasks() {
        let (out, stats) = grid_squares(3, 64);
        assert_eq!(out.len(), 3);
        assert!(stats.workers <= 3);
    }

    #[test]
    fn zero_defaults_to_available_parallelism() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(5), 5);
    }

    #[test]
    fn pack_roundtrip_and_steal_protocol() {
        let r = TestAtomic::new(pack(3, 11));
        assert_eq!(unpack(r.load(Ordering::Relaxed)), (3, 11));
        assert_eq!(pop_front(&r), Some(3));
        let me = TestAtomic::new(pack(0, 0));
        assert!(try_steal(&r, &me));
        // Victim kept its front, the thief published the back half.
        let (vh, vt) = unpack(r.load(Ordering::Relaxed));
        let (mh, mt) = unpack(me.load(Ordering::Relaxed));
        assert_eq!((vh, mt), (4, 11));
        assert_eq!(vt, mh);
        // Stealing drains down to single tasks — nothing is stranded.
        while try_steal(&r, &me) || pop_front(&me).is_some() || pop_front(&r).is_some() {}
        assert_eq!(
            unpack(r.load(Ordering::Relaxed)).0,
            unpack(r.load(Ordering::Relaxed)).1
        );
    }

    #[test]
    #[should_panic(expected = "32-bit bound")]
    fn oversized_grid_panics() {
        let _ = run_grid(usize::MAX, 2, |_| (), |(), t| t);
    }
}
