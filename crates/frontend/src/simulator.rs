//! The trace-driven front-end simulator.
//!
//! Mirrors the paper's methodology (§IV): replay a CBP-5-style branch
//! trace, reconstruct the fetch-block stream, access the I-cache once per
//! fetch group and the BTB once per taken branch, drive a hashed-perceptron
//! direction predictor, warm structures over the first half of the trace
//! (capped), and report misses per kilo-instruction.
//!
//! The simulator is not cycle accurate. GHRP history management follows
//! §III.F: the speculative history advances with fetch; when wrong-path
//! injection is enabled, a misprediction fetches a configurable number of
//! wrong-path blocks (polluting the cache and the speculative history,
//! exactly the pollution the dual-history mechanism exists to bound) and
//! then restores the speculative history from the retired one.

#![forbid(unsafe_code)]

use crate::policy::{build_pair, PolicyKind};
use fe_branch::{
    DirectionPredictor, HashedPerceptron, PredictorStats, ReturnAddressStack, TargetCache,
};
use fe_cache::{CacheConfig, CacheStats};
use fe_sdbp::SdbpConfig;
use fe_trace::fetch::FetchStream;
use fe_trace::record::{BranchKind, BranchRecord, INSTRUCTION_BYTES};
use ghrp_core::GhrpConfig;
use serde::{Deserialize, Serialize};

/// Paper default: warm-up is the first half of the trace, capped at 200 M
/// instructions (§IV.C).
pub const WARMUP_CAP_INSTRUCTIONS: u64 = 200_000_000;

/// Wrong-path injection parameters (the §III.F ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WrongPathConfig {
    /// Sequential wrong-path blocks fetched per conditional misprediction.
    pub blocks_per_misprediction: u32,
    /// Whether to restore the speculative GHRP history from the retired
    /// one after the misprediction resolves (on = the paper's recovery).
    pub recover_history: bool,
}

impl Default for WrongPathConfig {
    fn default() -> WrongPathConfig {
        WrongPathConfig {
            blocks_per_misprediction: 2,
            recover_history: true,
        }
    }
}

/// Full simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// I-cache geometry.
    pub icache: CacheConfig,
    /// Total BTB entries.
    pub btb_entries: u32,
    /// BTB associativity.
    pub btb_ways: u32,
    /// Replacement policy for both structures.
    pub policy: PolicyKind,
    /// GHRP tunables (used when `policy == Ghrp`).
    pub ghrp: GhrpConfig,
    /// SDBP tunables (used when `policy == Sdbp`).
    pub sdbp: SdbpConfig,
    /// Warm-up cap in instructions (`WARMUP_CAP_INSTRUCTIONS` = paper).
    pub warmup_cap: u64,
    /// Seed for randomized policies.
    pub seed: u64,
    /// Optional wrong-path injection.
    pub wrong_path: Option<WrongPathConfig>,
    /// Miss-triggered next-line I-prefetch degree (0 = off). On each
    /// demand miss, the next `prefetch_degree` sequential blocks are
    /// installed — the simplest member of the instruction-prefetching
    /// family the paper positions itself against (§II.E).
    pub prefetch_degree: u32,
}

impl SimConfig {
    /// The paper's headline configuration: 64 KB 8-way 64 B I-cache,
    /// 4,096-entry 4-way BTB, LRU policy.
    ///
    /// # Panics
    ///
    /// Never in practice — the hard-coded geometry is valid.
    pub fn paper_default() -> SimConfig {
        SimConfig {
            icache: CacheConfig::with_capacity(64 * 1024, 8, 64).expect("paper geometry is valid"),
            btb_entries: 4096,
            btb_ways: 4,
            policy: PolicyKind::Lru,
            ghrp: GhrpConfig::default(),
            sdbp: SdbpConfig::default(),
            warmup_cap: WARMUP_CAP_INSTRUCTIONS,
            seed: 0,
            wrong_path: None,
            prefetch_degree: 0,
        }
    }

    /// Builder-style policy override.
    #[must_use]
    pub fn with_policy(mut self, policy: PolicyKind) -> SimConfig {
        self.policy = policy;
        self
    }

    /// Builder-style I-cache override.
    #[must_use]
    pub fn with_icache(mut self, icache: CacheConfig) -> SimConfig {
        self.icache = icache;
        self
    }
}

/// Measured outcome of one simulation run (post-warm-up window).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Policy simulated.
    pub policy: PolicyKind,
    /// Instructions in the measurement window.
    pub instructions: u64,
    /// I-cache counters over the window.
    pub icache: CacheStats,
    /// BTB lookups over the window.
    pub btb_lookups: u64,
    /// BTB misses over the window.
    pub btb_misses: u64,
    /// Conditional branches predicted over the window.
    pub cond_branches: u64,
    /// Conditional mispredictions over the window.
    pub cond_mispredictions: u64,
    /// Return-address-stack mispredictions over the window.
    pub ras_mispredictions: u64,
    /// Indirect jumps/calls predicted over the window.
    pub indirect_branches: u64,
    /// Indirect target mispredictions over the window.
    pub indirect_mispredictions: u64,
    /// Prefetch fills issued over the window.
    pub prefetch_fills: u64,
}

impl RunResult {
    /// I-cache misses per kilo-instruction.
    pub fn icache_mpki(&self) -> f64 {
        mpki(self.icache.misses, self.instructions)
    }

    /// BTB misses per kilo-instruction.
    pub fn btb_mpki(&self) -> f64 {
        mpki(self.btb_misses, self.instructions)
    }

    /// Conditional-branch mispredictions per kilo-instruction.
    pub fn branch_mpki(&self) -> f64 {
        mpki(self.cond_mispredictions, self.instructions)
    }

    /// Indirect-target mispredictions per kilo-instruction.
    pub fn indirect_mpki(&self) -> f64 {
        mpki(self.indirect_mispredictions, self.instructions)
    }
}

fn mpki(misses: u64, instructions: u64) -> f64 {
    if instructions == 0 {
        0.0
    } else {
        misses as f64 * 1000.0 / instructions as f64
    }
}

/// Offline (OPT) access sequences for a trace, in one decode pass: the
/// I-cache fetch-group block sequence and the BTB taken-branch PC
/// sequence (instruction-aligned), exactly the orders in which the
/// simulator later touches those structures.
///
/// Both the legacy single-policy path and the multi-policy engine build
/// their [`fe_cache::policy::BeladyOpt`] lanes from this; the engine
/// computes it at most **once per trace** and shares it across every
/// offline lane.
pub fn offline_sequences<I>(records: I, block_bytes: u64) -> (Vec<u64>, Vec<u64>)
where
    I: Iterator<Item = BranchRecord>,
{
    let mut blocks = Vec::new();
    let mut pcs = Vec::new();
    for chunk in FetchStream::new(records, block_bytes) {
        if chunk.starts_group {
            blocks.push(chunk.block_addr);
        }
        if let Some(b) = chunk.branch {
            if b.taken {
                pcs.push(b.pc & !(INSTRUCTION_BYTES - 1));
            }
        }
    }
    (blocks, pcs)
}

/// The simulator itself. Construct with [`Simulator::new`], then call
/// [`Simulator::run`] with the trace records.
#[derive(Debug)]
pub struct Simulator {
    cfg: SimConfig,
}

impl Simulator {
    /// Create a simulator for `cfg`.
    pub fn new(cfg: SimConfig) -> Simulator {
        Simulator { cfg }
    }

    /// Warm-up length for a trace of `total_instructions` (§IV.C: half the
    /// trace or the cap, whichever is smaller).
    pub fn warmup_instructions(&self, total_instructions: u64) -> u64 {
        (total_instructions / 2).min(self.cfg.warmup_cap)
    }

    /// Simulate `records`. `total_instructions` is the trace's instruction
    /// count (used to size the warm-up window).
    // The fetch/predict/update loop reads as one unit; splitting it would
    // scatter the per-chunk protocol across helpers.
    #[allow(clippy::too_many_lines)]
    pub fn run(&self, records: &[BranchRecord], total_instructions: u64) -> RunResult {
        let cfg = &self.cfg;
        // Offline (OPT) policies need the exact access sequences up front.
        let (opt_blocks, opt_pcs) = if cfg.policy.is_offline() {
            let (blocks, pcs) =
                offline_sequences(records.iter().copied(), cfg.icache.block_bytes());
            (Some(blocks), Some(pcs))
        } else {
            (None, None)
        };

        let mut pair = build_pair(
            cfg.policy,
            cfg.icache,
            cfg.btb_entries,
            cfg.btb_ways,
            cfg.ghrp,
            cfg.sdbp,
            cfg.seed,
            opt_blocks.as_deref(),
            opt_pcs.as_deref(),
        );
        let mut bp = HashedPerceptron::default();
        let mut ras = ReturnAddressStack::default();
        let mut itp = TargetCache::default();
        let mut bp_stats = PredictorStats::default();
        let mut ras_mispred = 0u64;
        let mut indirect = (0u64, 0u64); // (predicted, mispredicted)

        let warmup = self.warmup_instructions(total_instructions);
        let mut warmed = warmup == 0;
        let mut instructions = 0u64;
        let mut measured_instructions = 0u64;
        // Wrong-path pollution is excluded from the miss counts (wrong-path
        // fetches do not retire, so they cannot be MPKI events).
        let mut wrong_path_misses = 0u64;
        let mut wrong_path_accesses = 0u64;
        let wrong_btb_misses = 0u64;

        let stream = FetchStream::new(records.iter().copied(), cfg.icache.block_bytes());
        for chunk in stream {
            instructions += u64::from(chunk.n_instr);
            if warmed {
                measured_instructions += u64::from(chunk.n_instr);
            }
            // One I-cache access per *fetch group* (§IV.A): sequential
            // fetch within a block past a not-taken branch does not access
            // the cache again.
            if chunk.starts_group {
                let result = pair.icache.access(chunk.block_addr, chunk.first_pc);
                // Miss-triggered next-line prefetching.
                if result.is_miss() && cfg.prefetch_degree > 0 {
                    for i in 1..=u64::from(cfg.prefetch_degree) {
                        pair.icache
                            .prefetch(chunk.block_addr + i * cfg.icache.block_bytes());
                    }
                }
                // Commit-time (right-path) history retirement for GHRP: in
                // this trace-driven model every fetched group retires.
                if let (Some(shared), Some(_wp)) = (&pair.ghrp, cfg.wrong_path.as_ref()) {
                    shared.retire(chunk.block_addr);
                }
            }

            if let Some(branch) = chunk.branch {
                self.handle_branch(
                    &mut pair,
                    &mut bp,
                    &mut ras,
                    &mut itp,
                    &mut bp_stats,
                    &mut ras_mispred,
                    &mut indirect,
                    &branch,
                    &mut wrong_path_misses,
                    &mut wrong_path_accesses,
                );
            }

            if !warmed && instructions >= warmup {
                warmed = true;
                pair.icache.reset_stats();
                pair.btb.reset_stats();
                bp_stats = PredictorStats::default();
                ras_mispred = 0;
                indirect = (0, 0);
                wrong_path_misses = 0;
                wrong_path_accesses = 0;
            }
        }

        let mut icache_stats = pair.icache.stats();
        // Subtract wrong-path pollution from the figure of merit.
        icache_stats.misses -= wrong_path_misses.min(icache_stats.misses);
        icache_stats.accesses -= wrong_path_accesses.min(icache_stats.accesses);
        let btb_stats = pair.btb.stats();

        RunResult {
            policy: cfg.policy,
            instructions: measured_instructions,
            icache: icache_stats,
            btb_lookups: btb_stats.lookups,
            btb_misses: btb_stats.misses - wrong_btb_misses,
            cond_branches: bp_stats.predictions,
            cond_mispredictions: bp_stats.mispredictions,
            ras_mispredictions: ras_mispred,
            indirect_branches: indirect.0,
            indirect_mispredictions: indirect.1,
            prefetch_fills: icache_stats.prefetch_fills,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_branch(
        &self,
        pair: &mut crate::policy::FrontendPair,
        bp: &mut HashedPerceptron,
        ras: &mut ReturnAddressStack,
        itp: &mut TargetCache,
        bp_stats: &mut PredictorStats,
        ras_mispred: &mut u64,
        indirect: &mut (u64, u64),
        branch: &BranchRecord,
        wrong_path_misses: &mut u64,
        wrong_path_accesses: &mut u64,
    ) {
        let mut mispredicted = false;
        match branch.kind {
            BranchKind::CondDirect => {
                let pred = bp.predict(branch.pc);
                let correct = pred == branch.taken;
                bp_stats.record(correct);
                bp.update(branch.pc, branch.taken);
                mispredicted = !correct;
            }
            BranchKind::Call => {
                ras.push(branch.fall_through());
            }
            BranchKind::IndirectCall => {
                ras.push(branch.fall_through());
                indirect.0 += 1;
                if itp.predict(branch.pc) != Some(branch.target) {
                    indirect.1 += 1;
                    mispredicted = true;
                }
                itp.update(branch.pc, branch.target);
            }
            BranchKind::Indirect => {
                indirect.0 += 1;
                if itp.predict(branch.pc) != Some(branch.target) {
                    indirect.1 += 1;
                    mispredicted = true;
                }
                itp.update(branch.pc, branch.target);
            }
            BranchKind::Return => {
                let predicted = ras.pop();
                if predicted != Some(branch.target) {
                    *ras_mispred += 1;
                    mispredicted = true;
                }
            }
            BranchKind::UncondDirect => {}
        }

        // BTB: taken branches look up and refresh/allocate.
        if branch.taken {
            pair.btb.lookup_and_update(branch.pc, branch.target);
        }

        // Optional wrong-path injection on mispredictions.
        if mispredicted {
            if let Some(wp) = self.cfg.wrong_path {
                let block_bytes = self.cfg.icache.block_bytes();
                // The wrong path is the direction not taken.
                let wrong_start = if branch.taken {
                    branch.fall_through()
                } else {
                    branch.target
                };
                let mut block = wrong_start & !(block_bytes - 1);
                for _ in 0..wp.blocks_per_misprediction {
                    let r = pair.icache.access(block, block);
                    *wrong_path_accesses += 1;
                    if r.is_miss() {
                        *wrong_path_misses += 1;
                    }
                    block += block_bytes;
                }
                if wp.recover_history {
                    if let Some(shared) = &pair.ghrp {
                        shared.recover();
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fe_trace::synth::{WorkloadCategory, WorkloadSpec};

    fn trace(seed: u64, n: u64) -> (Vec<BranchRecord>, u64) {
        let t = WorkloadSpec::new(WorkloadCategory::ShortServer, seed)
            .instructions(n)
            .generate();
        (t.records, t.instructions)
    }

    #[test]
    fn warmup_is_half_capped() {
        let sim = Simulator::new(SimConfig::paper_default());
        assert_eq!(sim.warmup_instructions(1000), 500);
        assert_eq!(
            sim.warmup_instructions(10_000_000_000),
            WARMUP_CAP_INSTRUCTIONS
        );
    }

    #[test]
    fn run_produces_sane_numbers() {
        let (records, n) = trace(3, 300_000);
        let sim = Simulator::new(SimConfig::paper_default());
        let r = sim.run(&records, n);
        assert!(r.instructions > 100_000, "post-warm-up window too small");
        assert!(r.icache.accesses > 0);
        assert!(r.btb_lookups > 0);
        assert!(r.cond_branches > 0);
        assert!(r.icache_mpki() >= 0.0 && r.icache_mpki() < 200.0);
        assert!(r.btb_mpki() >= 0.0 && r.btb_mpki() < 300.0);
        // The hashed perceptron should do well on structured code.
        let acc = 1.0 - r.cond_mispredictions as f64 / r.cond_branches as f64;
        assert!(acc > 0.80, "branch accuracy {acc}");
    }

    #[test]
    fn deterministic_runs() {
        let (records, n) = trace(5, 200_000);
        let sim = Simulator::new(SimConfig::paper_default().with_policy(PolicyKind::Ghrp));
        let a = sim.run(&records, n);
        let b = sim.run(&records, n);
        assert_eq!(a, b);
    }

    #[test]
    fn all_policies_run_without_panic() {
        let (records, n) = trace(7, 150_000);
        for k in PolicyKind::ALL_ONLINE {
            let sim = Simulator::new(SimConfig::paper_default().with_policy(*k));
            let r = sim.run(&records, n);
            assert!(r.instructions > 0, "{k}");
        }
    }

    #[test]
    fn opt_runs_and_beats_lru() {
        let (records, n) = trace(11, 200_000);
        // Small cache so there is real pressure.
        let small = CacheConfig::with_capacity(8 * 1024, 4, 64).unwrap();
        let lru = Simulator::new(
            SimConfig::paper_default()
                .with_icache(small)
                .with_policy(PolicyKind::Lru),
        )
        .run(&records, n);
        let opt = Simulator::new(
            SimConfig::paper_default()
                .with_icache(small)
                .with_policy(PolicyKind::Opt),
        )
        .run(&records, n);
        assert!(
            opt.icache_mpki() <= lru.icache_mpki() + 1e-9,
            "OPT {} vs LRU {}",
            opt.icache_mpki(),
            lru.icache_mpki()
        );
    }

    #[test]
    fn wrong_path_injection_changes_contents_not_mpki_accounting() {
        let (records, n) = trace(13, 200_000);
        let mut cfg = SimConfig::paper_default().with_policy(PolicyKind::Ghrp);
        cfg.wrong_path = Some(WrongPathConfig::default());
        let r = Simulator::new(cfg).run(&records, n);
        // Wrong-path misses are subtracted, so MPKI stays in a sane range.
        assert!(r.icache_mpki() < 200.0);
        assert!(r.instructions > 0);
    }

    #[test]
    fn indirect_predictor_reports_sane_numbers() {
        let (records, n) = trace(17, 300_000);
        let r = Simulator::new(SimConfig::paper_default()).run(&records, n);
        assert!(r.indirect_branches > 0, "server traces have indirect calls");
        assert!(r.indirect_mispredictions <= r.indirect_branches);
        // The two-level target cache must do far better than always-miss.
        let acc = 1.0 - r.indirect_mispredictions as f64 / r.indirect_branches as f64;
        assert!(acc > 0.3, "indirect accuracy {acc}");
    }

    #[test]
    fn prefetching_reduces_sequential_misses() {
        let (records, n) = trace(19, 400_000);
        let base = SimConfig::paper_default();
        let off = Simulator::new(base).run(&records, n);
        let mut pf_cfg = base;
        pf_cfg.prefetch_degree = 2;
        let on = Simulator::new(pf_cfg).run(&records, n);
        assert!(on.prefetch_fills > 0, "prefetcher must fire");
        assert!(
            on.icache_mpki() < off.icache_mpki(),
            "next-line prefetch should cut sequential code misses: {} vs {}",
            on.icache_mpki(),
            off.icache_mpki()
        );
    }

    #[test]
    fn offline_sequences_match_direct_scans() {
        let (records, _) = trace(23, 100_000);
        let (blocks, pcs) = offline_sequences(records.iter().copied(), 64);
        // The taken-PC sequence equals a direct scan of the records.
        let direct_pcs: Vec<u64> = records
            .iter()
            .filter(|r| r.taken)
            .map(|r| r.pc & !(INSTRUCTION_BYTES - 1))
            .collect();
        assert_eq!(pcs, direct_pcs);
        // The block sequence equals a dedicated fetch-stream scan.
        let direct_blocks: Vec<u64> = FetchStream::new(records.iter().copied(), 64)
            .filter(|c| c.starts_group)
            .map(|c| c.block_addr)
            .collect();
        assert_eq!(blocks, direct_blocks);
        assert!(!blocks.is_empty() && !pcs.is_empty());
    }

    #[test]
    fn zero_instruction_trace() {
        let sim = Simulator::new(SimConfig::paper_default());
        let r = sim.run(&[], 0);
        assert_eq!(r.instructions, 0);
        assert!(r.icache_mpki().abs() < f64::EPSILON);
    }
}
