//! Suite experiments: run many workloads across many policies.
//!
//! Since the single-pass engine landed, [`run_trace`] replays each
//! workload **once** for the whole policy set (see [`crate::engine`]) and
//! streams the trace straight out of the workload walker, never
//! materializing a record vector. The legacy one-simulation-per-policy
//! path survives as [`run_trace_legacy`], the reference implementation
//! that the equivalence test suite and the `suite_throughput` benchmark
//! compare against.

#![forbid(unsafe_code)]

use crate::engine::{run_lanes, run_lanes_multi, EngineArena};
use crate::policy::PolicyKind;
use crate::schedule::{self, SchedulerStats};
use crate::simulator::{RunResult, SimConfig, Simulator};
use crate::stats;
use fe_trace::synth::{WorkloadCategory, WorkloadSpec};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Per-trace results across the policy set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRow {
    /// Workload name.
    pub name: String,
    /// Workload category.
    pub category: WorkloadCategory,
    /// Post-warm-up instructions (identical across policies).
    pub instructions: u64,
    /// I-cache MPKI per policy (parallel to `SuiteResult::policies`).
    pub icache_mpki: Vec<f64>,
    /// BTB MPKI per policy.
    pub btb_mpki: Vec<f64>,
    /// Conditional-branch predictor MPKI (policy independent).
    pub branch_mpki: f64,
}

/// Results of a suite run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SuiteResult {
    /// Policies, in column order.
    pub policies: Vec<PolicyKind>,
    /// One row per workload.
    pub rows: Vec<TraceRow>,
    /// Scheduler observability for the run (worker utilization, steals).
    pub scheduler: SchedulerStats,
    /// Sampling observability when the suite ran phase-sampled
    /// ([`crate::sampled::run_suite_sampled`]); `None` for full replay.
    pub sampled: Option<crate::sampled::SampledInfo>,
}

/// Equality compares the scientific payload only (policies and rows);
/// scheduler counters are run-specific timing observability and must not
/// make two bit-identical simulations compare unequal.
impl PartialEq for SuiteResult {
    fn eq(&self, other: &SuiteResult) -> bool {
        self.policies == other.policies && self.rows == other.rows
    }
}

impl SuiteResult {
    /// Column of I-cache MPKIs for `policy`, one entry per trace.
    ///
    /// # Panics
    ///
    /// Panics if `policy` was not part of the run.
    pub fn icache_column(&self, policy: PolicyKind) -> Vec<f64> {
        let i = self.policy_index(policy);
        self.rows.iter().map(|r| r.icache_mpki[i]).collect()
    }

    /// Column of BTB MPKIs for `policy`.
    ///
    /// # Panics
    ///
    /// Panics if `policy` was not part of the run.
    pub fn btb_column(&self, policy: PolicyKind) -> Vec<f64> {
        let i = self.policy_index(policy);
        self.rows.iter().map(|r| r.btb_mpki[i]).collect()
    }

    fn policy_index(&self, policy: PolicyKind) -> usize {
        self.policies
            .iter()
            .position(|&p| p == policy)
            .unwrap_or_else(|| panic!("policy {policy} not in this suite"))
    }

    /// Arithmetic-mean I-cache MPKI per policy.
    pub fn icache_means(&self) -> Vec<f64> {
        self.policies
            .iter()
            .map(|&p| stats::mean(&self.icache_column(p)))
            .collect()
    }

    /// Arithmetic-mean BTB MPKI per policy.
    pub fn btb_means(&self) -> Vec<f64> {
        self.policies
            .iter()
            .map(|&p| stats::mean(&self.btb_column(p)))
            .collect()
    }

    /// The subset of traces with at least `min` I-cache MPKI under
    /// `reference` (the paper's "≥ 1 MPKI under LRU" subset).
    #[must_use]
    pub fn filter_min_icache_mpki(&self, reference: PolicyKind, min: f64) -> SuiteResult {
        let i = self.policy_index(reference);
        SuiteResult {
            policies: self.policies.clone(),
            rows: self
                .rows
                .iter()
                .filter(|r| r.icache_mpki[i] >= min)
                .cloned()
                .collect(),
            scheduler: self.scheduler.clone(),
            sampled: self.sampled,
        }
    }

    /// The first `n` rows of this result (same policy columns).
    ///
    /// [`fe_trace::synth::suite`] builds workload `i` from
    /// `base_seed + i` alone, so `suite(n, s)` is a prefix of
    /// `suite(m, s)` for `n <= m`; and every [`TraceRow`] is computed
    /// from an independent engine pass over its own workload. Taking the
    /// first `n` rows of a larger run is therefore bit-identical to
    /// re-running the `n`-workload suite — the experiment planner uses
    /// this to serve subset requests (e.g. the paper's Figure 6 uses 16
    /// of the 96 workloads) from one shared simulation.
    #[must_use]
    pub fn prefix(&self, n: usize) -> SuiteResult {
        SuiteResult {
            policies: self.policies.clone(),
            rows: self.rows.iter().take(n).cloned().collect(),
            scheduler: self.scheduler.clone(),
            sampled: self.sampled,
        }
    }

    /// Render a per-trace table plus the mean row, in the style of the
    /// paper's figures.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{:<22}", "trace");
        for p in &self.policies {
            let _ = write!(out, "{:>9}", p.to_string());
        }
        out.push('\n');
        for r in &self.rows {
            let _ = write!(out, "{:<22}", r.name);
            for v in &r.icache_mpki {
                let _ = write!(out, "{v:>9.3}");
            }
            out.push('\n');
        }
        let _ = write!(out, "{:<22}", "MEAN");
        for m in self.icache_means() {
            let _ = write!(out, "{m:>9.3}");
        }
        out.push('\n');
        out
    }
}

/// Assemble a [`TraceRow`] from one engine pass, computing the shared
/// (policy-independent) columns exactly once.
fn row_from_results(spec: &WorkloadSpec, results: &[RunResult]) -> TraceRow {
    // Every lane consumed the identical shared pass, so the
    // policy-independent numbers must agree exactly.
    debug_assert!(
        results.windows(2).all(|w| {
            w[0].instructions == w[1].instructions
                && w[0].cond_branches == w[1].cond_branches
                && w[0].cond_mispredictions == w[1].cond_mispredictions
        }),
        "policy lanes disagree on the shared instruction/branch counts"
    );
    TraceRow {
        name: spec.name.clone(),
        category: spec.category,
        instructions: results.first().map_or(0, |r| r.instructions),
        icache_mpki: results.iter().map(RunResult::icache_mpki).collect(),
        btb_mpki: results.iter().map(RunResult::btb_mpki).collect(),
        branch_mpki: results.first().map_or(0.0, RunResult::branch_mpki),
    }
}

/// Run every policy on one workload in a single trace replay.
///
/// The workload streams straight out of its walker (no materialized
/// record vector), the fetch stream is decoded once, the branch
/// predictors run once, and each policy gets its own lane — per-lane MPKI
/// is bit-identical to [`run_trace_legacy`].
pub fn run_trace(spec: &WorkloadSpec, base: &SimConfig, policies: &[PolicyKind]) -> TraceRow {
    let streamed = spec.streamed();
    let results = run_lanes(base, policies, &streamed);
    row_from_results(spec, &results)
}

/// The pre-engine reference path: generate the trace, then run one full
/// [`Simulator`] per policy.
///
/// Kept **only** so the equivalence tests and the `suite_throughput`
/// benchmark can compare the single-pass engine against the original
/// semantics; experiment code should call [`run_trace`].
#[doc(hidden)]
pub fn run_trace_legacy(
    spec: &WorkloadSpec,
    base: &SimConfig,
    policies: &[PolicyKind],
) -> TraceRow {
    let trace = spec.generate();
    let results: Vec<RunResult> = policies
        .iter()
        .map(|&p| Simulator::new(base.with_policy(p)).run(&trace.records, trace.instructions))
        .collect();
    row_from_results(spec, &results)
}

/// Where a suite or sweep run draws its branch records from.
///
/// Both variants produce bit-identical results; they differ only in
/// replay cost. `Streamed` re-walks the synthetic program inside every
/// task, while `Corpus` replays from an immutable shared buffer that
/// all scheduler workers read concurrently with zero per-worker parsing
/// or cloning.
#[derive(Debug, Clone, Copy)]
pub enum SuiteSource<'a> {
    /// Stream each workload out of its synthetic walker on demand.
    Streamed,
    /// Replay every workload from a shared corpus (one
    /// [`fe_trace::corpus::CorpusTrace`] per suite spec, in order).
    Corpus(&'a fe_trace::corpus::SuiteCorpus),
}

impl SuiteSource<'_> {
    /// Reject a corpus that does not line up with the suite specs —
    /// length and per-index workload names must match exactly, so a
    /// stale cache can never silently replay the wrong workload.
    ///
    /// # Panics
    ///
    /// Panics on any mismatch; this is a caller bug, not an I/O error.
    pub(crate) fn validate(self, specs: &[WorkloadSpec]) {
        if let SuiteSource::Corpus(corpus) = self {
            assert_eq!(
                corpus.len(),
                specs.len(),
                "corpus has {} traces but the suite has {} workloads",
                corpus.len(),
                specs.len()
            );
            for (i, spec) in specs.iter().enumerate() {
                assert_eq!(
                    corpus.trace(i).name(),
                    spec.name,
                    "corpus trace {i} is `{}` but the suite expects `{}`",
                    corpus.trace(i).name(),
                    spec.name
                );
            }
        }
    }
}

/// Contiguous near-equal split of `0..n` into `parts` ranges.
pub(crate) fn split_bounds(n: usize, parts: usize) -> Vec<(usize, usize)> {
    let parts = parts.max(1);
    (0..parts)
        .map(|p| (p * n / parts, (p + 1) * n / parts))
        .collect()
}

/// Run a whole suite, draining a flattened task grid over `threads` OS
/// threads with the work-stealing scheduler ([`crate::schedule`]).
///
/// `threads = 0` means "use every available hardware thread". The grid is
/// `workload × policy-chunk`: with more threads than workloads the policy
/// set splits into contiguous chunks so the extra threads still
/// parallelize (the old path silently clamped `threads` to the workload
/// count). Each worker reuses one [`EngineArena`] across its tasks, so
/// lane allocations are reset in place instead of rebuilt. Rows come back
/// in suite order with columns in policy order — bit-identical to a
/// serial run, regardless of thread count or scheduling.
///
/// # Panics
///
/// Panics if a worker thread panics (propagated by the thread scope).
pub fn run_suite(
    specs: &[WorkloadSpec],
    base: &SimConfig,
    policies: &[PolicyKind],
    threads: usize,
) -> SuiteResult {
    run_suite_from(specs, base, policies, threads, SuiteSource::Streamed)
}

/// [`run_suite`] with an explicit replay source.
///
/// With [`SuiteSource::Corpus`] every task replays its workload from
/// the shared corpus buffer instead of re-walking the synthetic
/// program; results are bit-identical either way.
///
/// # Panics
///
/// Panics if a worker thread panics, or if a corpus source does not
/// match the suite specs (length or workload names).
pub fn run_suite_from(
    specs: &[WorkloadSpec],
    base: &SimConfig,
    policies: &[PolicyKind],
    threads: usize,
    source: SuiteSource<'_>,
) -> SuiteResult {
    source.validate(specs);
    let workers = schedule::resolve_threads(threads);
    let nspecs = specs.len();
    let npols = policies.len();
    // Enough policy chunks to give every worker a task even when the
    // suite has fewer workloads than workers.
    let nchunks = workers.div_ceil(nspecs.max(1)).clamp(1, npols.max(1));
    let chunk_bounds = split_bounds(npols, nchunks);

    // Task t = chunk-major (c · nspecs + s): a worker's contiguous range
    // stays within one policy chunk, maximizing arena reuse.
    let (chunk_results, scheduler) = schedule::run_grid(
        nchunks * nspecs,
        workers,
        |_| EngineArena::new(),
        |arena, t| {
            let c = t / nspecs.max(1);
            let s = t - c * nspecs.max(1);
            let (lo, hi) = chunk_bounds[c];
            let mut geometry_results = match source {
                SuiteSource::Streamed => {
                    let streamed = specs[s].streamed();
                    run_lanes_multi(
                        base,
                        std::slice::from_ref(&base.icache),
                        &policies[lo..hi],
                        true,
                        &streamed,
                        arena,
                    )
                }
                SuiteSource::Corpus(corpus) => run_lanes_multi(
                    base,
                    std::slice::from_ref(&base.icache),
                    &policies[lo..hi],
                    true,
                    corpus.trace(s),
                    arena,
                ),
            };
            geometry_results.pop().unwrap_or_default()
        },
    );

    let rows = specs
        .iter()
        .enumerate()
        .map(|(s, spec)| {
            let mut all: Vec<RunResult> = Vec::with_capacity(npols);
            for c in 0..nchunks {
                all.extend(chunk_results[c * nspecs + s].iter().copied());
            }
            row_from_results(spec, &all)
        })
        .collect();
    SuiteResult {
        policies: policies.to_vec(),
        rows,
        scheduler,
        sampled: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fe_trace::synth::suite;

    fn tiny_suite() -> Vec<WorkloadSpec> {
        suite(4, 77)
            .into_iter()
            .map(|s| s.instructions(80_000))
            .collect()
    }

    #[test]
    fn suite_runs_all_rows_in_order() {
        let specs = tiny_suite();
        let result = run_suite(
            &specs,
            &SimConfig::paper_default(),
            &[PolicyKind::Lru, PolicyKind::Ghrp],
            3,
        );
        assert_eq!(result.rows.len(), 4);
        for (row, spec) in result.rows.iter().zip(&specs) {
            assert_eq!(row.name, spec.name);
            assert_eq!(row.icache_mpki.len(), 2);
        }
    }

    #[test]
    fn single_pass_rows_match_legacy_rows() {
        let specs = tiny_suite();
        let cfg = SimConfig::paper_default();
        let pols = [
            PolicyKind::Lru,
            PolicyKind::Random,
            PolicyKind::Srrip,
            PolicyKind::Sdbp,
            PolicyKind::Ghrp,
        ];
        for spec in &specs {
            let engine = run_trace(spec, &cfg, &pols);
            let legacy = run_trace_legacy(spec, &cfg, &pols);
            assert_eq!(engine, legacy, "{}", spec.name);
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let specs = tiny_suite();
        let cfg = SimConfig::paper_default();
        let pols = [PolicyKind::Lru, PolicyKind::Srrip];
        let serial = run_suite(&specs, &cfg, &pols, 1);
        let parallel = run_suite(&specs, &cfg, &pols, 4);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn more_threads_than_workloads_still_parallelizes() {
        // 2 workloads × 7 threads: the flattened grid splits the policy
        // set into chunks instead of silently clamping to 2 threads.
        let specs: Vec<WorkloadSpec> = tiny_suite().into_iter().take(2).collect();
        let cfg = SimConfig::paper_default();
        let pols = [
            PolicyKind::Lru,
            PolicyKind::Fifo,
            PolicyKind::Srrip,
            PolicyKind::Ghrp,
        ];
        let serial = run_suite(&specs, &cfg, &pols, 1);
        let wide = run_suite(&specs, &cfg, &pols, 7);
        assert_eq!(serial, wide);
        assert!(
            wide.scheduler.workers > 2,
            "policy chunking should engage more than one worker per workload: {:?}",
            wide.scheduler
        );
    }

    #[test]
    fn zero_threads_resolves_to_available_parallelism() {
        let specs: Vec<WorkloadSpec> = tiny_suite().into_iter().take(1).collect();
        let cfg = SimConfig::paper_default();
        let auto = run_suite(&specs, &cfg, &[PolicyKind::Lru], 0);
        let serial = run_suite(&specs, &cfg, &[PolicyKind::Lru], 1);
        assert_eq!(auto, serial);
        assert!(auto.scheduler.workers >= 1);
    }

    #[test]
    fn scheduler_stats_account_for_every_task() {
        let specs = tiny_suite();
        let result = run_suite(
            &specs,
            &SimConfig::paper_default(),
            &[PolicyKind::Lru, PolicyKind::Srrip],
            3,
        );
        let s = &result.scheduler;
        assert_eq!(
            s.per_worker.iter().map(|w| w.tasks).sum::<u64>(),
            s.tasks,
            "per-worker task counts must sum to the grid size"
        );
        assert!(s.utilization() > 0.0);
    }

    mod equivalence_props {
        use super::*;
        use crate::sweep::{run_sweep, SweepResult};
        use proptest::prelude::*;

        /// Build a suite with `n` workloads; workload `heavy` (if any)
        /// runs 10× longer than the rest — a steal-heavy skew.
        fn skewed_suite(n: usize, seed: u64, heavy: Option<usize>) -> Vec<WorkloadSpec> {
            suite(n, seed)
                .into_iter()
                .enumerate()
                .map(|(i, s)| {
                    let instr = if heavy == Some(i) { 300_000 } else { 30_000 };
                    s.instructions(instr)
                })
                .collect()
        }

        proptest! {
            /// The tentpole determinism claim: any thread count drains
            /// the flattened grid to bit-identical rows, including under
            /// steal-heavy skew (one 10× workload). `skew >= n` means no
            /// skewed workload this case.
            #[test]
            fn suite_bit_identical_across_thread_counts(
                n in 1usize..6,
                seed in 0u64..1000,
                skew in 0usize..12,
                threads in 2usize..=8,
            ) {
                let heavy = (skew < n).then_some(skew);
                let specs = skewed_suite(n, seed, heavy);
                let pols = [PolicyKind::Lru, PolicyKind::Srrip, PolicyKind::Ghrp];
                let cfg = SimConfig::paper_default();
                let serial = run_suite(&specs, &cfg, &pols, 1);
                let parallel = run_suite(&specs, &cfg, &pols, threads);
                prop_assert_eq!(serial, parallel);
            }

            /// Sweep grids (geometry-fused, BTB-skipping) are likewise
            /// bit-identical to the serial drain at any thread count.
            #[test]
            fn sweep_bit_identical_across_thread_counts(
                n in 1usize..4,
                seed in 0u64..1000,
                threads in 2usize..=8,
            ) {
                let specs = skewed_suite(n, seed, (n > 1).then_some(0));
                let geoms = [(8 * 1024, 4), (16 * 1024, 4), (32 * 1024, 8)];
                let pols = [PolicyKind::Lru, PolicyKind::Ghrp];
                let cfg = SimConfig::paper_default();
                let serial: SweepResult = run_sweep(&specs, &cfg, &pols, &geoms, 1);
                let parallel = run_sweep(&specs, &cfg, &pols, &geoms, threads);
                prop_assert_eq!(serial, parallel);
            }
        }
    }

    #[test]
    fn prefix_of_larger_suite_is_bit_identical_to_smaller_run() {
        // The planner's subsumption rule: a 2-workload suite request can
        // be served by slicing a 4-workload run of the same seed.
        let small: Vec<WorkloadSpec> = suite(2, 77)
            .into_iter()
            .map(|s| s.instructions(60_000))
            .collect();
        let large: Vec<WorkloadSpec> = suite(4, 77)
            .into_iter()
            .map(|s| s.instructions(60_000))
            .collect();
        let cfg = SimConfig::paper_default();
        let pols = [PolicyKind::Lru, PolicyKind::Ghrp];
        let direct = run_suite(&small, &cfg, &pols, 2);
        let sliced = run_suite(&large, &cfg, &pols, 2).prefix(2);
        assert_eq!(direct, sliced);
    }

    #[test]
    fn columns_and_means_consistent() {
        let specs = tiny_suite();
        let result = run_suite(&specs, &SimConfig::paper_default(), &[PolicyKind::Lru], 2);
        let col = result.icache_column(PolicyKind::Lru);
        assert_eq!(col.len(), 4);
        let means = result.icache_means();
        assert!((means[0] - crate::stats::mean(&col)).abs() < 1e-12);
    }

    #[test]
    fn filter_keeps_high_mpki_traces() {
        let result = SuiteResult {
            policies: vec![PolicyKind::Lru],
            rows: vec![
                TraceRow {
                    name: "low".into(),
                    category: fe_trace::synth::WorkloadCategory::ShortMobile,
                    instructions: 1,
                    icache_mpki: vec![0.2],
                    btb_mpki: vec![0.0],
                    branch_mpki: 0.0,
                },
                TraceRow {
                    name: "high".into(),
                    category: fe_trace::synth::WorkloadCategory::ShortServer,
                    instructions: 1,
                    icache_mpki: vec![4.0],
                    btb_mpki: vec![0.0],
                    branch_mpki: 0.0,
                },
            ],
            scheduler: SchedulerStats::default(),
            sampled: None,
        };
        let f = result.filter_min_icache_mpki(PolicyKind::Lru, 1.0);
        assert_eq!(f.rows.len(), 1);
        assert_eq!(f.rows[0].name, "high");
    }

    #[test]
    fn render_contains_header_and_mean() {
        let specs = tiny_suite();
        let result = run_suite(&specs, &SimConfig::paper_default(), &[PolicyKind::Lru], 2);
        let s = result.render();
        assert!(s.contains("LRU"));
        assert!(s.contains("MEAN"));
    }

    #[test]
    #[should_panic(expected = "not in this suite")]
    fn missing_policy_column_panics() {
        let result = SuiteResult {
            policies: vec![PolicyKind::Lru],
            rows: vec![],
            scheduler: SchedulerStats::default(),
            sampled: None,
        };
        let _ = result.icache_column(PolicyKind::Ghrp);
    }
}
