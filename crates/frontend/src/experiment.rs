//! Suite experiments: run many workloads across many policies.

#![forbid(unsafe_code)]

use crate::policy::PolicyKind;
use crate::simulator::{SimConfig, Simulator};
use crate::stats;
use fe_trace::synth::{WorkloadCategory, WorkloadSpec};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Per-trace results across the policy set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRow {
    /// Workload name.
    pub name: String,
    /// Workload category.
    pub category: WorkloadCategory,
    /// Post-warm-up instructions (identical across policies).
    pub instructions: u64,
    /// I-cache MPKI per policy (parallel to `SuiteResult::policies`).
    pub icache_mpki: Vec<f64>,
    /// BTB MPKI per policy.
    pub btb_mpki: Vec<f64>,
    /// Conditional-branch predictor MPKI (policy independent).
    pub branch_mpki: f64,
}

/// Results of a suite run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuiteResult {
    /// Policies, in column order.
    pub policies: Vec<PolicyKind>,
    /// One row per workload.
    pub rows: Vec<TraceRow>,
}

impl SuiteResult {
    /// Column of I-cache MPKIs for `policy`, one entry per trace.
    ///
    /// # Panics
    ///
    /// Panics if `policy` was not part of the run.
    pub fn icache_column(&self, policy: PolicyKind) -> Vec<f64> {
        let i = self.policy_index(policy);
        self.rows.iter().map(|r| r.icache_mpki[i]).collect()
    }

    /// Column of BTB MPKIs for `policy`.
    ///
    /// # Panics
    ///
    /// Panics if `policy` was not part of the run.
    pub fn btb_column(&self, policy: PolicyKind) -> Vec<f64> {
        let i = self.policy_index(policy);
        self.rows.iter().map(|r| r.btb_mpki[i]).collect()
    }

    fn policy_index(&self, policy: PolicyKind) -> usize {
        self.policies
            .iter()
            .position(|&p| p == policy)
            .unwrap_or_else(|| panic!("policy {policy} not in this suite"))
    }

    /// Arithmetic-mean I-cache MPKI per policy.
    pub fn icache_means(&self) -> Vec<f64> {
        self.policies
            .iter()
            .map(|&p| stats::mean(&self.icache_column(p)))
            .collect()
    }

    /// Arithmetic-mean BTB MPKI per policy.
    pub fn btb_means(&self) -> Vec<f64> {
        self.policies
            .iter()
            .map(|&p| stats::mean(&self.btb_column(p)))
            .collect()
    }

    /// The subset of traces with at least `min` I-cache MPKI under
    /// `reference` (the paper's "≥ 1 MPKI under LRU" subset).
    #[must_use]
    pub fn filter_min_icache_mpki(&self, reference: PolicyKind, min: f64) -> SuiteResult {
        let i = self.policy_index(reference);
        SuiteResult {
            policies: self.policies.clone(),
            rows: self
                .rows
                .iter()
                .filter(|r| r.icache_mpki[i] >= min)
                .cloned()
                .collect(),
        }
    }

    /// Render a per-trace table plus the mean row, in the style of the
    /// paper's figures.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{:<22}", "trace");
        for p in &self.policies {
            let _ = write!(out, "{:>9}", p.to_string());
        }
        out.push('\n');
        for r in &self.rows {
            let _ = write!(out, "{:<22}", r.name);
            for v in &r.icache_mpki {
                let _ = write!(out, "{v:>9.3}");
            }
            out.push('\n');
        }
        let _ = write!(out, "{:<22}", "MEAN");
        for m in self.icache_means() {
            let _ = write!(out, "{m:>9.3}");
        }
        out.push('\n');
        out
    }
}

/// Run every policy on one workload, generating its trace once.
pub fn run_trace(spec: &WorkloadSpec, base: &SimConfig, policies: &[PolicyKind]) -> TraceRow {
    let trace = spec.generate();
    let mut icache_mpki = Vec::with_capacity(policies.len());
    let mut btb_mpki = Vec::with_capacity(policies.len());
    let mut branch_mpki = 0.0;
    let mut instructions = 0;
    for &p in policies {
        let sim = Simulator::new(base.with_policy(p));
        let r = sim.run(&trace.records, trace.instructions);
        icache_mpki.push(r.icache_mpki());
        btb_mpki.push(r.btb_mpki());
        branch_mpki = r.branch_mpki();
        instructions = r.instructions;
    }
    TraceRow {
        name: spec.name.clone(),
        category: spec.category,
        instructions,
        icache_mpki,
        btb_mpki,
        branch_mpki,
    }
}

/// Run a whole suite, distributing workloads over `threads` OS threads.
///
/// Rows come back in suite order regardless of scheduling.
///
/// # Panics
///
/// Panics if a worker thread panics (the shared row mutex is poisoned).
pub fn run_suite(
    specs: &[WorkloadSpec],
    base: &SimConfig,
    policies: &[PolicyKind],
    threads: usize,
) -> SuiteResult {
    let threads = threads.max(1).min(specs.len().max(1));
    let next = AtomicUsize::new(0);
    let rows: Mutex<Vec<Option<TraceRow>>> = Mutex::new(vec![None; specs.len()]);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= specs.len() {
                    break;
                }
                let row = run_trace(&specs[i], base, policies);
                rows.lock().expect("row mutex poisoned")[i] = Some(row);
            });
        }
    });
    let rows = rows
        .into_inner()
        .expect("row mutex poisoned")
        .into_iter()
        .map(|r| r.expect("every index was produced"))
        .collect();
    SuiteResult {
        policies: policies.to_vec(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fe_trace::synth::suite;

    fn tiny_suite() -> Vec<WorkloadSpec> {
        suite(4, 77)
            .into_iter()
            .map(|s| s.instructions(80_000))
            .collect()
    }

    #[test]
    fn suite_runs_all_rows_in_order() {
        let specs = tiny_suite();
        let result = run_suite(
            &specs,
            &SimConfig::paper_default(),
            &[PolicyKind::Lru, PolicyKind::Ghrp],
            3,
        );
        assert_eq!(result.rows.len(), 4);
        for (row, spec) in result.rows.iter().zip(&specs) {
            assert_eq!(row.name, spec.name);
            assert_eq!(row.icache_mpki.len(), 2);
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let specs = tiny_suite();
        let cfg = SimConfig::paper_default();
        let pols = [PolicyKind::Lru, PolicyKind::Srrip];
        let serial = run_suite(&specs, &cfg, &pols, 1);
        let parallel = run_suite(&specs, &cfg, &pols, 4);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn columns_and_means_consistent() {
        let specs = tiny_suite();
        let result = run_suite(&specs, &SimConfig::paper_default(), &[PolicyKind::Lru], 2);
        let col = result.icache_column(PolicyKind::Lru);
        assert_eq!(col.len(), 4);
        let means = result.icache_means();
        assert!((means[0] - crate::stats::mean(&col)).abs() < 1e-12);
    }

    #[test]
    fn filter_keeps_high_mpki_traces() {
        let result = SuiteResult {
            policies: vec![PolicyKind::Lru],
            rows: vec![
                TraceRow {
                    name: "low".into(),
                    category: fe_trace::synth::WorkloadCategory::ShortMobile,
                    instructions: 1,
                    icache_mpki: vec![0.2],
                    btb_mpki: vec![0.0],
                    branch_mpki: 0.0,
                },
                TraceRow {
                    name: "high".into(),
                    category: fe_trace::synth::WorkloadCategory::ShortServer,
                    instructions: 1,
                    icache_mpki: vec![4.0],
                    btb_mpki: vec![0.0],
                    branch_mpki: 0.0,
                },
            ],
        };
        let f = result.filter_min_icache_mpki(PolicyKind::Lru, 1.0);
        assert_eq!(f.rows.len(), 1);
        assert_eq!(f.rows[0].name, "high");
    }

    #[test]
    fn render_contains_header_and_mean() {
        let specs = tiny_suite();
        let result = run_suite(&specs, &SimConfig::paper_default(), &[PolicyKind::Lru], 2);
        let s = result.render();
        assert!(s.contains("LRU"));
        assert!(s.contains("MEAN"));
    }

    #[test]
    #[should_panic(expected = "not in this suite")]
    fn missing_policy_column_panics() {
        let result = SuiteResult {
            policies: vec![PolicyKind::Lru],
            rows: vec![],
        };
        let _ = result.icache_column(PolicyKind::Ghrp);
    }
}
