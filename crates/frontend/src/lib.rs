//! Trace-driven decoupled front-end simulator and experiment harness.
//!
//! This crate glues the substrates together the way the paper's augmented
//! CBP-5 simulator does (§IV):
//!
//! * [`simulator`] — replays a branch trace through an I-cache, BTB and
//!   branch direction predictor, with the paper's warm-up discipline
//!   (first half of the trace, capped) and commit-time GHRP training. It
//!   is *not* cycle accurate; MPKI is the figure of merit.
//! * [`engine`] — the single-pass multi-policy engine: one trace replay
//!   decodes the fetch stream and drives the shared predictors exactly
//!   once, broadcasting each event to N per-policy lanes whose counters
//!   stay bit-identical to standalone [`Simulator`] runs.
//! * [`policy`] — [`PolicyKind`]: runtime selection of the replacement
//!   policy pair (I-cache + BTB) under study.
//! * [`experiment`] — run a workload suite across policies, in parallel,
//!   producing per-trace MPKI tables (built on [`engine`], with streaming
//!   trace replay so paper-scale suites never materialize record
//!   vectors).
//! * [`schedule`] — the dependency-free work-stealing scheduler that
//!   drains the flattened suite/sweep task grids, with per-worker lane
//!   arenas ([`engine::EngineArena`]) reused across tasks.
//! * [`sweep`] — cache-geometry sweeps (the paper's Figure 7), fused so
//!   one trace replay drives the lanes of every geometry at once.
//! * [`sampled`] — SimPoint-style phase-sampled replay: deterministic
//!   clustering of corpus signature intervals, warmup-prefixed
//!   representative segments, and cluster-weight-averaged MPKI with an
//!   error estimate — two-orders-of-magnitude-cheaper wide sweeps.
//! * [`stats`] — means, 95% confidence intervals on relative differences
//!   (Figure 8), win/loss counts vs LRU (Figure 9), and S-curve ordering
//!   (Figures 3 and 11).
//!
//! ```no_run
//! use fe_frontend::{experiment, policy::PolicyKind, simulator::SimConfig};
//! use fe_trace::synth::suite;
//!
//! let specs = suite(8, 42);
//! let table = experiment::run_suite(&specs, &SimConfig::paper_default(), PolicyKind::PAPER_SET, 4);
//! println!("{}", table.render());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod experiment;
pub mod policy;
pub mod sampled;
pub mod schedule;
pub mod simulator;
pub mod stats;
pub mod sweep;

pub use engine::{
    run_lanes, run_lanes_multi, run_lanes_sampled, EngineArena, ReplaySource, SampledSegment,
    SliceReplay,
};
pub use experiment::{SuiteResult, SuiteSource, TraceRow};
pub use policy::PolicyKind;
pub use sampled::{
    build_plan, run_suite_sampled, run_sweep_sampled, SampleParams, SamplePlan, SampledInfo,
};
pub use schedule::SchedulerStats;
pub use simulator::{RunResult, SimConfig, Simulator};
