//! Statistics over per-trace results: means, confidence intervals,
//! win/loss counts and S-curves (the paper's §V.A.1).

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize};

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation (n−1); 0 for fewer than two samples.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// A mean with a 95% confidence interval (normal approximation, as
/// appropriate for the paper's 662-trace samples).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeanCi {
    /// Sample mean.
    pub mean: f64,
    /// Half-width of the 95% interval.
    pub half_width: f64,
    /// Sample count.
    pub n: usize,
}

impl MeanCi {
    /// Compute mean ± 1.96·SE over `xs`.
    pub fn compute(xs: &[f64]) -> MeanCi {
        let m = mean(xs);
        let hw = if xs.len() < 2 {
            0.0
        } else {
            1.96 * stddev(xs) / (xs.len() as f64).sqrt()
        };
        MeanCi {
            mean: m,
            half_width: hw,
            n: xs.len(),
        }
    }

    /// Lower bound of the interval.
    pub fn lo(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper bound of the interval.
    pub fn hi(&self) -> f64 {
        self.mean + self.half_width
    }
}

impl std::fmt::Display for MeanCi {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:+.1}% ± {:.1}%",
            self.mean * 100.0,
            self.half_width * 100.0
        )
    }
}

/// Per-trace relative difference of `policy` vs `baseline`
/// (`(p−b)/b`), skipping traces where the baseline is ~zero (relative
/// change is meaningless there — the paper's Figure 8 does the same by
/// construction, since a 0-MPKI trace cannot be "improved").
///
/// # Panics
///
/// Panics if `policy` and `baseline` differ in length.
pub fn relative_differences(policy: &[f64], baseline: &[f64]) -> Vec<f64> {
    assert_eq!(policy.len(), baseline.len(), "mismatched result vectors");
    policy
        .iter()
        .zip(baseline)
        .filter(|(_, &b)| b > 1e-9)
        .map(|(&p, &b)| (p - b) / b)
        .collect()
}

/// Win/loss/similar counts vs a baseline (the paper's Figure 9).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WinLoss {
    /// Traces where the policy beats the baseline by more than the margin.
    pub better: usize,
    /// Traces where the policy loses by more than the margin.
    pub worse: usize,
    /// Traces within the margin.
    pub similar: usize,
}

impl WinLoss {
    /// Classify each trace with a relative `margin` (the paper treats
    /// near-ties as "similar"; we use 1% by default at call sites).
    /// Zero-baseline traces count as similar when the policy is also ~0,
    /// worse otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `policy` and `baseline` differ in length.
    pub fn compute(policy: &[f64], baseline: &[f64], margin: f64) -> WinLoss {
        assert_eq!(policy.len(), baseline.len(), "mismatched result vectors");
        let mut wl = WinLoss::default();
        for (&p, &b) in policy.iter().zip(baseline) {
            if b <= 1e-9 {
                if p <= 1e-9 {
                    wl.similar += 1;
                } else {
                    wl.worse += 1;
                }
                continue;
            }
            let rel = (p - b) / b;
            if rel < -margin {
                wl.better += 1;
            } else if rel > margin {
                wl.worse += 1;
            } else {
                wl.similar += 1;
            }
        }
        wl
    }
}

/// Order trace indices by a baseline metric — the x-axis of the paper's
/// S-curve figures (3 and 11).
pub fn s_curve_order(baseline: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..baseline.len()).collect();
    idx.sort_by(|&a, &b| baseline[a].total_cmp(&baseline[b]));
    idx
}

/// Geometric mean of (1 + x) − 1; useful for aggregating relative changes.
pub fn geomean_relative(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs.iter().map(|x| (1.0 + x).max(1e-12).ln()).sum();
    (log_sum / xs.len() as f64).exp() - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev_basics() {
        assert!(mean(&[]).abs() < f64::EPSILON);
        assert!((mean(&[2.0, 4.0]) - 3.0).abs() < f64::EPSILON);
        assert!(stddev(&[5.0]).abs() < f64::EPSILON);
        assert!((stddev(&[2.0, 4.0]) - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn ci_narrows_with_samples() {
        let few = MeanCi::compute(&[1.0, 2.0, 3.0, 4.0]);
        let many: Vec<f64> = (0..400).map(|i| 1.0 + f64::from(i % 4)).collect();
        let many = MeanCi::compute(&many);
        assert!((few.mean - 2.5).abs() < 1e-12);
        assert!((many.mean - 2.5).abs() < 1e-12);
        assert!(many.half_width < few.half_width);
        assert!(many.lo() < many.mean && many.mean < many.hi());
    }

    #[test]
    fn relative_differences_skip_zero_baselines() {
        let d = relative_differences(&[0.9, 1.0, 5.0], &[1.0, 0.0, 4.0]);
        assert_eq!(d.len(), 2);
        assert!((d[0] + 0.1).abs() < 1e-12);
        assert!((d[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn winloss_classification() {
        let wl = WinLoss::compute(
            &[0.5, 1.5, 1.005, 0.0, 0.3],
            &[1.0, 1.0, 1.0, 0.0, 0.0],
            0.01,
        );
        assert_eq!(wl.better, 1);
        assert_eq!(wl.worse, 2); // 1.5 vs 1.0, and 0.3 vs 0.0
        assert_eq!(wl.similar, 2); // 1.005 within 1%, and 0 vs 0
    }

    #[test]
    fn s_curve_sorts_ascending() {
        let order = s_curve_order(&[3.0, 1.0, 2.0]);
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn geomean_matches_arithmetic_for_constant() {
        let g = geomean_relative(&[-0.2, -0.2, -0.2]);
        assert!((g + 0.2).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "mismatched")]
    fn mismatched_lengths_panic() {
        let _ = relative_differences(&[1.0], &[1.0, 2.0]);
    }
}
