//! Cache-geometry sweeps (the paper's Figure 7).

#![forbid(unsafe_code)]

use crate::experiment::{run_suite, SuiteResult};
use crate::policy::PolicyKind;
use crate::simulator::SimConfig;
use fe_cache::CacheConfig;
use fe_trace::synth::WorkloadSpec;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One point of the sweep: a geometry plus per-policy mean MPKIs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// I-cache capacity in bytes.
    pub capacity_bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Mean I-cache MPKI per policy (parallel to `SweepResult::policies`).
    pub icache_means: Vec<f64>,
}

/// Result of a full geometry sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepResult {
    /// Policies, in column order.
    pub policies: Vec<PolicyKind>,
    /// One point per geometry, in the order supplied.
    pub points: Vec<SweepPoint>,
}

impl SweepResult {
    /// Render the Figure 7 table: one row per configuration.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{:<18}", "config");
        for p in &self.policies {
            let _ = write!(out, "{:>9}", p.to_string());
        }
        out.push('\n');
        for pt in &self.points {
            let _ = write!(
                out,
                "{:<18}",
                format!("{}KB {}-way", pt.capacity_bytes / 1024, pt.ways)
            );
            for m in &pt.icache_means {
                let _ = write!(out, "{m:>9.3}");
            }
            out.push('\n');
        }
        out
    }
}

/// The paper's Figure 7 geometries: {8, 16, 32, 64} KB × {4, 8} ways,
/// 64-byte blocks.
pub fn paper_geometries() -> Vec<(u64, u32)> {
    let mut v = Vec::new();
    for cap_kb in [8u64, 16, 32, 64] {
        for ways in [4u32, 8] {
            v.push((cap_kb * 1024, ways));
        }
    }
    v
}

/// Sweep the suite over `geometries` (capacity, ways) pairs.
///
/// # Panics
///
/// Panics if a geometry is invalid (non-power-of-two sets).
pub fn run_sweep(
    specs: &[WorkloadSpec],
    base: &SimConfig,
    policies: &[PolicyKind],
    geometries: &[(u64, u32)],
    threads: usize,
) -> SweepResult {
    let mut points = Vec::with_capacity(geometries.len());
    for &(capacity, ways) in geometries {
        let icache = CacheConfig::with_capacity(capacity, ways, base.icache.block_bytes())
            .expect("valid sweep geometry");
        let cfg = base.with_icache(icache);
        let suite: SuiteResult = run_suite(specs, &cfg, policies, threads);
        points.push(SweepPoint {
            capacity_bytes: capacity,
            ways,
            icache_means: suite.icache_means(),
        });
    }
    SweepResult {
        policies: policies.to_vec(),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fe_trace::synth::{suite, WorkloadCategory};

    #[test]
    fn paper_geometries_are_eight() {
        let g = paper_geometries();
        assert_eq!(g.len(), 8);
        assert!(g.contains(&(64 * 1024, 8)));
        assert!(g.contains(&(8 * 1024, 4)));
    }

    #[test]
    fn smaller_caches_miss_more() {
        let specs: Vec<_> = suite(2, 5)
            .into_iter()
            .filter(|s| s.category == WorkloadCategory::ShortServer)
            .map(|s| s.instructions(120_000))
            .collect();
        let result = run_sweep(
            &specs,
            &SimConfig::paper_default(),
            &[PolicyKind::Lru],
            &[(8 * 1024, 4), (64 * 1024, 8)],
            2,
        );
        assert_eq!(result.points.len(), 2);
        let small = result.points[0].icache_means[0];
        let large = result.points[1].icache_means[0];
        assert!(
            small > large,
            "8KB MPKI {small} should exceed 64KB MPKI {large}"
        );
    }

    #[test]
    fn render_lists_configs() {
        let r = SweepResult {
            policies: vec![PolicyKind::Lru],
            points: vec![SweepPoint {
                capacity_bytes: 8 * 1024,
                ways: 4,
                icache_means: vec![3.25],
            }],
        };
        let s = r.render();
        assert!(s.contains("8KB 4-way"));
        assert!(s.contains("3.250"));
    }
}
