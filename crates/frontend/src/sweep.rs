//! Cache-geometry sweeps (the paper's Figure 7).
//!
//! The sweep is the workspace's heaviest experiment, and its geometries
//! differ only in capacity/associativity — never block size. The
//! policy-independent front end (fetch decode, direction predictor, RAS,
//! indirect target cache) is therefore identical across every geometry,
//! so [`run_sweep`] *fuses* geometries: one trace replay drives the lane
//! grid of several geometries at once via
//! [`crate::engine::run_lanes_multi`], and the per-lane BTBs are skipped
//! entirely because a [`SweepPoint`] consumes only I-cache means. Both
//! optimizations leave the reported means bit-identical to the
//! one-suite-per-geometry path (locked in by tests below and the
//! equivalence property suite).

#![forbid(unsafe_code)]

use crate::engine::{run_lanes_multi, EngineArena};
use crate::policy::PolicyKind;
use crate::schedule::{self, SchedulerStats};
use crate::simulator::SimConfig;
use crate::stats;
use fe_cache::CacheConfig;
use fe_trace::synth::WorkloadSpec;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One point of the sweep: a geometry plus per-policy mean MPKIs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// I-cache capacity in bytes.
    pub capacity_bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Mean I-cache MPKI per policy (parallel to `SweepResult::policies`).
    pub icache_means: Vec<f64>,
    /// Mean BTB MPKI per policy — all zeros unless the sweep ran with
    /// BTB measurement on (see [`run_sweep_with`]).
    pub btb_means: Vec<f64>,
}

/// Result of a full geometry sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepResult {
    /// Policies, in column order.
    pub policies: Vec<PolicyKind>,
    /// One point per geometry, in the order supplied.
    pub points: Vec<SweepPoint>,
    /// Scheduler observability for the run (worker utilization, steals).
    pub scheduler: SchedulerStats,
}

/// Equality compares the scientific payload only (policies and points);
/// scheduler counters are run-specific timing observability and must not
/// make two bit-identical simulations compare unequal.
impl PartialEq for SweepResult {
    fn eq(&self, other: &SweepResult) -> bool {
        self.policies == other.policies && self.points == other.points
    }
}

impl SweepResult {
    /// Render the Figure 7 table: one row per configuration.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{:<18}", "config");
        for p in &self.policies {
            let _ = write!(out, "{:>9}", p.to_string());
        }
        out.push('\n');
        for pt in &self.points {
            let _ = write!(
                out,
                "{:<18}",
                format!("{}KB {}-way", pt.capacity_bytes / 1024, pt.ways)
            );
            for m in &pt.icache_means {
                let _ = write!(out, "{m:>9.3}");
            }
            out.push('\n');
        }
        out
    }
}

/// The paper's Figure 7 geometries: {8, 16, 32, 64} KB × {4, 8} ways,
/// 64-byte blocks.
pub fn paper_geometries() -> Vec<(u64, u32)> {
    let mut v = Vec::new();
    for cap_kb in [8u64, 16, 32, 64] {
        for ways in [4u32, 8] {
            v.push((cap_kb * 1024, ways));
        }
    }
    v
}

/// Sweep the suite over `geometries` (capacity, ways) pairs.
///
/// `threads = 0` means "use every available hardware thread". The grid is
/// `workload × geometry-group`: geometries fuse into as few groups as the
/// thread budget allows (one group when `threads <= specs.len()`), each
/// group costing a single trace replay per workload. More threads split
/// the geometries into more groups for extra parallelism; per-point means
/// are bit-identical either way. Per-lane BTBs are skipped — sweep points
/// consume I-cache means only, and the GHRP BTB policy never writes the
/// shared predictor.
///
/// # Panics
///
/// Panics if a geometry is invalid (non-power-of-two sets) or differs
/// from the base block size; propagates worker panics.
pub fn run_sweep(
    specs: &[WorkloadSpec],
    base: &SimConfig,
    policies: &[PolicyKind],
    geometries: &[(u64, u32)],
    threads: usize,
) -> SweepResult {
    run_sweep_from(
        specs,
        base,
        policies,
        geometries,
        threads,
        crate::experiment::SuiteSource::Streamed,
    )
}

/// [`run_sweep`] with an explicit replay source.
///
/// With [`crate::experiment::SuiteSource::Corpus`] every task replays
/// its workload from the shared corpus buffer instead of re-walking the
/// synthetic program; per-point means are bit-identical either way.
///
/// # Panics
///
/// As [`run_sweep`], plus a corpus source that does not match the suite
/// specs (length or workload names).
pub fn run_sweep_from(
    specs: &[WorkloadSpec],
    base: &SimConfig,
    policies: &[PolicyKind],
    geometries: &[(u64, u32)],
    threads: usize,
    source: crate::experiment::SuiteSource<'_>,
) -> SweepResult {
    run_sweep_with(specs, base, policies, geometries, threads, source, false)
}

/// [`run_sweep_from`] with per-lane BTB measurement optional.
///
/// `measure_btb = false` is the classic Figure 7 sweep (per-lane BTBs
/// skipped entirely — cheapest). `measure_btb = true` additionally
/// scores each lane's BTB under the swept base configuration and fills
/// [`SweepPoint::btb_means`], which the wide sampled sweeps use to score
/// BTB geometries alongside I-cache ones.
///
/// # Panics
///
/// As [`run_sweep_from`].
pub fn run_sweep_with(
    specs: &[WorkloadSpec],
    base: &SimConfig,
    policies: &[PolicyKind],
    geometries: &[(u64, u32)],
    threads: usize,
    source: crate::experiment::SuiteSource<'_>,
    measure_btb: bool,
) -> SweepResult {
    source.validate(specs);
    let workers = schedule::resolve_threads(threads);
    let nspecs = specs.len();
    let ngeoms = geometries.len();
    let npols = policies.len();
    if ngeoms == 0 {
        return SweepResult {
            policies: policies.to_vec(),
            points: Vec::new(),
            scheduler: SchedulerStats::default(),
        };
    }
    let icaches: Vec<CacheConfig> = geometries
        .iter()
        .map(|&(capacity, ways)| {
            CacheConfig::with_capacity(capacity, ways, base.icache.block_bytes())
                .expect("valid sweep geometry")
        })
        .collect();
    // Fuse geometries into as few groups as the thread budget allows.
    let ngroups = workers.div_ceil(nspecs.max(1)).clamp(1, ngeoms);
    let group_bounds = crate::experiment::split_bounds(ngeoms, ngroups);

    // Task t = group-major (g · nspecs + s): a worker's contiguous range
    // stays within one geometry group, maximizing arena reuse.
    let (group_results, scheduler) = schedule::run_grid(
        ngroups * nspecs,
        workers,
        |_| EngineArena::new(),
        |arena, t| {
            let g = t / nspecs.max(1);
            let s = t - g * nspecs.max(1);
            let (lo, hi) = group_bounds[g];
            match source {
                crate::experiment::SuiteSource::Streamed => {
                    let streamed = specs[s].streamed();
                    run_lanes_multi(
                        base,
                        &icaches[lo..hi],
                        policies,
                        measure_btb,
                        &streamed,
                        arena,
                    )
                }
                crate::experiment::SuiteSource::Corpus(corpus) => run_lanes_multi(
                    base,
                    &icaches[lo..hi],
                    policies,
                    measure_btb,
                    corpus.trace(s),
                    arena,
                ),
            }
        },
    );

    let mut points = Vec::with_capacity(ngeoms);
    for (gi, &(capacity, ways)) in geometries.iter().enumerate() {
        // The group holding geometry gi, and its offset within the group.
        let (g, (lo, _)) = group_bounds
            .iter()
            .enumerate()
            .map(|(g, &b)| (g, b))
            .find(|&(_, (lo, hi))| lo <= gi && gi < hi)
            .unwrap_or((0, (0, 0)));
        let icache_means = (0..npols)
            .map(|p| {
                // Accumulate in spec order: identical float-summation
                // order to the unfused per-geometry suite path.
                let column: Vec<f64> = (0..nspecs)
                    .map(|s| group_results[g * nspecs + s][gi - lo][p].icache_mpki())
                    .collect();
                stats::mean(&column)
            })
            .collect();
        let btb_means = (0..npols)
            .map(|p| {
                let column: Vec<f64> = (0..nspecs)
                    .map(|s| group_results[g * nspecs + s][gi - lo][p].btb_mpki())
                    .collect();
                stats::mean(&column)
            })
            .collect();
        points.push(SweepPoint {
            capacity_bytes: capacity,
            ways,
            icache_means,
            btb_means,
        });
    }
    SweepResult {
        policies: policies.to_vec(),
        points,
        scheduler,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::run_suite;
    use fe_trace::synth::{suite, WorkloadCategory};

    #[test]
    fn paper_geometries_are_eight() {
        let g = paper_geometries();
        assert_eq!(g.len(), 8);
        assert!(g.contains(&(64 * 1024, 8)));
        assert!(g.contains(&(8 * 1024, 4)));
    }

    #[test]
    fn smaller_caches_miss_more() {
        let specs: Vec<_> = suite(2, 5)
            .into_iter()
            .filter(|s| s.category == WorkloadCategory::ShortServer)
            .map(|s| s.instructions(120_000))
            .collect();
        let result = run_sweep(
            &specs,
            &SimConfig::paper_default(),
            &[PolicyKind::Lru],
            &[(8 * 1024, 4), (64 * 1024, 8)],
            2,
        );
        assert_eq!(result.points.len(), 2);
        let small = result.points[0].icache_means[0];
        let large = result.points[1].icache_means[0];
        assert!(
            small > large,
            "8KB MPKI {small} should exceed 64KB MPKI {large}"
        );
    }

    #[test]
    fn fused_sweep_matches_per_geometry_suites() {
        // The geometry-fused, BTB-skipping sweep must reproduce the
        // means of one full suite per geometry exactly.
        let specs: Vec<_> = suite(3, 21)
            .into_iter()
            .map(|s| s.instructions(60_000))
            .collect();
        let cfg = SimConfig::paper_default();
        let pols = [PolicyKind::Lru, PolicyKind::Sdbp, PolicyKind::Ghrp];
        let geoms = [(8 * 1024, 4), (16 * 1024, 8), (64 * 1024, 8)];
        let swept = run_sweep(&specs, &cfg, &pols, &geoms, 1);
        for (point, &(capacity, ways)) in swept.points.iter().zip(&geoms) {
            let icache = fe_cache::CacheConfig::with_capacity(capacity, ways, 64)
                .expect("valid test geometry");
            let suite_result = run_suite(&specs, &cfg.with_icache(icache), &pols, 1);
            assert_eq!(
                point.icache_means,
                suite_result.icache_means(),
                "{capacity}B {ways}-way diverged from the unfused path"
            );
        }
    }

    #[test]
    fn offline_policy_sweeps_match_serial() {
        // OPT lanes disable arena reuse; the sweep must still agree
        // across thread counts.
        let specs: Vec<_> = suite(2, 9)
            .into_iter()
            .map(|s| s.instructions(40_000))
            .collect();
        let cfg = SimConfig::paper_default();
        let pols = [PolicyKind::Opt, PolicyKind::Lru];
        let geoms = [(8 * 1024, 4), (32 * 1024, 8)];
        let serial = run_sweep(&specs, &cfg, &pols, &geoms, 1);
        let parallel = run_sweep(&specs, &cfg, &pols, &geoms, 4);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn render_lists_configs() {
        let r = SweepResult {
            policies: vec![PolicyKind::Lru],
            points: vec![SweepPoint {
                capacity_bytes: 8 * 1024,
                ways: 4,
                icache_means: vec![3.25],
                btb_means: vec![0.0],
            }],
            scheduler: SchedulerStats::default(),
        };
        let s = r.render();
        assert!(s.contains("8KB 4-way"));
        assert!(s.contains("3.250"));
    }
}
