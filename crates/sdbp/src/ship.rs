//! `SHiP`: Signature-based Hit Predictor (Wu et al., MICRO 2011).
//!
//! `SHiP` predicts *re-reference* instead of deadness: each block carries a
//! signature and an outcome bit; a Signature History Counter Table (SHCT)
//! learns whether blocks inserted under a signature tend to be re-used.
//! Insertion uses an RRIP backbone — signatures with a zero counter
//! insert at the distant RRPV (effectively predicted dead on arrival).
//!
//! The GHRP paper groups `SHiP` with SDBP as PC-indexed predictors that
//! cannot exploit set-sampling for instruction streams (§II.A); like our
//! modified SDBP, this implementation trains on every set and uses the
//! block address as the "PC" (the fetch PC *is* the index).

#![forbid(unsafe_code)]

use fe_cache::{AccessContext, CacheConfig, ReplacementPolicy};

/// Configuration for [`ShipPolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShipConfig {
    /// SHCT entries (power of two).
    pub shct_entries: usize,
    /// SHCT counter maximum (3-bit counters in the original).
    pub counter_max: u8,
    /// Signature width in bits.
    pub signature_bits: u32,
}

impl Default for ShipConfig {
    fn default() -> ShipConfig {
        ShipConfig {
            shct_entries: 16 * 1024,
            counter_max: 7,
            signature_bits: 14,
        }
    }
}

/// The `SHiP` replacement policy (SHiP-PC adapted to instruction streams).
#[derive(Debug, Clone)]
pub struct ShipPolicy {
    cfg: ShipConfig,
    ways: usize,
    max_rrpv: u8,
    rrpv: Vec<u8>,
    /// Per-frame signature of the resident block.
    frame_sig: Vec<u16>,
    /// Per-frame outcome bit: has the resident block hit since fill?
    outcome: Vec<bool>,
    /// Signature history counter table.
    shct: Vec<u8>,
    pc_shift: u32,
    current_sig: u16,
}

impl ShipPolicy {
    /// Create `SHiP` state for a cache of geometry `cache_cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `shct_entries` is not a power of two.
    pub fn new(cache_cfg: CacheConfig, cfg: ShipConfig) -> ShipPolicy {
        assert!(
            cfg.shct_entries.is_power_of_two() && cfg.shct_entries > 0,
            "shct_entries must be a power of two"
        );
        ShipPolicy {
            cfg,
            ways: cache_cfg.ways() as usize,
            max_rrpv: 3,
            rrpv: vec![3; cache_cfg.frames()],
            frame_sig: vec![0; cache_cfg.frames()],
            outcome: vec![false; cache_cfg.frames()],
            // Weakly re-referenced start: blocks are given the benefit of
            // the doubt until their signature proves dead-on-arrival.
            shct: vec![1; cfg.shct_entries],
            pc_shift: cache_cfg.offset_bits(),
            current_sig: 0,
        }
    }

    fn signature_of(&self, block_addr: u64) -> u16 {
        let pc = block_addr >> self.pc_shift;
        // Fold the address into the signature width.
        let folded = pc ^ (pc >> self.cfg.signature_bits);
        // Truncation-safe: masked to signature_bits ≤ 16 bits.
        #[allow(clippy::cast_possible_truncation)]
        let sig = (folded & ((1 << self.cfg.signature_bits) - 1)) as u16;
        sig
    }

    fn shct_index(&self, sig: u16) -> usize {
        sig as usize & (self.cfg.shct_entries - 1)
    }

    /// SHCT counter for a signature (diagnostics/tests).
    pub fn shct_counter(&self, sig: u16) -> u8 {
        self.shct[self.shct_index(sig)]
    }
}

impl ReplacementPolicy for ShipPolicy {
    fn on_access(&mut self, ctx: &AccessContext) {
        self.current_sig = self.signature_of(ctx.block_addr);
    }

    fn on_hit(&mut self, way: usize, ctx: &AccessContext) {
        let f = ctx.set * self.ways + way;
        // First re-reference trains the signature "reused".
        if !self.outcome[f] {
            self.outcome[f] = true;
            let i = self.shct_index(self.frame_sig[f]);
            self.shct[i] = (self.shct[i] + 1).min(self.cfg.counter_max);
        }
        self.rrpv[f] = 0;
    }

    fn choose_victim(&mut self, ctx: &AccessContext) -> usize {
        let base = ctx.set * self.ways;
        loop {
            if let Some(w) = (0..self.ways).find(|&w| self.rrpv[base + w] == self.max_rrpv) {
                return w;
            }
            for w in 0..self.ways {
                self.rrpv[base + w] += 1;
            }
        }
    }

    fn on_evict(&mut self, way: usize, _victim_block: u64, ctx: &AccessContext) {
        let f = ctx.set * self.ways + way;
        // Evicted without a single re-reference: train dead-on-arrival.
        if !self.outcome[f] {
            let i = self.shct_index(self.frame_sig[f]);
            self.shct[i] = self.shct[i].saturating_sub(1);
        }
    }

    fn on_fill(&mut self, way: usize, ctx: &AccessContext) {
        let f = ctx.set * self.ways + way;
        self.frame_sig[f] = self.current_sig;
        self.outcome[f] = false;
        let counter = self.shct[self.shct_index(self.current_sig)];
        // Zero counter ⇒ predicted dead-on-arrival ⇒ distant insertion;
        // otherwise a long (SRRIP-style) insertion.
        self.rrpv[f] = if counter == 0 {
            self.max_rrpv
        } else {
            self.max_rrpv - 1
        };
    }

    fn reset(&mut self) {
        self.rrpv.fill(self.max_rrpv);
        self.frame_sig.fill(0);
        self.outcome.fill(false);
        // Back to the weakly-re-referenced starting credit.
        self.shct.fill(1);
        self.current_sig = 0;
    }

    fn name(&self) -> String {
        "SHiP".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fe_cache::Cache;

    fn mk() -> Cache<ShipPolicy> {
        let cfg = CacheConfig::with_sets(4, 2, 64).unwrap();
        Cache::new(cfg, ShipPolicy::new(cfg, ShipConfig::default()))
    }

    #[test]
    fn reused_signature_counter_rises() {
        let mut c = mk();
        c.access(0x000, 0);
        let sig = c.policy().signature_of(0x000);
        let before = c.policy().shct_counter(sig);
        c.access(0x000, 0); // first re-reference
        assert_eq!(c.policy().shct_counter(sig), before + 1);
        // Further hits do not re-train (outcome bit already set).
        c.access(0x000, 0);
        assert_eq!(c.policy().shct_counter(sig), before + 1);
    }

    #[test]
    fn dead_on_arrival_signature_decays_to_distant_insertion() {
        let mut c = mk();
        // Stream distinct blocks through set 0 with no reuse: their
        // signatures decay to zero and subsequent fills insert distant.
        for i in 0..64u64 {
            c.access(i * 4 * 64, 0); // sets=4 → stride 4 blocks keeps set 0
        }
        // At least one streamed signature must have decayed to 0.
        let p = c.policy();
        let any_zero = (0..64u64).any(|i| p.shct_counter(p.signature_of(i * 4 * 64)) == 0);
        assert!(any_zero, "streaming should drive some SHCT counters to 0");
    }

    #[test]
    fn ship_protects_hot_block_from_stream() {
        // Hot block reused constantly; cold stream through the same set.
        // Once the stream's signatures hit zero they insert at distant
        // RRPV and are evicted before the hot block.
        let cfg = CacheConfig::with_sets(1, 4, 64).unwrap();
        let mut ship = Cache::new(cfg, ShipPolicy::new(cfg, ShipConfig::default()));
        let mut lru = Cache::new(cfg, fe_cache::policy::Lru::new(cfg));
        let (mut ship_miss, mut lru_miss) = (0u64, 0u64);
        for i in 0..4000u64 {
            if ship.access(0x0, 0).is_miss() {
                ship_miss += 1;
            }
            if lru.access(0x0, 0).is_miss() {
                lru_miss += 1;
            }
            let cold = 0x1000 + (i % 16) * 64;
            if ship.access(cold, 0).is_miss() {
                ship_miss += 1;
            }
            if lru.access(cold, 0).is_miss() {
                lru_miss += 1;
            }
        }
        assert!(
            ship_miss < lru_miss,
            "SHiP {ship_miss} should beat LRU {lru_miss} on hot+stream"
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_shct_size_panics() {
        let cfg = CacheConfig::with_sets(4, 2, 64).unwrap();
        let scfg = ShipConfig {
            shct_entries: 1000,
            ..ShipConfig::default()
        };
        let _ = ShipPolicy::new(cfg, scfg);
    }
}
