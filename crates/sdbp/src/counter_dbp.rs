//! Counter-based dead block prediction (Kharbutli & Solihin, §II.B).
//!
//! The Access Interval Predictor (AIP) family associates each block with
//! an access counter and learns, per program location, how many accesses
//! a block typically receives before dying. Once a resident block's
//! counter exceeds its learned threshold it is predicted dead. For
//! instruction streams the "program location" is the block address
//! itself (the PC forms the index, §II.A), making this another PC-class
//! baseline to contrast with GHRP's path-based signatures.

#![forbid(unsafe_code)]

use fe_cache::{AccessContext, CacheConfig, ReplacementPolicy};

/// One learning-table entry: the maximum access count seen in the
/// block's last two generations, with a confidence bit.
#[derive(Debug, Clone, Copy, Default)]
struct Learned {
    /// Access count of the most recently completed generation.
    last: u8,
    /// Running maximum (decayed on mispredictions).
    threshold: u8,
    /// Whether two consecutive generations agreed.
    confident: bool,
}

/// Counter-based dead block predictor driving replacement.
#[derive(Debug, Clone)]
pub struct CounterDbpPolicy {
    ways: usize,
    /// Per-frame access counter for the current generation.
    access_count: Vec<u8>,
    /// Per-frame learned-entry index (block-address hash).
    frame_key: Vec<usize>,
    /// LRU stamps for fallback.
    stamps: Vec<u64>,
    clock: u64,
    /// Learning table, indexed by hashed block address.
    table: Vec<Learned>,
    table_mask: usize,
    pc_shift: u32,
}

impl CounterDbpPolicy {
    /// Create the policy with a learning table of `table_entries` slots
    /// (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `table_entries` is not a nonzero power of two.
    pub fn new(cache_cfg: CacheConfig, table_entries: usize) -> CounterDbpPolicy {
        assert!(
            table_entries.is_power_of_two() && table_entries > 0,
            "table_entries must be a power of two"
        );
        CounterDbpPolicy {
            ways: cache_cfg.ways() as usize,
            access_count: vec![0; cache_cfg.frames()],
            frame_key: vec![0; cache_cfg.frames()],
            stamps: vec![0; cache_cfg.frames()],
            clock: 0,
            table: vec![Learned::default(); table_entries],
            table_mask: table_entries - 1,
            pc_shift: cache_cfg.offset_bits(),
        }
    }

    fn key(&self, block_addr: u64) -> usize {
        let x = (block_addr >> self.pc_shift).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((x >> 24) as usize) & self.table_mask
    }

    fn frame_predicted_dead(&self, f: usize) -> bool {
        let l = self.table[self.frame_key[f]];
        l.confident && l.threshold > 0 && self.access_count[f] >= l.threshold
    }

    fn close_generation(&mut self, f: usize) {
        let count = self.access_count[f];
        let key = self.frame_key[f];
        let l = &mut self.table[key];
        // Two consecutive generations with the same access count make the
        // threshold confident; disagreement retrains.
        if l.last == count && count > 0 {
            l.confident = true;
            l.threshold = count;
        } else {
            l.confident = false;
            l.threshold = l.threshold.max(count);
        }
        l.last = count;
    }

    fn touch(&mut self, set: usize, way: usize) {
        self.clock += 1;
        self.stamps[set * self.ways + way] = self.clock;
    }
}

impl ReplacementPolicy for CounterDbpPolicy {
    fn on_hit(&mut self, way: usize, ctx: &AccessContext) {
        let f = ctx.set * self.ways + way;
        self.access_count[f] = self.access_count[f].saturating_add(1);
        self.touch(ctx.set, way);
    }

    fn choose_victim(&mut self, ctx: &AccessContext) -> usize {
        let base = ctx.set * self.ways;
        if let Some(w) = (0..self.ways).find(|&w| self.frame_predicted_dead(base + w)) {
            return w;
        }
        (0..self.ways)
            .min_by_key(|&w| self.stamps[base + w])
            .expect("at least one way")
    }

    fn on_evict(&mut self, way: usize, _victim_block: u64, ctx: &AccessContext) {
        self.close_generation(ctx.set * self.ways + way);
    }

    fn on_fill(&mut self, way: usize, ctx: &AccessContext) {
        let f = ctx.set * self.ways + way;
        self.access_count[f] = 1;
        self.frame_key[f] = self.key(ctx.block_addr);
        self.touch(ctx.set, way);
    }

    fn reset(&mut self) {
        self.access_count.fill(0);
        self.frame_key.fill(0);
        self.stamps.fill(0);
        self.clock = 0;
        self.table.fill(Learned::default());
    }

    fn name(&self) -> String {
        "CounterDBP".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fe_cache::Cache;

    fn mk() -> Cache<CounterDbpPolicy> {
        let cfg = CacheConfig::with_sets(2, 2, 64).unwrap();
        Cache::new(cfg, CounterDbpPolicy::new(cfg, 1024))
    }

    #[test]
    fn learns_stable_access_count() {
        let mut c = mk();
        // Block 0x000: exactly 3 accesses per generation, evicted by
        // conflict traffic in between (blocks 0x100, 0x200 share set 0).
        for _ in 0..4 {
            for _ in 0..3 {
                c.access(0x000, 0);
            }
            c.access(0x100, 0);
            c.access(0x200, 0); // evicts 0x000 (LRU)
        }
        let p = c.policy();
        let key = p.key(0x000);
        assert!(p.table[key].confident, "stable count should be learned");
        assert_eq!(p.table[key].threshold, 3);
    }

    #[test]
    fn predicted_dead_block_evicted_before_lru() {
        let mut c = mk();
        // Train 0x000 to die after exactly 1 access per generation, using
        // *different* conflict blocks each generation so only 0x000
        // becomes confidently learned.
        for g in 0..4u64 {
            c.access(0x000, 0);
            c.access(0x100 + g * 0x1000, 0);
            c.access(0x200 + g * 0x1000, 0);
        }
        // Fresh generation in set 0: an untrained block, then 0x000
        // (1 access = its learned threshold → predicted dead, and MRU).
        c.access(0x9100, 0); // untrained, becomes LRU
        c.access(0x000, 0); // MRU but predicted dead
        let r = c.access(0xA200, 0);
        assert_eq!(
            r,
            fe_cache::AccessResult::Miss {
                evicted: Some(0x000)
            },
            "dead-predicted block chosen over LRU"
        );
    }

    #[test]
    fn unstable_counts_stay_unconfident() {
        let mut c = mk();
        // Alternate 1-access and 5-access generations.
        for gen in 0..6 {
            let n = if gen % 2 == 0 { 1 } else { 5 };
            for _ in 0..n {
                c.access(0x000, 0);
            }
            c.access(0x100, 0);
            c.access(0x200, 0);
        }
        let p = c.policy();
        assert!(!p.table[p.key(0x000)].confident);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_table_size_panics() {
        let cfg = CacheConfig::with_sets(2, 2, 64).unwrap();
        let _ = CounterDbpPolicy::new(cfg, 1000);
    }
}
