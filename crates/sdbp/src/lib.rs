//! Modified Sampling Dead Block Prediction (SDBP) for instruction streams.
//!
//! SDBP (Khan, Tian & Jiménez, MICRO 2010) predicts dead blocks from the PC
//! of the most recent access, learning access/eviction patterns in a small
//! set of *sampler* sets. The GHRP paper shows (§II.A) that set-sampling
//! cannot work for the I-cache or BTB — the PC itself forms the index, so a
//! given PC only ever touches one set and sampled sets cannot generalize.
//! The paper therefore evaluates a **modified SDBP** (§IV.A), reproduced
//! here:
//!
//! * the sampler is as large as the cache (same sets, same associativity);
//! * 8-bit counters instead of 2-bit;
//! * three skewed prediction tables;
//! * sampler entries hold a valid bit, a prediction bit, 3 LRU bits, a
//!   12-bit partial-PC signature and a 16-bit partial tag;
//! * dead and bypass thresholds tuned for instruction streams;
//! * votes aggregate by **summation** (original SDBP), not majority.
//!
//! For instruction fetch the "PC of the most recent access" to a block *is*
//! the block's own address, so SDBP degenerates to an address-indexed
//! predictor without path information — which is exactly why it struggles
//! on I-streams with multiple reuses per generation, per the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counter_dbp;
pub mod ship;

pub use counter_dbp::CounterDbpPolicy;
pub use ship::{ShipConfig, ShipPolicy};

use fe_cache::{AccessContext, CacheConfig, ReplacementPolicy};
use serde::{Deserialize, Serialize};

// Canonical §IV.A design-point constants. The `budget-key:` markers are
// consumed by `cargo xtask audit`, which re-derives the comparison
// predictor's storage (3×4096×8-bit tables, 33-bit sampler entries) and
// diffs it against `budgets.toml`.

/// Entries per skewed SDBP prediction table.
///
/// budget-key: `sdbp.table_entries`
pub const PAPER_SDBP_TABLE_ENTRIES: usize = 1 << 12;

/// Number of skewed SDBP prediction tables.
///
/// budget-key: `sdbp.num_tables`
pub const PAPER_SDBP_NUM_TABLES: usize = 3;

/// SDBP counter width: 8 bits (§IV.A widens the original 2-bit design).
///
/// budget-key: `sdbp.counter_bits`
pub const PAPER_SDBP_COUNTER_BITS: u32 = 8;

/// Valid bits per sampler entry.
///
/// budget-key: `sdbp.sampler_valid_bits`
pub const PAPER_SDBP_SAMPLER_VALID_BITS: u32 = 1;

/// Prediction bits per sampler entry.
///
/// budget-key: `sdbp.sampler_prediction_bits`
pub const PAPER_SDBP_SAMPLER_PREDICTION_BITS: u32 = 1;

/// LRU-position bits per sampler entry.
///
/// budget-key: `sdbp.sampler_lru_bits`
pub const PAPER_SDBP_SAMPLER_LRU_BITS: u32 = 3;

/// Partial-PC signature bits per sampler entry.
///
/// budget-key: `sdbp.sampler_signature_bits`
pub const PAPER_SDBP_SAMPLER_SIGNATURE_BITS: u32 = 12;

/// Partial-tag bits per sampler entry.
///
/// budget-key: `sdbp.sampler_tag_bits`
pub const PAPER_SDBP_SAMPLER_TAG_BITS: u32 = 16;

/// Configuration of the modified SDBP predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SdbpConfig {
    /// Entries per prediction table (power of two).
    pub table_entries: usize,
    /// Number of skewed tables.
    pub num_tables: usize,
    /// Counter saturation maximum (255 for the paper's 8-bit counters).
    pub counter_max: u8,
    /// Sum of the three counters at or above which a block predicts dead.
    pub dead_threshold: u32,
    /// Sum threshold for bypassing a fill (higher = more conservative).
    pub bypass_threshold: u32,
    /// Bits of partial PC kept as the signature.
    pub signature_bits: u32,
    /// Whether bypass is enabled.
    pub enable_bypass: bool,
    /// Train from every `sampler_every`-th set only. `1` (the paper's
    /// §IV.A modification) trains on every set — a full-size sampler.
    /// Larger values reproduce the original LLC-style set-sampling, which
    /// §II.A shows cannot generalize for instruction streams because a PC
    /// only ever touches one set.
    pub sampler_every: u32,
}

impl Default for SdbpConfig {
    fn default() -> SdbpConfig {
        SdbpConfig {
            table_entries: PAPER_SDBP_TABLE_ENTRIES,
            num_tables: PAPER_SDBP_NUM_TABLES,
            counter_max: 255,
            dead_threshold: 12,
            bypass_threshold: 96,
            signature_bits: PAPER_SDBP_SAMPLER_SIGNATURE_BITS,
            enable_bypass: true,
            sampler_every: 1,
        }
    }
}

impl SdbpConfig {
    fn validate(&self) {
        assert!(
            self.table_entries.is_power_of_two() && self.table_entries > 0,
            "table_entries must be a power of two"
        );
        assert!(
            (1..=8).contains(&self.num_tables),
            "num_tables must be 1..=8"
        );
        assert!(
            (1..=16).contains(&self.signature_bits),
            "signature_bits must be 1..=16"
        );
        assert!(self.sampler_every >= 1, "sampler_every must be >= 1");
    }
}

/// One sampler entry (§IV.A: 1 valid + 1 prediction + 3 LRU-position bits
/// + 12-bit partial PC + 16-bit tag).
#[derive(Debug, Clone, Copy, Default)]
struct SamplerEntry {
    valid: bool,
    partial_tag: u16,
    signature: u16,
    lru_stamp: u64,
}

/// Diagnostic counters for SDBP.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SdbpStats {
    /// Victims chosen by dead prediction.
    pub dead_victims: u64,
    /// Victims chosen by LRU fallback.
    pub lru_victims: u64,
    /// Bypassed fills.
    pub bypasses: u64,
    /// Sampler hits.
    pub sampler_hits: u64,
    /// Sampler misses.
    pub sampler_misses: u64,
}

/// The modified-SDBP replacement policy.
#[derive(Debug, Clone)]
pub struct SdbpPolicy {
    cfg: SdbpConfig,
    ways: usize,
    /// Skewed counter tables.
    tables: Vec<Vec<u8>>,
    /// Full-size sampler: same geometry as the cache.
    sampler: Vec<SamplerEntry>,
    /// Main-cache per-frame prediction bits.
    predicted_dead: Vec<bool>,
    /// Main-cache LRU stamps.
    stamps: Vec<u64>,
    clock: u64,
    /// Shift turning an address into the "PC" the signature derives from
    /// (block-offset bits for an I-cache).
    pc_shift: u32,
    /// Signature of the in-flight access.
    current_sig: u16,
    stats: SdbpStats,
}

impl SdbpPolicy {
    /// Create an SDBP policy for a cache of geometry `cache_cfg`.
    ///
    /// # Panics
    ///
    /// Panics on an invalid [`SdbpConfig`].
    pub fn new(cache_cfg: CacheConfig, cfg: SdbpConfig) -> SdbpPolicy {
        cfg.validate();
        SdbpPolicy {
            cfg,
            ways: cache_cfg.ways() as usize,
            tables: vec![vec![0u8; cfg.table_entries]; cfg.num_tables],
            sampler: vec![SamplerEntry::default(); cache_cfg.frames()],
            predicted_dead: vec![false; cache_cfg.frames()],
            stamps: vec![0; cache_cfg.frames()],
            clock: 0,
            pc_shift: cache_cfg.offset_bits(),
            current_sig: 0,
            stats: SdbpStats::default(),
        }
    }

    /// Diagnostic counters.
    pub fn stats(&self) -> SdbpStats {
        self.stats
    }

    /// The partial-PC signature for an access to `block_addr`.
    pub fn signature_of(&self, block_addr: u64) -> u16 {
        let pc = block_addr >> self.pc_shift;
        // Truncation-safe: masked to signature_bits ≤ 16 bits.
        #[allow(clippy::cast_possible_truncation)]
        let sig = (pc & ((1 << self.cfg.signature_bits) - 1)) as u16;
        sig
    }

    fn partial_tag(&self, block_addr: u64) -> u16 {
        ((block_addr >> self.pc_shift) & 0xFFFF) as u16
    }

    fn table_index(&self, sig: u16, table: usize) -> usize {
        // Skewed indices via per-table multiplicative hashing.
        const MULT: [u32; 8] = [
            0x9E37_79B9,
            0x85EB_CA6B,
            0xC2B2_AE35,
            0x27D4_EB2F,
            0x1656_67B1,
            0xB529_7A4D,
            0x68E3_1DA5,
            0x71D6_7FFF,
        ];
        let x = u32::from(sig).wrapping_mul(MULT[table]);
        let x = x ^ (x >> 16);
        (x as usize) & (self.cfg.table_entries - 1)
    }

    /// Sum of the counters selected by `sig` (SDBP aggregates by
    /// summation).
    pub fn counter_sum(&self, sig: u16) -> u32 {
        (0..self.cfg.num_tables)
            .map(|t| u32::from(self.tables[t][self.table_index(sig, t)]))
            .sum()
    }

    fn train(&mut self, sig: u16, is_dead: bool) {
        for t in 0..self.cfg.num_tables {
            let i = self.table_index(sig, t);
            let c = &mut self.tables[t][i];
            if is_dead {
                *c = c.saturating_add(1).min(self.cfg.counter_max);
            } else {
                *c = c.saturating_sub(1);
            }
        }
    }

    /// Current dead prediction for a signature.
    pub fn predict_dead(&self, sig: u16) -> bool {
        self.counter_sum(sig) >= self.cfg.dead_threshold
    }

    fn predict_bypass(&self, sig: u16) -> bool {
        self.counter_sum(sig) >= self.cfg.bypass_threshold
    }

    /// Run the sampler for this access (the training side of SDBP).
    fn sample(&mut self, ctx: &AccessContext) {
        let tag = self.partial_tag(ctx.block_addr);
        let base = ctx.set * self.ways;
        self.clock += 1;
        // Sampler hit: the entry's previous signature proved live.
        for w in 0..self.ways {
            let e = self.sampler[base + w];
            if e.valid && e.partial_tag == tag {
                self.stats.sampler_hits += 1;
                self.train(e.signature, false);
                let sig = self.current_sig;
                let clock = self.clock;
                let e = &mut self.sampler[base + w];
                e.signature = sig;
                e.lru_stamp = clock;
                return;
            }
        }
        self.stats.sampler_misses += 1;
        // Sampler miss: evict the LRU sampler entry, training its
        // signature dead if it was valid.
        let victim = (0..self.ways)
            .min_by_key(|&w| {
                let e = self.sampler[base + w];
                (e.valid, e.lru_stamp)
            })
            .expect("at least one sampler way");
        let old = self.sampler[base + victim];
        if old.valid {
            self.train(old.signature, true);
        }
        self.sampler[base + victim] = SamplerEntry {
            valid: true,
            partial_tag: tag,
            signature: self.current_sig,
            lru_stamp: self.clock,
        };
    }

    fn touch(&mut self, set: usize, way: usize) {
        self.clock += 1;
        self.stamps[set * self.ways + way] = self.clock;
    }
}

impl ReplacementPolicy for SdbpPolicy {
    fn on_access(&mut self, ctx: &AccessContext) {
        self.current_sig = self.signature_of(ctx.block_addr);
        if (ctx.set as u64).is_multiple_of(u64::from(self.cfg.sampler_every)) {
            self.sample(ctx);
        }
    }

    fn on_hit(&mut self, way: usize, ctx: &AccessContext) {
        // Refresh this frame's prediction under the current access.
        self.predicted_dead[ctx.set * self.ways + way] = self.predict_dead(self.current_sig);
        self.touch(ctx.set, way);
    }

    fn should_bypass(&mut self, _ctx: &AccessContext) -> bool {
        if !self.cfg.enable_bypass {
            return false;
        }
        let b = self.predict_bypass(self.current_sig);
        if b {
            self.stats.bypasses += 1;
        }
        b
    }

    fn choose_victim(&mut self, ctx: &AccessContext) -> usize {
        let base = ctx.set * self.ways;
        if let Some(w) = (0..self.ways).find(|&w| self.predicted_dead[base + w]) {
            self.stats.dead_victims += 1;
            return w;
        }
        self.stats.lru_victims += 1;
        (0..self.ways)
            .min_by_key(|&w| self.stamps[base + w])
            .expect("at least one way")
    }

    fn on_evict(&mut self, way: usize, _victim_block: u64, ctx: &AccessContext) {
        self.predicted_dead[ctx.set * self.ways + way] = false;
    }

    fn on_fill(&mut self, way: usize, ctx: &AccessContext) {
        self.predicted_dead[ctx.set * self.ways + way] = self.predict_dead(self.current_sig);
        self.touch(ctx.set, way);
    }

    fn reset(&mut self) {
        for t in &mut self.tables {
            t.fill(0);
        }
        self.sampler.fill(SamplerEntry::default());
        self.predicted_dead.fill(false);
        self.stamps.fill(0);
        self.clock = 0;
        self.current_sig = 0;
        self.stats = SdbpStats::default();
    }

    fn name(&self) -> String {
        "SDBP".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fe_cache::Cache;

    fn mk(enable_bypass: bool) -> Cache<SdbpPolicy> {
        let cache_cfg = CacheConfig::with_sets(4, 2, 64).unwrap();
        let cfg = SdbpConfig {
            enable_bypass,
            ..SdbpConfig::default()
        };
        Cache::new(cache_cfg, SdbpPolicy::new(cache_cfg, cfg))
    }

    #[test]
    fn acts_like_lru_untrained() {
        let mut c = mk(false);
        c.access(0x000, 0);
        c.access(0x100, 0);
        c.access(0x000, 0);
        let r = c.access(0x200, 0);
        assert_eq!(
            r,
            fe_cache::AccessResult::Miss {
                evicted: Some(0x100)
            }
        );
    }

    #[test]
    fn sampler_tracks_hits_and_misses() {
        let mut c = mk(false);
        c.access(0x000, 0);
        c.access(0x000, 0);
        let st = c.policy().stats();
        assert_eq!(st.sampler_hits, 1);
        assert_eq!(st.sampler_misses, 1);
    }

    #[test]
    fn dead_training_accumulates_on_thrash() {
        let mut c = mk(false);
        // Three blocks cycling through a 2-way set: every generation dies.
        for _ in 0..100 {
            for b in [0x000u64, 0x100, 0x200] {
                c.access(b, 0);
            }
        }
        let p = c.policy();
        let sig = p.signature_of(0x000);
        assert!(
            p.counter_sum(sig) >= SdbpConfig::default().dead_threshold,
            "sum {}",
            p.counter_sum(sig)
        );
    }

    #[test]
    fn reused_blocks_stay_live() {
        let mut c = mk(false);
        for _ in 0..200 {
            c.access(0x000, 0);
        }
        let p = c.policy();
        assert!(!p.predict_dead(p.signature_of(0x000)));
        assert_eq!(p.stats().sampler_hits, 199);
    }

    #[test]
    fn bypass_fires_only_when_enabled() {
        let run = |bypass: bool| {
            let mut c = mk(bypass);
            for _ in 0..400 {
                for b in [0x000u64, 0x100, 0x200, 0x300, 0x400] {
                    c.access(b, 0);
                }
            }
            c.policy().stats().bypasses
        };
        assert_eq!(run(false), 0);
        assert!(run(true) > 0, "thrashing blocks should eventually bypass");
    }

    #[test]
    fn signature_is_partial_pc() {
        let cache_cfg = CacheConfig::with_sets(4, 2, 64).unwrap();
        let p = SdbpPolicy::new(cache_cfg, SdbpConfig::default());
        // Same low 12 bits of block-granular address → same signature.
        let a = p.signature_of(0x0004_0000);
        let b = p.signature_of(0x1004_0000);
        assert_eq!(a, b, "bits above the signature width are ignored");
        assert_ne!(p.signature_of(0x40), p.signature_of(0x80));
    }

    #[test]
    fn dead_victim_selection_engages_after_training() {
        let mut c = mk(false);
        for _ in 0..200 {
            for b in [0x000u64, 0x100, 0x200] {
                c.access(b, 0);
            }
        }
        assert!(c.policy().stats().dead_victims > 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn invalid_config_panics() {
        let cache_cfg = CacheConfig::with_sets(4, 2, 64).unwrap();
        let cfg = SdbpConfig {
            table_entries: 1000,
            ..SdbpConfig::default()
        };
        let _ = SdbpPolicy::new(cache_cfg, cfg);
    }

    /// The runtime default must realize the §IV.A design point the
    /// storage audit budgets against.
    #[test]
    fn default_matches_paper_constants() {
        let cfg = SdbpConfig::default();
        assert_eq!(cfg.table_entries, PAPER_SDBP_TABLE_ENTRIES);
        assert_eq!(cfg.num_tables, PAPER_SDBP_NUM_TABLES);
        assert_eq!(
            u32::from(cfg.counter_max),
            (1 << PAPER_SDBP_COUNTER_BITS) - 1,
            "counter_max must saturate exactly at the audited width"
        );
        assert_eq!(cfg.signature_bits, PAPER_SDBP_SAMPLER_SIGNATURE_BITS);
    }

    /// §IV.A sampler entry layout: 1 + 1 + 3 + 12 + 16 = 33 bits.
    #[test]
    fn sampler_entry_is_thirty_three_bits() {
        let bits = PAPER_SDBP_SAMPLER_VALID_BITS
            + PAPER_SDBP_SAMPLER_PREDICTION_BITS
            + PAPER_SDBP_SAMPLER_LRU_BITS
            + PAPER_SDBP_SAMPLER_SIGNATURE_BITS
            + PAPER_SDBP_SAMPLER_TAG_BITS;
        assert_eq!(bits, 33);
    }
}
