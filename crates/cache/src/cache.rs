//! The tag-array cache simulator.

#![forbid(unsafe_code)]

use crate::config::CacheConfig;
use crate::efficiency::EfficiencyTracker;
use crate::policy::{AccessContext, ReplacementPolicy};
use serde::{Deserialize, Serialize};

/// Outcome of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessResult {
    /// The block was present.
    Hit,
    /// The block was absent and filled, possibly evicting `evicted`.
    Miss {
        /// Block address evicted to make room, if the set was full.
        evicted: Option<u64>,
    },
    /// The block was absent and the policy chose not to fill it.
    Bypassed,
}

impl AccessResult {
    /// Whether the access hit.
    pub fn is_hit(&self) -> bool {
        matches!(self, AccessResult::Hit)
    }

    /// Whether the access missed (filled or bypassed).
    pub fn is_miss(&self) -> bool {
        !self.is_hit()
    }
}

/// Running counters for a cache instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed (including bypassed).
    pub misses: u64,
    /// Misses the policy chose not to fill.
    pub bypasses: u64,
    /// Valid blocks evicted to make room.
    pub evictions: u64,
    /// Blocks installed by [`Cache::prefetch`] (not counted as accesses
    /// or misses).
    pub prefetch_fills: u64,
}

impl CacheStats {
    /// Miss ratio in `[0, 1]`; zero when no accesses occurred.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Reset all counters (used at the end of the warm-up phase).
    pub fn reset(&mut self) {
        *self = CacheStats::default();
    }
}

/// A set-associative cache with a pluggable [`ReplacementPolicy`].
///
/// The cache stores block addresses as full tags (no aliasing) and delegates
/// all replacement decisions to the policy per the protocol documented on
/// [`ReplacementPolicy`].
#[derive(Debug)]
pub struct Cache<P> {
    cfg: CacheConfig,
    /// `sets × ways` frames; `None` = invalid.
    tags: Vec<Option<u64>>,
    policy: P,
    stats: CacheStats,
    efficiency: Option<EfficiencyTracker>,
}

impl<P: ReplacementPolicy> Cache<P> {
    /// Create an empty cache.
    pub fn new(cfg: CacheConfig, policy: P) -> Cache<P> {
        // `CacheConfig` constructors enforce this, but a config can also
        // arrive through deserialization; set indexing relies on it.
        debug_assert!(
            cfg.sets().is_power_of_two(),
            "set count {} is not a power of two",
            cfg.sets()
        );
        Cache {
            cfg,
            tags: vec![None; cfg.frames()],
            policy,
            stats: CacheStats::default(),
            efficiency: None,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Immutable access to the policy.
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Mutable access to the policy (e.g. to feed GHRP history updates
    /// from outside the cache access path).
    pub fn policy_mut(&mut self) -> &mut P {
        &mut self.policy
    }

    /// Running statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Reset statistics, e.g. after warm-up. Cache contents and policy
    /// state are preserved.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
        if let Some(e) = &mut self.efficiency {
            e.reset();
        }
    }

    /// Restore the cache to its freshly-constructed state — tags
    /// invalidated, statistics zeroed, the policy rewound via
    /// [`ReplacementPolicy::reset`] — while keeping every allocation.
    ///
    /// Behaviour after `reset` is bit-identical to a cache newly built
    /// with the same geometry and policy arguments; per-worker lane
    /// arenas use this to recycle caches across suite tasks.
    pub fn reset(&mut self) {
        self.tags.fill(None);
        self.stats.reset();
        self.policy.reset();
        if let Some(e) = &mut self.efficiency {
            *e = EfficiencyTracker::new(self.cfg);
        }
    }

    /// Begin recording per-frame efficiency (live-time fractions) for heat
    /// maps. See [`EfficiencyTracker`].
    pub fn enable_efficiency_tracking(&mut self) {
        self.efficiency = Some(EfficiencyTracker::new(self.cfg));
    }

    /// The efficiency tracker, if enabled.
    pub fn efficiency(&self) -> Option<&EfficiencyTracker> {
        self.efficiency.as_ref()
    }

    /// Finish efficiency tracking and return the per-frame map.
    ///
    /// Returns `None` if tracking was never enabled.
    pub fn finish_efficiency(&mut self) -> Option<crate::EfficiencyMap> {
        self.efficiency.take().map(EfficiencyTracker::finish)
    }

    /// Whether `addr`'s block is currently resident (no side effects).
    pub fn contains(&self, addr: u64) -> bool {
        self.find(self.cfg.block_of(addr)).is_some()
    }

    /// Number of valid frames.
    pub fn valid_frames(&self) -> usize {
        self.tags.iter().filter(|t| t.is_some()).count()
    }

    fn find(&self, block: u64) -> Option<usize> {
        let set = self.cfg.set_of(block);
        let base = set * self.cfg.ways() as usize;
        (0..self.cfg.ways() as usize).find(|&w| self.tags[base + w] == Some(block))
    }

    /// Install `addr`'s block without counting an access — a prefetch.
    ///
    /// Returns `true` if a fill occurred (`false` when already resident).
    /// The policy's victim-selection and fill callbacks run as for a
    /// demand fill, but `on_access` does not (a prefetch is not part of
    /// the demand stream, so history-based policies do not advance their
    /// histories).
    ///
    /// # Panics
    ///
    /// Panics if the policy chooses a victim way `>= ways` — a policy
    /// bug, not a caller error.
    pub fn prefetch(&mut self, addr: u64) -> bool {
        let block = self.cfg.block_of(addr);
        let set = self.cfg.set_of(block);
        if self.find(block).is_some() {
            return false;
        }
        let ctx = AccessContext {
            addr,
            block_addr: block,
            set,
        };
        let base = set * self.cfg.ways() as usize;
        let ways = self.cfg.ways() as usize;
        let way = if let Some(w) = (0..ways).find(|&w| self.tags[base + w].is_none()) {
            w
        } else {
            let w = self.policy.choose_victim(&ctx);
            assert!(w < ways, "policy chose way {w} of {ways}");
            // The set is full here (no invalid frame was found above), so
            // every way holds a tag; the `if let` keeps the hot path free
            // of panicking calls.
            let victim = self.tags[base + w];
            debug_assert!(victim.is_some(), "full set has a valid tag in every way");
            if let Some(victim) = victim {
                self.policy.on_evict(w, victim, &ctx);
                if let Some(e) = &mut self.efficiency {
                    e.on_evict(set, w);
                }
                self.stats.evictions += 1;
            }
            w
        };
        self.tags[base + way] = Some(block);
        self.policy.on_fill(way, &ctx);
        if let Some(e) = &mut self.efficiency {
            e.on_fill(set, way);
        }
        self.stats.prefetch_fills += 1;
        true
    }

    /// Perform one access at `addr` (any address within the block). `pc`
    /// is unused by the baseline policies but kept in the signature for
    /// symmetry with the BTB; predictive policies receive the *block*
    /// address through [`AccessContext`].
    ///
    /// # Panics
    ///
    /// Panics if the policy chooses a victim way `>= ways` — a policy
    /// bug, not a caller error.
    pub fn access(&mut self, addr: u64, pc: u64) -> AccessResult {
        self.access_locate(addr, pc).0
    }

    /// The frame (global `set * ways + way` index) currently holding
    /// `addr`'s block, if resident. Side-effect-free, like
    /// [`Cache::contains`]. Lets callers keep per-entry payloads in a
    /// flat side array indexed by frame instead of a keyed map.
    pub fn locate(&self, addr: u64) -> Option<usize> {
        let block = self.cfg.block_of(addr);
        let set = self.cfg.set_of(block);
        self.find(block).map(|w| set * self.cfg.ways() as usize + w)
    }

    /// Like [`Cache::access`], additionally reporting the frame (global
    /// `set * ways + way` index) the access hit in or filled — `None`
    /// when the policy bypassed the fill.
    ///
    /// # Panics
    ///
    /// Panics if the policy chooses a victim way `>= ways` — a policy
    /// bug, not a caller error.
    pub fn access_locate(&mut self, addr: u64, pc: u64) -> (AccessResult, Option<usize>) {
        let _ = pc;
        let block = self.cfg.block_of(addr);
        let set = self.cfg.set_of(block);
        let ctx = AccessContext {
            addr,
            block_addr: block,
            set,
        };
        self.stats.accesses += 1;
        self.policy.on_access(&ctx);
        if let Some(e) = &mut self.efficiency {
            e.tick();
        }

        let base = set * self.cfg.ways() as usize;
        let ways = self.cfg.ways() as usize;

        if let Some(way) = (0..ways).find(|&w| self.tags[base + w] == Some(block)) {
            self.stats.hits += 1;
            self.policy.on_hit(way, &ctx);
            if let Some(e) = &mut self.efficiency {
                e.on_hit(set, way);
            }
            return (AccessResult::Hit, Some(base + way));
        }

        self.stats.misses += 1;
        if self.policy.should_bypass(&ctx) {
            self.stats.bypasses += 1;
            return (AccessResult::Bypassed, None);
        }

        // Prefer an invalid frame; otherwise ask the policy for a victim.
        let (way, evicted) = if let Some(w) = (0..ways).find(|&w| self.tags[base + w].is_none()) {
            (w, None)
        } else {
            let w = self.policy.choose_victim(&ctx);
            assert!(w < ways, "policy chose way {w} of {ways}");
            // The set is full here (no invalid frame was found above), so
            // every way holds a tag; the `if let` keeps the hot path free
            // of panicking calls.
            let victim = self.tags[base + w];
            debug_assert!(victim.is_some(), "full set has a valid tag in every way");
            if let Some(victim) = victim {
                self.policy.on_evict(w, victim, &ctx);
                if let Some(e) = &mut self.efficiency {
                    e.on_evict(set, w);
                }
                self.stats.evictions += 1;
            }
            (w, victim)
        };
        self.tags[base + way] = Some(block);
        self.policy.on_fill(way, &ctx);
        if let Some(e) = &mut self.efficiency {
            e.on_fill(set, way);
        }
        (AccessResult::Miss { evicted }, Some(base + way))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Lru;

    fn small() -> Cache<Lru> {
        let cfg = CacheConfig::with_sets(2, 2, 64).unwrap();
        Cache::new(cfg, Lru::new(cfg))
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        assert_eq!(c.access(0x1000, 0), AccessResult::Miss { evicted: None });
        assert_eq!(c.access(0x1000, 0), AccessResult::Hit);
        assert_eq!(c.access(0x1004, 0), AccessResult::Hit, "same block");
        let s = c.stats();
        assert_eq!((s.accesses, s.hits, s.misses), (3, 2, 1));
    }

    #[test]
    fn fills_invalid_ways_before_evicting() {
        let mut c = small();
        // Set 0 blocks: 0x000, 0x100 (sets=2, block=64 → set = (a/64)%2).
        c.access(0x000, 0);
        c.access(0x100, 0);
        assert_eq!(c.valid_frames(), 2);
        assert_eq!(c.stats().evictions, 0);
        // Third distinct block in set 0 must evict.
        let r = c.access(0x200, 0);
        assert_eq!(
            r,
            AccessResult::Miss {
                evicted: Some(0x000)
            }
        );
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn contains_is_side_effect_free() {
        let mut c = small();
        c.access(0x1000, 0);
        let before = c.stats();
        assert!(c.contains(0x1000));
        assert!(c.contains(0x103f));
        assert!(!c.contains(0x2000));
        assert_eq!(c.stats(), before);
    }

    #[test]
    fn reset_stats_preserves_contents() {
        let mut c = small();
        c.access(0x1000, 0);
        c.reset_stats();
        assert_eq!(c.stats(), CacheStats::default());
        assert!(c.access(0x1000, 0).is_hit(), "contents survive reset");
    }

    #[test]
    fn miss_ratio() {
        let mut s = CacheStats::default();
        assert!(s.miss_ratio().abs() < f64::EPSILON);
        s.accesses = 4;
        s.misses = 1;
        assert!((s.miss_ratio() - 0.25).abs() < 1e-12);
    }
}
