//! Static Re-reference Interval Prediction (Jaleel et al., ISCA 2010).

#![forbid(unsafe_code)]

use super::{AccessContext, ReplacementPolicy};
use crate::CacheConfig;

/// SRRIP with hit-priority (SRRIP-HP), the variant the paper compares
/// against.
///
/// Each frame carries an M-bit re-reference prediction value (RRPV).
/// Blocks are inserted with a "long" re-reference prediction
/// (`2^M - 2`), promoted to "near-immediate" (0) on a hit, and the victim
/// is any frame at "distant" (`2^M - 1`), aging the whole set when none
/// exists.
#[derive(Debug, Clone)]
pub struct Srrip {
    ways: usize,
    max_rrpv: u8,
    rrpv: Vec<u8>,
}

impl Srrip {
    /// SRRIP with the standard 2-bit RRPV.
    pub fn new(cfg: CacheConfig) -> Srrip {
        Srrip::with_bits(cfg, 2)
    }

    /// SRRIP with an `m`-bit RRPV (`1 ..= 7`).
    ///
    /// # Panics
    ///
    /// Panics if `m` is 0 or greater than 7.
    pub fn with_bits(cfg: CacheConfig, m: u32) -> Srrip {
        assert!((1..=7).contains(&m), "RRPV width must be 1..=7, got {m}");
        let max_rrpv = (1u8 << m) - 1;
        Srrip {
            ways: cfg.ways() as usize,
            max_rrpv,
            rrpv: vec![max_rrpv; cfg.frames()],
        }
    }

    /// Insertion RRPV ("long" re-reference interval).
    fn insert_rrpv(&self) -> u8 {
        self.max_rrpv - 1
    }
}

impl ReplacementPolicy for Srrip {
    fn on_hit(&mut self, way: usize, ctx: &AccessContext) {
        // Hit priority: promote straight to near-immediate.
        self.rrpv[ctx.set * self.ways + way] = 0;
    }

    fn choose_victim(&mut self, ctx: &AccessContext) -> usize {
        let base = ctx.set * self.ways;
        loop {
            if let Some(w) = (0..self.ways).find(|&w| self.rrpv[base + w] == self.max_rrpv) {
                return w;
            }
            for w in 0..self.ways {
                self.rrpv[base + w] += 1;
            }
        }
    }

    fn on_evict(&mut self, _way: usize, _victim_block: u64, _ctx: &AccessContext) {}

    fn on_fill(&mut self, way: usize, ctx: &AccessContext) {
        self.rrpv[ctx.set * self.ways + way] = self.insert_rrpv();
    }

    fn reset(&mut self) {
        self.rrpv.fill(self.max_rrpv);
    }

    fn name(&self) -> String {
        "SRRIP".to_owned()
    }
}

impl super::PolicyInvariants for Srrip {
    fn check_invariants(&self) -> Result<(), String> {
        if self.ways == 0 {
            return Err("SRRIP configured with zero ways".into());
        }
        match self.rrpv.iter().position(|&r| r > self.max_rrpv) {
            Some(i) => Err(format!(
                "frame {i}: RRPV {} exceeds the configured max {}",
                self.rrpv[i], self.max_rrpv
            )),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AccessResult, Cache};

    #[test]
    fn scan_resistant_unlike_lru() {
        // A reused block survives a one-pass scan under SRRIP: scanned
        // blocks enter at long-rrpv and are evicted before the reused
        // block, which sits at rrpv 0.
        let cfg = CacheConfig::with_sets(1, 4, 64).unwrap();
        let mut c = Cache::new(cfg, Srrip::new(cfg));
        c.access(0x000, 0);
        c.access(0x000, 0); // hot block at RRPV 0
                            // Scan: 6 never-reused blocks through the same set.
        for i in 1..=6u64 {
            c.access(i * 64, 0);
        }
        assert!(
            c.contains(0x000),
            "hot block must survive the scan under SRRIP-HP"
        );
    }

    #[test]
    fn victim_is_distant_rrpv() {
        let cfg = CacheConfig::with_sets(1, 2, 64).unwrap();
        let mut c = Cache::new(cfg, Srrip::new(cfg));
        c.access(0x000, 0);
        c.access(0x000, 0); // rrpv 0
        c.access(0x040, 0); // rrpv 2
                            // Next miss ages set until 0x040 reaches 3 first.
        assert_eq!(
            c.access(0x080, 0),
            AccessResult::Miss {
                evicted: Some(0x040)
            }
        );
    }

    #[test]
    fn aging_terminates() {
        let cfg = CacheConfig::with_sets(1, 8, 64).unwrap();
        let mut c = Cache::new(cfg, Srrip::new(cfg));
        // Fill, promote everyone to rrpv 0, then force a victim.
        for b in 0..8u64 {
            c.access(b * 64, 0);
        }
        for b in 0..8u64 {
            c.access(b * 64, 0);
        }
        assert!(c.access(0x800, 0).is_miss()); // must not loop forever
    }

    #[test]
    #[should_panic(expected = "RRPV width")]
    fn zero_bit_rrpv_rejected() {
        let cfg = CacheConfig::with_sets(1, 2, 64).unwrap();
        let _ = Srrip::with_bits(cfg, 0);
    }

    #[test]
    fn three_bit_variant_inserts_long() {
        let cfg = CacheConfig::with_sets(1, 2, 64).unwrap();
        let s = Srrip::with_bits(cfg, 3);
        assert_eq!(s.max_rrpv, 7);
        assert_eq!(s.insert_rrpv(), 6);
    }
}
