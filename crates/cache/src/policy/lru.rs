//! Least-recently-used replacement — the paper's baseline.

#![forbid(unsafe_code)]

use super::{AccessContext, ReplacementPolicy};
use crate::CacheConfig;

/// True LRU via per-frame virtual timestamps.
///
/// Behaviourally identical to the 3-bit LRU-stack encoding hardware uses
/// for 8 ways; timestamps keep the implementation simple and exact at any
/// associativity.
#[derive(Debug, Clone)]
pub struct Lru {
    ways: usize,
    /// Last-touch time per frame, `sets × ways`.
    stamps: Vec<u64>,
    clock: u64,
}

impl Lru {
    /// Create LRU state for the given geometry.
    pub fn new(cfg: CacheConfig) -> Lru {
        Lru {
            ways: cfg.ways() as usize,
            stamps: vec![0; cfg.frames()],
            clock: 0,
        }
    }

    fn touch(&mut self, set: usize, way: usize) {
        self.clock += 1;
        self.stamps[set * self.ways + way] = self.clock;
    }
}

impl ReplacementPolicy for Lru {
    fn on_hit(&mut self, way: usize, ctx: &AccessContext) {
        self.touch(ctx.set, way);
    }

    fn choose_victim(&mut self, ctx: &AccessContext) -> usize {
        let base = ctx.set * self.ways;
        (0..self.ways)
            .min_by_key(|&w| self.stamps[base + w])
            .unwrap_or(0) // ways >= 1 by construction; hot path stays panic-free
    }

    fn on_evict(&mut self, _way: usize, _victim_block: u64, _ctx: &AccessContext) {}

    fn on_fill(&mut self, way: usize, ctx: &AccessContext) {
        self.touch(ctx.set, way);
    }

    fn reset(&mut self) {
        self.stamps.fill(0);
        self.clock = 0;
    }

    fn name(&self) -> String {
        "LRU".to_owned()
    }
}

impl super::PolicyInvariants for Lru {
    fn check_invariants(&self) -> Result<(), String> {
        // The stamp ordering within each set must be a permutation of the
        // ways (the LRU stack property).
        super::check_lru_stack(&self.stamps, self.ways, self.clock)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AccessResult, Cache};

    #[test]
    fn evicts_least_recently_used() {
        let cfg = CacheConfig::with_sets(1, 4, 64).unwrap();
        let mut c = Cache::new(cfg, Lru::new(cfg));
        for b in [0x000u64, 0x040, 0x080, 0x0c0] {
            c.access(b, 0);
        }
        // Touch 0x000 so 0x040 becomes LRU.
        c.access(0x000, 0);
        let r = c.access(0x100, 0);
        assert_eq!(
            r,
            AccessResult::Miss {
                evicted: Some(0x040)
            }
        );
    }

    #[test]
    fn lru_order_follows_hits() {
        let cfg = CacheConfig::with_sets(1, 2, 64).unwrap();
        let mut c = Cache::new(cfg, Lru::new(cfg));
        c.access(0x000, 0);
        c.access(0x040, 0);
        c.access(0x000, 0); // MRU = 0x000
        assert_eq!(
            c.access(0x080, 0),
            AccessResult::Miss {
                evicted: Some(0x040)
            }
        );
        assert!(c.contains(0x000));
    }

    #[test]
    fn sets_are_independent() {
        let cfg = CacheConfig::with_sets(2, 1, 64).unwrap();
        let mut c = Cache::new(cfg, Lru::new(cfg));
        c.access(0x000, 0); // set 0
        c.access(0x040, 0); // set 1
        assert!(c.contains(0x000) && c.contains(0x040));
        // Evict in set 0 only.
        c.access(0x080, 0);
        assert!(!c.contains(0x000));
        assert!(c.contains(0x040));
    }
}
