//! Random replacement.

#![forbid(unsafe_code)]

use super::{AccessContext, ReplacementPolicy};
use crate::CacheConfig;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Uniform random victim selection, seeded for reproducibility.
#[derive(Debug, Clone)]
pub struct RandomPolicy {
    ways: usize,
    /// Construction seed, kept so `reset` can restart the stream exactly.
    seed: u64,
    rng: SmallRng,
}

impl RandomPolicy {
    /// Create a random policy with the given seed.
    pub fn new(cfg: CacheConfig, seed: u64) -> RandomPolicy {
        RandomPolicy {
            ways: cfg.ways() as usize,
            seed,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl ReplacementPolicy for RandomPolicy {
    fn on_hit(&mut self, _way: usize, _ctx: &AccessContext) {}

    fn choose_victim(&mut self, _ctx: &AccessContext) -> usize {
        self.rng.gen_range(0..self.ways)
    }

    fn on_evict(&mut self, _way: usize, _victim_block: u64, _ctx: &AccessContext) {}

    fn on_fill(&mut self, _way: usize, _ctx: &AccessContext) {}

    fn reset(&mut self) {
        self.rng = SmallRng::seed_from_u64(self.seed);
    }

    fn name(&self) -> String {
        "Random".to_owned()
    }
}

impl super::PolicyInvariants for RandomPolicy {
    fn check_invariants(&self) -> Result<(), String> {
        if self.ways == 0 {
            Err("random policy configured with zero ways".into())
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cache;

    #[test]
    fn victims_are_in_range_and_reproducible() {
        let cfg = CacheConfig::with_sets(1, 8, 64).unwrap();
        let run = |seed| {
            let mut c = Cache::new(cfg, RandomPolicy::new(cfg, seed));
            let mut evictions = Vec::new();
            for i in 0..64u64 {
                if let crate::AccessResult::Miss { evicted: Some(v) } = c.access(i * 64, 0) {
                    evictions.push(v);
                }
            }
            evictions
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b, "same seed, same choices");
        assert!(!a.is_empty());
    }

    #[test]
    fn covers_multiple_ways_over_time() {
        let cfg = CacheConfig::with_sets(1, 4, 64).unwrap();
        let mut c = Cache::new(cfg, RandomPolicy::new(cfg, 3));
        let mut victims = std::collections::HashSet::new();
        for i in 0..200u64 {
            if let crate::AccessResult::Miss { evicted: Some(v) } = c.access(i * 64, 0) {
                victims.insert(v % (4 * 64) / 64); // crude way diversity proxy
            }
        }
        assert!(victims.len() > 1);
    }
}
