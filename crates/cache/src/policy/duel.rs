//! Generalized set-dueling meta-policy: N candidate policies race on
//! disjoint leader sets, follower sets adopt the current winner.
//!
//! [`Drrip`](super::Drrip) hardwires the classic two-way duel (SRRIP vs
//! BRRIP insertion) inside one policy. [`DuelSelect`] lifts the same
//! mechanism one level up: the candidates are *whole replacement
//! policies* — GHRP, SRRIP, SDBP, or any other [`ReplacementPolicy`] —
//! each maintaining full metadata over every set. Every set is either a
//! *leader* pinned to one candidate (that candidate makes all
//! replacement decisions there, and its demand misses train that
//! candidate's PSEL tally) or a *follower* steered to whichever
//! candidate currently tallies the fewest leader-set misses.
//!
//! Two selection modes share the structure:
//!
//! * **continuous** (`window == 0`): the winner is re-derived from the
//!   saturating miss tallies after every leader-set miss, with
//!   normalize-on-saturation halving preserving relative order — the
//!   N-way generalization of DRRIP's single up/down PSEL counter.
//! * **phase-adaptive** (`window > 0`): the winner is committed only at
//!   access-window boundaries (the same fixed-interval windowing notion
//!   the `fe-trace` signature/SimPoint pipeline uses, counted here in
//!   demand accesses since replacement policies do not observe
//!   instruction retirement), and each window measures afresh — so a
//!   phase change shows up within one window instead of having to
//!   out-vote the accumulated history.
//!
//! The PSEL tallies are **intentionally sticky across
//! [`reset`](ReplacementPolicy::reset)**: a deployed frontend that
//! replays trace after trace keeps its learned winner, which is the
//! whole production-adaptivity point. Engine lane arenas that need
//! bit-identical cold starts call [`DuelSelect::cold_restart`] instead
//! (see `fe-frontend`'s `EngineArena`).
//!
//! With a single candidate the meta-policy is provably transparent:
//! every decision comes from candidate 0 regardless of the tallies, so
//! `duel(p)` is bit-identical to static `p` (pinned by the engine
//! equivalence proptests).

#![forbid(unsafe_code)]

use super::{AccessContext, PolicyInvariants, ReplacementPolicy};
use crate::CacheConfig;

/// Bits per candidate PSEL miss tally (the saturating counter width).
/// budget-key: `duel.psel_bits`
pub const DUEL_PSEL_BITS: u32 = 10;

/// Saturation ceiling of one PSEL tally.
pub const DUEL_PSEL_MAX: u32 = (1 << DUEL_PSEL_BITS) - 1;

/// Hardware design point: at most this many candidates duel at once
/// (bounds the PSEL register file and the leader-role decode width).
/// budget-key: `duel.max_candidates`
pub const MAX_DUEL_CANDIDATES: usize = 4;

/// Bits of the phase-window access counter.
/// budget-key: `duel.window_bits`
pub const DUEL_WINDOW_BITS: u32 = 16;

/// Default phase-adaptive re-decision window, in demand accesses.
pub const DUEL_DEFAULT_WINDOW: u32 = 8192;

/// Role marker for sets not pinned to any candidate.
const ROLE_FOLLOWER: u8 = u8::MAX;

/// Selection-mode configuration for [`DuelSelect`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DuelConfig {
    /// `0`: continuous set-dueling. `> 0`: phase-adaptive — commit the
    /// winner every `window` demand accesses, measuring each window
    /// afresh.
    pub window: u32,
}

impl DuelConfig {
    /// Continuous set-dueling (DRRIP-style, re-decided per miss).
    pub fn continuous() -> DuelConfig {
        DuelConfig { window: 0 }
    }

    /// Phase-adaptive selection committing every `window` accesses
    /// (`0` is coerced to [`DUEL_DEFAULT_WINDOW`]).
    pub fn phase_adaptive(window: u32) -> DuelConfig {
        DuelConfig {
            window: if window == 0 {
                DUEL_DEFAULT_WINDOW
            } else {
                window
            },
        }
    }
}

/// The dueling meta-policy. See the module docs for the mechanism.
#[derive(Debug, Clone)]
pub struct DuelSelect<P> {
    /// The racing candidate policies, each full-state over all sets.
    candidates: Vec<P>,
    /// Per-set role: candidate index for leaders, [`ROLE_FOLLOWER`]
    /// otherwise. Geometry-derived; survives every kind of reset.
    roles: Vec<u8>,
    /// Per-candidate saturating leader-set miss tallies (the PSEL
    /// register file). Intentionally sticky across `reset()`.
    tallies: Vec<u32>,
    /// The candidate follower sets currently obey.
    winner: usize,
    /// Phase window length in demand accesses (`0` = continuous).
    window: u32,
    /// Demand accesses since the last window boundary.
    since_boundary: u32,
}

/// Phase-adaptive alias: a [`DuelSelect`] built with
/// [`DuelConfig::phase_adaptive`]; the type is identical, only the
/// re-decision cadence differs.
pub type PhaseAdaptive<P> = DuelSelect<P>;

/// Index of the smallest tally (ties break toward the lower index).
fn argmin(tallies: &[u32]) -> usize {
    let mut best = 0;
    for (i, &t) in tallies.iter().enumerate() {
        if t < tallies[best] {
            best = i;
        }
    }
    best
}

impl<P: ReplacementPolicy> DuelSelect<P> {
    /// Build the meta-policy for `cfg`'s geometry over `candidates`.
    ///
    /// Leader sets are interleaved through the index space DRRIP-style:
    /// `min(32, sets / (4 * n))` (at least one) per candidate, strided so
    /// consecutive leader groups rotate through the candidates. With
    /// fewer sets than candidates the surplus candidates get no leader
    /// and can never be measured — [`PolicyInvariants`] reports that as
    /// a construction error in validating builds.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty (a selector with nothing to
    /// select) or holds more than [`MAX_DUEL_CANDIDATES`] policies (the
    /// audited hardware design point): both are configuration bugs,
    /// caught at construction rather than surfacing as a wrong victim
    /// mid-simulation.
    pub fn new(cfg: CacheConfig, duel: DuelConfig, candidates: Vec<P>) -> DuelSelect<P> {
        assert!(
            !candidates.is_empty(),
            "DuelSelect needs at least one candidate policy"
        );
        assert!(
            candidates.len() <= MAX_DUEL_CANDIDATES,
            "DuelSelect supports at most {MAX_DUEL_CANDIDATES} candidates, got {}",
            candidates.len()
        );
        let sets = cfg.sets() as usize;
        let n = candidates.len();
        let leaders_per = (sets / (4 * n)).clamp(1, 32);
        let stride = (sets / (leaders_per * n)).max(1);
        let mut roles = vec![ROLE_FOLLOWER; sets];
        for i in 0..leaders_per {
            let mut role: u8 = 0;
            for c in 0..n {
                let s = (i * n + c) * stride;
                if s < sets && roles[s] == ROLE_FOLLOWER {
                    roles[s] = role;
                }
                role = role.saturating_add(1);
            }
        }
        DuelSelect {
            tallies: vec![0; n],
            candidates,
            roles,
            winner: 0,
            window: duel.window,
            since_boundary: 0,
        }
    }

    /// The candidate that owns decisions for `set`.
    fn owner(&self, set: usize) -> usize {
        match self.roles[set] {
            ROLE_FOLLOWER => self.winner,
            r => usize::from(r),
        }
    }

    /// The committed winner (what follower sets currently run).
    pub fn current_winner(&self) -> usize {
        self.winner
    }

    /// Per-candidate PSEL miss tallies, in candidate order.
    pub fn psel_tallies(&self) -> &[u32] {
        &self.tallies
    }

    /// The racing candidates, in construction order.
    pub fn candidates(&self) -> &[P] {
        &self.candidates
    }

    /// Number of leader sets pinned to candidate `i`.
    pub fn leader_sets_of(&self, i: usize) -> usize {
        self.roles
            .iter()
            .filter(|&&r| r != ROLE_FOLLOWER && usize::from(r) == i)
            .count()
    }

    /// Restore to the freshly-constructed state *including* the sticky
    /// PSEL tallies and winner — the bit-identical cold start that
    /// [`ReplacementPolicy::reset`] deliberately does not provide for
    /// this type. Engine lane arenas call this between traces so reuse
    /// order can never show through in results.
    pub fn cold_restart(&mut self) {
        self.reset();
        self.tallies.fill(0);
        self.winner = 0;
    }

    /// Record a demand miss in a leader set and update the winner per
    /// the selection mode.
    fn train(&mut self, set: usize) {
        let role = self.roles[set];
        if role == ROLE_FOLLOWER {
            return;
        }
        let r = usize::from(role);
        self.tallies[r] = (self.tallies[r] + 1).min(DUEL_PSEL_MAX);
        if self.window == 0 {
            // Continuous mode: normalize on saturation (halving keeps
            // the relative order) and re-derive the winner immediately.
            if self.tallies[r] >= DUEL_PSEL_MAX {
                for t in &mut self.tallies {
                    *t /= 2;
                }
            }
            self.winner = argmin(&self.tallies);
        }
    }
}

impl<P: ReplacementPolicy> ReplacementPolicy for DuelSelect<P> {
    fn on_access(&mut self, ctx: &AccessContext) {
        for c in &mut self.candidates {
            c.on_access(ctx);
        }
        if self.window > 0 {
            self.since_boundary += 1;
            if self.since_boundary >= self.window {
                // Phase boundary: commit this window's measurement and
                // start the next one from zero.
                self.since_boundary = 0;
                self.winner = argmin(&self.tallies);
                self.tallies.fill(0);
            }
        }
    }

    fn on_hit(&mut self, way: usize, ctx: &AccessContext) {
        for c in &mut self.candidates {
            c.on_hit(way, ctx);
        }
    }

    fn should_bypass(&mut self, ctx: &AccessContext) -> bool {
        // Called on every demand miss, before the fill/bypass split —
        // the one place that sees all leader-set misses (prefetch fills
        // skip it and correctly do not train the duel).
        self.train(ctx.set);
        let owner = self.owner(ctx.set);
        // Every candidate sees the miss (keeping its internal protocol
        // state advancing); only the owner's verdict is obeyed.
        let mut verdict = false;
        for (i, c) in self.candidates.iter_mut().enumerate() {
            let v = c.should_bypass(ctx);
            if i == owner {
                verdict = v;
            }
        }
        verdict
    }

    fn choose_victim(&mut self, ctx: &AccessContext) -> usize {
        let owner = self.owner(ctx.set);
        self.candidates[owner].choose_victim(ctx)
    }

    fn on_evict(&mut self, way: usize, victim_block: u64, ctx: &AccessContext) {
        for c in &mut self.candidates {
            c.on_evict(way, victim_block, ctx);
        }
    }

    fn on_fill(&mut self, way: usize, ctx: &AccessContext) {
        for c in &mut self.candidates {
            c.on_fill(way, ctx);
        }
    }

    // lint:allow(reset-complete): `tallies` and `winner` are the set-dueling PSEL state, deliberately sticky across traces so a long-running deployment keeps its learned winner; arenas needing a bit-identical cold start call `cold_restart` instead
    fn reset(&mut self) {
        for c in &mut self.candidates {
            c.reset();
        }
        self.since_boundary = 0;
    }

    fn name(&self) -> String {
        let names: Vec<String> = self
            .candidates
            .iter()
            .map(ReplacementPolicy::name)
            .collect();
        if self.window == 0 {
            format!("Duel({})", names.join(","))
        } else {
            format!("Phase({};window={})", names.join(","), self.window)
        }
    }
}

impl<P: ReplacementPolicy + PolicyInvariants> PolicyInvariants for DuelSelect<P> {
    fn check_invariants(&self) -> Result<(), String> {
        let n = self.candidates.len();
        if n == 0 {
            return Err("duel has no candidate policies".into());
        }
        // PSEL bounds.
        if let Some(i) = self.tallies.iter().position(|&t| t > DUEL_PSEL_MAX) {
            return Err(format!(
                "candidate {i}: PSEL tally {} exceeds the {DUEL_PSEL_BITS}-bit ceiling {DUEL_PSEL_MAX}",
                self.tallies[i]
            ));
        }
        if self.tallies.len() != n {
            return Err(format!(
                "{} PSEL tallies for {n} candidates",
                self.tallies.len()
            ));
        }
        // Leader-set disjointness: one role per set by representation;
        // every leader role must name a real candidate, and every
        // candidate must own at least one leader to be measurable.
        for (s, &r) in self.roles.iter().enumerate() {
            if r != ROLE_FOLLOWER && usize::from(r) >= n {
                return Err(format!("set {s}: leader role {r} names no candidate"));
            }
        }
        for c in 0..n {
            if self.leader_sets_of(c) == 0 {
                return Err(format!(
                    "candidate {c} has no leader set — it can never win"
                ));
            }
        }
        // Follower-decision consistency: the committed winner is a real
        // candidate, and in continuous mode it minimizes the tallies
        // (phase mode may lag by design until the next boundary).
        if self.winner >= n {
            return Err(format!("winner {} names no candidate", self.winner));
        }
        if self.window == 0 {
            let min = self.tallies.iter().copied().min().unwrap_or(0);
            if self.tallies[self.winner] != min {
                return Err(format!(
                    "follower steering inconsistent: winner {} tallies {} but the minimum is {min}",
                    self.winner, self.tallies[self.winner]
                ));
            }
        }
        if self.window > 0 && self.since_boundary >= self.window {
            return Err(format!(
                "window counter {} at or past the {}-access boundary",
                self.since_boundary, self.window
            ));
        }
        for (i, c) in self.candidates.iter().enumerate() {
            if let Err(e) = c.check_invariants() {
                return Err(format!("candidate {i}: {e}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Lru, Srrip, ValidatingPolicy};
    use crate::Cache;

    fn cfg(sets: u32) -> CacheConfig {
        CacheConfig::with_sets(sets, 4, 64).unwrap()
    }

    fn duel2(sets: u32, window: u32) -> DuelSelect<Srrip> {
        let c = cfg(sets);
        DuelSelect::new(c, DuelConfig { window }, vec![Srrip::new(c), Srrip::new(c)])
    }

    #[test]
    fn leader_sets_are_disjoint_and_cover_every_candidate() {
        let c = cfg(128);
        let d = DuelSelect::new(
            c,
            DuelConfig::continuous(),
            vec![Srrip::new(c), Srrip::new(c), Srrip::new(c)],
        );
        for i in 0..3 {
            assert!(d.leader_sets_of(i) >= 1, "candidate {i} unmeasured");
        }
        assert_eq!(d.leader_sets_of(0), d.leader_sets_of(1));
        assert_eq!(d.leader_sets_of(1), d.leader_sets_of(2));
        // Disjoint by representation: roles sum == total leaders.
        let leaders: usize = (0..3).map(|i| d.leader_sets_of(i)).sum();
        assert_eq!(
            leaders,
            d.roles.iter().filter(|&&r| r != ROLE_FOLLOWER).count()
        );
        d.check_invariants().unwrap();
    }

    #[test]
    fn single_candidate_duel_matches_static_policy() {
        let c = cfg(16);
        let mut duel = Cache::new(
            c,
            DuelSelect::new(c, DuelConfig::continuous(), vec![Lru::new(c)]),
        );
        let mut plain = Cache::new(c, Lru::new(c));
        // Deterministic mixed pattern with reuse and thrash.
        for i in 0..4000u64 {
            let addr = (i * 2_654_435_761) % (1 << 14);
            assert_eq!(duel.access(addr, addr), plain.access(addr, addr), "at {i}");
        }
        assert_eq!(duel.stats().misses, plain.stats().misses);
    }

    #[test]
    fn leader_misses_move_the_winner_in_continuous_mode() {
        let mut d = duel2(16, 0);
        let leader1 = d.roles.iter().position(|&r| r == 1).unwrap();
        assert_eq!(d.current_winner(), 0);
        // Misses in candidate 0's leader set push the winner to 1? No —
        // misses in candidate *0*'s leaders tally against 0.
        let leader0 = d.roles.iter().position(|&r| r == 0).unwrap();
        let ctx = AccessContext {
            addr: 0,
            block_addr: 0,
            set: leader0,
        };
        d.should_bypass(&ctx);
        assert_eq!(d.current_winner(), 1, "candidate 0 missed; 1 leads");
        // Two misses against candidate 1 swing it back.
        let ctx1 = AccessContext {
            addr: 0,
            block_addr: 0,
            set: leader1,
        };
        d.should_bypass(&ctx1);
        d.should_bypass(&ctx1);
        assert_eq!(d.current_winner(), 0);
        d.check_invariants().unwrap();
    }

    #[test]
    fn phase_mode_commits_only_at_window_boundaries() {
        let mut d = duel2(16, 8);
        let leader0 = d.roles.iter().position(|&r| r == 0).unwrap();
        let ctx = AccessContext {
            addr: 0,
            block_addr: 0,
            set: leader0,
        };
        d.should_bypass(&ctx);
        assert_eq!(d.current_winner(), 0, "no commit before the boundary");
        for _ in 0..8 {
            d.on_access(&ctx);
        }
        assert_eq!(d.current_winner(), 1, "boundary commits the measurement");
        assert_eq!(d.psel_tallies(), &[0, 0], "window measures afresh");
        d.check_invariants().unwrap();
    }

    #[test]
    fn tallies_saturate_and_normalize() {
        let mut d = duel2(16, 0);
        let leader0 = d.roles.iter().position(|&r| r == 0).unwrap();
        let ctx = AccessContext {
            addr: 0,
            block_addr: 0,
            set: leader0,
        };
        for _ in 0..5000 {
            d.should_bypass(&ctx);
            assert!(d.psel_tallies().iter().all(|&t| t <= DUEL_PSEL_MAX));
        }
        d.check_invariants().unwrap();
    }

    #[test]
    fn reset_is_sticky_but_cold_restart_is_not() {
        let mut d = duel2(16, 0);
        let leader0 = d.roles.iter().position(|&r| r == 0).unwrap();
        let ctx = AccessContext {
            addr: 0,
            block_addr: 0,
            set: leader0,
        };
        d.should_bypass(&ctx);
        assert_eq!(d.current_winner(), 1);
        d.reset();
        assert_eq!(d.current_winner(), 1, "PSEL survives reset");
        assert!(d.psel_tallies().iter().any(|&t| t > 0));
        d.cold_restart();
        assert_eq!(d.current_winner(), 0);
        assert!(d.psel_tallies().iter().all(|&t| t == 0));
        d.check_invariants().unwrap();
    }

    #[test]
    fn validating_wrapper_accepts_a_healthy_duel() {
        let c = cfg(64);
        let inner = DuelSelect::new(
            c,
            DuelConfig::phase_adaptive(64),
            vec![Srrip::new(c), Srrip::new(c)],
        );
        let mut cache = Cache::new(c, ValidatingPolicy::new(inner));
        for i in 0..20_000u64 {
            let addr = (i * 7919) % (1 << 15);
            cache.access(addr, addr);
        }
        assert!(cache.stats().accesses == 20_000);
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn empty_candidate_list_is_rejected() {
        let c = cfg(16);
        let _ = DuelSelect::<Lru>::new(c, DuelConfig::continuous(), Vec::new());
    }
}
