//! Debug-mode invariant validation for replacement policies.
//!
//! [`ValidatingPolicy`] wraps any policy that implements
//! [`PolicyInvariants`] and re-checks the policy's internal invariants
//! after **every** trait callback. The checks run only in debug builds
//! (`debug_assertions`), so release-mode simulation speed is unaffected;
//! the property-test suites (`tests/properties.rs`,
//! `tests/btb_properties.rs`) drive every policy through the wrapper so
//! any state corruption trips immediately, at the access that caused it,
//! instead of surfacing later as a silently wrong MPKI.

#![forbid(unsafe_code)]

use super::{AccessContext, ReplacementPolicy};

/// Internal-consistency checks for a replacement policy.
///
/// Implementations report the *first* violated invariant as a
/// human-readable description. The contract per policy family:
///
/// * recency policies (LRU/FIFO/GHRP): the per-set recency stamps encode
///   a permutation of the ways (no two ways share a stamp);
/// * RRIP policies: every RRPV is within `0 ..= max_rrpv`, PSEL within
///   `0 ..= psel_max`;
/// * GHRP: every table counter is within `[0, counter_max]`, skewed
///   table indices stay in bounds, and misprediction recovery restores
///   exactly the retired history (paper §III.F).
pub trait PolicyInvariants {
    /// Check all internal invariants; `Err` describes the first
    /// violation found.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated invariant.
    fn check_invariants(&self) -> Result<(), String> {
        Ok(())
    }
}

/// Shared helper: per-set recency stamps must act as an LRU stack — i.e.
/// the stamp ordering within each set is a permutation of the ways, which
/// for monotone-clock stamps means no two *non-zero* stamps in a set are
/// equal (zero marks never-touched frames) and no stamp exceeds `clock`.
///
/// # Errors
///
/// Returns a description naming the offending set.
pub fn check_lru_stack(stamps: &[u64], ways: usize, clock: u64) -> Result<(), String> {
    if ways == 0 {
        return Err("policy configured with zero ways".into());
    }
    for (set, frame) in stamps.chunks(ways).enumerate() {
        for (w, &s) in frame.iter().enumerate() {
            if s > clock {
                return Err(format!(
                    "set {set} way {w}: stamp {s} is ahead of the clock {clock}"
                ));
            }
            if s != 0 && frame[..w].contains(&s) {
                return Err(format!(
                    "set {set}: duplicate stamp {s}; recency order is not a \
                     permutation of the ways"
                ));
            }
        }
    }
    Ok(())
}

/// A policy wrapper that validates the inner policy's invariants after
/// every callback (debug builds only).
///
/// Transparent to the simulation: all decisions, statistics and the
/// [`ReplacementPolicy::name`] come from the inner policy.
#[derive(Debug, Clone)]
pub struct ValidatingPolicy<P> {
    inner: P,
}

impl<P: PolicyInvariants> ValidatingPolicy<P> {
    /// Wrap `inner`, validating it once up front so construction bugs are
    /// caught before the first access.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the freshly constructed policy already
    /// violates an invariant.
    pub fn new(inner: P) -> ValidatingPolicy<P> {
        let wrapped = ValidatingPolicy { inner };
        wrapped.check("construction");
        wrapped
    }

    /// The wrapped policy.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Mutable access to the wrapped policy.
    pub fn inner_mut(&mut self) -> &mut P {
        &mut self.inner
    }

    /// Unwrap, returning the inner policy.
    pub fn into_inner(self) -> P {
        self.inner
    }

    fn check(&self, op: &str) {
        if cfg!(debug_assertions) {
            if let Err(e) = self.inner.check_invariants() {
                panic!("policy invariant violated after {op}: {e}");
            }
        }
    }
}

impl<P: ReplacementPolicy + PolicyInvariants> ReplacementPolicy for ValidatingPolicy<P> {
    fn on_access(&mut self, ctx: &AccessContext) {
        self.inner.on_access(ctx);
        self.check("on_access");
    }

    fn on_hit(&mut self, way: usize, ctx: &AccessContext) {
        self.inner.on_hit(way, ctx);
        self.check("on_hit");
    }

    fn should_bypass(&mut self, ctx: &AccessContext) -> bool {
        let r = self.inner.should_bypass(ctx);
        self.check("should_bypass");
        r
    }

    fn choose_victim(&mut self, ctx: &AccessContext) -> usize {
        let w = self.inner.choose_victim(ctx);
        self.check("choose_victim");
        w
    }

    fn on_evict(&mut self, way: usize, victim_block: u64, ctx: &AccessContext) {
        self.inner.on_evict(way, victim_block, ctx);
        self.check("on_evict");
    }

    fn on_fill(&mut self, way: usize, ctx: &AccessContext) {
        self.inner.on_fill(way, ctx);
        self.check("on_fill");
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.check("reset");
    }

    fn name(&self) -> String {
        self.inner.name()
    }
}

impl<P: PolicyInvariants> PolicyInvariants for ValidatingPolicy<P> {
    fn check_invariants(&self) -> Result<(), String> {
        self.inner.check_invariants()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cache, CacheConfig};

    /// A policy whose state can be corrupted on demand.
    struct Corruptible {
        broken: bool,
    }

    impl ReplacementPolicy for Corruptible {
        fn on_hit(&mut self, _way: usize, _ctx: &AccessContext) {}
        fn choose_victim(&mut self, _ctx: &AccessContext) -> usize {
            0
        }
        fn on_evict(&mut self, _way: usize, _victim_block: u64, _ctx: &AccessContext) {}
        fn on_fill(&mut self, _way: usize, _ctx: &AccessContext) {
            self.broken = true;
        }
        fn reset(&mut self) {
            self.broken = false;
        }
        fn name(&self) -> String {
            "Corruptible".to_owned()
        }
    }

    impl PolicyInvariants for Corruptible {
        fn check_invariants(&self) -> Result<(), String> {
            if self.broken {
                Err("state marked broken".into())
            } else {
                Ok(())
            }
        }
    }

    #[test]
    fn healthy_policy_passes_through() {
        let cfg = CacheConfig::with_sets(2, 2, 64).unwrap();
        let mut c = Cache::new(cfg, ValidatingPolicy::new(super::super::Lru::new(cfg)));
        for b in 0..16u64 {
            c.access(b * 64, 0);
        }
        assert_eq!(c.policy().name(), "LRU");
        assert!(c.policy().check_invariants().is_ok());
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "invariant violated"))]
    fn corruption_is_caught_at_the_faulting_callback() {
        let mut p = ValidatingPolicy::new(Corruptible { broken: false });
        let ctx = AccessContext {
            addr: 0,
            block_addr: 0,
            set: 0,
        };
        p.on_fill(0, &ctx);
        // Release builds skip validation; satisfy should_panic vacuously.
        #[allow(clippy::assertions_on_constants)] // cfg!() folds to a constant by design
        {
            assert!(
                cfg!(debug_assertions),
                "invariant violated (release-mode placeholder)"
            );
        }
    }

    #[test]
    fn lru_stack_checker() {
        assert!(check_lru_stack(&[1, 2, 3, 4], 2, 4).is_ok());
        assert!(check_lru_stack(&[0, 0, 0, 0], 4, 0).is_ok());
        let dup = check_lru_stack(&[5, 5], 2, 9);
        assert!(dup.is_err_and(|e| e.contains("duplicate")));
        let ahead = check_lru_stack(&[7, 1], 2, 3);
        assert!(ahead.is_err_and(|e| e.contains("ahead of the clock")));
        assert!(check_lru_stack(&[], 0, 0).is_err());
    }
}
