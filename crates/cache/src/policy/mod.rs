//! Replacement policy interface and baseline policies.
//!
//! The cache core ([`crate::Cache`]) owns tags and validity. Everything
//! else — recency state, prediction metadata, bypass decisions, victim
//! choice — belongs to the policy. Predictive policies (GHRP, SDBP) live in
//! sibling crates and implement the same [`ReplacementPolicy`] trait.

#![forbid(unsafe_code)]

mod belady;
mod drrip;
mod duel;
mod fifo;
mod lru;
mod random;
mod srrip;
mod validate;

pub use belady::BeladyOpt;
pub use drrip::Drrip;
pub use duel::{
    DuelConfig, DuelSelect, PhaseAdaptive, DUEL_DEFAULT_WINDOW, DUEL_PSEL_BITS, DUEL_PSEL_MAX,
    DUEL_WINDOW_BITS, MAX_DUEL_CANDIDATES,
};
pub use fifo::Fifo;
pub use lru::Lru;
pub use random::RandomPolicy;
pub use srrip::Srrip;
pub use validate::{check_lru_stack, PolicyInvariants, ValidatingPolicy};

/// Per-access information handed to the policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessContext {
    /// The full address being accessed (not block-aligned).
    pub addr: u64,
    /// Block-aligned address.
    pub block_addr: u64,
    /// Set index the access maps to.
    pub set: usize,
}

/// A replacement (and bypass) policy for a set-associative structure.
///
/// Call protocol, enforced by [`crate::Cache`]:
///
/// 1. [`on_access`](ReplacementPolicy::on_access) — once per access, before
///    the hit/miss outcome is known. Policies that keep global history
///    (e.g. GHRP's path history) advance it here.
/// 2. On a hit: [`on_hit`](ReplacementPolicy::on_hit).
/// 3. On a miss: [`should_bypass`](ReplacementPolicy::should_bypass); if
///    `true`, nothing else happens. Otherwise, if the set is full,
///    [`choose_victim`](ReplacementPolicy::choose_victim) then
///    [`on_evict`](ReplacementPolicy::on_evict); finally
///    [`on_fill`](ReplacementPolicy::on_fill) for the incoming block.
pub trait ReplacementPolicy {
    /// Advance any global (per-access) state. Called exactly once per
    /// access, before the outcome is known.
    fn on_access(&mut self, _ctx: &AccessContext) {}

    /// The access hit `way` in `ctx.set`.
    fn on_hit(&mut self, way: usize, ctx: &AccessContext);

    /// The access missed; return `true` to skip the fill entirely.
    fn should_bypass(&mut self, _ctx: &AccessContext) -> bool {
        false
    }

    /// The access missed, the set is full: pick the way to evict.
    ///
    /// The returned way must be `< ways`.
    fn choose_victim(&mut self, ctx: &AccessContext) -> usize;

    /// The block in `way` (holding `victim_block`) is being evicted.
    fn on_evict(&mut self, way: usize, victim_block: u64, ctx: &AccessContext);

    /// The incoming block now occupies `way`.
    fn on_fill(&mut self, way: usize, ctx: &AccessContext);

    /// Restore the policy to its freshly-constructed state, reusing its
    /// allocations.
    ///
    /// After `reset` the policy must behave **bit-identically** to one
    /// rebuilt with the same constructor arguments (seeded RNGs restart
    /// from their seed, learned tables clear to their initial values,
    /// recency clocks rewind). Per-worker lane arenas rely on this to
    /// recycle policy state across suite tasks instead of reallocating
    /// it; the scheduler equivalence suite checks the contract.
    ///
    /// State *shared between* policy instances (e.g. the GHRP predictor
    /// behind a `SharedGhrp` handle) is external and must be reset by its
    /// owner; `reset` only restores the instance's own fields.
    fn reset(&mut self);

    /// Short human-readable policy name (used in experiment output).
    fn name(&self) -> String;
}

impl<P: ReplacementPolicy + ?Sized> ReplacementPolicy for Box<P> {
    fn on_access(&mut self, ctx: &AccessContext) {
        (**self).on_access(ctx);
    }
    fn on_hit(&mut self, way: usize, ctx: &AccessContext) {
        (**self).on_hit(way, ctx);
    }
    fn should_bypass(&mut self, ctx: &AccessContext) -> bool {
        (**self).should_bypass(ctx)
    }
    fn choose_victim(&mut self, ctx: &AccessContext) -> usize {
        (**self).choose_victim(ctx)
    }
    fn on_evict(&mut self, way: usize, victim_block: u64, ctx: &AccessContext) {
        (**self).on_evict(way, victim_block, ctx);
    }
    fn on_fill(&mut self, way: usize, ctx: &AccessContext) {
        (**self).on_fill(way, ctx);
    }
    fn reset(&mut self) {
        (**self).reset();
    }
    fn name(&self) -> String {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cache, CacheConfig};

    /// The boxed-policy blanket impl must forward every method.
    #[test]
    fn boxed_policy_works_in_cache() {
        let cfg = CacheConfig::with_sets(4, 2, 64).unwrap();
        let boxed: Box<dyn ReplacementPolicy> = Box::new(Lru::new(cfg));
        let mut cache = Cache::new(cfg, boxed);
        assert!(cache.access(0x0, 0x0).is_miss());
        assert!(cache.access(0x0, 0x0).is_hit());
        assert_eq!(cache.policy().name(), "LRU");
    }
}
