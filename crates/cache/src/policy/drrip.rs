//! Dynamic Re-reference Interval Prediction (DRRIP, Jaleel et al.).
//!
//! DRRIP set-duels SRRIP against BRRIP (bimodal RRIP, which inserts at
//! the distant RRPV most of the time, resisting thrash): a few *leader*
//! sets are pinned to each policy, a saturating `PSEL` counter tallies
//! which leader group misses less, and all *follower* sets adopt the
//! winner. Not part of the paper's comparison set, but the natural
//! upgrade of its SRRIP baseline and a useful extra point for the
//! benchmark harness.

#![forbid(unsafe_code)]

use super::{AccessContext, ReplacementPolicy};
use crate::CacheConfig;

/// Which insertion policy a set is pinned to (or follows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SetRole {
    LeaderSrrip,
    LeaderBrrip,
    Follower,
}

/// DRRIP with 2-bit RRPVs, 32 leader sets per policy (or fewer for small
/// caches), and a 10-bit PSEL.
#[derive(Debug, Clone)]
pub struct Drrip {
    ways: usize,
    max_rrpv: u8,
    rrpv: Vec<u8>,
    roles: Vec<SetRole>,
    /// PSEL > midpoint ⇒ BRRIP is winning (its leaders miss less).
    psel: i32,
    psel_max: i32,
    /// BRRIP inserts distant except one access in `brripsilon`.
    brrip_counter: u32,
}

impl Drrip {
    /// Create DRRIP state for the given geometry.
    pub fn new(cfg: CacheConfig) -> Drrip {
        let sets = cfg.sets() as usize;
        // Interleave leader sets through the index space, up to 32 each.
        let leaders_per_policy = (sets / 4).clamp(1, 32);
        let stride = sets / (leaders_per_policy * 2).max(1);
        let mut roles = vec![SetRole::Follower; sets];
        for i in 0..leaders_per_policy {
            let a = (i * 2) * stride.max(1);
            let b = (i * 2 + 1) * stride.max(1);
            if a < sets {
                roles[a] = SetRole::LeaderSrrip;
            }
            if b < sets {
                roles[b] = SetRole::LeaderBrrip;
            }
        }
        Drrip {
            ways: cfg.ways() as usize,
            max_rrpv: 3,
            rrpv: vec![3; cfg.frames()],
            roles,
            psel: 512,
            psel_max: 1023,
            brrip_counter: 0,
        }
    }

    fn use_brrip(&self, set: usize) -> bool {
        match self.roles[set] {
            SetRole::LeaderSrrip => false,
            SetRole::LeaderBrrip => true,
            SetRole::Follower => self.psel > self.psel_max / 2,
        }
    }
}

impl ReplacementPolicy for Drrip {
    fn on_hit(&mut self, way: usize, ctx: &AccessContext) {
        self.rrpv[ctx.set * self.ways + way] = 0;
    }

    fn choose_victim(&mut self, ctx: &AccessContext) -> usize {
        let base = ctx.set * self.ways;
        loop {
            if let Some(w) = (0..self.ways).find(|&w| self.rrpv[base + w] == self.max_rrpv) {
                return w;
            }
            for w in 0..self.ways {
                self.rrpv[base + w] += 1;
            }
        }
    }

    fn on_evict(&mut self, _way: usize, _victim_block: u64, _ctx: &AccessContext) {}

    fn on_fill(&mut self, way: usize, ctx: &AccessContext) {
        // A miss in a leader set trains PSEL toward the *other* policy.
        match self.roles[ctx.set] {
            SetRole::LeaderSrrip => self.psel = (self.psel + 1).min(self.psel_max),
            SetRole::LeaderBrrip => self.psel = (self.psel - 1).max(0),
            SetRole::Follower => {}
        }
        let brrip = self.use_brrip(ctx.set);
        let rrpv = if brrip {
            // Bimodal: distant except one in 32 fills.
            self.brrip_counter = self.brrip_counter.wrapping_add(1);
            if self.brrip_counter.is_multiple_of(32) {
                self.max_rrpv - 1
            } else {
                self.max_rrpv
            }
        } else {
            self.max_rrpv - 1
        };
        self.rrpv[ctx.set * self.ways + way] = rrpv;
    }

    fn reset(&mut self) {
        // Leader-set roles are geometry-derived and survive the reset.
        self.rrpv.fill(self.max_rrpv);
        self.psel = (self.psel_max + 1) / 2;
        self.brrip_counter = 0;
    }

    fn name(&self) -> String {
        "DRRIP".to_owned()
    }
}

impl super::PolicyInvariants for Drrip {
    fn check_invariants(&self) -> Result<(), String> {
        if let Some(i) = self.rrpv.iter().position(|&r| r > self.max_rrpv) {
            return Err(format!(
                "frame {i}: RRPV {} exceeds the configured max {}",
                self.rrpv[i], self.max_rrpv
            ));
        }
        if self.psel < 0 || self.psel > self.psel_max {
            return Err(format!("PSEL {} outside [0, {}]", self.psel, self.psel_max));
        }
        let srrip = self
            .roles
            .iter()
            .filter(|r| **r == SetRole::LeaderSrrip)
            .count();
        let brrip = self
            .roles
            .iter()
            .filter(|r| **r == SetRole::LeaderBrrip)
            .count();
        if srrip == 0 || brrip == 0 {
            return Err("set dueling needs at least one leader per policy".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cache;

    #[test]
    fn leader_sets_are_assigned_both_policies() {
        let cfg = CacheConfig::with_sets(128, 8, 64).unwrap();
        let d = Drrip::new(cfg);
        let srrip = d
            .roles
            .iter()
            .filter(|r| **r == SetRole::LeaderSrrip)
            .count();
        let brrip = d
            .roles
            .iter()
            .filter(|r| **r == SetRole::LeaderBrrip)
            .count();
        assert!(srrip >= 1 && brrip >= 1);
        assert_eq!(srrip, brrip);
        assert!(srrip <= 32);
    }

    #[test]
    fn thrash_pattern_flips_psel_toward_brrip() {
        // Cyclic pattern over 2x the associativity: SRRIP leader sets keep
        // missing; BRRIP leaders preserve part of the working set. PSEL
        // must move toward BRRIP (up).
        let cfg = CacheConfig::with_sets(16, 4, 64).unwrap();
        let mut c = Cache::new(cfg, Drrip::new(cfg));
        let start = c.policy().psel;
        for round in 0..200 {
            for i in 0..8u64 {
                // 8 blocks per set > 4 ways: pure thrash.
                c.access(i * 16 * 64, round);
            }
        }
        assert!(
            c.policy().psel > start,
            "PSEL {} did not move toward BRRIP",
            c.policy().psel
        );
    }

    #[test]
    fn behaves_sanely_on_hits() {
        let cfg = CacheConfig::with_sets(4, 4, 64).unwrap();
        let mut c = Cache::new(cfg, Drrip::new(cfg));
        c.access(0x0, 0);
        assert!(c.access(0x0, 0).is_hit());
        assert!(c.contains(0x0));
    }

    #[test]
    fn psel_saturates() {
        let cfg = CacheConfig::with_sets(16, 2, 64).unwrap();
        let mut d = Drrip::new(cfg);
        let leader = d
            .roles
            .iter()
            .position(|r| *r == SetRole::LeaderSrrip)
            .unwrap();
        for _ in 0..5000 {
            d.on_fill(
                0,
                &AccessContext {
                    addr: 0,
                    block_addr: 0,
                    set: leader,
                },
            );
        }
        assert!(d.psel <= d.psel_max);
    }
}
