//! Belady's OPT (offline optimal) replacement, for bound studies.
//!
//! Not part of the paper's comparison set; provided as an oracle upper
//! bound so the benchmark harness can report how much of the LRU→OPT gap
//! each policy closes.

#![forbid(unsafe_code)]

use super::{AccessContext, ReplacementPolicy};
use crate::CacheConfig;
use std::collections::HashMap;

/// Sentinel meaning "never used again".
const NEVER: u64 = u64::MAX;

/// Belady's OPT: evict the block whose next use is farthest in the future.
///
/// Requires the exact block-address access sequence up front
/// ([`BeladyOpt::from_trace`]); each subsequent [`crate::Cache::access`]
/// must replay that sequence in order. Violations panic in debug builds.
#[derive(Debug, Clone)]
pub struct BeladyOpt {
    ways: usize,
    /// For access `i`, the index of the next access to the same block.
    next_use: Vec<u64>,
    /// Per frame: next-use index of the resident block (as of its last
    /// access).
    frame_next: Vec<u64>,
    /// Expected block per access position (debug validation).
    sequence: Vec<u64>,
    cursor: usize,
}

impl BeladyOpt {
    /// Precompute next-use chains for `blocks`, the full block-address
    /// sequence the cache will observe.
    pub fn from_trace(cfg: CacheConfig, blocks: &[u64]) -> BeladyOpt {
        let mut next_use = vec![NEVER; blocks.len()];
        let mut last_seen: HashMap<u64, usize> = HashMap::new();
        for (i, &b) in blocks.iter().enumerate().rev() {
            if let Some(&later) = last_seen.get(&b) {
                next_use[i] = later as u64;
            }
            last_seen.insert(b, i);
        }
        BeladyOpt {
            ways: cfg.ways() as usize,
            next_use,
            frame_next: vec![NEVER; cfg.frames()],
            sequence: blocks.to_vec(),
            cursor: 0,
        }
    }

    fn current_next_use(&self) -> u64 {
        self.next_use.get(self.cursor).copied().unwrap_or(NEVER)
    }
}

impl ReplacementPolicy for BeladyOpt {
    fn on_access(&mut self, ctx: &AccessContext) {
        debug_assert!(
            self.cursor < self.sequence.len() && self.sequence[self.cursor] == ctx.block_addr,
            "OPT replay diverged at access {}: expected {:#x}, got {:#x}",
            self.cursor,
            self.sequence.get(self.cursor).copied().unwrap_or(0),
            ctx.block_addr
        );
    }

    fn on_hit(&mut self, way: usize, ctx: &AccessContext) {
        self.frame_next[ctx.set * self.ways + way] = self.current_next_use();
        self.cursor += 1;
    }

    fn should_bypass(&mut self, _ctx: &AccessContext) -> bool {
        false
    }

    fn choose_victim(&mut self, ctx: &AccessContext) -> usize {
        let base = ctx.set * self.ways;
        (0..self.ways)
            .max_by_key(|&w| self.frame_next[base + w])
            .unwrap_or(0) // ways >= 1 by construction; hot path stays panic-free
    }

    fn on_evict(&mut self, _way: usize, _victim_block: u64, _ctx: &AccessContext) {}

    fn on_fill(&mut self, way: usize, ctx: &AccessContext) {
        self.frame_next[ctx.set * self.ways + way] = self.current_next_use();
        self.cursor += 1;
    }

    fn reset(&mut self) {
        // Rewinds to the *start of the same precomputed trace*; replaying
        // a different trace still requires `from_trace`.
        self.frame_next.fill(NEVER);
        self.cursor = 0;
    }

    fn name(&self) -> String {
        "OPT".to_owned()
    }
}

// Belady's OPT carries only the precomputed next-use schedule; the
// default (always-Ok) invariant check makes it wrappable alongside the
// real policies in the property suites.
impl super::PolicyInvariants for BeladyOpt {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cache, CacheStats};

    fn run_opt(blocks: &[u64], sets: u32, ways: u32) -> CacheStats {
        let cfg = CacheConfig::with_sets(sets, ways, 64).unwrap();
        let mut c = Cache::new(cfg, BeladyOpt::from_trace(cfg, blocks));
        for &b in blocks {
            c.access(b, 0);
        }
        c.stats()
    }

    fn run_lru(blocks: &[u64], sets: u32, ways: u32) -> CacheStats {
        let cfg = CacheConfig::with_sets(sets, ways, 64).unwrap();
        let mut c = Cache::new(cfg, crate::policy::Lru::new(cfg));
        for &b in blocks {
            c.access(b, 0);
        }
        c.stats()
    }

    #[test]
    fn opt_beats_lru_on_cyclic_pattern() {
        // Cyclic access over ways+1 blocks: LRU misses everything, OPT
        // keeps most of the set.
        let blocks: Vec<u64> = (0..30).map(|i| (i % 3) * 64).collect();
        let opt = run_opt(&blocks, 1, 2);
        let lru = run_lru(&blocks, 1, 2);
        assert!(lru.misses == 30, "LRU thrashes the cycle");
        // OPT on a cyclic scan of W+1 blocks misses roughly every other
        // access instead of every access.
        assert!(
            opt.misses <= lru.misses / 2 + 2,
            "OPT {} vs LRU {}",
            opt.misses,
            lru.misses
        );
    }

    #[test]
    fn opt_never_worse_than_lru_on_random_traces() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..10 {
            let blocks: Vec<u64> = (0..400).map(|_| rng.gen_range(0..12u64) * 64).collect();
            let opt = run_opt(&blocks, 2, 2);
            let lru = run_lru(&blocks, 2, 2);
            assert!(
                opt.misses <= lru.misses,
                "OPT {} > LRU {}",
                opt.misses,
                lru.misses
            );
        }
    }

    #[test]
    fn next_use_chains_are_correct() {
        let cfg = CacheConfig::with_sets(1, 2, 64).unwrap();
        let blocks = [0x0, 0x40, 0x0, 0x80, 0x40];
        let opt = BeladyOpt::from_trace(cfg, &blocks);
        assert_eq!(opt.next_use[0], 2);
        assert_eq!(opt.next_use[1], 4);
        assert_eq!(opt.next_use[2], NEVER);
        assert_eq!(opt.next_use[3], NEVER);
        assert_eq!(opt.next_use[4], NEVER);
    }

    #[test]
    #[should_panic(expected = "diverged")]
    fn replay_divergence_panics_in_debug() {
        let cfg = CacheConfig::with_sets(1, 2, 64).unwrap();
        let mut c = Cache::new(cfg, BeladyOpt::from_trace(cfg, &[0x0, 0x40]));
        c.access(0x0, 0);
        c.access(0x999 & !63, 0); // not the promised sequence
    }
}
