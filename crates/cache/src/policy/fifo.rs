//! First-in-first-out replacement (Smith & Goodman's early I-cache study).

#![forbid(unsafe_code)]

use super::{AccessContext, ReplacementPolicy};
use crate::CacheConfig;

/// FIFO: evict the block that was *filled* earliest, ignoring hits.
#[derive(Debug, Clone)]
pub struct Fifo {
    ways: usize,
    fill_time: Vec<u64>,
    clock: u64,
}

impl Fifo {
    /// Create FIFO state for the given geometry.
    pub fn new(cfg: CacheConfig) -> Fifo {
        Fifo {
            ways: cfg.ways() as usize,
            fill_time: vec![0; cfg.frames()],
            clock: 0,
        }
    }
}

impl ReplacementPolicy for Fifo {
    fn on_hit(&mut self, _way: usize, _ctx: &AccessContext) {}

    fn choose_victim(&mut self, ctx: &AccessContext) -> usize {
        let base = ctx.set * self.ways;
        (0..self.ways)
            .min_by_key(|&w| self.fill_time[base + w])
            .unwrap_or(0) // ways >= 1 by construction; hot path stays panic-free
    }

    fn on_evict(&mut self, _way: usize, _victim_block: u64, _ctx: &AccessContext) {}

    fn on_fill(&mut self, way: usize, ctx: &AccessContext) {
        self.clock += 1;
        self.fill_time[ctx.set * self.ways + way] = self.clock;
    }

    fn reset(&mut self) {
        self.fill_time.fill(0);
        self.clock = 0;
    }

    fn name(&self) -> String {
        "FIFO".to_owned()
    }
}

impl super::PolicyInvariants for Fifo {
    fn check_invariants(&self) -> Result<(), String> {
        // Fill times are issued from a monotone clock, so the same stack
        // property as LRU applies: per-set fill order is a permutation.
        super::check_lru_stack(&self.fill_time, self.ways, self.clock)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AccessResult, Cache};

    #[test]
    fn hits_do_not_protect_blocks() {
        let cfg = CacheConfig::with_sets(1, 2, 64).unwrap();
        let mut c = Cache::new(cfg, Fifo::new(cfg));
        c.access(0x000, 0);
        c.access(0x040, 0);
        // Hit 0x000 repeatedly; FIFO must still evict it first.
        for _ in 0..5 {
            assert!(c.access(0x000, 0).is_hit());
        }
        assert_eq!(
            c.access(0x080, 0),
            AccessResult::Miss {
                evicted: Some(0x000)
            }
        );
    }

    #[test]
    fn eviction_order_is_fill_order() {
        let cfg = CacheConfig::with_sets(1, 4, 64).unwrap();
        let mut c = Cache::new(cfg, Fifo::new(cfg));
        for b in [0x000u64, 0x040, 0x080, 0x0c0] {
            c.access(b, 0);
        }
        assert_eq!(
            c.access(0x100, 0),
            AccessResult::Miss {
                evicted: Some(0x000)
            }
        );
        assert_eq!(
            c.access(0x140, 0),
            AccessResult::Miss {
                evicted: Some(0x040)
            }
        );
    }
}
