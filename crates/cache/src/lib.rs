//! Set-associative cache framework for front-end simulation.
//!
//! This crate provides the cache substrate that the GHRP paper's evaluation
//! rests on:
//!
//! * [`CacheConfig`] — geometry (sets × ways × block size) and address
//!   slicing.
//! * [`Cache`] — a tag-array simulator parameterized by a
//!   [`ReplacementPolicy`]. The cache owns tags and validity; the *policy*
//!   owns all recency/prediction metadata, decides bypass on misses, and
//!   chooses victims. This split is what lets predictive policies like GHRP
//!   and SDBP (implemented in sibling crates) carry per-block signatures
//!   and prediction bits.
//! * Baseline policies: [`policy::Lru`], [`policy::Fifo`],
//!   [`policy::RandomPolicy`], [`policy::Srrip`], and the oracle-ish
//!   [`policy::BeladyOpt`] for offline bound studies.
//! * [`EfficiencyTracker`] — per-frame live-time accounting reproducing the
//!   paper's Figure 1/5 heat maps (cache efficiency = fraction of resident
//!   time a block is live, i.e. still has a future use).
//!
//! # Example
//!
//! ```
//! use fe_cache::{Cache, CacheConfig, policy::Lru};
//!
//! let cfg = CacheConfig::with_capacity(16 * 1024, 8, 64).unwrap();
//! let mut cache = Cache::new(cfg, Lru::new(cfg));
//! let first = cache.access(0x4000, 0x4000);
//! assert!(first.is_miss());
//! let second = cache.access(0x4000, 0x4000);
//! assert!(second.is_hit());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod config;
mod efficiency;
pub mod fastmap;
pub mod index;
pub mod policy;

pub use crate::cache::{AccessResult, Cache, CacheStats};
pub use config::{CacheConfig, ConfigError};
pub use efficiency::{EfficiencyMap, EfficiencyTracker};
pub use fastmap::{FastHasher, FastMap};
pub use index::{idx, mask};
pub use policy::{AccessContext, ReplacementPolicy};
