//! Cache geometry and address slicing.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize};

/// Error constructing a [`CacheConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A geometry parameter was zero or not a power of two.
    NotPowerOfTwo {
        /// Which parameter was invalid.
        field: &'static str,
        /// The offending value.
        value: u64,
    },
    /// Capacity is not divisible into `ways × block_bytes` sets.
    CapacityMismatch {
        /// Requested capacity in bytes.
        capacity: u64,
        /// Requested associativity.
        ways: u32,
        /// Requested block size in bytes.
        block_bytes: u64,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NotPowerOfTwo { field, value } => {
                write!(f, "{field} must be a nonzero power of two, got {value}")
            }
            ConfigError::CapacityMismatch {
                capacity,
                ways,
                block_bytes,
            } => write!(
                f,
                "capacity {capacity} is not a power-of-two multiple of {ways} ways x {block_bytes}B blocks"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Geometry of a set-associative cache.
///
/// `Copy` by design: configs are tiny and passed around freely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheConfig {
    sets: u32,
    ways: u32,
    block_bytes: u64,
}

impl CacheConfig {
    /// Build a config from total capacity in bytes.
    ///
    /// ```
    /// use fe_cache::CacheConfig;
    /// let cfg = CacheConfig::with_capacity(64 * 1024, 8, 64)?;
    /// assert_eq!(cfg.sets(), 128);
    /// # Ok::<(), fe_cache::ConfigError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when any parameter is not a power of two or
    /// the capacity does not divide evenly.
    pub fn with_capacity(
        capacity_bytes: u64,
        ways: u32,
        block_bytes: u64,
    ) -> Result<CacheConfig, ConfigError> {
        let way_bytes = u64::from(ways) * block_bytes;
        if way_bytes == 0 || !capacity_bytes.is_multiple_of(way_bytes) {
            return Err(ConfigError::CapacityMismatch {
                capacity: capacity_bytes,
                ways,
                block_bytes,
            });
        }
        let sets = capacity_bytes / way_bytes;
        Self::with_sets(
            u32::try_from(sets).map_err(|_| ConfigError::NotPowerOfTwo {
                field: "sets",
                value: sets,
            })?,
            ways,
            block_bytes,
        )
    }

    /// Build a config directly from a set count.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::NotPowerOfTwo`] for invalid parameters.
    pub fn with_sets(sets: u32, ways: u32, block_bytes: u64) -> Result<CacheConfig, ConfigError> {
        for (field, value) in [
            ("sets", u64::from(sets)),
            ("ways", u64::from(ways)),
            ("block_bytes", block_bytes),
        ] {
            if value == 0 || !value.is_power_of_two() {
                return Err(ConfigError::NotPowerOfTwo { field, value });
            }
        }
        Ok(CacheConfig {
            sets,
            ways,
            block_bytes,
        })
    }

    /// Number of sets.
    pub fn sets(&self) -> u32 {
        self.sets
    }

    /// Associativity (ways per set).
    pub fn ways(&self) -> u32 {
        self.ways
    }

    /// Block size in bytes.
    pub fn block_bytes(&self) -> u64 {
        self.block_bytes
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        u64::from(self.sets) * u64::from(self.ways) * self.block_bytes
    }

    /// Total number of block frames.
    pub fn frames(&self) -> usize {
        self.sets as usize * self.ways as usize
    }

    /// Block-aligned address containing `addr`.
    pub fn block_of(&self, addr: u64) -> u64 {
        addr & !(self.block_bytes - 1)
    }

    /// Set index for `addr`.
    pub fn set_of(&self, addr: u64) -> usize {
        // Power-of-two geometry is enforced at construction, so masking
        // is exact — and unlike `%`, it cannot silently "work" for a
        // non-power-of-two set count that skews the index distribution.
        crate::index::mask(addr >> self.offset_bits(), self.sets as usize)
    }

    /// Number of bits in the set index.
    pub fn set_bits(&self) -> u32 {
        self.sets.trailing_zeros()
    }

    /// Number of bits in the block offset.
    pub fn offset_bits(&self) -> u32 {
        self.block_bytes.trailing_zeros()
    }
}

impl std::fmt::Display for CacheConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let cap = self.capacity_bytes();
        if cap.is_multiple_of(1024) {
            write!(
                f,
                "{}KB {}-way {}B-block",
                cap / 1024,
                self.ways,
                self.block_bytes
            )
        } else {
            write!(f, "{cap}B {}-way {}B-block", self.ways, self.block_bytes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_derives_sets() {
        let cfg = CacheConfig::with_capacity(64 * 1024, 8, 64).unwrap();
        assert_eq!(cfg.sets(), 128);
        assert_eq!(cfg.ways(), 8);
        assert_eq!(cfg.block_bytes(), 64);
        assert_eq!(cfg.capacity_bytes(), 64 * 1024);
        assert_eq!(cfg.frames(), 1024);
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert!(CacheConfig::with_sets(3, 8, 64).is_err());
        assert!(CacheConfig::with_sets(128, 6, 64).is_err());
        assert!(CacheConfig::with_sets(128, 8, 48).is_err());
        assert!(CacheConfig::with_sets(0, 8, 64).is_err());
    }

    #[test]
    fn rejects_capacity_mismatch() {
        match CacheConfig::with_capacity(1000, 8, 64) {
            Err(ConfigError::CapacityMismatch { .. }) => {}
            other => panic!("expected CapacityMismatch, got {other:?}"),
        }
    }

    #[test]
    fn address_slicing() {
        let cfg = CacheConfig::with_sets(128, 8, 64).unwrap();
        assert_eq!(cfg.block_of(0x1234), 0x1200);
        assert_eq!(cfg.set_of(0x1240), (0x1240u64 / 64) as usize);
        assert_eq!(cfg.set_bits(), 7);
        assert_eq!(cfg.offset_bits(), 6);
    }

    #[test]
    fn same_block_same_set() {
        let cfg = CacheConfig::with_sets(64, 4, 64).unwrap();
        assert_eq!(cfg.set_of(0x1000), cfg.set_of(0x103f));
        assert_ne!(cfg.set_of(0x1000), cfg.set_of(0x1040));
    }

    #[test]
    fn display_formats_kilobytes() {
        let cfg = CacheConfig::with_capacity(16 * 1024, 8, 64).unwrap();
        assert_eq!(cfg.to_string(), "16KB 8-way 64B-block");
    }

    #[test]
    fn error_display_nonempty() {
        let e = CacheConfig::with_sets(3, 8, 64).unwrap_err();
        assert!(e.to_string().contains("power of two"));
    }
}
