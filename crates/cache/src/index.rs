//! Checked index arithmetic shared by every set-indexed structure.
//!
//! The GHRP reproduction is full of bit-level index computation — set
//! selection, skewed-table hashing, signature masking — exactly the kind
//! of code where a truncating `as` cast silently corrupts results. This
//! module centralizes the two primitives every structure needs:
//!
//! * [`mask`] — power-of-two bucket selection (the only sanctioned way
//!   to turn an address into a set/table index), and
//! * [`idx`] — bounds-checked `u64 → usize` narrowing for array
//!   indexing.
//!
//! The custom lint engine (`cargo xtask lint`) forbids raw `%`
//! set-indexing and unchecked `as`-narrowing in index computation
//! outside this module, so every conversion funnels through these two
//! functions. `ghrp-core::shared` re-exports both for predictor-side
//! code.

#![forbid(unsafe_code)]

/// Select a bucket in `0..buckets` from `value` by power-of-two masking.
///
/// This is the canonical set-index operation: equivalent to
/// `value % buckets` when `buckets` is a power of two, but explicit
/// about the requirement instead of silently "working" for any modulus.
///
/// ```
/// use fe_cache::index::mask;
/// assert_eq!(mask(0x1240 / 64, 128), (0x1240u64 / 64 % 128) as usize);
/// assert_eq!(mask(u64::MAX, 16), 15);
/// ```
///
/// # Panics
///
/// In debug builds, panics unless `buckets` is a nonzero power of two.
#[inline]
#[must_use]
pub fn mask(value: u64, buckets: usize) -> usize {
    debug_assert!(
        buckets.is_power_of_two(),
        "mask: bucket count {buckets} is not a power of two"
    );
    // Truncation-safe: the result is < buckets, which fits usize.
    #[allow(clippy::cast_possible_truncation)]
    let bucket = (value & (buckets as u64 - 1)) as usize;
    bucket
}

/// Narrow `value` to a `usize` index, checked against `bound`.
///
/// The canonical way to turn a computed (hashed, shifted, masked) `u64`
/// into an array index: the narrowing is explicit and the out-of-range
/// case panics in debug builds instead of wrapping.
///
/// ```
/// use fe_cache::index::idx;
/// let table = vec![0u8; 4096];
/// assert_eq!(table[idx(4095, table.len())], 0);
/// ```
///
/// # Panics
///
/// In debug builds, panics when `value >= bound`.
#[inline]
#[must_use]
pub fn idx(value: u64, bound: usize) -> usize {
    debug_assert!(
        value < bound as u64,
        "idx: index {value} out of bounds for length {bound}"
    );
    // Truncation-safe: checked against `bound` (a usize) above; release
    // builds that somehow exceed it fault on the array access instead.
    #[allow(clippy::cast_possible_truncation)]
    let index = value as usize;
    index
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_matches_modulo_for_powers_of_two() {
        for buckets in [1usize, 2, 64, 128, 4096] {
            for v in [0u64, 1, 63, 64, 0x1234_5678, u64::MAX] {
                // Truncation-safe: the remainder is < buckets.
                #[allow(clippy::cast_possible_truncation)]
                let expected = (v % buckets as u64) as usize;
                assert_eq!(mask(v, buckets), expected);
            }
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "not a power of two")]
    fn mask_rejects_non_power_of_two() {
        let _ = mask(5, 3);
    }

    #[test]
    fn idx_passes_in_bounds() {
        assert_eq!(idx(0, 1), 0);
        assert_eq!(idx(4095, 4096), 4095);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "out of bounds")]
    fn idx_catches_out_of_bounds() {
        let _ = idx(4096, 4096);
    }
}
