//! Cache-efficiency tracking (the paper's Figures 1 and 5).
//!
//! Following Burger et al., *cache efficiency* is the fraction of a block
//! frame's occupied time during which the resident block is *live* — i.e.
//! will be referenced again before eviction. A block is live from its fill
//! until its last hit, and dead from its last hit until its eviction.
//! High-efficiency frames render as light pixels in the paper's heat maps.

#![forbid(unsafe_code)]

use crate::CacheConfig;
use serde::{Deserialize, Serialize};

/// Per-frame live/total time accumulator.
#[derive(Debug, Clone)]
pub struct EfficiencyTracker {
    sets: usize,
    ways: usize,
    clock: u64,
    /// Fill time of the resident block, per frame (`u64::MAX` = empty).
    fill_time: Vec<u64>,
    /// Last hit time of the resident block, per frame.
    last_hit: Vec<u64>,
    /// Accumulated live time per frame.
    live: Vec<u64>,
    /// Accumulated occupied time per frame.
    total: Vec<u64>,
}

const EMPTY: u64 = u64::MAX;

impl EfficiencyTracker {
    /// Create a tracker for the given geometry.
    pub fn new(cfg: CacheConfig) -> EfficiencyTracker {
        let frames = cfg.frames();
        EfficiencyTracker {
            sets: cfg.sets() as usize,
            ways: cfg.ways() as usize,
            clock: 0,
            fill_time: vec![EMPTY; frames],
            last_hit: vec![0; frames],
            live: vec![0; frames],
            total: vec![0; frames],
        }
    }

    /// Advance virtual time; the cache calls this once per access.
    pub fn tick(&mut self) {
        self.clock += 1;
    }

    /// Record a hit to `(set, way)`.
    pub fn on_hit(&mut self, set: usize, way: usize) {
        self.last_hit[set * self.ways + way] = self.clock;
    }

    /// Record a fill into `(set, way)`.
    pub fn on_fill(&mut self, set: usize, way: usize) {
        let f = set * self.ways + way;
        self.fill_time[f] = self.clock;
        self.last_hit[f] = self.clock;
    }

    /// Record an eviction from `(set, way)`, folding the departing block's
    /// generation into the accumulators.
    pub fn on_evict(&mut self, set: usize, way: usize) {
        let f = set * self.ways + way;
        if self.fill_time[f] == EMPTY {
            return;
        }
        self.live[f] += self.last_hit[f] - self.fill_time[f];
        self.total[f] += self.clock - self.fill_time[f];
        self.fill_time[f] = EMPTY;
    }

    /// Drop all accumulated state and restart the clock (used after
    /// warm-up).
    pub fn reset(&mut self) {
        let frames = self.fill_time.len();
        self.clock = 0;
        self.fill_time = vec![EMPTY; frames];
        self.last_hit = vec![0; frames];
        self.live = vec![0; frames];
        self.total = vec![0; frames];
    }

    /// Close out still-resident blocks and produce the efficiency map.
    pub fn finish(mut self) -> EfficiencyMap {
        for f in 0..self.fill_time.len() {
            if self.fill_time[f] != EMPTY {
                self.live[f] += self.last_hit[f] - self.fill_time[f];
                self.total[f] += self.clock - self.fill_time[f];
                self.fill_time[f] = EMPTY;
            }
        }
        let cells = (0..self.sets)
            .map(|s| {
                (0..self.ways)
                    .map(|w| {
                        let f = s * self.ways + w;
                        if self.total[f] == 0 {
                            0.0
                        } else {
                            self.live[f] as f64 / self.total[f] as f64
                        }
                    })
                    .collect()
            })
            .collect();
        EfficiencyMap {
            sets: self.sets,
            ways: self.ways,
            cells,
        }
    }
}

/// A finished efficiency heat map: `cells[set][way]` in `[0, 1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EfficiencyMap {
    /// Number of sets (heat-map rows).
    pub sets: usize,
    /// Number of ways (heat-map columns).
    pub ways: usize,
    /// Efficiency per frame.
    pub cells: Vec<Vec<f64>>,
}

impl EfficiencyMap {
    /// Mean efficiency over all frames.
    pub fn mean(&self) -> f64 {
        let n = (self.sets * self.ways) as f64;
        if n == 0.0 {
            return 0.0;
        }
        self.cells.iter().flatten().sum::<f64>() / n
    }

    /// Render as ASCII art (one character per frame, darker = deader),
    /// the text analogue of the paper's heat-map figures.
    pub fn to_ascii(&self) -> String {
        const RAMP: &[u8] = b" .:-=+*#%@";
        let mut out = String::with_capacity(self.sets * (self.ways + 1));
        for row in &self.cells {
            for &v in row {
                // Truncation/sign-safe: clamped to [0, RAMP.len()-1]
                // before the cast.
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                let i = (v * (RAMP.len() - 1) as f64)
                    .round()
                    .clamp(0.0, (RAMP.len() - 1) as f64) as usize;
                out.push(RAMP[i] as char);
            }
            out.push('\n');
        }
        out
    }

    /// Render as a binary PPM (P6) image, one pixel per frame scaled by
    /// `scale`, lighter = more efficient — the same encoding as the
    /// paper's Figures 1 and 5.
    pub fn to_ppm(&self, scale: usize) -> Vec<u8> {
        let scale = scale.max(1);
        let (w, h) = (self.ways * scale, self.sets * scale);
        let mut out = format!("P6\n{w} {h}\n255\n").into_bytes();
        out.reserve(w * h * 3);
        for row in &self.cells {
            let line: Vec<u8> = row
                .iter()
                .flat_map(|&v| {
                    // Truncation/sign-safe: clamped to [0, 255] before
                    // the cast.
                    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                    let g = (v.clamp(0.0, 1.0) * 255.0) as u8;
                    std::iter::repeat_n([g, g, g], scale)
                })
                .flatten()
                .collect();
            for _ in 0..scale {
                out.extend_from_slice(&line);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Lru;
    use crate::Cache;

    #[test]
    fn fully_reused_block_is_efficient() {
        let cfg = CacheConfig::with_sets(1, 1, 64).unwrap();
        let mut c = Cache::new(cfg, Lru::new(cfg));
        c.enable_efficiency_tracking();
        for _ in 0..100 {
            c.access(0x0, 0);
        }
        let map = c.finish_efficiency().unwrap();
        assert!(map.cells[0][0] > 0.95, "got {}", map.cells[0][0]);
    }

    #[test]
    fn dead_on_arrival_block_is_inefficient() {
        let cfg = CacheConfig::with_sets(1, 1, 64).unwrap();
        let mut c = Cache::new(cfg, Lru::new(cfg));
        c.enable_efficiency_tracking();
        // Alternate two blocks: each is filled, never hit, then evicted.
        for i in 0..100u64 {
            c.access((i % 2) * 64, 0);
        }
        let map = c.finish_efficiency().unwrap();
        assert!(map.cells[0][0] < 0.05, "got {}", map.cells[0][0]);
    }

    #[test]
    fn mixed_pattern_lands_in_between() {
        let cfg = CacheConfig::with_sets(1, 1, 64).unwrap();
        let mut c = Cache::new(cfg, Lru::new(cfg));
        c.enable_efficiency_tracking();
        // Block is hit for half its generation, then idles until eviction.
        for _ in 0..10 {
            for _ in 0..50 {
                c.access(0x0, 0);
            }
            // Same set (there is only one), so this evicts the hot block.
            c.access(0x1000, 0);
        }
        let map = c.finish_efficiency().unwrap();
        let v = map.cells[0][0];
        assert!(v > 0.5 && v < 1.0, "got {v}");
    }

    #[test]
    fn untouched_frames_report_zero() {
        let cfg = CacheConfig::with_sets(4, 2, 64).unwrap();
        let mut c = Cache::new(cfg, Lru::new(cfg));
        c.enable_efficiency_tracking();
        c.access(0x0, 0);
        let map = c.finish_efficiency().unwrap();
        assert!(map.cells[1][0].abs() < f64::EPSILON);
        assert!(map.cells[3][1].abs() < f64::EPSILON);
    }

    #[test]
    fn ascii_render_dimensions() {
        let map = EfficiencyMap {
            sets: 2,
            ways: 3,
            cells: vec![vec![0.0, 0.5, 1.0], vec![1.0, 1.0, 0.0]],
        };
        let art = map.to_ascii();
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines.iter().all(|l| l.chars().count() == 3));
        assert!((map.mean() - 3.5 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn ppm_has_correct_dimensions_and_values() {
        let map = EfficiencyMap {
            sets: 2,
            ways: 2,
            cells: vec![vec![0.0, 1.0], vec![0.5, 1.0]],
        };
        let ppm = map.to_ppm(1);
        let header = b"P6\n2 2\n255\n";
        assert_eq!(&ppm[..header.len()], header);
        let body = &ppm[header.len()..];
        assert_eq!(body.len(), 2 * 2 * 3);
        assert_eq!(&body[0..3], &[0, 0, 0]);
        assert_eq!(&body[3..6], &[255, 255, 255]);
        // Scaling doubles both dimensions.
        let scaled = map.to_ppm(2);
        assert!(scaled.starts_with(b"P6\n4 4\n255\n"));
    }

    #[test]
    fn reset_clears_history() {
        let cfg = CacheConfig::with_sets(1, 1, 64).unwrap();
        let mut c = Cache::new(cfg, Lru::new(cfg));
        c.enable_efficiency_tracking();
        for i in 0..50u64 {
            c.access((i % 2) * 64, 0); // all dead
        }
        c.reset_stats(); // also resets the tracker
        for _ in 0..100 {
            c.access(0x0, 0); // all live
        }
        let map = c.finish_efficiency().unwrap();
        assert!(map.cells[0][0] > 0.9, "got {}", map.cells[0][0]);
    }
}
