//! A fast, deterministic hasher for simulator-internal maps.
//!
//! The standard library's default hasher (SipHash-1-3) is keyed and
//! DoS-resistant, which the simulator's internal bookkeeping maps do not
//! need: their keys are block addresses and branch PCs produced by the
//! simulation itself, and the maps are only ever used for keyed
//! get/insert/remove (never iterated), so hash quality affects speed but
//! not results. Profiling the single-pass engine showed `SipHash` in the
//! per-lane hot paths — the BTB target store (one insert per taken branch
//! per lane) and the shared GHRP block-metadata store (several probes per
//! I-cache access) — so those maps use [`FastMap`] instead.
//!
//! The mixer is a Fibonacci-style multiply with an xor-shift finalizer.
//! The finalizer matters here: simulator keys are block-aligned addresses
//! (low bits always zero), and a bare multiply leaves those low bits zero
//! in the output, which would cluster every key into a fraction of the
//! table's buckets. Folding the high half back down (`h ^ (h >> 32)`)
//! restores entropy exactly where the hash table's bucket mask looks.

#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant (high-entropy odd number, from the golden
/// ratio as popularized by Fibonacci hashing).
const SEED: u64 = 0x9e37_79b9_7f4a_7c15;

/// A non-cryptographic, deterministic 64-bit hasher.
///
/// Hashing is unkeyed, so the same key hashes identically on every run —
/// map *lookups* are reproducible, and since no simulator map is
/// iterated, bucket order can never leak into results.
#[derive(Debug, Default, Clone)]
pub struct FastHasher {
    state: u64,
}

impl FastHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state ^ word).wrapping_mul(SEED).rotate_left(23);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Fold high-half entropy into the low bits the bucket mask uses.
        let h = self.state.wrapping_mul(SEED);
        h ^ (h >> 32)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.mix(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.mix(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.mix(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.mix(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.mix(i as u64);
    }
}

/// `HashMap` with the deterministic [`FastHasher`] — for simulator
/// bookkeeping maps on hot paths (keyed access only, never iterated).
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_u64(v: u64) -> u64 {
        let mut h = FastHasher::default();
        h.write_u64(v);
        h.finish()
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_u64(0xdead_beef), hash_u64(0xdead_beef));
        assert_ne!(hash_u64(1), hash_u64(2));
    }

    #[test]
    fn block_aligned_keys_spread_low_bits() {
        // Block addresses are 64-byte aligned; the low 6 bits of the
        // *hash* must still vary or every key lands in 1/64th of the
        // buckets.
        let mut low_bits = std::collections::HashSet::new();
        for i in 0..256u64 {
            low_bits.insert(hash_u64(i * 64) & 0x3f);
        }
        assert!(low_bits.len() > 32, "low bits collapse: {}", low_bits.len());
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FastMap<u64, u32> = FastMap::default();
        for i in 0..1000u64 {
            m.insert(i * 64, u32::try_from(i).unwrap_or(0));
        }
        for i in 0..1000u64 {
            assert_eq!(m.get(&(i * 64)).copied(), u32::try_from(i).ok());
        }
        assert_eq!(m.remove(&0), Some(0));
        assert_eq!(m.len(), 999);
    }

    #[test]
    fn byte_stream_matches_word_writes_for_collisions_only() {
        // Different inputs should not trivially collide.
        let mut a = FastHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FastHasher::default();
        b.write(&[3, 2, 1]);
        assert_ne!(a.finish(), b.finish());
    }
}
