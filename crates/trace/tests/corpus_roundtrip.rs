//! Property-based equivalence between the two on-disk trace formats:
//! the per-record `FETR` stream and the columnar `FESA` corpus must
//! round-trip any record sequence bit-identically — to the original
//! records and therefore to each other.

#![forbid(unsafe_code)]

use fe_trace::corpus::{Corpus, CorpusBuilder};
use fe_trace::io::{read_binary, write_binary};
use fe_trace::{BranchKind, BranchRecord};
use proptest::prelude::*;

fn arb_record() -> impl Strategy<Value = BranchRecord> {
    (any::<u64>(), 0u8..6, any::<bool>(), any::<u64>()).prop_map(|(pc, k, taken, target)| {
        let kind = BranchKind::from_u8(k).expect("0..6 covers every kind");
        BranchRecord::new(pc, kind, taken, target)
    })
}

proptest! {
    /// FETR encode→decode and SoA encode→decode both reproduce the
    /// input records exactly, across chunk boundaries (the cursor
    /// refills every 256 records; sizes up to 2000 span several).
    #[test]
    fn fetr_and_soa_roundtrip_bit_identically(
        records in proptest::collection::vec(arb_record(), 0..2000),
    ) {
        let mut fetr = Vec::new();
        write_binary(&mut fetr, &records).expect("FETR encode");
        let via_fetr = read_binary(fetr.as_slice()).expect("FETR decode");

        let mut builder = CorpusBuilder::new();
        builder.push_trace("prop", 0, &records).expect("SoA encode");
        let corpus = Corpus::from_bytes(builder.finish()).expect("SoA decode");
        let via_soa: Vec<BranchRecord> =
            corpus.get(0).expect("one trace").cursor().collect();

        prop_assert_eq!(&via_fetr, &records);
        prop_assert_eq!(&via_soa, &records);
        prop_assert_eq!(via_fetr, via_soa);
    }

    /// Multi-trace corpora keep every trace independent: concatenating
    /// two record sets into one corpus and reading them back yields the
    /// original split, and checksums hold per column per trace.
    #[test]
    fn multi_trace_corpus_keeps_traces_independent(
        a in proptest::collection::vec(arb_record(), 0..600),
        b in proptest::collection::vec(arb_record(), 0..600),
    ) {
        let mut builder = CorpusBuilder::new();
        builder.push_trace("a", 1, &a).expect("push a");
        builder.push_trace("b", 2, &b).expect("push b");
        let corpus = Corpus::from_bytes(builder.finish()).expect("verified corpus");
        prop_assert_eq!(corpus.len(), 2);
        let got_a: Vec<BranchRecord> = corpus.get(0).expect("trace a").cursor().collect();
        let got_b: Vec<BranchRecord> = corpus.get(1).expect("trace b").cursor().collect();
        prop_assert_eq!(got_a, a);
        prop_assert_eq!(got_b, b);
    }
}
