//! The branch trace record model.
//!
//! A trace is a sequence of [`BranchRecord`]s, one per executed branch
//! instruction, in program order. Non-branch instructions are implicit: the
//! instructions between the previous record's successor address and the
//! current record's PC executed sequentially (see [`crate::fetch`]).

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize};

/// Architectural instruction size assumed by the synthetic ISA.
///
/// CBP-5 traces come from a fixed-width 4-byte ISA; the fetch reconstruction
/// and the synthetic program generator both use this constant.
pub const INSTRUCTION_BYTES: u64 = 4;

/// The class of a branch instruction.
///
/// Mirrors the CBP-5 `OpType` taxonomy at the granularity the simulator
/// cares about: direction prediction applies to conditional branches, the
/// BTB applies to everything taken, and the return-address stack applies to
/// calls/returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum BranchKind {
    /// Conditional direct branch (the only kind the direction predictor sees).
    CondDirect = 0,
    /// Unconditional direct jump.
    UncondDirect = 1,
    /// Unconditional indirect jump (target varies).
    Indirect = 2,
    /// Direct call; pushes a return address.
    Call = 3,
    /// Indirect call; pushes a return address, target varies.
    IndirectCall = 4,
    /// Return; pops a return address.
    Return = 5,
}

impl BranchKind {
    /// All kinds, in discriminant order. Useful for exhaustive tables.
    pub const ALL: [BranchKind; 6] = [
        BranchKind::CondDirect,
        BranchKind::UncondDirect,
        BranchKind::Indirect,
        BranchKind::Call,
        BranchKind::IndirectCall,
        BranchKind::Return,
    ];

    /// Discriminant as a table index (always `< BranchKind::ALL.len()`).
    ///
    /// Callers index per-kind tables through this instead of a bare
    /// `as usize` cast so the narrowing lives in one audited place.
    #[must_use]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Whether the direction of this branch is predicted (conditional).
    ///
    /// ```
    /// use fe_trace::BranchKind;
    /// assert!(BranchKind::CondDirect.is_conditional());
    /// assert!(!BranchKind::Call.is_conditional());
    /// ```
    pub fn is_conditional(self) -> bool {
        self == BranchKind::CondDirect
    }

    /// Whether this branch kind is always taken when executed.
    pub fn is_unconditional(self) -> bool {
        !self.is_conditional()
    }

    /// Whether the target cannot be computed from the instruction encoding
    /// alone (indirect jumps, indirect calls, returns).
    pub fn is_indirect(self) -> bool {
        matches!(
            self,
            BranchKind::Indirect | BranchKind::IndirectCall | BranchKind::Return
        )
    }

    /// Whether this kind pushes onto the return-address stack.
    pub fn is_call(self) -> bool {
        matches!(self, BranchKind::Call | BranchKind::IndirectCall)
    }

    /// Whether this kind pops the return-address stack.
    pub fn is_return(self) -> bool {
        self == BranchKind::Return
    }

    /// Decode from the on-disk discriminant.
    pub fn from_u8(v: u8) -> Option<BranchKind> {
        BranchKind::ALL.get(v as usize).copied()
    }
}

impl std::fmt::Display for BranchKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BranchKind::CondDirect => "cond",
            BranchKind::UncondDirect => "jump",
            BranchKind::Indirect => "ijump",
            BranchKind::Call => "call",
            BranchKind::IndirectCall => "icall",
            BranchKind::Return => "ret",
        };
        f.write_str(s)
    }
}

/// One executed branch, in program order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BranchRecord {
    /// Address of the branch instruction itself.
    pub pc: u64,
    /// Branch class.
    pub kind: BranchKind,
    /// Whether the branch was taken. Always `true` for unconditional kinds.
    pub taken: bool,
    /// Target address if taken; the fall-through address is implied
    /// (`pc + INSTRUCTION_BYTES`) when not taken.
    pub target: u64,
}

impl BranchRecord {
    /// Construct a record, normalizing `taken` for unconditional kinds.
    ///
    /// ```
    /// use fe_trace::{BranchKind, BranchRecord};
    /// let r = BranchRecord::new(0x1000, BranchKind::Call, false, 0x4000);
    /// assert!(r.taken, "calls are always taken");
    /// ```
    pub fn new(pc: u64, kind: BranchKind, taken: bool, target: u64) -> BranchRecord {
        BranchRecord {
            pc,
            kind,
            taken: taken || kind.is_unconditional(),
            target,
        }
    }

    /// The address of the instruction executed immediately after this branch.
    pub fn successor(&self) -> u64 {
        if self.taken {
            self.target
        } else {
            self.pc + INSTRUCTION_BYTES
        }
    }

    /// The fall-through address (next sequential instruction).
    pub fn fall_through(&self) -> u64 {
        self.pc + INSTRUCTION_BYTES
    }

    /// Whether a BTB would allocate an entry for this execution: the paper's
    /// model allocates only for taken branches ("a branch that is never
    /// taken will not get a BTB entry").
    pub fn allocates_btb(&self) -> bool {
        self.taken
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_roundtrip_through_u8() {
        for k in BranchKind::ALL {
            assert_eq!(BranchKind::from_u8(k as u8), Some(k));
        }
        assert_eq!(BranchKind::from_u8(6), None);
        assert_eq!(BranchKind::from_u8(255), None);
    }

    #[test]
    fn kind_classification() {
        assert!(BranchKind::CondDirect.is_conditional());
        for k in BranchKind::ALL {
            if k != BranchKind::CondDirect {
                assert!(k.is_unconditional(), "{k} should be unconditional");
            }
        }
        assert!(BranchKind::Indirect.is_indirect());
        assert!(BranchKind::IndirectCall.is_indirect());
        assert!(BranchKind::Return.is_indirect());
        assert!(!BranchKind::Call.is_indirect());
        assert!(BranchKind::Call.is_call());
        assert!(BranchKind::IndirectCall.is_call());
        assert!(!BranchKind::Return.is_call());
        assert!(BranchKind::Return.is_return());
    }

    #[test]
    fn unconditional_kinds_are_forced_taken() {
        for k in BranchKind::ALL {
            let r = BranchRecord::new(0x100, k, false, 0x200);
            if k.is_conditional() {
                assert!(!r.taken);
            } else {
                assert!(r.taken);
            }
        }
    }

    #[test]
    fn successor_taken_and_not() {
        let t = BranchRecord::new(0x100, BranchKind::CondDirect, true, 0x40);
        assert_eq!(t.successor(), 0x40);
        let nt = BranchRecord::new(0x100, BranchKind::CondDirect, false, 0x40);
        assert_eq!(nt.successor(), 0x104);
        assert_eq!(nt.fall_through(), 0x104);
    }

    #[test]
    fn btb_allocation_follows_taken() {
        let t = BranchRecord::new(0x100, BranchKind::CondDirect, true, 0x40);
        assert!(t.allocates_btb());
        let nt = BranchRecord::new(0x100, BranchKind::CondDirect, false, 0x40);
        assert!(!nt.allocates_btb());
    }

    #[test]
    fn display_names_are_stable() {
        let names: Vec<String> = BranchKind::ALL
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        assert_eq!(names, ["cond", "jump", "ijump", "call", "icall", "ret"]);
    }
}
