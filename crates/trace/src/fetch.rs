//! Fetch-stream reconstruction.
//!
//! CBP-5-style traces record only branches. The paper (§IV.A) reconstructs
//! "the block address of every instruction fetch group by inferring the
//! missing instructions between branch targets": after a branch resolves to
//! its successor address, instructions execute sequentially until the next
//! branch record's PC.
//!
//! [`FetchStream`] turns a branch-record iterator into a stream of
//! [`FetchChunk`]s. A chunk is a maximal run of sequential instructions that
//! (a) stays within one cache block and (b) ends at a branch if the branch is
//! in that block. The front-end simulator performs one I-cache access per
//! chunk and one BTB/direction-predictor access per chunk that carries a
//! branch.

#![forbid(unsafe_code)]

use crate::record::{BranchRecord, INSTRUCTION_BYTES};

/// A maximal sequential fetch group within a single cache block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchChunk {
    /// Block-aligned address of the I-cache block this chunk occupies.
    pub block_addr: u64,
    /// Address of the first instruction in the chunk.
    pub first_pc: u64,
    /// Number of instructions in the chunk (always ≥ 1).
    pub n_instr: u32,
    /// The branch that terminates this chunk, if the next branch in the
    /// trace falls inside this block. Its `pc` is the chunk's last
    /// instruction.
    pub branch: Option<BranchRecord>,
    /// Whether this chunk begins a new *fetch group* — i.e. whether a real
    /// front-end would perform a fresh I-cache access for it. A chunk
    /// continues the previous group (no new access) when it stays in the
    /// same block and the previous chunk ended with a not-taken branch:
    /// fetch proceeds sequentially within the block. Taken branches and
    /// block changes start a new group (§IV.A: "the block address of every
    /// instruction fetch group").
    pub starts_group: bool,
}

impl FetchChunk {
    /// Address of the last instruction in the chunk.
    pub fn last_pc(&self) -> u64 {
        self.first_pc + (u64::from(self.n_instr) - 1) * INSTRUCTION_BYTES
    }
}

/// Iterator reconstructing [`FetchChunk`]s from a branch trace.
///
/// ```
/// use fe_trace::{BranchKind, BranchRecord};
/// use fe_trace::fetch::FetchStream;
///
/// // A branch at 0x104 jumping to 0x400, then a branch at 0x408.
/// let records = vec![
///     BranchRecord::new(0x104, BranchKind::UncondDirect, true, 0x400),
///     BranchRecord::new(0x408, BranchKind::UncondDirect, true, 0x100),
/// ];
/// let chunks: Vec<_> = FetchStream::new(records.into_iter(), 64).collect();
/// assert_eq!(chunks.len(), 2);
/// assert_eq!(chunks[0].block_addr, 0x100);
/// assert_eq!(chunks[0].n_instr, 1); // the trace begins at the first branch
/// assert_eq!(chunks[1].block_addr, 0x400);
/// assert_eq!(chunks[1].n_instr, 3); // 0x400, 0x404, 0x408
/// ```
#[derive(Debug)]
pub struct FetchStream<I> {
    records: I,
    block_bytes: u64,
    /// Next instruction address to fetch; `None` before the first record.
    pc: Option<u64>,
    /// Branch we are currently walking toward.
    pending: Option<BranchRecord>,
    total_instructions: u64,
    /// Block of the previously yielded chunk, and whether it ended with a
    /// taken branch (fetch-group boundary tracking).
    prev_block: Option<u64>,
    prev_ended_taken: bool,
}

impl<I: Iterator<Item = BranchRecord>> FetchStream<I> {
    /// Create a fetch stream over `records` with the given cache block size.
    ///
    /// # Panics
    ///
    /// Panics if `block_bytes` is not a power of two at least
    /// [`INSTRUCTION_BYTES`].
    pub fn new(records: I, block_bytes: u64) -> FetchStream<I> {
        assert!(
            block_bytes.is_power_of_two() && block_bytes >= INSTRUCTION_BYTES,
            "block size must be a power of two >= {INSTRUCTION_BYTES}, got {block_bytes}"
        );
        FetchStream {
            records,
            block_bytes,
            pc: None,
            pending: None,
            total_instructions: 0,
            prev_block: None,
            prev_ended_taken: true,
        }
    }

    /// Instructions emitted so far (sum of `n_instr` over yielded chunks).
    pub fn instructions(&self) -> u64 {
        self.total_instructions
    }

    fn block_of(&self, addr: u64) -> u64 {
        addr & !(self.block_bytes - 1)
    }
}

impl<'a> FetchStream<crate::corpus::CorpusCursor<'a>> {
    /// Chunked structure-of-arrays fast path: reconstruct fetch groups
    /// straight from a corpus trace.
    ///
    /// The returned stream is fully monomorphized over
    /// [`crate::corpus::CorpusCursor`] — records decode from the shared
    /// column buffer in cache-friendly 256-record chunks and feed block
    /// reconstruction with no boxing, no virtual dispatch, and no
    /// per-record allocation anywhere in the chain.
    ///
    /// # Panics
    ///
    /// Panics if `block_bytes` is not a power of two at least
    /// [`INSTRUCTION_BYTES`] (as [`FetchStream::new`]).
    pub fn from_corpus(trace: &'a crate::corpus::CorpusTrace, block_bytes: u64) -> Self {
        FetchStream::new(trace.cursor(), block_bytes)
    }
}

impl<I: Iterator<Item = BranchRecord>> Iterator for FetchStream<I> {
    type Item = FetchChunk;

    fn next(&mut self) -> Option<FetchChunk> {
        // Acquire the next branch to walk toward, if we don't have one.
        if self.pending.is_none() {
            let rec = self.records.next()?;
            // First record of the trace, or a discontinuity (the recorded
            // branch PC is behind the current sequential PC — e.g. a trap or
            // trace gap): restart sequential fetch at the branch's block.
            let pc = match self.pc {
                Some(pc) if pc <= rec.pc => pc,
                _ => rec.pc,
            };
            self.pc = Some(pc);
            self.pending = Some(rec);
        }
        let rec = self.pending.expect("pending branch set above");
        let pc = self.pc.expect("pc set alongside pending");
        debug_assert!(pc <= rec.pc);

        let block = self.block_of(pc);
        let block_end = block + self.block_bytes; // exclusive
        let starts_group = self.prev_block != Some(block) || self.prev_ended_taken;
        let chunk = if rec.pc < block_end {
            // The branch lies in this block: chunk ends at the branch.
            let n = (rec.pc - pc) / INSTRUCTION_BYTES + 1;
            // Truncation-safe: n ≤ block_bytes / INSTRUCTION_BYTES, far
            // below u32::MAX.
            #[allow(clippy::cast_possible_truncation)]
            let n_instr = n as u32;
            self.pending = None;
            self.pc = Some(rec.successor());
            FetchChunk {
                block_addr: block,
                first_pc: pc,
                n_instr,
                branch: Some(rec),
                starts_group,
            }
        } else {
            // Sequential run to the end of the block; keep walking.
            let n = (block_end - pc) / INSTRUCTION_BYTES;
            // Truncation-safe: n ≤ block_bytes / INSTRUCTION_BYTES, far
            // below u32::MAX.
            #[allow(clippy::cast_possible_truncation)]
            let n_instr = n as u32;
            self.pc = Some(block_end);
            FetchChunk {
                block_addr: block,
                first_pc: pc,
                n_instr,
                branch: None,
                starts_group,
            }
        };
        self.prev_block = Some(block);
        self.prev_ended_taken = chunk.branch.is_none_or(|b| b.taken);
        self.total_instructions += u64::from(chunk.n_instr);
        Some(chunk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::BranchKind;

    fn cond(pc: u64, taken: bool, target: u64) -> BranchRecord {
        BranchRecord::new(pc, BranchKind::CondDirect, taken, target)
    }

    #[test]
    fn single_branch_single_block() {
        let recs = vec![cond(0x10, true, 0x80)];
        let chunks: Vec<_> = FetchStream::new(recs.into_iter(), 64).collect();
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].block_addr, 0x0);
        assert_eq!(chunks[0].first_pc, 0x10);
        assert_eq!(chunks[0].n_instr, 1);
        assert!(chunks[0].branch.is_some());
    }

    #[test]
    fn sequential_run_spans_blocks() {
        // Branch at 0x0 taken to 0x100; next branch at 0x1BC.
        // Sequential range 0x100..=0x1BC covers blocks 0x100, 0x140, 0x180.
        let recs = vec![cond(0x0, true, 0x100), cond(0x1bc, true, 0x0)];
        let chunks: Vec<_> = FetchStream::new(recs.into_iter(), 64).collect();
        assert_eq!(chunks.len(), 4);
        assert_eq!(chunks[0].block_addr, 0x0);
        let (b1, b2, b3) = (&chunks[1], &chunks[2], &chunks[3]);
        assert_eq!(
            (b1.block_addr, b1.n_instr, b1.branch.is_none()),
            (0x100, 16, true)
        );
        assert_eq!(
            (b2.block_addr, b2.n_instr, b2.branch.is_none()),
            (0x140, 16, true)
        );
        assert_eq!(
            (b3.block_addr, b3.n_instr, b3.branch.is_some()),
            (0x180, 16, true)
        );
        // 0x180..=0x1BC inclusive is 16 instructions.
        assert_eq!(b3.last_pc(), 0x1bc);
    }

    #[test]
    fn not_taken_continues_in_same_block() {
        let recs = vec![cond(0x10, false, 0x80), cond(0x18, true, 0x200)];
        let chunks: Vec<_> = FetchStream::new(recs.into_iter(), 64).collect();
        assert_eq!(chunks.len(), 2);
        // Fall-through from 0x10 is 0x14; next chunk starts there.
        assert_eq!(chunks[1].first_pc, 0x14);
        assert_eq!(chunks[1].n_instr, 2); // 0x14, 0x18
        assert_eq!(chunks[1].block_addr, 0x0);
    }

    #[test]
    fn branch_on_block_boundary() {
        // Branch target is the last slot of a block; branch sits exactly there.
        let recs = vec![cond(0x0, true, 0x7c), cond(0x7c, true, 0x0)];
        let chunks: Vec<_> = FetchStream::new(recs.into_iter(), 64).collect();
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[1].block_addr, 0x40);
        assert_eq!(chunks[1].first_pc, 0x7c);
        assert_eq!(chunks[1].n_instr, 1);
    }

    #[test]
    fn discontinuity_restarts_at_branch_pc() {
        // Second record's PC is *behind* the fall-through of the first:
        // treated as a redirect, not an underflow.
        let recs = vec![cond(0x1000, false, 0x2000), cond(0x500, true, 0x1000)];
        let chunks: Vec<_> = FetchStream::new(recs.into_iter(), 64).collect();
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[1].first_pc, 0x500);
        assert_eq!(chunks[1].n_instr, 1);
    }

    #[test]
    fn instruction_count_accumulates() {
        let recs = vec![cond(0x0, true, 0x100), cond(0x1bc, true, 0x0)];
        let mut fs = FetchStream::new(recs.into_iter(), 64);
        while fs.next().is_some() {}
        // 1 (branch at 0) + 48 (0x100..=0x1BC).
        assert_eq!(fs.instructions(), 49);
    }

    #[test]
    fn tight_loop_reaccesses_same_block() {
        // Loop body entirely within one block, 10 iterations.
        let mut recs = Vec::new();
        for _ in 0..9 {
            recs.push(cond(0x120, true, 0x100));
        }
        recs.push(cond(0x120, false, 0x100));
        let chunks: Vec<_> = FetchStream::new(recs.into_iter(), 64).collect();
        assert_eq!(chunks.len(), 10);
        assert!(chunks.iter().all(|c| c.block_addr == 0x100));
        // First chunk starts at the branch PC (trace start), later ones at
        // the loop head.
        assert_eq!(chunks[0].n_instr, 1);
        assert!(chunks[1..].iter().all(|c| c.n_instr == 9)); // 0x100..=0x120
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_block_size_panics() {
        let _ = FetchStream::new(std::iter::empty::<BranchRecord>(), 48);
    }

    #[test]
    fn empty_trace_yields_nothing() {
        let mut fs = FetchStream::new(std::iter::empty::<BranchRecord>(), 64);
        assert!(fs.next().is_none());
        assert_eq!(fs.instructions(), 0);
    }

    #[test]
    fn corpus_fast_path_matches_record_iterator() {
        use crate::corpus::{Corpus, CorpusBuilder};
        // A mix that exercises sequential runs, loops and discontinuities,
        // long enough to span several cursor chunks.
        let mut recs = Vec::new();
        for i in 0..1000u64 {
            recs.push(cond(0x1000 + i * 0x40, i % 2 == 0, 0x1000 + (i + 1) * 0x40));
            recs.push(cond(0x120, i % 3 == 0, 0x100));
        }
        let mut b = CorpusBuilder::new();
        b.push_trace("fetch", 0, &recs).unwrap();
        let corpus = Corpus::from_bytes(b.finish()).unwrap();
        let trace = corpus.get(0).unwrap();
        for block_bytes in [16, 64, 256] {
            let via_corpus: Vec<_> = FetchStream::from_corpus(&trace, block_bytes).collect();
            let via_iter: Vec<_> = FetchStream::new(recs.iter().copied(), block_bytes).collect();
            assert_eq!(via_corpus, via_iter);
        }
    }

    #[test]
    fn min_block_size_is_one_instruction() {
        let recs = vec![cond(0x0, true, 0x10), cond(0x14, true, 0x0)];
        let chunks: Vec<_> = FetchStream::new(recs.into_iter(), 4).collect();
        // 0x0 (branch), 0x10, 0x14 (branch) — one chunk per instruction.
        assert_eq!(chunks.len(), 3);
        assert!(chunks.iter().all(|c| c.n_instr == 1));
    }
}
