//! CBP-5-style branch traces for front-end simulation.
//!
//! The ISCA 2018 GHRP paper evaluates I-cache and BTB replacement policies on
//! the traces released for the 5th Championship Branch Prediction competition
//! (CBP-5). Those traces contain one record per *branch* — conditional,
//! unconditional, indirect, call, and return — and the instructions between
//! branch targets are inferred. This crate provides:
//!
//! * [`BranchRecord`] / [`BranchKind`]: the trace record model.
//! * [`io`]: a compact binary on-disk format plus JSON, with streaming
//!   readers and writers.
//! * [`fetch`]: reconstruction of the instruction-fetch block stream from a
//!   branch trace (the paper's §IV.A: "we reconstruct the block address of
//!   every instruction fetch group by inferring the missing instructions
//!   between branch targets").
//! * [`synth`]: a seeded synthetic workload generator standing in for the
//!   proprietary CBP-5 industrial traces. Workloads are random but
//!   *structured* programs (call graphs of functions built from basic blocks
//!   with loops, biased conditionals, indirect branches and call/return
//!   pairs), so control flow — and therefore path-correlated reuse — looks
//!   like real instruction streams.
//! * [`stats`]: descriptive statistics over a trace (branch mix, code
//!   footprint, taken rate).
//! * [`signature`] / [`sample`]: windowed basic-block-signature vectors
//!   (persisted as a checksummed `.soa` sidecar) and a deterministic
//!   k-means, the substrate for SimPoint-style phase-sampled replay.
//!
//! # Quick example
//!
//! ```
//! use fe_trace::synth::{WorkloadCategory, WorkloadSpec};
//! use fe_trace::fetch::FetchStream;
//!
//! let spec = WorkloadSpec::new(WorkloadCategory::ShortMobile, 42).instructions(100_000);
//! let trace = spec.generate();
//! let mut blocks = 0u64;
//! for chunk in FetchStream::new(trace.records.iter().copied(), 64) {
//!     blocks += 1;
//!     let _ = chunk.block_addr;
//! }
//! assert!(blocks > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod fetch;
pub mod io;
pub mod record;
pub mod sample;
pub mod signature;
pub mod stats;
pub mod synth;

pub use corpus::{Corpus, CorpusCache, CorpusTrace, SuiteCorpus};
pub use fetch::{FetchChunk, FetchStream};
pub use record::{BranchKind, BranchRecord};
pub use sample::{kmeans, Clustering, KMEANS_MAX_ITERATIONS};
pub use signature::{
    compute_signatures, splitmix64, GroupedWindow, GroupedWindows, TraceSignatures, WindowMeta,
    BASE_WINDOW_INSTRUCTIONS, SIGNATURE_DIM,
};
pub use stats::TraceStats;
pub use synth::{SyntheticTrace, WorkloadCategory, WorkloadSpec};

/// Errors produced when reading or writing trace files.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The stream did not start with the expected magic bytes.
    BadMagic([u8; 4]),
    /// The format version is not supported by this build.
    UnsupportedVersion(u32),
    /// A record field held a value outside its valid range.
    CorruptRecord {
        /// Zero-based index of the offending record.
        index: u64,
        /// Human-readable description of the problem.
        reason: String,
    },
    /// JSON (de)serialization failure.
    Json(serde_json::Error),
    /// A corpus column's stored checksum did not match its bytes.
    ChecksumMismatch {
        /// Name of the trace whose column is damaged.
        trace: String,
        /// Which column (`pc`, `target`, `kind`, `taken`, `signature`).
        column: &'static str,
    },
    /// A corpus header or index was structurally invalid.
    CorruptCorpus(String),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::BadMagic(m) => write!(f, "bad trace magic bytes {m:02x?}"),
            TraceError::UnsupportedVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceError::CorruptRecord { index, reason } => {
                write!(f, "corrupt record at index {index}: {reason}")
            }
            TraceError::Json(e) => write!(f, "trace json error: {e}"),
            TraceError::ChecksumMismatch { trace, column } => {
                write!(
                    f,
                    "checksum mismatch in `{column}` column of trace `{trace}`"
                )
            }
            TraceError::CorruptCorpus(reason) => write!(f, "corrupt corpus: {reason}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            TraceError::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

impl From<serde_json::Error> for TraceError {
    fn from(e: serde_json::Error) -> Self {
        TraceError::Json(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_nonempty() {
        let errs: Vec<TraceError> = vec![
            TraceError::Io(std::io::Error::other("x")),
            TraceError::BadMagic(*b"nope"),
            TraceError::UnsupportedVersion(99),
            TraceError::CorruptRecord {
                index: 3,
                reason: "bad kind".into(),
            },
            TraceError::ChecksumMismatch {
                trace: "t0".into(),
                column: "pc",
            },
            TraceError::CorruptCorpus("index extends past end of file".into()),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_source_chains() {
        use std::error::Error;
        let e = TraceError::Io(std::io::Error::other("inner"));
        assert!(e.source().is_some());
        let e = TraceError::BadMagic(*b"nope");
        assert!(e.source().is_none());
    }
}
