//! Program walker: executes a [`Program`] and emits the branch trace.

#![forbid(unsafe_code)]

use super::program::{select_index, Bias, BlockId, FuncId, Program, Terminator};
use crate::record::{BranchKind, BranchRecord, INSTRUCTION_BYTES};
use fe_cache::FastMap;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One activation record on the walker's call stack.
#[derive(Debug)]
struct Frame {
    func: FuncId,
    /// Block about to execute.
    block: BlockId,
    /// Return address (PC after the call instruction) and resume block in
    /// the caller. `None` for the entry frame.
    resume: Option<(u64, FuncId, BlockId)>,
    /// Remaining trip counts for counted loops, keyed by the latch block.
    /// Keyed access only (never iterated), so the deterministic
    /// [`FastMap`] hasher is safe and keeps the per-branch walk cheap.
    loop_state: FastMap<BlockId, u32>,
}

/// Maximum call depth; deeper calls are skipped (treated as executed but
/// not entered) to keep pathological generated graphs from overflowing.
const MAX_CALL_DEPTH: usize = 128;

/// Starting phase for a round-robin selector, derived from its branch PC.
/// Distinct dispatch sites rotating over the same pool start at staggered
/// offsets, so one request iteration touches several *distinct* handlers
/// instead of all sites calling the same one in lockstep.
fn rotation_offset(pc: u64) -> u32 {
    (pc.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40) as u32
}

/// Executes a [`Program`], yielding one [`BranchRecord`] per executed
/// branch, until the instruction budget is exhausted.
///
/// The walker is deterministic for a given `(program, seed, budget)` triple.
#[derive(Debug)]
pub struct Walker<'p> {
    program: &'p Program,
    rng: SmallRng,
    stack: Vec<Frame>,
    /// Periodic-branch state, keyed by branch PC (keyed access only).
    alternation: FastMap<u64, u32>,
    /// Round-robin state for indirect selectors, keyed by branch PC
    /// (keyed access only).
    rotation: FastMap<u64, u32>,
    instructions: u64,
    budget: u64,
    finished: bool,
}

impl<'p> Walker<'p> {
    /// Create a walker over `program` emitting roughly `budget` instructions.
    ///
    /// # Panics
    ///
    /// Panics if the program fails [`Program::validate`] (debug builds only).
    pub fn new(program: &'p Program, seed: u64, budget: u64) -> Walker<'p> {
        debug_assert_eq!(program.validate(), Ok(()));
        Walker {
            program,
            rng: SmallRng::seed_from_u64(seed),
            stack: vec![Frame {
                func: program.entry,
                block: 0,
                resume: None,
                loop_state: FastMap::default(),
            }],
            alternation: FastMap::default(),
            rotation: FastMap::default(),
            instructions: 0,
            budget,
            finished: false,
        }
    }

    /// Instructions executed so far (sequential instructions implied by the
    /// emitted branch records, including the branches themselves).
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    fn decide(&mut self, pc: u64, bias: Bias, frame_idx: usize, latch: BlockId) -> bool {
        match bias {
            Bias::TakenP(p) => self.rng.gen_bool(p.clamp(0.0, 1.0)),
            Bias::AlwaysTaken => true,
            Bias::Alternate { period } => {
                let c = self.alternation.entry(pc).or_insert(0);
                let taken = (*c / period.max(1)).is_multiple_of(2);
                *c = c.wrapping_add(1);
                taken
            }
            Bias::Loop { trips } => {
                let frame = &mut self.stack[frame_idx];
                let remaining = frame.loop_state.entry(latch).or_insert(trips);
                if *remaining > 0 {
                    *remaining -= 1;
                    true
                } else {
                    frame.loop_state.remove(&latch);
                    false
                }
            }
            Bias::LoopRandom { min, max } => {
                let trips = self.rng.gen_range(min..=max.max(min));
                let frame = &mut self.stack[frame_idx];
                let remaining = frame.loop_state.entry(latch).or_insert(trips);
                if *remaining > 0 {
                    *remaining -= 1;
                    true
                } else {
                    frame.loop_state.remove(&latch);
                    false
                }
            }
        }
    }
}

impl Iterator for Walker<'_> {
    type Item = BranchRecord;

    fn next(&mut self) -> Option<BranchRecord> {
        if self.finished || self.instructions >= self.budget {
            self.finished = true;
            return None;
        }
        let frame_idx = self.stack.len() - 1;
        let (func_id, block_id) = {
            let f = &self.stack[frame_idx];
            (f.func, f.block)
        };
        let func = &self.program.functions[func_id];
        let block = &func.blocks[block_id];
        self.instructions += u64::from(block.n_instr);
        let pc = block.branch_pc();

        // Clone the cheap parts of the terminator we need; vectors in
        // indirect terminators are borrowed in place via the program.
        let record = match &block.term {
            Terminator::Cond { target, bias } => {
                let taken = self.decide(pc, *bias, frame_idx, block_id);
                let target_addr = func.blocks[*target].start;
                self.stack[frame_idx].block = if taken { *target } else { block_id + 1 };
                BranchRecord::new(pc, BranchKind::CondDirect, taken, target_addr)
            }
            Terminator::Jump { target } => {
                let target_addr = func.blocks[*target].start;
                self.stack[frame_idx].block = *target;
                BranchRecord::new(pc, BranchKind::UncondDirect, true, target_addr)
            }
            Terminator::IndirectJump { targets, select } => {
                let counter = self
                    .rotation
                    .entry(pc)
                    .or_insert_with(|| rotation_offset(pc));
                let i = select_index(*select, targets.len(), &mut self.rng, counter);
                let target = targets[i];
                let target_addr = func.blocks[target].start;
                self.stack[frame_idx].block = target;
                BranchRecord::new(pc, BranchKind::Indirect, true, target_addr)
            }
            Terminator::Call { callee } => {
                let callee = *callee;
                let target_addr = self.program.functions[callee].base;
                let ret_addr = pc + INSTRUCTION_BYTES;
                if self.stack.len() < MAX_CALL_DEPTH {
                    self.stack.push(Frame {
                        func: callee,
                        block: 0,
                        resume: Some((ret_addr, func_id, block_id + 1)),
                        loop_state: FastMap::default(),
                    });
                } else {
                    // Depth guard: skip the body, resume immediately.
                    self.stack[frame_idx].block = block_id + 1;
                }
                BranchRecord::new(pc, BranchKind::Call, true, target_addr)
            }
            Terminator::IndirectCall { callees, select } => {
                let counter = self
                    .rotation
                    .entry(pc)
                    .or_insert_with(|| rotation_offset(pc));
                let i = select_index(*select, callees.len(), &mut self.rng, counter);
                let callee = callees[i];
                let target_addr = self.program.functions[callee].base;
                let ret_addr = pc + INSTRUCTION_BYTES;
                if self.stack.len() < MAX_CALL_DEPTH {
                    self.stack.push(Frame {
                        func: callee,
                        block: 0,
                        resume: Some((ret_addr, func_id, block_id + 1)),
                        loop_state: FastMap::default(),
                    });
                } else {
                    self.stack[frame_idx].block = block_id + 1;
                }
                BranchRecord::new(pc, BranchKind::IndirectCall, true, target_addr)
            }
            Terminator::Return => {
                let frame = self.stack.pop().expect("walker stack never empty");
                if let Some((ret_addr, caller_func, caller_block)) = frame.resume {
                    let top = self.stack.last_mut().expect("caller frame present");
                    debug_assert_eq!(top.func, caller_func);
                    top.block = caller_block;
                    BranchRecord::new(pc, BranchKind::Return, true, ret_addr)
                } else {
                    // The entry function returned (generated programs
                    // avoid this, but be robust): restart the program.
                    self.stack.push(Frame {
                        func: self.program.entry,
                        block: 0,
                        resume: None,
                        loop_state: FastMap::default(),
                    });
                    let entry_addr = self.program.functions[self.program.entry].base;
                    BranchRecord::new(pc, BranchKind::Return, true, entry_addr)
                }
            }
        };
        Some(record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::program::{Block, Function, Select};

    /// f0: b0 calls f1; b1 loops back to b0 3 times then continues; b2
    /// returns (entry return → restart).
    fn call_loop_program() -> Program {
        let f0 = Function {
            base: 0,
            blocks: vec![
                Block {
                    start: 0,
                    n_instr: 2,
                    term: Terminator::Call { callee: 1 },
                },
                Block {
                    start: 0,
                    n_instr: 3,
                    term: Terminator::Cond {
                        target: 0,
                        bias: Bias::Loop { trips: 3 },
                    },
                },
                Block {
                    start: 0,
                    n_instr: 1,
                    term: Terminator::Return,
                },
            ],
        };
        let f1 = Function {
            base: 0,
            blocks: vec![Block {
                start: 0,
                n_instr: 5,
                term: Terminator::Return,
            }],
        };
        let mut p = Program {
            functions: vec![f0, f1],
            entry: 0,
        };
        p.assign_addresses();
        p
    }

    #[test]
    fn call_and_return_match() {
        let p = call_loop_program();
        let records: Vec<_> = Walker::new(&p, 1, 200).collect();
        let calls: Vec<_> = records
            .iter()
            .filter(|r| r.kind == BranchKind::Call)
            .collect();
        let rets: Vec<_> = records
            .iter()
            .filter(|r| r.kind == BranchKind::Return)
            .collect();
        assert!(!calls.is_empty());
        // Every non-restart return targets a call's return address.
        let call_rets: std::collections::HashSet<u64> =
            calls.iter().map(|c| c.pc + INSTRUCTION_BYTES).collect();
        let f0_entry = p.functions[0].base;
        for r in rets {
            assert!(
                call_rets.contains(&r.target) || r.target == f0_entry,
                "return to unknown address {:#x}",
                r.target
            );
        }
    }

    #[test]
    fn counted_loop_runs_exact_trips() {
        let p = call_loop_program();
        let records: Vec<_> = Walker::new(&p, 1, 120).collect();
        // The latch branch (block 1 of f0): taken 3 times, then not taken,
        // repeating on each entry-function restart.
        let latch_pc = p.functions[0].blocks[1].branch_pc();
        let outcomes: Vec<bool> = records
            .iter()
            .filter(|r| r.pc == latch_pc)
            .map(|r| r.taken)
            .collect();
        assert!(outcomes.len() >= 4);
        assert_eq!(&outcomes[..4], &[true, true, true, false]);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let p = call_loop_program();
        let a: Vec<_> = Walker::new(&p, 42, 500).collect();
        let b: Vec<_> = Walker::new(&p, 42, 500).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_only_affect_random_choices() {
        // This program is fully deterministic (no random bias), so seeds
        // must not matter.
        let p = call_loop_program();
        let a: Vec<_> = Walker::new(&p, 1, 500).collect();
        let b: Vec<_> = Walker::new(&p, 2, 500).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn budget_bounds_instructions() {
        let p = call_loop_program();
        let mut w = Walker::new(&p, 1, 1000);
        while w.next().is_some() {}
        let n = w.instructions();
        // May overshoot by at most one block.
        assert!((1000..1000 + 16).contains(&n), "instructions = {n}");
    }

    #[test]
    fn entry_return_restarts_program() {
        let p = call_loop_program();
        let records: Vec<_> = Walker::new(&p, 1, 400).collect();
        let f0_entry = p.functions[0].base;
        let restarts = records
            .iter()
            .filter(|r| r.kind == BranchKind::Return && r.target == f0_entry)
            .count();
        assert!(restarts >= 1, "entry function should restart");
    }

    #[test]
    fn indirect_jump_targets_all_reachable() {
        // One function: dispatch block with a 3-way switch, cases jump back.
        let f = Function {
            base: 0,
            blocks: vec![
                Block {
                    start: 0,
                    n_instr: 2,
                    term: Terminator::IndirectJump {
                        targets: vec![1, 2, 3],
                        select: Select::Rotate,
                    },
                },
                Block {
                    start: 0,
                    n_instr: 2,
                    term: Terminator::Jump { target: 0 },
                },
                Block {
                    start: 0,
                    n_instr: 4,
                    term: Terminator::Jump { target: 0 },
                },
                Block {
                    start: 0,
                    n_instr: 6,
                    term: Terminator::Jump { target: 0 },
                },
            ],
        };
        let mut p = Program {
            functions: vec![f],
            entry: 0,
        };
        p.assign_addresses();
        let records: Vec<_> = Walker::new(&p, 9, 300).collect();
        let switch_pc = p.functions[0].blocks[0].branch_pc();
        let targets: std::collections::HashSet<u64> = records
            .iter()
            .filter(|r| r.pc == switch_pc)
            .map(|r| r.target)
            .collect();
        assert_eq!(targets.len(), 3, "rotation must visit all cases");
    }

    #[test]
    fn alternate_bias_is_periodic() {
        let f = Function {
            base: 0,
            blocks: vec![
                Block {
                    start: 0,
                    n_instr: 1,
                    term: Terminator::Cond {
                        target: 0,
                        bias: Bias::Alternate { period: 2 },
                    },
                },
                Block {
                    start: 0,
                    n_instr: 1,
                    term: Terminator::Jump { target: 0 },
                },
            ],
        };
        let mut p = Program {
            functions: vec![f],
            entry: 0,
        };
        p.assign_addresses();
        let pc = p.functions[0].blocks[0].branch_pc();
        let outcomes: Vec<bool> = Walker::new(&p, 0, 40)
            .filter(|r| r.pc == pc)
            .map(|r| r.taken)
            .collect();
        assert!(outcomes.len() >= 8);
        assert_eq!(
            &outcomes[..8],
            &[true, true, false, false, true, true, false, false]
        );
    }
}
