//! Synthetic CBP-5-style workload generation.
//!
//! The paper evaluates on 662 proprietary industrial traces (SHORT/LONG ×
//! MOBILE/SERVER). We cannot redistribute those, so this module generates
//! *structured* synthetic programs and executes them to produce branch
//! traces with the properties the paper's evaluation depends on:
//!
//! * control flow comes from a static program (call graph, loops, biased
//!   conditionals, switches), so the same global path of instruction
//!   addresses recurs with consistent reuse outcomes — the signal GHRP
//!   learns;
//! * MOBILE workloads have small-to-medium, loopy code footprints;
//! * SERVER workloads sweep large flat code footprints (a hot request
//!   loop plus a rotating dispatch over hundreds of cold handler
//!   functions), which is what pressures a 64 KB I-cache and a 4K-entry
//!   BTB;
//! * per-trace jitter (function counts, sizes, trip counts, biases) gives
//!   a suite with the paper's spread: most traces well under 1 MPKI under
//!   LRU, a heavy tail above it.
//!
//! Everything is deterministic in the workload seed.

#![forbid(unsafe_code)]

pub mod program;
pub mod walker;

use crate::record::BranchRecord;
use program::{Bias, Block, FuncId, Function, Program, Select, Terminator};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
pub use walker::Walker;

/// The four CBP-5 workload categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum WorkloadCategory {
    /// Small, loopy footprint; short run.
    ShortMobile,
    /// Small-to-medium footprint; long run.
    LongMobile,
    /// Large flat footprint; short run.
    ShortServer,
    /// Large flat footprint; long run.
    LongServer,
}

impl WorkloadCategory {
    /// All categories in canonical order.
    pub const ALL: [WorkloadCategory; 4] = [
        WorkloadCategory::ShortMobile,
        WorkloadCategory::LongMobile,
        WorkloadCategory::ShortServer,
        WorkloadCategory::LongServer,
    ];

    /// Default instruction budget for this category.
    ///
    /// The paper simulates short traces completely and caps long traces at
    /// one billion instructions; we default to laptop-scale budgets (the
    /// experiment harness can raise them).
    pub fn default_instructions(self) -> u64 {
        match self {
            WorkloadCategory::ShortMobile | WorkloadCategory::ShortServer => 4_000_000,
            WorkloadCategory::LongMobile | WorkloadCategory::LongServer => 8_000_000,
        }
    }

    /// Whether this is a server-class workload (large code footprint).
    pub fn is_server(self) -> bool {
        matches!(
            self,
            WorkloadCategory::ShortServer | WorkloadCategory::LongServer
        )
    }
}

impl std::fmt::Display for WorkloadCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            WorkloadCategory::ShortMobile => "SHORT_MOBILE",
            WorkloadCategory::LongMobile => "LONG_MOBILE",
            WorkloadCategory::ShortServer => "SHORT_SERVER",
            WorkloadCategory::LongServer => "LONG_SERVER",
        };
        f.write_str(s)
    }
}

/// Specification of one synthetic workload: category, seed and budget.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Human-readable name (e.g. `SHORT_SERVER-017`).
    pub name: String,
    /// Workload category.
    pub category: WorkloadCategory,
    /// Seed controlling both program structure and execution randomness.
    pub seed: u64,
    /// Instruction budget for the walk.
    pub instructions: u64,
}

impl WorkloadSpec {
    /// Create a spec with the category's default instruction budget.
    pub fn new(category: WorkloadCategory, seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            name: format!("{category}-{seed:03}"),
            category,
            seed,
            instructions: category.default_instructions(),
        }
    }

    /// Override the instruction budget (builder style).
    #[must_use]
    pub fn instructions(mut self, n: u64) -> WorkloadSpec {
        self.instructions = n;
        self
    }

    /// Build the static program for this workload.
    pub fn build_program(&self) -> Program {
        ProgramBuilder::new(self.category, self.seed).build()
    }

    /// Stream branch records without materializing the trace.
    ///
    /// The program must have been produced by [`WorkloadSpec::build_program`]
    /// on the same spec for the walk to be meaningful.
    pub fn walk<'p>(&self, program: &'p Program) -> Walker<'p> {
        // Offset the walk seed so structure and execution randomness are
        // decoupled but both derive from the workload seed.
        Walker::new(
            program,
            self.seed ^ 0x9e37_79b9_7f4a_7c15,
            self.instructions,
        )
    }

    /// Build the program, execute it, and collect the full trace.
    pub fn generate(&self) -> SyntheticTrace {
        let program = self.build_program();
        let mut walker = self.walk(&program);
        let records: Vec<BranchRecord> = walker.by_ref().collect();
        SyntheticTrace {
            spec: self.clone(),
            code_bytes: program.code_bytes(),
            instructions: walker.instructions(),
            records,
        }
    }

    /// Prepare the workload for repeated *streaming* replay.
    ///
    /// Builds the program and performs one counting walk to learn the
    /// exact instruction total (the simulator sizes its warm-up window
    /// from it), but never materializes the record vector: a 100 M+
    /// instruction trace costs the program's footprint plus walker state
    /// instead of gigabytes of `Vec<BranchRecord>`. Each
    /// [`StreamedTrace::replay`] call restarts the deterministic walk, so
    /// the record stream is bit-identical to [`WorkloadSpec::generate`].
    pub fn streamed(&self) -> StreamedTrace {
        let program = self.build_program();
        let mut walker = self.walk(&program);
        for _ in walker.by_ref() {}
        StreamedTrace {
            spec: self.clone(),
            code_bytes: program.code_bytes(),
            instructions: walker.instructions(),
            program,
        }
    }
}

/// A fully materialized synthetic trace.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticTrace {
    /// The spec that produced this trace.
    pub spec: WorkloadSpec,
    /// Static code footprint of the underlying program, in bytes.
    pub code_bytes: u64,
    /// Total instructions implied by the records (branches + sequential).
    pub instructions: u64,
    /// The branch records, in program order.
    pub records: Vec<BranchRecord>,
}

impl SyntheticTrace {
    /// Workload name shorthand.
    pub fn name(&self) -> &str {
        &self.spec.name
    }
}

/// A workload prepared for streaming replay: the static program plus the
/// exact instruction count, with **no** materialized record vector.
///
/// Produced by [`WorkloadSpec::streamed`]. Every [`StreamedTrace::replay`]
/// restarts the deterministic walk from the beginning, so multiple
/// passes (e.g. an offline-policy precompute pass followed by the
/// simulation pass) observe identical record streams.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamedTrace {
    spec: WorkloadSpec,
    program: Program,
    code_bytes: u64,
    instructions: u64,
}

impl StreamedTrace {
    /// Start a fresh walk over the records, in program order.
    pub fn replay(&self) -> Walker<'_> {
        self.spec.walk(&self.program)
    }

    /// Exact instruction total of the walk (branches + sequential).
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Static code footprint of the underlying program, in bytes.
    pub fn code_bytes(&self) -> u64 {
        self.code_bytes
    }

    /// The spec this workload was prepared from.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Workload name shorthand.
    pub fn name(&self) -> &str {
        &self.spec.name
    }
}

/// Build the standard mixed-category suite of `n` workload specs.
///
/// Categories interleave in the order SHORT-MOBILE, SHORT-SERVER,
/// LONG-MOBILE, LONG-SERVER so any prefix of the suite is a balanced mix.
/// Seeds derive from `base_seed` so suites are reproducible.
///
/// ```
/// let suite = fe_trace::synth::suite(8, 1234);
/// assert_eq!(suite.len(), 8);
/// assert_ne!(suite[0].category, suite[1].category);
/// ```
pub fn suite(n: usize, base_seed: u64) -> Vec<WorkloadSpec> {
    let order = [
        WorkloadCategory::ShortMobile,
        WorkloadCategory::ShortServer,
        WorkloadCategory::LongMobile,
        WorkloadCategory::LongServer,
    ];
    (0..n)
        .map(|i| {
            // lint:allow(pow2-mask): round-robin over a 4-category list, not a hardware structure
            let category = order[i % order.len()];
            WorkloadSpec::new(category, base_seed.wrapping_add(i as u64))
        })
        .collect()
}

/// Structural parameters drawn per workload from the category + seed.
///
/// Workloads have three code tiers with distinct reuse distances, which is
/// what gives real traces their policy ordering:
///
/// * **hot** — executed every request-loop iteration (short reuse
///   distance; LRU protects it, Random damages it);
/// * **warm** — handler pool dispatched with a heavy-tailed (log-uniform)
///   distribution: head handlers recur quickly, the tail recurs at medium
///   distances that only partially fit in cache;
/// * **cold** — a large pool swept round-robin: reuse distances far exceed
///   any cache, so every touch is dead-on-arrival pollution. Dead-block
///   policies win by evicting/bypassing exactly this tier.
#[derive(Debug, Clone)]
struct BuildParams {
    /// Target bytes of hot code (touched every outer iteration).
    hot_bytes: u64,
    /// Target bytes of the warm handler pool.
    warm_bytes: u64,
    /// Target bytes of the cold handler pool.
    cold_bytes: u64,
    n_util: usize,
    /// Hot inner-loop repetitions per dispatch phase.
    hot_repeat: u32,
    /// Warm handlers invoked per iteration.
    warm_fanout: usize,
    /// Cold handlers invoked per iteration.
    cold_fanout: usize,
    /// Loop trip-count range inside hot functions.
    loop_trips: (u32, u32),
    /// Region weights for hot functions: (straight, ifelse, loop, call,
    /// switch).
    hot_weights: [f64; 5],
    /// Region weights for warm/cold handlers (streaming code: few loops).
    handler_weights: [f64; 5],
}

impl BuildParams {
    fn draw(category: WorkloadCategory, rng: &mut SmallRng) -> BuildParams {
        match category {
            WorkloadCategory::ShortMobile | WorkloadCategory::LongMobile => BuildParams {
                // A spread of mobile footprints: many fit in a 64 KB cache
                // (near-zero MPKI), some exceed the small 8–16 KB configs.
                hot_bytes: rng.gen_range(3_000..32_000),
                warm_bytes: rng.gen_range(6_000..48_000),
                cold_bytes: rng.gen_range(16_000..128_000),
                n_util: rng.gen_range(3..8),
                hot_repeat: rng.gen_range(2..6),
                warm_fanout: rng.gen_range(1..3),
                cold_fanout: rng.gen_range(1..4),
                loop_trips: (4, 48),
                hot_weights: [0.20, 0.20, 0.38, 0.14, 0.08],
                handler_weights: [0.34, 0.26, 0.12, 0.16, 0.12],
            },
            WorkloadCategory::ShortServer | WorkloadCategory::LongServer => BuildParams {
                // Server hot sets approach the 64 KB I-cache; warm + cold
                // pools far exceed it and the 4K-entry BTB. Per-iteration
                // work is kept small so a few million instructions give
                // hundreds of request iterations — enough generations per
                // block for dead-block predictors to train, as the paper's
                // hundred-million-instruction traces do at full scale.
                hot_bytes: rng.gen_range(6_000..24_000),
                warm_bytes: rng.gen_range(30_000..130_000),
                // The cold pool is sized so handlers recur every few dozen
                // iterations: far beyond cache reach (dead-on-arrival) yet
                // often enough that a few million instructions give each
                // (block, path) signature several generations to train —
                // standing in for the paper's 100M–1B-instruction traces.
                cold_bytes: rng.gen_range(100_000..260_000),
                n_util: rng.gen_range(8..20),
                hot_repeat: 1,
                warm_fanout: rng.gen_range(2..5),
                // Cold streaming dominates per-set traffic between warm
                // reuses, giving dead-block replacement depth to exploit.
                cold_fanout: rng.gen_range(5..13),
                loop_trips: (2, 8),
                hot_weights: [0.30, 0.26, 0.14, 0.20, 0.10],
                // Handlers are straight-line streaming code with few
                // calls: shared-callee call sites multiply the distinct
                // paths per block, and excessive path diversity (relative
                // to the 4,096-entry tables) is what real instruction
                // streams do not have.
                handler_weights: [0.52, 0.18, 0.08, 0.08, 0.14],
            },
        }
    }
}

/// Size class of a generated function, in regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SizeClass {
    Util,
    Hot,
    /// Warm or cold handler: streaming, loop-light code.
    Handler,
}

impl SizeClass {
    fn regions(self, rng: &mut SmallRng) -> usize {
        match self {
            SizeClass::Util => rng.gen_range(2..5),
            SizeClass::Hot => rng.gen_range(6..16),
            SizeClass::Handler => rng.gen_range(4..14),
        }
    }
}

/// Builds a [`Program`] for a workload category from a seed.
#[derive(Debug)]
struct ProgramBuilder {
    rng: SmallRng,
    params: BuildParams,
    functions: Vec<Function>,
}

impl ProgramBuilder {
    fn new(category: WorkloadCategory, seed: u64) -> ProgramBuilder {
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0x5851_f42d_4c95_7f2d));
        let params = BuildParams::draw(category, &mut rng);
        ProgramBuilder {
            rng,
            params,
            functions: Vec::new(),
        }
    }

    fn build(mut self) -> Program {
        // Layer 1: leaf utility functions (no callees).
        let utils: Vec<FuncId> = (0..self.params.n_util)
            .map(|_| self.add_function(SizeClass::Util, &[]))
            .collect();

        // Layer 2: hot worker functions plus warm and cold handler pools,
        // all calling utilities.
        let avg_hot = 1_000u64;
        let avg_handler = 800u64;
        let n_hot = (self.params.hot_bytes / avg_hot).clamp(2, 200) as usize;
        let n_warm = (self.params.warm_bytes / avg_handler).clamp(4, 1500) as usize;
        let n_cold = (self.params.cold_bytes / avg_handler).clamp(4, 2000) as usize;
        let hot: Vec<FuncId> = (0..n_hot)
            .map(|_| self.add_function(SizeClass::Hot, &utils))
            .collect();
        let warm: Vec<FuncId> = (0..n_warm)
            .map(|_| self.add_function(SizeClass::Handler, &utils))
            .collect();
        let cold: Vec<FuncId> = (0..n_cold)
            .map(|_| self.add_function(SizeClass::Handler, &utils))
            .collect();

        // Layer 3: the entry function — an infinite request loop:
        //   repeat hot_repeat times: call the hot functions (with skips);
        //   dispatch warm handlers (heavy-tailed) and cold handlers
        //   (round-robin sweep).
        let entry = self.add_entry(&hot, &warm, &cold);

        let mut program = Program {
            functions: self.functions,
            entry,
        };
        program.assign_addresses();
        debug_assert_eq!(program.validate(), Ok(()));
        program
    }

    fn add_function(&mut self, class: SizeClass, callees: &[FuncId]) -> FuncId {
        let n_regions = class.regions(&mut self.rng);
        let weights = if class == SizeClass::Handler {
            self.params.handler_weights
        } else {
            self.params.hot_weights
        };
        let mut blocks: Vec<Block> = Vec::new();
        for _ in 0..n_regions {
            self.push_region(&mut blocks, callees, weights);
        }
        blocks.push(Block {
            start: 0,
            n_instr: self.block_len(),
            term: Terminator::Return,
        });
        let id = self.functions.len();
        self.functions.push(Function { base: 0, blocks });
        id
    }

    fn block_len(&mut self) -> u32 {
        self.rng.gen_range(2..=12)
    }

    /// Append one structured region. Every region leaves control flowing
    /// into the next block to be appended.
    // One match arm per region shape; splitting them would scatter the
    // region grammar across helper functions.
    #[allow(clippy::too_many_lines)]
    fn push_region(&mut self, blocks: &mut Vec<Block>, callees: &[FuncId], w: [f64; 5]) {
        let mut pick = self.rng.gen_range(0.0..w.iter().sum::<f64>());
        let mut kind = 0usize;
        for (i, wi) in w.iter().enumerate() {
            if pick < *wi {
                kind = i;
                break;
            }
            pick -= wi;
        }
        // Degrade call regions to straight-line when no callees exist.
        if kind == 3 && callees.is_empty() {
            kind = 0;
        }
        let i = blocks.len();
        match kind {
            // Straight: one block jumping to the next region.
            0 => blocks.push(Block {
                start: 0,
                n_instr: self.block_len(),
                term: Terminator::Jump { target: i + 1 },
            }),
            // If/else diamond.
            1 => {
                let p = if self.rng.gen_bool(0.12) {
                    // A small fraction of conditionals are weakly biased
                    // (data-dependent); the rest are strongly biased —
                    // "most branches are highly biased to be taken or not
                    // taken" (§III.E). Strong bias also keeps the global
                    // *path* of accesses repeatable, which is the signal
                    // GHRP's signatures rely on.
                    self.rng.gen_range(0.35..0.65)
                } else if self.rng.gen_bool(0.5) {
                    self.rng.gen_range(0.01..0.06)
                } else {
                    self.rng.gen_range(0.94..0.99)
                };
                blocks.push(Block {
                    start: 0,
                    n_instr: self.block_len(),
                    term: Terminator::Cond {
                        target: i + 2,
                        bias: Bias::TakenP(p),
                    },
                });
                blocks.push(Block {
                    start: 0,
                    n_instr: self.block_len(),
                    term: Terminator::Jump { target: i + 3 },
                });
                blocks.push(Block {
                    start: 0,
                    n_instr: self.block_len(),
                    term: Terminator::Jump { target: i + 3 },
                });
            }
            // Loop: one- or two-block body with a counted or random latch.
            2 => {
                let (lo, hi) = self.params.loop_trips;
                let bias = if self.rng.gen_bool(0.5) {
                    Bias::Loop {
                        trips: self.rng.gen_range(lo..=hi),
                    }
                } else {
                    Bias::LoopRandom { min: lo, max: hi }
                };
                if self.rng.gen_bool(0.35) && !callees.is_empty() {
                    // Loop body containing a call.
                    let callee = callees[self.rng.gen_range(0..callees.len())];
                    blocks.push(Block {
                        start: 0,
                        n_instr: self.block_len(),
                        term: Terminator::Call { callee },
                    });
                    blocks.push(Block {
                        start: 0,
                        n_instr: self.block_len(),
                        term: Terminator::Cond { target: i, bias },
                    });
                } else {
                    blocks.push(Block {
                        start: 0,
                        n_instr: self.block_len(),
                        term: Terminator::Cond { target: i, bias },
                    });
                }
            }
            // Call region.
            3 => {
                let callee = callees[self.rng.gen_range(0..callees.len())];
                blocks.push(Block {
                    start: 0,
                    n_instr: self.block_len(),
                    term: Terminator::Call { callee },
                });
            }
            // Switch: 2–5 case blocks.
            _ => {
                let k = self.rng.gen_range(2..=5);
                let join = i + 1 + k;
                blocks.push(Block {
                    start: 0,
                    n_instr: self.block_len(),
                    term: Terminator::IndirectJump {
                        targets: (i + 1..=i + k).collect(),
                        select: if self.rng.gen_bool(0.8) {
                            Select::Skewed
                        } else {
                            Select::Random
                        },
                    },
                });
                for _ in 0..k {
                    blocks.push(Block {
                        start: 0,
                        n_instr: self.block_len(),
                        term: Terminator::Jump { target: join },
                    });
                }
            }
        }
    }

    fn add_entry(&mut self, hot: &[FuncId], warm: &[FuncId], cold: &[FuncId]) -> FuncId {
        let mut blocks: Vec<Block> = Vec::new();
        // Prologue.
        blocks.push(Block {
            start: 0,
            n_instr: self.block_len(),
            term: Terminator::Jump { target: 1 },
        });
        let loop_head = blocks.len();
        // Hot phase: call the hot functions, each guarded by a biased
        // skip branch. The random subset breaks the strict cyclic order
        // that would make the hot loop pathological for LRU; real request
        // loops take data-dependent early exits the same way.
        for &h in hot {
            let i = blocks.len();
            let skip_p = self.rng.gen_range(0.05..0.35);
            blocks.push(Block {
                start: 0,
                n_instr: self.block_len(),
                term: Terminator::Cond {
                    target: i + 2,
                    bias: Bias::TakenP(skip_p),
                },
            });
            blocks.push(Block {
                start: 0,
                n_instr: self.block_len(),
                term: Terminator::Call { callee: h },
            });
        }
        // Inner repeat latch around the hot phase.
        let hot_latch = blocks.len();
        blocks.push(Block {
            start: 0,
            n_instr: self.block_len(),
            term: Terminator::Cond {
                target: loop_head,
                bias: Bias::Loop {
                    trips: self.params.hot_repeat,
                },
            },
        });
        debug_assert_eq!(hot_latch + 1, blocks.len());
        // Warm dispatch phase. Each site owns a disjoint slice of the warm
        // pool and round-robins over it, so a slice of size k recurs every
        // k iterations: small slices behave like extended hot code, large
        // slices sit just beyond LRU reach — the band where dead-block
        // replacement pays off. One site keeps a heavy-tailed selection
        // over the whole pool for realism (data-dependent dispatch).
        let sites = self.params.warm_fanout.max(1);
        let mut cut = 0usize;
        for s in 0..sites {
            let remaining_sites = sites - s;
            let remaining = warm.len() - cut;
            let take = if remaining_sites == 1 {
                remaining
            } else {
                let mean = remaining / remaining_sites;
                self.rng
                    .gen_range((mean / 2).max(1)..=(mean * 3 / 2).max(2))
                    .min(remaining)
            };
            let slice: Vec<FuncId> = warm[cut..cut + take.max(1)].to_vec();
            cut += take.max(1).min(remaining);
            let select = if s == 0 && sites > 1 {
                Select::LogUniform
            } else {
                Select::Rotate
            };
            let callees = if select == Select::LogUniform {
                warm.to_vec()
            } else {
                slice
            };
            blocks.push(Block {
                start: 0,
                n_instr: self.block_len(),
                term: Terminator::IndirectCall { callees, select },
            });
        }
        // Cold dispatch phase: round-robin sweep of the big pool; reuse
        // distances exceed any cache, so this tier is dead-on-arrival.
        for _ in 0..self.params.cold_fanout {
            blocks.push(Block {
                start: 0,
                n_instr: self.block_len(),
                term: Terminator::IndirectCall {
                    callees: cold.to_vec(),
                    select: Select::Rotate,
                },
            });
        }
        // Outer infinite latch.
        blocks.push(Block {
            start: 0,
            n_instr: self.block_len(),
            term: Terminator::Cond {
                target: loop_head,
                bias: Bias::AlwaysTaken,
            },
        });
        // Unreachable return keeps the conditional-latch invariant
        // (conditionals must have a fall-through block).
        blocks.push(Block {
            start: 0,
            n_instr: 1,
            term: Terminator::Return,
        });
        let id = self.functions.len();
        self.functions.push(Function { base: 0, blocks });
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::BranchKind;

    #[test]
    fn programs_validate_for_all_categories() {
        for (i, cat) in WorkloadCategory::ALL.iter().enumerate() {
            for seed in 0..8u64 {
                let p = WorkloadSpec::new(*cat, seed * 31 + i as u64).build_program();
                assert_eq!(p.validate(), Ok(()), "category {cat}, seed {seed}");
            }
        }
    }

    #[test]
    fn server_footprint_exceeds_mobile() {
        let mobile = WorkloadSpec::new(WorkloadCategory::ShortMobile, 7).build_program();
        let server = WorkloadSpec::new(WorkloadCategory::ShortServer, 7).build_program();
        assert!(
            server.code_bytes() > mobile.code_bytes(),
            "server {} <= mobile {}",
            server.code_bytes(),
            mobile.code_bytes()
        );
        assert!(server.code_bytes() > 100_000);
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = WorkloadSpec::new(WorkloadCategory::ShortMobile, 5).instructions(50_000);
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a.records, b.records);
        assert_eq!(a.instructions, b.instructions);
    }

    #[test]
    fn budget_respected_approximately() {
        let spec = WorkloadSpec::new(WorkloadCategory::ShortServer, 3).instructions(200_000);
        let t = spec.generate();
        assert!(t.instructions >= 200_000);
        assert!(t.instructions < 200_000 + 64, "overshoot too large");
    }

    #[test]
    fn traces_contain_all_major_branch_kinds() {
        let spec = WorkloadSpec::new(WorkloadCategory::ShortServer, 11).instructions(300_000);
        let t = spec.generate();
        let mut seen = std::collections::HashSet::new();
        for r in &t.records {
            seen.insert(r.kind);
        }
        for k in [
            BranchKind::CondDirect,
            BranchKind::UncondDirect,
            BranchKind::Call,
            BranchKind::Return,
            BranchKind::IndirectCall,
        ] {
            assert!(seen.contains(&k), "missing {k}");
        }
    }

    #[test]
    fn branch_density_is_realistic() {
        // Real instruction streams have roughly one branch per 4–10
        // instructions.
        for cat in WorkloadCategory::ALL {
            let t = WorkloadSpec::new(cat, 17).instructions(100_000).generate();
            let per_branch = t.instructions as f64 / t.records.len() as f64;
            assert!(
                (3.0..14.0).contains(&per_branch),
                "{cat}: {per_branch:.1} instructions per branch"
            );
        }
    }

    #[test]
    fn conditional_mix_is_dominant() {
        let t = WorkloadSpec::new(WorkloadCategory::LongMobile, 23)
            .instructions(100_000)
            .generate();
        let cond = t
            .records
            .iter()
            .filter(|r| r.kind == BranchKind::CondDirect)
            .count();
        let frac = cond as f64 / t.records.len() as f64;
        assert!(frac > 0.3, "conditional fraction {frac:.2} too low");
    }

    #[test]
    fn suite_is_balanced_and_reproducible() {
        let a = suite(12, 99);
        let b = suite(12, 99);
        assert_eq!(a, b);
        let servers = a.iter().filter(|s| s.category.is_server()).count();
        assert_eq!(servers, 6);
        // Names are unique.
        let names: std::collections::HashSet<_> = a.iter().map(|s| &s.name).collect();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn walk_matches_generate() {
        let spec = WorkloadSpec::new(WorkloadCategory::ShortMobile, 2).instructions(20_000);
        let program = spec.build_program();
        let streamed: Vec<_> = spec.walk(&program).collect();
        let collected = spec.generate();
        assert_eq!(streamed, collected.records);
    }

    #[test]
    fn streamed_matches_generate_and_replays_identically() {
        let spec = WorkloadSpec::new(WorkloadCategory::ShortServer, 9).instructions(30_000);
        let streamed = spec.streamed();
        let collected = spec.generate();
        assert_eq!(streamed.instructions(), collected.instructions);
        assert_eq!(streamed.code_bytes(), collected.code_bytes);
        let first: Vec<_> = streamed.replay().collect();
        assert_eq!(first, collected.records);
        // Replays restart from the beginning, bit-identically.
        let second: Vec<_> = streamed.replay().collect();
        assert_eq!(first, second);
    }

    #[test]
    fn distinct_seeds_give_distinct_programs() {
        let a = WorkloadSpec::new(WorkloadCategory::ShortServer, 1).build_program();
        let b = WorkloadSpec::new(WorkloadCategory::ShortServer, 2).build_program();
        assert_ne!(a, b);
    }
}
