//! Static program model for synthetic workloads.
//!
//! A [`Program`] is a call graph of [`Function`]s, each a list of
//! [`Block`]s ending in a [`Terminator`]. The model is *static*: it describes
//! code layout and control structure; [`crate::synth::walker::Walker`]
//! executes it to produce a branch trace.
//!
//! The generator builds structured control flow — straight-line regions,
//! if/else diamonds, counted and random loops, switches (indirect jumps),
//! direct and indirect calls — because GHRP's premise is that *paths of
//! instruction addresses correlate with reuse*. Unstructured random branching
//! would erase exactly the signal the paper measures.

#![forbid(unsafe_code)]

use crate::record::INSTRUCTION_BYTES;
use rand::rngs::SmallRng;
use rand::Rng;

/// Index of a function within a [`Program`].
pub type FuncId = usize;
/// Index of a block within a [`Function`].
pub type BlockId = usize;

/// Base address of the synthetic text segment.
pub const TEXT_BASE: u64 = 0x0001_0000;
/// Alignment of function entry points, in bytes.
pub const FUNC_ALIGN: u64 = 64;

/// How a conditional branch decides its direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Bias {
    /// Taken with fixed probability `p` on each execution.
    TakenP(f64),
    /// Counted loop back edge: taken `trips` times per loop entry, then
    /// not taken once (loop exit).
    Loop {
        /// Iterations per entry to the loop.
        trips: u32,
    },
    /// Loop back edge with a per-entry random trip count in
    /// `min..=max` — models data-dependent loops.
    LoopRandom {
        /// Minimum trip count (inclusive).
        min: u32,
        /// Maximum trip count (inclusive).
        max: u32,
    },
    /// Periodic: taken for `period` executions, then not taken for
    /// `period`, repeating. Models alternating data-dependent branches.
    Alternate {
        /// Half-period length in executions.
        period: u32,
    },
    /// Always taken (infinite loops, e.g. a server's dispatch loop).
    AlwaysTaken,
}

/// How an indirect branch selects among its targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Select {
    /// Uniformly random each execution.
    Random,
    /// Round-robin over the target list — models request dispatch that
    /// sweeps a large, flat code footprint (the server-trace pattern that
    /// pressures the I-cache and BTB).
    Rotate,
    /// Heavily skewed: target 0 with high probability, others uniform.
    Skewed,
    /// Log-uniform (Zipf-like) over the target list: low indices are hot,
    /// the tail is swept occasionally. This gives dispatch the *temporal
    /// locality* real request streams have — recently used handlers are
    /// likely to run again — which is what makes LRU a strong baseline.
    LogUniform,
}

/// The branch instruction terminating a block.
///
/// Every block ends in exactly one branch, matching the trace format (one
/// record per branch; sequential instructions are implicit).
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// Conditional direct branch to `target`; falls through to the next
    /// block when not taken.
    Cond {
        /// Taken-path block within the same function.
        target: BlockId,
        /// Direction behaviour.
        bias: Bias,
    },
    /// Unconditional direct jump within the same function.
    Jump {
        /// Destination block.
        target: BlockId,
    },
    /// Direct call; execution resumes at the next block after the callee
    /// returns.
    Call {
        /// Called function.
        callee: FuncId,
    },
    /// Indirect call through a table of possible callees.
    IndirectCall {
        /// Candidate callees.
        callees: Vec<FuncId>,
        /// Selection mode.
        select: Select,
    },
    /// Indirect jump (switch) within the same function.
    IndirectJump {
        /// Candidate destination blocks.
        targets: Vec<BlockId>,
        /// Selection mode.
        select: Select,
    },
    /// Return to the caller.
    Return,
}

/// A basic block: `n_instr` sequential instructions, the last of which is
/// the terminator branch.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Address of the first instruction. Assigned by
    /// [`Program::assign_addresses`].
    pub start: u64,
    /// Number of instructions including the terminator (≥ 1).
    pub n_instr: u32,
    /// The branch ending the block.
    pub term: Terminator,
}

impl Block {
    /// Address of the terminator branch instruction.
    pub fn branch_pc(&self) -> u64 {
        self.start + u64::from(self.n_instr - 1) * INSTRUCTION_BYTES
    }

    /// Address of the instruction after the block (fall-through target).
    pub fn end(&self) -> u64 {
        self.start + u64::from(self.n_instr) * INSTRUCTION_BYTES
    }
}

/// A function: contiguous blocks, entered at block 0.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Entry address (== `blocks[0].start` once addresses are assigned).
    pub base: u64,
    /// Blocks in layout order.
    pub blocks: Vec<Block>,
}

impl Function {
    /// Total code size in bytes.
    pub fn code_bytes(&self) -> u64 {
        self.blocks
            .iter()
            .map(|b| u64::from(b.n_instr) * INSTRUCTION_BYTES)
            .sum()
    }
}

/// A complete synthetic program.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// All functions; indices are [`FuncId`]s.
    pub functions: Vec<Function>,
    /// The function where execution starts (its outer loop never exits).
    pub entry: FuncId,
}

impl Program {
    /// Lay the functions out in the text segment and fill in all block
    /// `start` addresses. Called once by the builder.
    pub fn assign_addresses(&mut self) {
        let mut cursor = TEXT_BASE;
        for f in &mut self.functions {
            cursor = (cursor + FUNC_ALIGN - 1) & !(FUNC_ALIGN - 1);
            f.base = cursor;
            for b in &mut f.blocks {
                b.start = cursor;
                cursor += u64::from(b.n_instr) * INSTRUCTION_BYTES;
            }
        }
    }

    /// Total instruction-footprint of the program in bytes.
    pub fn code_bytes(&self) -> u64 {
        self.functions.iter().map(Function::code_bytes).sum()
    }

    /// Validate structural invariants; used by tests and debug assertions.
    ///
    /// Checks that every block target exists, every callee exists, blocks
    /// are non-empty, addresses are strictly increasing, and conditional
    /// fall-throughs stay in range.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.entry >= self.functions.len() {
            return Err(format!("entry function {} out of range", self.entry));
        }
        let mut prev_end = 0u64;
        for (fi, f) in self.functions.iter().enumerate() {
            if f.blocks.is_empty() {
                return Err(format!("function {fi} has no blocks"));
            }
            if f.base != f.blocks[0].start {
                return Err(format!("function {fi} base != first block start"));
            }
            for (bi, b) in f.blocks.iter().enumerate() {
                if b.n_instr == 0 {
                    return Err(format!("function {fi} block {bi} is empty"));
                }
                if b.start < prev_end {
                    return Err(format!("function {fi} block {bi} overlaps previous code"));
                }
                prev_end = b.end();
                let check_block = |t: BlockId| -> Result<(), String> {
                    if t >= f.blocks.len() {
                        Err(format!("function {fi} block {bi} targets bad block {t}"))
                    } else {
                        Ok(())
                    }
                };
                let check_func = |c: FuncId| -> Result<(), String> {
                    if c >= self.functions.len() {
                        Err(format!("function {fi} block {bi} calls bad function {c}"))
                    } else {
                        Ok(())
                    }
                };
                match &b.term {
                    Terminator::Cond { target, .. } => {
                        check_block(*target)?;
                        if bi + 1 >= f.blocks.len() {
                            return Err(format!(
                                "function {fi} block {bi}: conditional in last block has no fall-through"
                            ));
                        }
                    }
                    Terminator::Jump { target } => check_block(*target)?,
                    Terminator::Call { callee } => {
                        check_func(*callee)?;
                        if bi + 1 >= f.blocks.len() {
                            return Err(format!(
                                "function {fi} block {bi}: call in last block has no resume block"
                            ));
                        }
                    }
                    Terminator::IndirectCall { callees, .. } => {
                        if callees.is_empty() {
                            return Err(format!("function {fi} block {bi}: empty callee table"));
                        }
                        for c in callees {
                            check_func(*c)?;
                        }
                        if bi + 1 >= f.blocks.len() {
                            return Err(format!(
                                "function {fi} block {bi}: indirect call in last block has no resume block"
                            ));
                        }
                    }
                    Terminator::IndirectJump { targets, .. } => {
                        if targets.is_empty() {
                            return Err(format!("function {fi} block {bi}: empty jump table"));
                        }
                        for t in targets {
                            check_block(*t)?;
                        }
                    }
                    Terminator::Return => {}
                }
            }
        }
        Ok(())
    }
}

/// Pick from a slice according to a [`Select`] mode; `counter` carries
/// round-robin state across executions.
pub(crate) fn select_index(
    select: Select,
    len: usize,
    rng: &mut SmallRng,
    counter: &mut u32,
) -> usize {
    debug_assert!(len > 0);
    match select {
        Select::Random => rng.gen_range(0..len),
        Select::Rotate => {
            let i = (*counter as usize) % len;
            *counter = counter.wrapping_add(1);
            i
        }
        Select::Skewed => {
            if rng.gen_bool(0.75) || len == 1 {
                0
            } else {
                rng.gen_range(1..len)
            }
        }
        Select::LogUniform => {
            let u: f64 = rng.gen_range(0.0..1.0);
            let v = (len as f64 + 1.0).powf(u) - 1.0;
            // Truncation/sign-safe: v ∈ [0, len] by construction and is
            // clamped to [0, len-1] before the cast.
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let i = v.clamp(0.0, (len - 1) as f64) as usize;
            i
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn tiny_program() -> Program {
        // f0: loop { call f1 } ; f1: straight-line, return.
        let f0 = Function {
            base: 0,
            blocks: vec![
                Block {
                    start: 0,
                    n_instr: 4,
                    term: Terminator::Call { callee: 1 },
                },
                Block {
                    start: 0,
                    n_instr: 2,
                    term: Terminator::Cond {
                        target: 0,
                        bias: Bias::AlwaysTaken,
                    },
                },
                Block {
                    start: 0,
                    n_instr: 1,
                    term: Terminator::Return,
                },
            ],
        };
        let f1 = Function {
            base: 0,
            blocks: vec![Block {
                start: 0,
                n_instr: 8,
                term: Terminator::Return,
            }],
        };
        let mut p = Program {
            functions: vec![f0, f1],
            entry: 0,
        };
        p.assign_addresses();
        p
    }

    #[test]
    fn addresses_are_assigned_contiguously_per_function() {
        let p = tiny_program();
        let f0 = &p.functions[0];
        assert_eq!(f0.base, TEXT_BASE);
        assert_eq!(f0.blocks[0].start, TEXT_BASE);
        assert_eq!(f0.blocks[1].start, TEXT_BASE + 16);
        assert_eq!(f0.blocks[2].start, TEXT_BASE + 24);
        // f1 is aligned to FUNC_ALIGN after f0's 28 bytes.
        let f1 = &p.functions[1];
        assert_eq!(f1.base % FUNC_ALIGN, 0);
        assert!(f1.base >= f0.blocks[2].end());
    }

    #[test]
    fn validate_accepts_well_formed() {
        assert_eq!(tiny_program().validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_bad_target() {
        let mut p = tiny_program();
        p.functions[0].blocks[1].term = Terminator::Jump { target: 99 };
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_callee() {
        let mut p = tiny_program();
        p.functions[0].blocks[0].term = Terminator::Call { callee: 7 };
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_cond_in_last_block() {
        let mut p = tiny_program();
        let f1 = &mut p.functions[1];
        f1.blocks[0].term = Terminator::Cond {
            target: 0,
            bias: Bias::TakenP(0.5),
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_empty_block() {
        let mut p = tiny_program();
        p.functions[1].blocks[0].n_instr = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn branch_pc_is_last_slot() {
        let b = Block {
            start: 0x100,
            n_instr: 4,
            term: Terminator::Return,
        };
        assert_eq!(b.branch_pc(), 0x10c);
        assert_eq!(b.end(), 0x110);
    }

    #[test]
    fn code_bytes_sums_blocks() {
        let p = tiny_program();
        assert_eq!(p.functions[0].code_bytes(), (4 + 2 + 1) * 4);
        assert_eq!(p.code_bytes(), (4 + 2 + 1 + 8) * 4);
    }

    #[test]
    fn select_rotate_cycles() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut c = 0;
        let picks: Vec<usize> = (0..6)
            .map(|_| select_index(Select::Rotate, 3, &mut rng, &mut c))
            .collect();
        assert_eq!(picks, [0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn select_random_in_range() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut c = 0;
        for _ in 0..100 {
            let i = select_index(Select::Random, 5, &mut rng, &mut c);
            assert!(i < 5);
        }
    }

    #[test]
    fn select_skewed_prefers_zero() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut c = 0;
        let zeros = (0..1000)
            .filter(|_| select_index(Select::Skewed, 4, &mut rng, &mut c) == 0)
            .count();
        assert!(zeros > 600, "got {zeros} zeros out of 1000");
    }
}
