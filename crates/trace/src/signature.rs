//! Windowed execution signatures for phase-sampled simulation.
//!
//! SimPoint-style sampling slices a trace into fixed-size instruction
//! intervals, summarizes each interval by the control flow it executed,
//! clusters the summaries, and simulates only one representative per
//! cluster. This module provides the summarization half: a single pass
//! over a branch trace that
//!
//! * counts instructions exactly the way the fetch reconstruction does
//!   ([`crate::fetch::FetchStream`]: the sequential run from the previous
//!   branch's successor up to and including the branch PC), so interval
//!   boundaries line up with the engine's instruction counter;
//! * opens a new **base window** every [`BASE_WINDOW_INSTRUCTIONS`]
//!   instructions, aligned to a record boundary, remembering the first
//!   record index and exact instruction offset of each window so a
//!   replayer can seek straight to it;
//! * accumulates, per window, an instruction-weighted frequency histogram
//!   of basic-block leader addresses hashed into a fixed
//!   [`SIGNATURE_DIM`]-dimension vector (a hashed basic-block vector).
//!
//! Histograms are additive, so any coarser windowing (a sampling run that
//! wants, say, 32 windows over the whole trace) is an exact aggregation
//! of consecutive base windows — signatures are computed **once**, at
//! `corpus build` time, and persisted as a checksummed sidecar section of
//! the `.soa` format (see [`crate::corpus`]).
//!
//! Everything here is deterministic: fixed-seed hashing, index-ordered
//! iteration, integer accumulation. Two builds of the same trace produce
//! byte-identical sidecars.

#![forbid(unsafe_code)]

use crate::record::{BranchRecord, INSTRUCTION_BYTES};
use crate::TraceError;

/// Instructions per base window. Small enough that smoke-scale traces
/// (200 K instructions) still yield ~50 windows to cluster; coarser
/// sampling windows aggregate consecutive base windows exactly.
pub const BASE_WINDOW_INSTRUCTIONS: u64 = 4096;

/// Dimension of the hashed basic-block-leader frequency vector.
pub const SIGNATURE_DIM: u32 = 32;

/// Serialized sidecar header: base window, dim, window count, total
/// instructions, total records.
const SIG_HEADER_BYTES: usize = 32;

/// `SplitMix64`: the finalizer used both to hash leader addresses into
/// histogram buckets and to seed the deterministic clustering. Public so
/// every sampling component draws from one audited mixing function.
#[must_use]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One base window: where it starts, in records and in instructions.
/// Its histogram lives in the parent's flat `counts` array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowMeta {
    /// Index of the first branch record of this window.
    pub rec_start: u64,
    /// Exact instruction count at that record boundary (instructions
    /// executed before the window's first record).
    pub instr_start: u64,
}

/// Per-trace windowed signatures: base-window metadata plus one hashed
/// basic-block-leader histogram per window, in a flat row-major array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSignatures {
    base_window: u64,
    dim: u32,
    total_instructions: u64,
    total_records: u64,
    windows: Vec<WindowMeta>,
    /// `windows.len() * dim` bucket counts, window-major.
    counts: Vec<u32>,
}

impl TraceSignatures {
    /// Instructions per base window this trace was windowed with.
    #[must_use]
    pub fn base_window(&self) -> u64 {
        self.base_window
    }

    /// Histogram dimension.
    #[must_use]
    pub fn dim(&self) -> u32 {
        self.dim
    }

    /// Number of base windows.
    #[must_use]
    pub fn window_count(&self) -> usize {
        self.windows.len()
    }

    /// Exact instruction total of the windowed pass (matches
    /// [`crate::fetch::FetchStream::instructions`] over the same records).
    #[must_use]
    pub fn total_instructions(&self) -> u64 {
        self.total_instructions
    }

    /// Record total of the windowed pass.
    #[must_use]
    pub fn total_records(&self) -> u64 {
        self.total_records
    }

    /// Base-window metadata, in window order.
    #[must_use]
    pub fn windows(&self) -> &[WindowMeta] {
        &self.windows
    }

    /// The histogram row of base window `w` (length [`Self::dim`]).
    #[must_use]
    pub fn counts_of(&self, w: usize) -> &[u32] {
        let dim = self.dim as usize;
        self.counts.get(w * dim..(w + 1) * dim).unwrap_or(&[])
    }

    /// Aggregate consecutive base windows into coarser sampling windows
    /// of `group` base windows each (the last may be shorter), returning
    /// per-window `(rec_start, instr_start, instr_len)` plus an
    /// L1-normalized `f64` vector per window (flat, window-major).
    ///
    /// Histogram addition is exact, so grouping loses nothing relative
    /// to recomputing signatures at the coarser window size.
    #[must_use]
    pub fn grouped(&self, group: usize) -> GroupedWindows {
        let group = group.max(1);
        let dim = self.dim as usize;
        let n = self.windows.len();
        let mut meta = Vec::with_capacity(n.div_ceil(group));
        let mut vectors = Vec::with_capacity(n.div_ceil(group) * dim);
        let mut sum = vec![0u64; dim];
        let mut w = 0usize;
        while w < n {
            let hi = (w + group).min(n);
            let start = self.windows[w];
            let end_instr = if hi < n {
                self.windows[hi].instr_start
            } else {
                self.total_instructions
            };
            let end_rec = if hi < n {
                self.windows[hi].rec_start
            } else {
                self.total_records
            };
            sum.fill(0);
            for bw in w..hi {
                for (s, &c) in sum.iter_mut().zip(self.counts_of(bw)) {
                    *s += u64::from(c);
                }
            }
            let total: u64 = sum.iter().sum();
            let norm = if total == 0 { 1.0 } else { total as f64 };
            vectors.extend(sum.iter().map(|&s| s as f64 / norm));
            meta.push(GroupedWindow {
                rec_start: start.rec_start,
                rec_end: end_rec,
                instr_start: start.instr_start,
                instr_len: end_instr.saturating_sub(start.instr_start),
            });
            w = hi;
        }
        GroupedWindows {
            dim,
            windows: meta,
            vectors,
        }
    }

    /// Serialize to the sidecar byte layout (fixed little-endian header,
    /// window table, flat counts). Deterministic and platform-independent.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out =
            Vec::with_capacity(SIG_HEADER_BYTES + self.windows.len() * 16 + self.counts.len() * 4);
        out.extend_from_slice(&self.base_window.to_le_bytes());
        out.extend_from_slice(&self.dim.to_le_bytes());
        let nwindows = u32::try_from(self.windows.len()).unwrap_or(u32::MAX);
        out.extend_from_slice(&nwindows.to_le_bytes());
        out.extend_from_slice(&self.total_instructions.to_le_bytes());
        out.extend_from_slice(&self.total_records.to_le_bytes());
        for w in &self.windows {
            out.extend_from_slice(&w.rec_start.to_le_bytes());
            out.extend_from_slice(&w.instr_start.to_le_bytes());
        }
        for c in &self.counts {
            out.extend_from_slice(&c.to_le_bytes());
        }
        out
    }

    /// Parse a sidecar blob written by [`TraceSignatures::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::CorruptCorpus`] when the blob is truncated
    /// or its window/dimension geometry is inconsistent with its length.
    pub fn from_bytes(bytes: &[u8]) -> Result<TraceSignatures, TraceError> {
        let err = |what: &str| TraceError::CorruptCorpus(format!("signature sidecar: {what}"));
        let header = bytes
            .get(..SIG_HEADER_BYTES)
            .ok_or_else(|| err("truncated header"))?;
        let u64_at = |o: usize| {
            let mut a = [0u8; 8];
            a.copy_from_slice(&header[o..o + 8]);
            u64::from_le_bytes(a)
        };
        let base_window = u64_at(0);
        let dim = u32::from_le_bytes([header[8], header[9], header[10], header[11]]);
        let nwin = u32::from_le_bytes([header[12], header[13], header[14], header[15]]);
        let total_instructions = u64_at(16);
        let total_records = u64_at(24);
        if base_window == 0 || dim == 0 {
            return Err(err("zero base window or dimension"));
        }
        let nwin = nwin as usize;
        let table_len = nwin
            .checked_mul(16)
            .ok_or_else(|| err("window table length overflows"))?;
        let counts_len = nwin
            .checked_mul(dim as usize)
            .and_then(|n| n.checked_mul(4))
            .ok_or_else(|| err("counts length overflows"))?;
        let expect = SIG_HEADER_BYTES + table_len + counts_len;
        if bytes.len() != expect {
            return Err(err("length does not match window geometry"));
        }
        let mut windows = Vec::with_capacity(nwin);
        let table = &bytes[SIG_HEADER_BYTES..SIG_HEADER_BYTES + table_len];
        for row in table.chunks_exact(16) {
            let mut a = [0u8; 8];
            a.copy_from_slice(&row[..8]);
            let rec_start = u64::from_le_bytes(a);
            a.copy_from_slice(&row[8..16]);
            let instr_start = u64::from_le_bytes(a);
            windows.push(WindowMeta {
                rec_start,
                instr_start,
            });
        }
        let counts = bytes[SIG_HEADER_BYTES + table_len..]
            .chunks_exact(4)
            .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
            .collect();
        Ok(TraceSignatures {
            base_window,
            dim,
            total_instructions,
            total_records,
            windows,
            counts,
        })
    }
}

/// One aggregated sampling window (a run of consecutive base windows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupedWindow {
    /// First record index of the window.
    pub rec_start: u64,
    /// One past the last record index of the window.
    pub rec_end: u64,
    /// Instruction offset of the window start.
    pub instr_start: u64,
    /// Instructions in the window.
    pub instr_len: u64,
}

/// Aggregated sampling windows plus their L1-normalized signature
/// vectors (flat, window-major, `windows.len() * dim` values).
#[derive(Debug, Clone, PartialEq)]
pub struct GroupedWindows {
    /// Vector dimension.
    pub dim: usize,
    /// Window metadata, in trace order.
    pub windows: Vec<GroupedWindow>,
    /// Flat normalized vectors.
    pub vectors: Vec<f64>,
}

/// Compute windowed signatures in one pass over `records`.
///
/// Instruction accounting mirrors [`crate::fetch::FetchStream`] exactly:
/// each record contributes the sequential run from the current fetch PC
/// (the previous record's successor, or the record's own PC after a
/// discontinuity) up to and including its own PC. Each record's whole run
/// is attributed to the window containing the run's first instruction,
/// and its basic-block leader (the run's start address) is hashed into
/// the histogram with the run length as weight.
#[must_use]
pub fn compute_signatures(
    records: impl Iterator<Item = BranchRecord>,
    base_window: u64,
    dim: u32,
) -> TraceSignatures {
    let base_window = base_window.max(1);
    let dim = dim.max(1);
    let mut windows: Vec<WindowMeta> = Vec::new();
    let mut counts: Vec<u32> = Vec::new();
    let mut pc: Option<u64> = None;
    let mut instructions: u64 = 0;
    let mut records_seen: u64 = 0;
    for rec in records {
        // Open a window at the first record, and a new one whenever the
        // current window has accumulated a full base window.
        let open = match windows.last() {
            None => true,
            Some(w) => instructions - w.instr_start >= base_window,
        };
        if open {
            windows.push(WindowMeta {
                rec_start: records_seen,
                instr_start: instructions,
            });
            counts.resize(windows.len() * dim as usize, 0);
        }
        let start = match pc {
            Some(p) if p <= rec.pc => p,
            _ => rec.pc,
        };
        let run = (rec.pc - start) / INSTRUCTION_BYTES + 1;
        let bucket = usize::try_from(splitmix64(start) % u64::from(dim)).unwrap_or(0);
        let slot = (windows.len() - 1) * dim as usize + bucket;
        if let Some(c) = counts.get_mut(slot) {
            *c = c.saturating_add(u32::try_from(run.min(u64::from(u32::MAX))).unwrap_or(u32::MAX));
        }
        // Saturate: adversarial PCs can make a single run absurdly long;
        // windowing degrades gracefully instead of overflowing.
        instructions = instructions.saturating_add(run);
        pc = Some(rec.successor());
        records_seen += 1;
    }
    TraceSignatures {
        base_window,
        dim,
        total_instructions: instructions,
        total_records: records_seen,
        windows,
        counts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fetch::FetchStream;
    use crate::synth::{WorkloadCategory, WorkloadSpec};

    #[test]
    fn instruction_accounting_matches_fetch_stream() {
        for (cat, seed) in [
            (WorkloadCategory::ShortMobile, 3u64),
            (WorkloadCategory::LongServer, 11),
        ] {
            let trace = WorkloadSpec::new(cat, seed).instructions(60_000).generate();
            let sigs = compute_signatures(
                trace.records.iter().copied(),
                BASE_WINDOW_INSTRUCTIONS,
                SIGNATURE_DIM,
            );
            let mut fs = FetchStream::new(trace.records.iter().copied(), 64);
            while fs.next().is_some() {}
            assert_eq!(sigs.total_instructions(), fs.instructions());
            assert_eq!(sigs.total_records(), trace.records.len() as u64);
        }
    }

    #[test]
    fn windows_are_record_aligned_and_ordered() {
        let trace = WorkloadSpec::new(WorkloadCategory::ShortServer, 5)
            .instructions(50_000)
            .generate();
        let sigs = compute_signatures(trace.records.iter().copied(), 4096, 32);
        assert!(sigs.window_count() >= 10, "expected ~12 windows");
        for pair in sigs.windows().windows(2) {
            assert!(pair[0].rec_start < pair[1].rec_start);
            assert!(pair[1].instr_start - pair[0].instr_start >= 4096);
        }
        // Every window's histogram mass equals the instructions between
        // its boundary and the next.
        for (w, meta) in sigs.windows().iter().enumerate() {
            let mass: u64 = sigs.counts_of(w).iter().map(|&c| u64::from(c)).sum();
            let end = sigs
                .windows()
                .get(w + 1)
                .map_or(sigs.total_instructions(), |m| m.instr_start);
            assert_eq!(mass, end - meta.instr_start, "window {w}");
        }
    }

    #[test]
    fn roundtrip_is_byte_identical() {
        let trace = WorkloadSpec::new(WorkloadCategory::LongMobile, 7)
            .instructions(30_000)
            .generate();
        let sigs = compute_signatures(trace.records.iter().copied(), 4096, 32);
        let bytes = sigs.to_bytes();
        let back = TraceSignatures::from_bytes(&bytes).unwrap();
        assert_eq!(back, sigs);
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn truncated_or_inconsistent_blob_rejected() {
        let trace = WorkloadSpec::new(WorkloadCategory::ShortMobile, 1)
            .instructions(10_000)
            .generate();
        let bytes = compute_signatures(trace.records.iter().copied(), 4096, 16).to_bytes();
        assert!(TraceSignatures::from_bytes(&bytes[..10]).is_err());
        assert!(TraceSignatures::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(TraceSignatures::from_bytes(&padded).is_err());
    }

    #[test]
    fn grouping_conserves_mass_and_geometry() {
        let trace = WorkloadSpec::new(WorkloadCategory::ShortServer, 9)
            .instructions(80_000)
            .generate();
        let sigs = compute_signatures(trace.records.iter().copied(), 4096, 32);
        for group in [1usize, 2, 3, 7, 1000] {
            let g = sigs.grouped(group);
            assert_eq!(g.windows.len(), sigs.window_count().div_ceil(group));
            // Windows tile the trace: contiguous in records and instructions.
            assert_eq!(g.windows[0].rec_start, 0);
            for pair in g.windows.windows(2) {
                assert_eq!(pair[0].rec_end, pair[1].rec_start);
                assert_eq!(pair[0].instr_start + pair[0].instr_len, pair[1].instr_start);
            }
            let last = g.windows.last().unwrap();
            assert_eq!(last.rec_end, sigs.total_records());
            assert_eq!(last.instr_start + last.instr_len, sigs.total_instructions());
            // Vectors are L1-normalized.
            for w in 0..g.windows.len() {
                let s: f64 = g.vectors[w * g.dim..(w + 1) * g.dim].iter().sum();
                assert!((s - 1.0).abs() < 1e-9, "group {group} window {w}: {s}");
            }
        }
    }

    #[test]
    fn empty_trace_yields_no_windows() {
        let sigs = compute_signatures(std::iter::empty(), 4096, 32);
        assert_eq!(sigs.window_count(), 0);
        assert_eq!(sigs.total_instructions(), 0);
        let back = TraceSignatures::from_bytes(&sigs.to_bytes()).unwrap();
        assert_eq!(back, sigs);
    }

    #[test]
    fn splitmix_spreads_buckets() {
        // Not a statistical test — just pin that distinct leaders spread
        // over more than a couple of buckets and hashing is stable.
        let mut used = std::collections::BTreeSet::new();
        for i in 0..64u64 {
            used.insert(splitmix64(0x1000 + i * 4) % 32);
        }
        assert!(used.len() > 16, "only {} buckets used", used.len());
        assert_eq!(splitmix64(0), splitmix64(0));
    }
}
