//! Descriptive statistics over a branch trace.

#![forbid(unsafe_code)]

use crate::fetch::FetchStream;
use crate::record::{BranchKind, BranchRecord};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Summary statistics for a trace, as reported by [`TraceStats::compute`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Total branch records.
    pub branches: u64,
    /// Total instructions (branches + implied sequential instructions).
    pub instructions: u64,
    /// Branch count per [`BranchKind`], indexed by discriminant.
    pub by_kind: [u64; 6],
    /// Fraction of conditional branches that were taken.
    pub cond_taken_rate: f64,
    /// Number of distinct branch-site PCs.
    pub distinct_branch_pcs: u64,
    /// Number of distinct 64-byte instruction blocks touched (dynamic code
    /// footprint in blocks).
    pub distinct_blocks_64b: u64,
}

impl TraceStats {
    /// Compute statistics over `records`.
    ///
    /// ```
    /// use fe_trace::{BranchKind, BranchRecord, TraceStats};
    /// let recs = [BranchRecord::new(0x104, BranchKind::CondDirect, true, 0x100)];
    /// let s = TraceStats::compute(&recs);
    /// assert_eq!(s.branches, 1);
    /// assert_eq!(s.cond_taken_rate, 1.0);
    /// ```
    pub fn compute(records: &[BranchRecord]) -> TraceStats {
        let mut by_kind = [0u64; 6];
        let mut cond_taken = 0u64;
        let mut pcs: HashSet<u64> = HashSet::new();
        for r in records {
            by_kind[r.kind.index()] += 1;
            if r.kind == BranchKind::CondDirect && r.taken {
                cond_taken += 1;
            }
            pcs.insert(r.pc);
        }
        let mut blocks: HashSet<u64> = HashSet::new();
        let mut fs = FetchStream::new(records.iter().copied(), 64);
        for chunk in fs.by_ref() {
            blocks.insert(chunk.block_addr);
        }
        let conds = by_kind[BranchKind::CondDirect.index()];
        TraceStats {
            branches: records.len() as u64,
            instructions: fs.instructions(),
            by_kind,
            cond_taken_rate: if conds == 0 {
                0.0
            } else {
                cond_taken as f64 / conds as f64
            },
            distinct_branch_pcs: pcs.len() as u64,
            distinct_blocks_64b: blocks.len() as u64,
        }
    }

    /// Dynamic code footprint in bytes (distinct 64-byte blocks × 64).
    pub fn footprint_bytes(&self) -> u64 {
        self.distinct_blocks_64b * 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{WorkloadCategory, WorkloadSpec};

    #[test]
    fn empty_trace_stats_are_zero() {
        let s = TraceStats::compute(&[]);
        assert_eq!(s.branches, 0);
        assert_eq!(s.instructions, 0);
        assert!(s.cond_taken_rate.abs() < f64::EPSILON);
        assert_eq!(s.footprint_bytes(), 0);
    }

    #[test]
    fn kind_histogram_counts() {
        let recs = [
            BranchRecord::new(0x100, BranchKind::CondDirect, true, 0x80),
            BranchRecord::new(0x84, BranchKind::CondDirect, false, 0x200),
            BranchRecord::new(0x88, BranchKind::Call, true, 0x400),
            BranchRecord::new(0x404, BranchKind::Return, true, 0x8c),
        ];
        let s = TraceStats::compute(&recs);
        assert_eq!(s.by_kind[BranchKind::CondDirect.index()], 2);
        assert_eq!(s.by_kind[BranchKind::Call.index()], 1);
        assert_eq!(s.by_kind[BranchKind::Return.index()], 1);
        assert!((s.cond_taken_rate - 0.5).abs() < f64::EPSILON);
        assert_eq!(s.distinct_branch_pcs, 4);
    }

    #[test]
    fn server_footprint_larger_than_mobile() {
        let m = WorkloadSpec::new(WorkloadCategory::ShortMobile, 1)
            .instructions(150_000)
            .generate();
        let sv = WorkloadSpec::new(WorkloadCategory::ShortServer, 1)
            .instructions(150_000)
            .generate();
        let sm = TraceStats::compute(&m.records);
        let ss = TraceStats::compute(&sv.records);
        assert!(
            ss.footprint_bytes() > sm.footprint_bytes(),
            "server {} <= mobile {}",
            ss.footprint_bytes(),
            sm.footprint_bytes()
        );
    }

    #[test]
    fn instructions_match_generator_accounting() {
        let t = WorkloadSpec::new(WorkloadCategory::ShortMobile, 9)
            .instructions(50_000)
            .generate();
        let s = TraceStats::compute(&t.records);
        // The FetchStream's count can differ from the walker's only by the
        // instructions before the first branch of the trace (the walker
        // counts the whole first block, the fetch stream starts at its
        // branch).
        let diff = t.instructions.abs_diff(s.instructions);
        assert!(
            diff <= 16,
            "walker={} fetch={}",
            t.instructions,
            s.instructions
        );
    }
}
