//! Dependency-free deterministic k-means for phase clustering.
//!
//! Clusters window signature vectors (see [`crate::signature`]) with
//! Lloyd's algorithm under rules that make the result a pure function of
//! `(data, dim, k, seed)` — byte-for-byte reproducible across runs,
//! platforms, and thread counts:
//!
//! * seeding is farthest-point: the first center is
//!   `splitmix64(seed) % n`, each further center is the point with the
//!   maximum distance to its nearest chosen center (ties broken by
//!   lowest index);
//! * assignment scans centroids in index order and keeps the first
//!   minimum (ties broken by lowest cluster index);
//! * centroids are recomputed as member means accumulated in ascending
//!   point index order, so floating-point summation order is fixed;
//! * an empty cluster is re-seeded with the point farthest from its
//!   current centroid assignment (lowest index on ties);
//! * iteration stops when assignments are stable or after a fixed cap.
//!
//! No `HashMap`, no randomness beyond the seeded splitmix draw, no
//! parallelism — `nondet-taint` clean by construction.

#![forbid(unsafe_code)]

use crate::signature::splitmix64;

/// Fixed Lloyd's iteration cap. Signature sets are small (tens to a few
/// hundred windows), so convergence is typically < 10 iterations; the
/// cap only bounds pathological oscillation.
pub const KMEANS_MAX_ITERATIONS: u32 = 32;

/// Result of a deterministic k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    /// Cluster index of each input point, in point order.
    pub assignments: Vec<u32>,
    /// Flat `k * dim` centroid coordinates, cluster-major.
    pub centroids: Vec<f64>,
    /// For each cluster, the index of the member point closest to its
    /// centroid (lowest index on ties) — the cluster representative.
    pub representatives: Vec<u32>,
    /// Lloyd's iterations actually executed.
    pub iterations: u32,
}

impl Clustering {
    /// Number of clusters.
    #[must_use]
    pub fn k(&self) -> usize {
        self.representatives.len()
    }

    /// Squared L2 distance of point `i` to its assigned centroid.
    #[must_use]
    pub fn distance_to_centroid(&self, data: &[f64], dim: usize, i: usize) -> f64 {
        let c = self.assignments[i] as usize;
        sq_dist(
            &data[i * dim..(i + 1) * dim],
            &self.centroids[c * dim..(c + 1) * dim],
        )
    }
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

/// Cluster `n = data.len() / dim` points into `min(k, n)` clusters.
///
/// `data` is flat point-major (`n * dim` values). Returns an empty
/// clustering when there are no points. The output is a deterministic
/// function of the arguments — see the module docs for the exact rules.
#[must_use]
#[allow(clippy::too_many_lines)] // one cohesive Lloyd's loop; splitting would thread six scratch buffers through helpers
#[allow(clippy::cast_possible_truncation)] // point/cluster counts are window counts, far below u32::MAX
pub fn kmeans(data: &[f64], dim: usize, k: usize, seed: u64, max_iter: u32) -> Clustering {
    let n = data.len().checked_div(dim).unwrap_or(0);
    if n == 0 || k == 0 {
        return Clustering {
            assignments: Vec::new(),
            centroids: Vec::new(),
            representatives: Vec::new(),
            iterations: 0,
        };
    }
    let k = k.min(n);
    let point = |i: usize| &data[i * dim..(i + 1) * dim];

    // Farthest-point seeding from a splitmix-drawn start.
    let mut centroids: Vec<f64> = Vec::with_capacity(k * dim);
    let first = (splitmix64(seed) % n as u64) as usize;
    centroids.extend_from_slice(point(first));
    // Distance of each point to its nearest chosen center so far.
    let mut nearest: Vec<f64> = (0..n)
        .map(|i| sq_dist(point(i), &centroids[..dim]))
        .collect();
    while centroids.len() < k * dim {
        let mut best = 0usize;
        let mut best_d = -1.0;
        for (i, &d) in nearest.iter().enumerate() {
            if d > best_d {
                best_d = d;
                best = i;
            }
        }
        let start = centroids.len();
        centroids.extend_from_slice(point(best));
        for (i, near) in nearest.iter_mut().enumerate() {
            let d = sq_dist(point(i), &centroids[start..start + dim]);
            if d < *near {
                *near = d;
            }
        }
    }

    let mut assignments = vec![0u32; n];
    let mut iterations = 0u32;
    let mut sums = vec![0.0f64; k * dim];
    let mut members = vec![0u64; k];
    while iterations < max_iter {
        iterations += 1;
        // Assign: first minimum in centroid index order.
        let mut changed = false;
        for (i, slot) in assignments.iter_mut().enumerate() {
            let p = point(i);
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for c in 0..k {
                let d = sq_dist(p, &centroids[c * dim..(c + 1) * dim]);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if *slot != best as u32 {
                *slot = best as u32;
                changed = true;
            }
        }
        // Update: member means in ascending point order.
        sums.fill(0.0);
        members.fill(0);
        for (i, &a) in assignments.iter().enumerate() {
            let c = a as usize;
            members[c] += 1;
            for (s, &v) in sums[c * dim..(c + 1) * dim].iter_mut().zip(point(i)) {
                *s += v;
            }
        }
        for c in 0..k {
            if members[c] == 0 {
                // Re-seed an empty cluster with the farthest point from
                // its current centroid (lowest index ties), stealing only
                // from clusters that keep at least one member so two
                // empty clusters never grab the same point.
                let mut far = usize::MAX;
                let mut far_d = -1.0;
                for (i, &a) in assignments.iter().enumerate() {
                    let cur = a as usize;
                    if members[cur] <= 1 {
                        continue;
                    }
                    let d = sq_dist(point(i), &centroids[cur * dim..(cur + 1) * dim]);
                    if d > far_d {
                        far_d = d;
                        far = i;
                    }
                }
                // k <= n guarantees a donor cluster with >= 2 members
                // exists while any cluster is empty.
                let far = far.min(n - 1);
                let donor = assignments[far] as usize;
                members[donor] -= 1;
                members[c] = 1;
                assignments[far] = c as u32;
                centroids[c * dim..(c + 1) * dim].copy_from_slice(point(far));
                changed = true;
            } else {
                let m = members[c] as f64;
                for (dst, &s) in centroids[c * dim..(c + 1) * dim]
                    .iter_mut()
                    .zip(&sums[c * dim..(c + 1) * dim])
                {
                    *dst = s / m;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Representative: member closest to the centroid, lowest index ties.
    let mut representatives = vec![u32::MAX; k];
    let mut rep_d = vec![f64::INFINITY; k];
    for (i, &a) in assignments.iter().enumerate() {
        let c = a as usize;
        let d = sq_dist(point(i), &centroids[c * dim..(c + 1) * dim]);
        if d < rep_d[c] {
            rep_d[c] = d;
            representatives[c] = i as u32;
        }
    }
    // Every cluster has at least one member (empty clusters were
    // re-seeded above), so every representative is set.
    debug_assert!(representatives.iter().all(|&r| r != u32::MAX));

    Clustering {
        assignments,
        centroids,
        representatives,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_blobs() -> (Vec<f64>, usize) {
        // Three well-separated 2-D blobs of 4 points each, fixed data.
        let mut data = Vec::new();
        for (cx, cy) in [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)] {
            for (dx, dy) in [(0.0, 0.0), (0.5, 0.0), (0.0, 0.5), (0.5, 0.5)] {
                data.push(cx + dx);
                data.push(cy + dy);
            }
        }
        (data, 2)
    }

    #[test]
    fn recovers_separated_blobs() {
        let (data, dim) = three_blobs();
        let c = kmeans(&data, dim, 3, 42, KMEANS_MAX_ITERATIONS);
        assert_eq!(c.k(), 3);
        // Each blob of 4 consecutive points shares one cluster, and the
        // three blobs land in three distinct clusters.
        let mut blob_clusters = Vec::new();
        for blob in 0..3 {
            let first = c.assignments[blob * 4];
            for p in 0..4 {
                assert_eq!(c.assignments[blob * 4 + p], first, "blob {blob}");
            }
            blob_clusters.push(first);
        }
        blob_clusters.sort_unstable();
        blob_clusters.dedup();
        assert_eq!(blob_clusters.len(), 3);
        // Representatives are members of their own cluster.
        for (cl, &rep) in c.representatives.iter().enumerate() {
            assert_eq!(c.assignments[rep as usize] as usize, cl);
        }
    }

    #[test]
    fn deterministic_across_repeats_and_sensitive_to_seed() {
        let (data, dim) = three_blobs();
        let a = kmeans(&data, dim, 3, 7, KMEANS_MAX_ITERATIONS);
        let b = kmeans(&data, dim, 3, 7, KMEANS_MAX_ITERATIONS);
        assert_eq!(a, b);
        // Different seeds may pick different start points but must still
        // be internally deterministic.
        let c1 = kmeans(&data, dim, 3, 1, KMEANS_MAX_ITERATIONS);
        let c2 = kmeans(&data, dim, 3, 1, KMEANS_MAX_ITERATIONS);
        assert_eq!(c1, c2);
    }

    #[test]
    fn k_at_least_n_makes_singletons() {
        let (data, dim) = three_blobs();
        let n = data.len() / dim;
        let c = kmeans(&data, dim, n + 5, 9, KMEANS_MAX_ITERATIONS);
        assert_eq!(c.k(), n);
        // Every point is its own cluster's representative.
        let mut reps: Vec<u32> = c.representatives.clone();
        reps.sort_unstable();
        let n32 = u32::try_from(n).expect("test size fits u32");
        assert_eq!(reps, (0..n32).collect::<Vec<_>>());
        // And every point sits exactly on its centroid (bit-exact zero).
        for i in 0..n {
            assert_eq!(c.distance_to_centroid(&data, dim, i).to_bits(), 0);
        }
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(kmeans(&[], 2, 3, 0, 8).k(), 0);
        assert_eq!(kmeans(&[1.0, 2.0], 2, 0, 0, 8).k(), 0);
        let one = kmeans(&[1.0, 2.0], 2, 4, 0, 8);
        assert_eq!(one.k(), 1);
        assert_eq!(one.representatives, vec![0]);
        // Identical points: all in one effective location, but k
        // clusters still produce valid representatives.
        let same = vec![3.0; 10 * 2];
        let c = kmeans(&same, 2, 3, 5, 8);
        assert_eq!(c.k(), 3);
        for (cl, &rep) in c.representatives.iter().enumerate() {
            assert_eq!(c.assignments[rep as usize] as usize, cl);
        }
    }

    #[test]
    fn iteration_cap_respected() {
        let (data, dim) = three_blobs();
        let c = kmeans(&data, dim, 3, 42, 1);
        assert_eq!(c.iterations, 1);
        assert_eq!(c.assignments.len(), data.len() / dim);
    }
}
