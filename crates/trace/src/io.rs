//! On-disk trace formats.
//!
//! Two formats are provided:
//!
//! * A compact little-endian binary format (`FETR` magic) with a streaming
//!   [`TraceReader`] / [`TraceWriter`] pair. Each record is 18 bytes:
//!   `pc: u64`, `target: u64`, `kind: u8`, `taken: u8`.
//! * JSON via serde ([`write_json`] / [`read_json`]) for interchange and
//!   debugging.

#![forbid(unsafe_code)]

use crate::record::{BranchKind, BranchRecord};
use crate::TraceError;
use std::io::{BufWriter, Read, Write};

/// Magic bytes that begin every binary trace stream.
pub const MAGIC: [u8; 4] = *b"FETR";
/// Current binary format version.
pub const VERSION: u32 = 1;
/// Size in bytes of one encoded record.
pub const RECORD_BYTES: usize = 18;
/// Records fetched per reader refill: one `read` call (modulo short
/// reads) services 1024 records instead of one, and decode runs over an
/// in-memory block.
const BLOCK_RECORDS: usize = 1024;

/// Streaming writer for the binary trace format.
///
/// ```
/// # use fe_trace::io::{TraceWriter, TraceReader};
/// # use fe_trace::{BranchKind, BranchRecord};
/// # fn main() -> Result<(), fe_trace::TraceError> {
/// let mut buf = Vec::new();
/// {
///     let mut w = TraceWriter::new(&mut buf)?;
///     w.write(&BranchRecord::new(0x100, BranchKind::Call, true, 0x4000))?;
///     w.finish()?;
/// }
/// let records: Vec<_> = TraceReader::new(buf.as_slice())?
///     .collect::<Result<_, _>>()?;
/// assert_eq!(records.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    inner: BufWriter<W>,
    written: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Create a writer and emit the stream header.
    ///
    /// # Errors
    ///
    /// Returns an error if writing the header fails.
    pub fn new(w: W) -> Result<TraceWriter<W>, TraceError> {
        let mut inner = BufWriter::new(w);
        inner.write_all(&MAGIC)?;
        inner.write_all(&VERSION.to_le_bytes())?;
        Ok(TraceWriter { inner, written: 0 })
    }

    /// Append one record.
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure.
    pub fn write(&mut self, r: &BranchRecord) -> Result<(), TraceError> {
        let mut buf = [0u8; RECORD_BYTES];
        buf[0..8].copy_from_slice(&r.pc.to_le_bytes());
        buf[8..16].copy_from_slice(&r.target.to_le_bytes());
        buf[16] = r.kind as u8;
        buf[17] = u8::from(r.taken);
        self.inner.write_all(&buf)?;
        self.written += 1;
        Ok(())
    }

    /// Number of records written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Flush buffers and return the underlying writer.
    ///
    /// # Errors
    ///
    /// Returns an error if the final flush fails.
    pub fn finish(self) -> Result<W, TraceError> {
        self.inner
            .into_inner()
            .map_err(|e| TraceError::Io(e.into_error()))
    }
}

/// Streaming reader for the binary trace format.
///
/// Implements [`Iterator`] over `Result<BranchRecord, TraceError>` so corrupt
/// tails are reported rather than silently truncated.
///
/// Records are decoded from an owned block buffer refilled
/// [`BLOCK_RECORDS`] at a time — the underlying reader sees one large
/// `read` per ~18 KiB of trace instead of one 18-byte request per
/// record, and decode itself runs over in-memory slices.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    inner: R,
    /// Fixed-size refill block (`BLOCK_RECORDS * RECORD_BYTES` bytes).
    buf: Vec<u8>,
    /// Valid bytes in `buf`.
    filled: usize,
    /// Consumed bytes in `buf` (`at <= filled`).
    at: usize,
    index: u64,
    done: bool,
}

impl<R: Read> TraceReader<R> {
    /// Create a reader, validating the stream header.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::BadMagic`] or [`TraceError::UnsupportedVersion`]
    /// when the header is not a supported binary trace header.
    pub fn new(mut r: R) -> Result<TraceReader<R>, TraceError> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if magic != MAGIC {
            return Err(TraceError::BadMagic(magic));
        }
        let mut ver = [0u8; 4];
        r.read_exact(&mut ver)?;
        let version = u32::from_le_bytes(ver);
        if version != VERSION {
            return Err(TraceError::UnsupportedVersion(version));
        }
        Ok(TraceReader {
            inner: r,
            buf: vec![0u8; BLOCK_RECORDS * RECORD_BYTES],
            filled: 0,
            at: 0,
            index: 0,
            done: false,
        })
    }

    /// Slide any unconsumed tail to the front of the block and fill the
    /// rest from the reader (tolerating short reads) until the block is
    /// full or the stream ends.
    fn refill(&mut self) -> Result<(), TraceError> {
        self.buf.copy_within(self.at..self.filled, 0);
        self.filled -= self.at;
        self.at = 0;
        while self.filled < self.buf.len() {
            let n = self.inner.read(&mut self.buf[self.filled..])?;
            if n == 0 {
                break;
            }
            self.filled += n;
        }
        Ok(())
    }

    fn read_record(&mut self) -> Result<Option<BranchRecord>, TraceError> {
        if self.filled - self.at < RECORD_BYTES {
            self.refill()?;
            let avail = self.filled - self.at;
            if avail == 0 {
                return Ok(None);
            }
            if avail < RECORD_BYTES {
                self.at = self.filled;
                return Err(TraceError::CorruptRecord {
                    index: self.index,
                    reason: format!("truncated record ({avail} of {RECORD_BYTES} bytes)"),
                });
            }
        }
        let rec = &self.buf[self.at..self.at + RECORD_BYTES];
        let mut word = [0u8; 8];
        word.copy_from_slice(&rec[0..8]);
        let pc = u64::from_le_bytes(word);
        word.copy_from_slice(&rec[8..16]);
        let target = u64::from_le_bytes(word);
        let kind = BranchKind::from_u8(rec[16]).ok_or_else(|| TraceError::CorruptRecord {
            index: self.index,
            reason: format!("invalid branch kind {}", rec[16]),
        })?;
        let taken = match rec[17] {
            0 => false,
            1 => true,
            other => {
                return Err(TraceError::CorruptRecord {
                    index: self.index,
                    reason: format!("invalid taken flag {other}"),
                })
            }
        };
        self.at += RECORD_BYTES;
        self.index += 1;
        Ok(Some(BranchRecord {
            pc,
            kind,
            taken,
            target,
        }))
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<BranchRecord, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        match self.read_record() {
            Ok(Some(r)) => Some(Ok(r)),
            Ok(None) => {
                self.done = true;
                None
            }
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

/// Serialize records as a JSON array.
///
/// # Errors
///
/// Returns an error on I/O or serialization failure.
pub fn write_json<W: Write>(w: W, records: &[BranchRecord]) -> Result<(), TraceError> {
    serde_json::to_writer(w, records)?;
    Ok(())
}

/// Deserialize records from a JSON array.
///
/// # Errors
///
/// Returns an error on I/O or deserialization failure.
pub fn read_json<R: Read>(r: R) -> Result<Vec<BranchRecord>, TraceError> {
    Ok(serde_json::from_reader(r)?)
}

/// Write a whole trace to the binary format in one call.
///
/// # Errors
///
/// Returns an error on I/O failure.
pub fn write_binary<W: Write>(w: W, records: &[BranchRecord]) -> Result<(), TraceError> {
    let mut tw = TraceWriter::new(w)?;
    for r in records {
        tw.write(r)?;
    }
    tw.finish()?;
    Ok(())
}

/// Read a whole binary trace in one call.
///
/// # Errors
///
/// Returns an error on I/O failure or a malformed stream.
pub fn read_binary<R: Read>(r: R) -> Result<Vec<BranchRecord>, TraceError> {
    TraceReader::new(r)?.collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<BranchRecord> {
        vec![
            BranchRecord::new(0x1000, BranchKind::CondDirect, true, 0x1040),
            BranchRecord::new(0x1044, BranchKind::CondDirect, false, 0x1000),
            BranchRecord::new(0x1048, BranchKind::Call, true, 0x8000),
            BranchRecord::new(0x8010, BranchKind::Return, true, 0x104c),
            BranchRecord::new(0x1050, BranchKind::Indirect, true, 0x9000),
        ]
    }

    #[test]
    fn binary_roundtrip() {
        let records = sample();
        let mut buf = Vec::new();
        write_binary(&mut buf, &records).unwrap();
        assert_eq!(buf.len(), 8 + records.len() * RECORD_BYTES);
        let back = read_binary(buf.as_slice()).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn json_roundtrip() {
        let records = sample();
        let mut buf = Vec::new();
        write_json(&mut buf, &records).unwrap();
        let back = read_json(buf.as_slice()).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let mut buf = Vec::new();
        write_binary(&mut buf, &[]).unwrap();
        let back = read_binary(buf.as_slice()).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = b"NOPE\x01\x00\x00\x00".to_vec();
        match TraceReader::new(buf.as_slice()) {
            Err(TraceError::BadMagic(m)) => assert_eq!(&m, b"NOPE"),
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn bad_version_rejected() {
        let mut buf = MAGIC.to_vec();
        buf.extend_from_slice(&7u32.to_le_bytes());
        match TraceReader::new(buf.as_slice()) {
            Err(TraceError::UnsupportedVersion(7)) => {}
            other => panic!("expected UnsupportedVersion(7), got {other:?}"),
        }
    }

    #[test]
    fn truncated_record_reported() {
        let mut buf = Vec::new();
        write_binary(&mut buf, &sample()).unwrap();
        buf.truncate(buf.len() - 5);
        let result: Result<Vec<_>, _> = read_binary(buf.as_slice());
        match result {
            Err(TraceError::CorruptRecord { index, .. }) => assert_eq!(index, 4),
            other => panic!("expected CorruptRecord, got {other:?}"),
        }
    }

    #[test]
    fn invalid_kind_reported() {
        let mut buf = Vec::new();
        write_binary(&mut buf, &sample()[..1]).unwrap();
        buf[8 + 16] = 200; // kind byte of record 0
        match read_binary(buf.as_slice()) {
            Err(TraceError::CorruptRecord { index, reason }) => {
                assert_eq!(index, 0);
                assert!(reason.contains("kind"));
            }
            other => panic!("expected CorruptRecord, got {other:?}"),
        }
    }

    #[test]
    fn invalid_taken_flag_reported() {
        let mut buf = Vec::new();
        write_binary(&mut buf, &sample()[..1]).unwrap();
        buf[8 + 17] = 3;
        match read_binary(buf.as_slice()) {
            Err(TraceError::CorruptRecord { reason, .. }) => assert!(reason.contains("taken")),
            other => panic!("expected CorruptRecord, got {other:?}"),
        }
    }

    #[test]
    fn writer_counts_records() {
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf).unwrap();
        assert_eq!(w.written(), 0);
        for r in sample() {
            w.write(&r).unwrap();
        }
        assert_eq!(w.written(), 5);
        w.finish().unwrap();
    }

    /// A reader that returns at most one byte per `read` call — the
    /// worst case for block assembly.
    struct OneByteReader<'a>(&'a [u8]);

    impl Read for OneByteReader<'_> {
        fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
            if self.0.is_empty() || out.is_empty() {
                return Ok(0);
            }
            out[0] = self.0[0];
            self.0 = &self.0[1..];
            Ok(1)
        }
    }

    #[test]
    fn multi_block_trace_roundtrips() {
        // More than two refill blocks plus a partial third.
        let records: Vec<BranchRecord> = (0..(BLOCK_RECORDS * 2 + 37))
            .map(|i| {
                BranchRecord::new(
                    0x1000 + (i as u64) * 4,
                    BranchKind::ALL[i % 6],
                    i % 2 == 0,
                    0x9000 + (i as u64) * 8,
                )
            })
            .collect();
        let mut buf = Vec::new();
        write_binary(&mut buf, &records).unwrap();
        let back = read_binary(buf.as_slice()).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn truncation_deep_in_stream_reports_exact_index() {
        let records: Vec<BranchRecord> = (0..(BLOCK_RECORDS + 10))
            .map(|i| BranchRecord::new(i as u64, BranchKind::CondDirect, true, 0))
            .collect();
        let mut buf = Vec::new();
        write_binary(&mut buf, &records).unwrap();
        buf.truncate(buf.len() - 5); // last record loses 5 bytes
        match read_binary(buf.as_slice()) {
            Err(TraceError::CorruptRecord { index, reason }) => {
                assert_eq!(index, (BLOCK_RECORDS + 9) as u64);
                assert!(reason.contains("truncated"));
            }
            other => panic!("expected CorruptRecord, got {other:?}"),
        }
    }

    #[test]
    fn short_reads_are_assembled_into_blocks() {
        let records = sample();
        let mut buf = Vec::new();
        write_binary(&mut buf, &records).unwrap();
        let reader = TraceReader::new(OneByteReader(&buf)).unwrap();
        let back: Vec<BranchRecord> = reader.collect::<Result<_, _>>().unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn corruption_in_second_block_reported() {
        let records: Vec<BranchRecord> = (0..(BLOCK_RECORDS + 3))
            .map(|i| BranchRecord::new(i as u64, BranchKind::Call, true, 4))
            .collect();
        let mut buf = Vec::new();
        write_binary(&mut buf, &records).unwrap();
        // Kind byte of the second record in the second block.
        let victim = BLOCK_RECORDS + 1;
        buf[8 + victim * RECORD_BYTES + 16] = 77;
        match read_binary(buf.as_slice()) {
            Err(TraceError::CorruptRecord { index, reason }) => {
                assert_eq!(index, victim as u64);
                assert!(reason.contains("kind"));
            }
            other => panic!("expected CorruptRecord, got {other:?}"),
        }
    }

    #[test]
    fn reader_stops_after_error() {
        let mut buf = Vec::new();
        write_binary(&mut buf, &sample()[..2]).unwrap();
        buf[8 + 16] = 99;
        let mut reader = TraceReader::new(buf.as_slice()).unwrap();
        assert!(matches!(reader.next(), Some(Err(_))));
        assert!(reader.next().is_none(), "iterator fuses after an error");
    }
}
