//! Zero-copy structure-of-arrays trace corpus.
//!
//! The per-record formats ([`crate::io`]'s 18-byte `FETR` records, the
//! synthetic walker) hand the simulator one [`BranchRecord`] at a time.
//! That is fine for a single pass, but the engine replays the same trace
//! under many policies, geometries, and thread counts, and the paper's
//! CBP-5 methodology assumes multi-gigabyte trace files shared across
//! many simulations. This module provides the shared representation:
//!
//! * an on-disk **columnar** format (`FESA` magic): fixed-width
//!   little-endian `pc`/`target` u64 columns and `kind`/`taken` u8
//!   columns, a per-column FNV-1a checksum, a versioned header, and a
//!   per-trace index so one file can hold a whole workload suite;
//! * a [`Corpus`] handle that loads a file **once** into a shared
//!   immutable buffer (`Arc<[u8]>` via one read; with the optional
//!   `mmap` feature, a `memmap2` mapping) and hands out
//!   [`CorpusTrace`]s — cheap handles that share the buffer;
//! * [`CorpusCursor`]: a zero-allocation, branch-light column-slice
//!   cursor that decodes records in cache-friendly fixed-size chunks
//!   (column bytes stream linearly; the only per-record work is four
//!   loads and a table-free kind conversion);
//! * a [`CorpusCache`]: materialize-to-corpus for
//!   [`WorkloadSpec`]s, keyed by (category, seed, instructions), so
//!   every synthetic workload is generated and encoded exactly once per
//!   cache directory and replayed from the shared buffer thereafter.
//!
//! All decode-side validation (checksums, `kind`/`taken` domains) runs
//! once at load time ([`Corpus::load`] / [`Corpus::verify`]); cursors
//! then decode without per-record checks and without allocating.
//!
//! Since version 2 each trace also carries a **signature sidecar**: the
//! windowed basic-block-signature vectors of [`crate::signature`],
//! computed once at build time and stored (with their own FNV-1a
//! checksum) after all column data, so phase-sampled replay never
//! re-scans a trace to cluster it.
//!
//! # File layout (version 2)
//!
//! ```text
//! [0..4)    magic  = b"FESA"
//! [4..8)    version: u32 LE = 2
//! [8..16)   trace count: u64 LE
//! [16..24)  index length in bytes: u64 LE
//! [24..24+index)  per-trace index entries, in trace order:
//!     name length: u16 LE, name bytes (UTF-8),
//!     instructions: u64 LE, records: u64 LE,
//!     pc/target/kind/taken column offsets: 4 x u64 LE (absolute),
//!     pc/target/kind/taken column checksums: 4 x u64 LE (FNV-1a),
//!     signature sidecar offset/length: 2 x u64 LE (absolute),
//!     signature sidecar checksum: u64 LE (FNV-1a)
//! [..]      column data, in index order: pc (8n), target (8n),
//!           kind (n), taken (n) bytes per trace
//! [..]      signature sidecars, in index order (see
//!           [`crate::signature::TraceSignatures::to_bytes`])
//! ```
//!
//! # Example
//!
//! ```
//! use fe_trace::corpus::{Corpus, CorpusBuilder};
//! use fe_trace::{BranchKind, BranchRecord};
//!
//! # fn main() -> Result<(), fe_trace::TraceError> {
//! let records = vec![BranchRecord::new(0x100, BranchKind::Call, true, 0x4000)];
//! let mut b = CorpusBuilder::new();
//! b.push_trace("demo", 42, &records)?;
//! let corpus = Corpus::from_bytes(b.finish())?;
//! let trace = corpus.get(0).ok_or_else(|| {
//!     fe_trace::TraceError::CorruptCorpus("missing trace".into())
//! })?;
//! assert_eq!(trace.cursor().collect::<Vec<_>>(), records);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

use crate::record::{BranchKind, BranchRecord};
use crate::signature::{compute_signatures, TraceSignatures};
use crate::signature::{BASE_WINDOW_INSTRUCTIONS, SIGNATURE_DIM};
use crate::synth::{SyntheticTrace, WorkloadSpec};
use crate::TraceError;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Magic bytes that begin every corpus file (`FESA`, fetch + `SoA`).
pub const MAGIC: [u8; 4] = *b"FESA";
/// Current corpus format version (2 added the signature sidecar; v1
/// files are rejected as [`TraceError::UnsupportedVersion`] and cache
/// files regenerate in place).
pub const VERSION: u32 = 2;

/// Fixed header size: magic + version + trace count + index length.
const HEADER_BYTES: usize = 24;
/// Fixed per-entry index payload after the name: instructions, records,
/// 4 column offsets, 4 column checksums, sidecar offset/length/checksum.
const ENTRY_FIXED_BYTES: usize = 104;
/// Records decoded per cursor refill. 256 records touch 4.5 KB of
/// column bytes — comfortably inside L1 — and amortize the refill
/// branch to under 0.4% of `next()` calls.
const CHUNK: usize = 256;

/// The column names, in file order (error reporting).
const COLUMNS: [&str; 4] = ["pc", "target", "kind", "taken"];

/// FNV-1a over a byte slice (64-bit). Dependency-free and deterministic
/// across platforms; collisions are irrelevant here — the checksum
/// guards against torn writes and bit rot, not adversaries.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// Decode 8 little-endian bytes. Callers guarantee `b.len() >= 8`.
#[inline]
fn read_u64(b: &[u8]) -> u64 {
    let mut a = [0u8; 8];
    a.copy_from_slice(&b[..8]);
    u64::from_le_bytes(a)
}

/// The shared immutable bytes behind a corpus: one buffer, many readers.
#[derive(Clone)]
enum SharedBuf {
    /// Whole file read once into an `Arc<[u8]>`.
    Owned(Arc<[u8]>),
    /// Memory-mapped file (the `mmap` feature).
    #[cfg(feature = "mmap")]
    Mapped(Arc<memmap2::Mmap>),
}

impl SharedBuf {
    fn bytes(&self) -> &[u8] {
        match self {
            SharedBuf::Owned(b) => b,
            #[cfg(feature = "mmap")]
            SharedBuf::Mapped(m) => m,
        }
    }
}

impl std::fmt::Debug for SharedBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SharedBuf({} bytes)", self.bytes().len())
    }
}

/// Parsed index entry for one trace: where its columns live in the
/// shared buffer, plus the recorded checksums.
#[derive(Debug, Clone)]
struct TraceMeta {
    name: String,
    instructions: u64,
    /// Record count, pre-converted to `usize` (validated at parse).
    n: usize,
    /// Absolute byte offsets of the pc/target/kind/taken columns.
    offsets: [usize; 4],
    /// Recorded FNV-1a checksums, same order.
    sums: [u64; 4],
    /// Absolute byte offset of the signature sidecar.
    sig_off: usize,
    /// Sidecar length in bytes (0 = no sidecar recorded).
    sig_len: usize,
    /// Recorded FNV-1a checksum of the sidecar bytes.
    sig_sum: u64,
}

impl TraceMeta {
    /// Byte length of column `c` (0/1 are u64 columns, 2/3 are u8).
    fn col_len(&self, c: usize) -> usize {
        if c < 2 {
            self.n * 8
        } else {
            self.n
        }
    }
}

/// Incremental corpus encoder: push traces, then [`finish`] into the
/// on-disk byte layout.
///
/// [`finish`]: CorpusBuilder::finish
#[derive(Debug, Default)]
pub struct CorpusBuilder {
    traces: Vec<Pending>,
}

#[derive(Debug)]
struct Pending {
    name: String,
    /// `name.len()`, validated to fit the index's u16 field at push.
    name_len: u16,
    instructions: u64,
    pc: Vec<u8>,
    target: Vec<u8>,
    kind: Vec<u8>,
    taken: Vec<u8>,
    records: u64,
    /// Serialized signature sidecar (windowed signatures computed at
    /// push time — the "compute once at corpus build" contract).
    sig: Vec<u8>,
}

impl CorpusBuilder {
    /// An empty builder.
    #[must_use]
    pub fn new() -> CorpusBuilder {
        CorpusBuilder::default()
    }

    /// Number of traces pushed so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// Whether no traces were pushed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Append one trace: its name, exact instruction total, and records
    /// in program order.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::CorruptCorpus`] when `name` exceeds the
    /// index's u16 length field.
    pub fn push_trace(
        &mut self,
        name: &str,
        instructions: u64,
        records: &[BranchRecord],
    ) -> Result<(), TraceError> {
        let Ok(name_len) = u16::try_from(name.len()) else {
            return Err(TraceError::CorruptCorpus(format!(
                "trace name too long for the index ({} bytes)",
                name.len()
            )));
        };
        let mut p = Pending {
            name: name.into(),
            name_len,
            instructions,
            pc: Vec::with_capacity(records.len() * 8),
            target: Vec::with_capacity(records.len() * 8),
            kind: Vec::with_capacity(records.len()),
            taken: Vec::with_capacity(records.len()),
            records: records.len() as u64,
            sig: compute_signatures(
                records.iter().copied(),
                BASE_WINDOW_INSTRUCTIONS,
                SIGNATURE_DIM,
            )
            .to_bytes(),
        };
        for r in records {
            p.pc.extend_from_slice(&r.pc.to_le_bytes());
            p.target.extend_from_slice(&r.target.to_le_bytes());
            p.kind.push(r.kind as u8);
            p.taken.push(u8::from(r.taken));
        }
        self.traces.push(p);
        Ok(())
    }

    /// Append a materialized synthetic trace under its workload name.
    ///
    /// # Errors
    ///
    /// Propagates [`CorpusBuilder::push_trace`] errors.
    pub fn push_synthetic(&mut self, trace: &SyntheticTrace) -> Result<(), TraceError> {
        self.push_trace(trace.name(), trace.instructions, &trace.records)
    }

    /// Assemble the on-disk byte layout (header, index, columns,
    /// signature sidecars).
    #[must_use]
    pub fn finish(self) -> Vec<u8> {
        let index_bytes: usize = self
            .traces
            .iter()
            .map(|t| 2 + t.name.len() + ENTRY_FIXED_BYTES)
            .sum();
        let data_bytes: usize = self
            .traces
            .iter()
            .map(|t| t.pc.len() + t.target.len() + t.kind.len() + t.taken.len())
            .sum();
        let sig_bytes: usize = self.traces.iter().map(|t| t.sig.len()).sum();
        let mut out = Vec::with_capacity(HEADER_BYTES + index_bytes + data_bytes + sig_bytes);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(self.traces.len() as u64).to_le_bytes());
        out.extend_from_slice(&(index_bytes as u64).to_le_bytes());

        // Index: column offsets are absolute file offsets, assigned in
        // trace order right after the index region; sidecars follow all
        // column data, also in trace order.
        let mut off = HEADER_BYTES + index_bytes;
        let mut sig_off = off + data_bytes;
        for t in &self.traces {
            out.extend_from_slice(&t.name_len.to_le_bytes());
            out.extend_from_slice(t.name.as_bytes());
            out.extend_from_slice(&t.instructions.to_le_bytes());
            out.extend_from_slice(&t.records.to_le_bytes());
            for col in [&t.pc, &t.target, &t.kind, &t.taken] {
                out.extend_from_slice(&(off as u64).to_le_bytes());
                off += col.len();
            }
            for col in [&t.pc, &t.target, &t.kind, &t.taken] {
                out.extend_from_slice(&fnv1a64(col).to_le_bytes());
            }
            out.extend_from_slice(&(sig_off as u64).to_le_bytes());
            out.extend_from_slice(&(t.sig.len() as u64).to_le_bytes());
            out.extend_from_slice(&fnv1a64(&t.sig).to_le_bytes());
            sig_off += t.sig.len();
        }
        for t in &self.traces {
            out.extend_from_slice(&t.pc);
            out.extend_from_slice(&t.target);
            out.extend_from_slice(&t.kind);
            out.extend_from_slice(&t.taken);
        }
        for t in &self.traces {
            out.extend_from_slice(&t.sig);
        }
        out
    }
}

/// A loaded corpus: the shared file buffer plus its parsed index.
///
/// Cloning a `Corpus` (or taking traces from it) never copies column
/// data — every handle shares one immutable buffer.
#[derive(Debug, Clone)]
pub struct Corpus {
    data: SharedBuf,
    metas: Vec<TraceMeta>,
}

impl Corpus {
    /// Parse a corpus from bytes and verify every column checksum and
    /// record domain (the normal constructor — cursors rely on it).
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] on a malformed header or index, a
    /// checksum mismatch, or an out-of-domain `kind`/`taken` byte.
    pub fn from_bytes(data: impl Into<Arc<[u8]>>) -> Result<Corpus, TraceError> {
        let c = Corpus::open_bytes(data)?;
        c.verify()?;
        Ok(c)
    }

    /// Parse a corpus from bytes **without** verifying checksums or
    /// record domains. Structurally validated only; see
    /// [`Corpus::verify`]. Decoding an unverified corpus is memory-safe
    /// but may yield garbage records (invalid kinds decode as
    /// conditional branches).
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] on a malformed header or index.
    pub fn open_bytes(data: impl Into<Arc<[u8]>>) -> Result<Corpus, TraceError> {
        let data: Arc<[u8]> = data.into();
        let metas = parse_index(&data)?;
        Ok(Corpus {
            data: SharedBuf::Owned(data),
            metas,
        })
    }

    /// Load a corpus file with **one** read into a shared buffer, then
    /// verify it (checksums + record domains).
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] on I/O failure or any corruption.
    pub fn load(path: &Path) -> Result<Corpus, TraceError> {
        let bytes = std::fs::read(path)?;
        Corpus::from_bytes(bytes)
    }

    /// Load a corpus file without verifying data integrity (structural
    /// parse only) — `report corpus info` uses this to report checksum
    /// status per trace instead of failing on the first bad column.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] on I/O failure or a malformed header
    /// or index.
    pub fn open(path: &Path) -> Result<Corpus, TraceError> {
        let bytes = std::fs::read(path)?;
        Corpus::open_bytes(bytes)
    }

    /// Memory-map a corpus file instead of reading it (requires the
    /// `mmap` feature), then verify it. The mapping is shared by every
    /// trace handle, so page cache is the only copy of the column data.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] on I/O failure or any corruption.
    #[cfg(feature = "mmap")]
    pub fn load_mmap(path: &Path) -> Result<Corpus, TraceError> {
        let file = std::fs::File::open(path)?;
        let map = memmap2::Mmap::map(&file)?;
        let metas = parse_index(&map)?;
        let c = Corpus {
            data: SharedBuf::Mapped(Arc::new(map)),
            metas,
        };
        c.verify()?;
        Ok(c)
    }

    /// Number of traces in the corpus.
    #[must_use]
    pub fn len(&self) -> usize {
        self.metas.len()
    }

    /// Whether the corpus holds no traces.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.metas.is_empty()
    }

    /// Total size of the underlying buffer in bytes.
    #[must_use]
    pub fn file_bytes(&self) -> usize {
        self.data.bytes().len()
    }

    /// The `i`-th trace as a shared-buffer handle, or `None` past the
    /// end.
    #[must_use]
    pub fn get(&self, i: usize) -> Option<CorpusTrace> {
        self.metas.get(i).map(|meta| CorpusTrace {
            data: self.data.clone(),
            meta: meta.clone(),
        })
    }

    /// All traces as shared-buffer handles, in index order.
    #[must_use]
    pub fn traces(&self) -> Vec<CorpusTrace> {
        (0..self.len()).filter_map(|i| self.get(i)).collect()
    }

    /// Re-verify every column checksum and every record's `kind`/
    /// `taken` domain.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::ChecksumMismatch`] for the first bad
    /// column, or [`TraceError::CorruptRecord`] for the first
    /// out-of-domain byte.
    pub fn verify(&self) -> Result<(), TraceError> {
        let data = self.data.bytes();
        for meta in &self.metas {
            verify_trace(data, meta)?;
        }
        Ok(())
    }

    /// Per-trace verification outcomes, one per trace, without stopping
    /// at the first failure (for `report corpus info`).
    #[must_use]
    pub fn verify_each(&self) -> Vec<Result<(), TraceError>> {
        let data = self.data.bytes();
        self.metas.iter().map(|m| verify_trace(data, m)).collect()
    }
}

/// Checksum + domain validation for one trace's columns and sidecar.
fn verify_trace(data: &[u8], meta: &TraceMeta) -> Result<(), TraceError> {
    for c in 0..4 {
        let col = &data[meta.offsets[c]..meta.offsets[c] + meta.col_len(c)];
        if fnv1a64(col) != meta.sums[c] {
            return Err(TraceError::ChecksumMismatch {
                trace: meta.name.clone(),
                column: COLUMNS[c],
            });
        }
    }
    // sig_len == 0 entries never validated sig_off, so slice safely.
    let sig = data
        .get(meta.sig_off..meta.sig_off + meta.sig_len)
        .unwrap_or(&[]);
    if meta.sig_len > 0 && fnv1a64(sig) != meta.sig_sum {
        return Err(TraceError::ChecksumMismatch {
            trace: meta.name.clone(),
            column: "signature",
        });
    }
    let kind = &data[meta.offsets[2]..meta.offsets[2] + meta.n];
    if let Some(i) = kind.iter().position(|&k| BranchKind::from_u8(k).is_none()) {
        return Err(TraceError::CorruptRecord {
            index: i as u64,
            reason: format!("invalid branch kind {} in trace `{}`", kind[i], meta.name),
        });
    }
    let taken = &data[meta.offsets[3]..meta.offsets[3] + meta.n];
    if let Some(i) = taken.iter().position(|&t| t > 1) {
        return Err(TraceError::CorruptRecord {
            index: i as u64,
            reason: format!("invalid taken flag {} in trace `{}`", taken[i], meta.name),
        });
    }
    Ok(())
}

/// Structural parse of the header and index: magic, version, entry
/// geometry, and column ranges against the buffer length.
fn parse_index(data: &[u8]) -> Result<Vec<TraceMeta>, TraceError> {
    if data.len() < HEADER_BYTES {
        return Err(TraceError::CorruptCorpus(format!(
            "file too short for a corpus header ({} bytes)",
            data.len()
        )));
    }
    let mut magic = [0u8; 4];
    magic.copy_from_slice(&data[0..4]);
    if magic != MAGIC {
        return Err(TraceError::BadMagic(magic));
    }
    let version = u32::from_le_bytes([data[4], data[5], data[6], data[7]]);
    if version != VERSION {
        return Err(TraceError::UnsupportedVersion(version));
    }
    let n_traces = usize::try_from(read_u64(&data[8..16]))
        .map_err(|_| TraceError::CorruptCorpus("trace count overflows usize".into()))?;
    let index_bytes = usize::try_from(read_u64(&data[16..24]))
        .map_err(|_| TraceError::CorruptCorpus("index length overflows usize".into()))?;
    let index_end = HEADER_BYTES
        .checked_add(index_bytes)
        .filter(|&e| e <= data.len())
        .ok_or_else(|| TraceError::CorruptCorpus("index extends past end of file".into()))?;

    // Each entry needs at least its fixed payload; cap the preallocation
    // by what the index region could physically hold.
    let mut metas = Vec::with_capacity(n_traces.min(index_bytes / (2 + ENTRY_FIXED_BYTES) + 1));
    let mut at = HEADER_BYTES;
    while metas.len() < n_traces {
        let meta = parse_entry(data, &mut at, index_end)?;
        metas.push(meta);
    }
    if at != index_end {
        return Err(TraceError::CorruptCorpus(format!(
            "index has {} trailing bytes",
            index_end - at
        )));
    }
    Ok(metas)
}

/// Parse one index entry at `*at`, bounds-checked against `index_end`
/// for the entry itself and against the file length for its columns.
fn parse_entry(data: &[u8], at: &mut usize, index_end: usize) -> Result<TraceMeta, TraceError> {
    let err = |what: &str| TraceError::CorruptCorpus(format!("index entry: {what}"));
    let mut pos = *at;
    let take = |pos: &mut usize, n: usize| -> Result<&[u8], TraceError> {
        let end = pos
            .checked_add(n)
            .filter(|&e| e <= index_end)
            .ok_or_else(|| err("truncated index entry"))?;
        let s = &data[*pos..end];
        *pos = end;
        Ok(s)
    };
    let name_len = {
        let b = take(&mut pos, 2)?;
        usize::from(u16::from_le_bytes([b[0], b[1]]))
    };
    let name = String::from_utf8_lossy(take(&mut pos, name_len)?).into_owned();
    let instructions = read_u64(take(&mut pos, 8)?);
    let records = read_u64(take(&mut pos, 8)?);
    let n = usize::try_from(records).map_err(|_| err("record count overflows usize"))?;
    let mut offsets = [0usize; 4];
    for (c, slot) in offsets.iter_mut().enumerate() {
        let Ok(off) = usize::try_from(read_u64(take(&mut pos, 8)?)) else {
            return Err(err("column offset overflows usize"));
        };
        let width = if c < 2 { 8usize } else { 1 };
        let Some(len) = n.checked_mul(width) else {
            return Err(err("column length overflows usize"));
        };
        if off
            .checked_add(len)
            .is_none_or(|end| end > data.len() || off < index_end)
        {
            return Err(err("column range outside the data region"));
        }
        *slot = off;
    }
    let mut sums = [0u64; 4];
    for slot in &mut sums {
        *slot = read_u64(take(&mut pos, 8)?);
    }
    let sig_off = usize::try_from(read_u64(take(&mut pos, 8)?))
        .map_err(|_| err("sidecar offset overflows usize"))?;
    let sig_len = usize::try_from(read_u64(take(&mut pos, 8)?))
        .map_err(|_| err("sidecar length overflows usize"))?;
    let sig_sum = read_u64(take(&mut pos, 8)?);
    if sig_len > 0
        && sig_off
            .checked_add(sig_len)
            .is_none_or(|end| end > data.len() || sig_off < index_end)
    {
        return Err(err("sidecar range outside the data region"));
    }
    *at = pos;
    Ok(TraceMeta {
        name,
        instructions,
        n,
        offsets,
        sums,
        sig_off,
        sig_len,
        sig_sum,
    })
}

/// One trace of a corpus: a cheap handle sharing the corpus buffer.
///
/// Cloning copies the `Arc` and the index entry, never the columns.
#[derive(Debug, Clone)]
pub struct CorpusTrace {
    data: SharedBuf,
    meta: TraceMeta,
}

impl CorpusTrace {
    /// Workload name recorded in the index.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.meta.name
    }

    /// Number of branch records.
    #[must_use]
    pub fn records(&self) -> u64 {
        self.meta.n as u64
    }

    /// Exact instruction total recorded in the index.
    #[must_use]
    pub fn instructions(&self) -> u64 {
        self.meta.instructions
    }

    /// Column footprint of this trace in bytes (18 per record).
    #[must_use]
    pub fn column_bytes(&self) -> usize {
        self.meta.n * 18
    }

    /// Size of the signature sidecar in bytes (0 when absent).
    #[must_use]
    pub fn sidecar_bytes(&self) -> usize {
        self.meta.sig_len
    }

    /// Parse this trace's windowed signatures from the sidecar.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::CorruptCorpus`] when the sidecar is absent
    /// or malformed (its checksum is covered by [`Corpus::verify`]).
    pub fn signatures(&self) -> Result<TraceSignatures, TraceError> {
        if self.meta.sig_len == 0 {
            return Err(TraceError::CorruptCorpus(format!(
                "trace `{}` has no signature sidecar",
                self.meta.name
            )));
        }
        let data = self.data.bytes();
        let sig = data
            .get(self.meta.sig_off..self.meta.sig_off + self.meta.sig_len)
            .unwrap_or(&[]);
        TraceSignatures::from_bytes(sig)
    }

    /// Start a zero-allocation chunked decode pass over the records.
    #[must_use]
    pub fn cursor(&self) -> CorpusCursor<'_> {
        self.cursor_range(0, self.meta.n as u64)
    }

    /// A cursor over the record range `[lo, hi)` (clamped to the trace),
    /// for replaying one sampled segment without decoding its prefix.
    #[must_use]
    pub fn cursor_range(&self, lo: u64, hi: u64) -> CorpusCursor<'_> {
        let n = self.meta.n;
        let lo = usize::try_from(lo).unwrap_or(n).min(n);
        let hi = usize::try_from(hi).unwrap_or(n).clamp(lo, n);
        let len = hi - lo;
        let data = self.data.bytes();
        let m = &self.meta;
        CorpusCursor {
            pc: &data[m.offsets[0] + lo * 8..m.offsets[0] + hi * 8],
            target: &data[m.offsets[1] + lo * 8..m.offsets[1] + hi * 8],
            kind: &data[m.offsets[2] + lo..m.offsets[2] + hi],
            taken: &data[m.offsets[3] + lo..m.offsets[3] + hi],
            remaining: len,
            buf: [EMPTY_RECORD; CHUNK],
            filled: 0,
            pos: 0,
        }
    }
}

const EMPTY_RECORD: BranchRecord = BranchRecord {
    pc: 0,
    kind: BranchKind::CondDirect,
    taken: false,
    target: 0,
};

/// Chunked column-slice decoder over one corpus trace.
///
/// Each refill decodes [`CHUNK`] records from the four column slices
/// into an inline buffer — the columns stream linearly through cache,
/// and `next()` is a bounds check plus a copy for 255 of every 256
/// calls. The cursor allocates nothing; the corpus is validated at
/// load, so decode needs no per-record checks (an out-of-domain kind
/// byte in an unverified corpus falls back to a conditional branch).
#[derive(Debug)]
pub struct CorpusCursor<'a> {
    pc: &'a [u8],
    target: &'a [u8],
    kind: &'a [u8],
    taken: &'a [u8],
    remaining: usize,
    buf: [BranchRecord; CHUNK],
    filled: usize,
    pos: usize,
}

impl CorpusCursor<'_> {
    /// Decode the next chunk of records into the inline buffer.
    fn refill(&mut self) {
        let n = self.remaining.min(CHUNK);
        self.pos = 0;
        self.filled = n;
        if n == 0 {
            return;
        }
        let (pc_bytes, pc_rest) = self.pc.split_at(n * 8);
        let (tg_bytes, tg_rest) = self.target.split_at(n * 8);
        let (kind_bytes, kind_rest) = self.kind.split_at(n);
        let (taken_bytes, taken_rest) = self.taken.split_at(n);
        let cols = pc_bytes
            .chunks_exact(8)
            .zip(tg_bytes.chunks_exact(8))
            .zip(kind_bytes.iter())
            .zip(taken_bytes.iter());
        for (slot, (((pcb, tgb), &kb), &tkb)) in self.buf.iter_mut().zip(cols) {
            *slot = BranchRecord {
                pc: read_u64(pcb),
                kind: BranchKind::from_u8(kb).unwrap_or(BranchKind::CondDirect),
                taken: tkb != 0,
                target: read_u64(tgb),
            };
        }
        self.pc = pc_rest;
        self.target = tg_rest;
        self.kind = kind_rest;
        self.taken = taken_rest;
        self.remaining -= n;
    }
}

impl Iterator for CorpusCursor<'_> {
    type Item = BranchRecord;

    #[inline]
    fn next(&mut self) -> Option<BranchRecord> {
        if self.pos == self.filled {
            self.refill();
            if self.filled == 0 {
                return None;
            }
        }
        let r = self.buf[self.pos];
        self.pos += 1;
        Some(r)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.remaining + (self.filled - self.pos);
        (left, Some(left))
    }

    /// Chunk-free internal iteration: `fold` (and everything built on
    /// it — `for_each`, `count`, `sum`) drains any records already in
    /// the inline buffer, then decodes straight off the column slices,
    /// skipping the buffer and its per-record position check entirely.
    #[inline]
    fn fold<B, F>(mut self, init: B, mut f: F) -> B
    where
        F: FnMut(B, BranchRecord) -> B,
    {
        let mut acc = init;
        while self.pos < self.filled {
            let r = self.buf[self.pos];
            self.pos += 1;
            acc = f(acc, r);
        }
        let cols = self
            .pc
            .chunks_exact(8)
            .zip(self.target.chunks_exact(8))
            .zip(self.kind.iter())
            .zip(self.taken.iter());
        for (((pcb, tgb), &kb), &tkb) in cols {
            acc = f(
                acc,
                BranchRecord {
                    pc: read_u64(pcb),
                    kind: BranchKind::from_u8(kb).unwrap_or(BranchKind::CondDirect),
                    taken: tkb != 0,
                    target: read_u64(tgb),
                },
            );
        }
        acc
    }
}

impl ExactSizeIterator for CorpusCursor<'_> {}

/// A suite's worth of corpus traces, in workload order — possibly drawn
/// from several cache files, all sharing their underlying buffers.
///
/// This is the handle every scheduler worker shares during a suite or
/// sweep run: workers index into it by workload and open cursors on the
/// shared buffers, with zero per-worker parsing or cloning.
#[derive(Debug, Clone, Default)]
pub struct SuiteCorpus {
    traces: Vec<CorpusTrace>,
}

impl SuiteCorpus {
    /// A suite view over every trace of one corpus file, in index order.
    #[must_use]
    pub fn from_corpus(corpus: &Corpus) -> SuiteCorpus {
        SuiteCorpus {
            traces: corpus.traces(),
        }
    }

    /// Append one trace (cache assembly).
    pub fn push(&mut self, trace: CorpusTrace) {
        self.traces.push(trace);
    }

    /// Number of traces.
    #[must_use]
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// Whether the suite view is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// The trace for workload `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range (suite/corpus length mismatches
    /// are rejected up front by the replay entry points).
    #[must_use]
    pub fn trace(&self, i: usize) -> &CorpusTrace {
        &self.traces[i]
    }

    /// All traces, in workload order.
    pub fn iter(&self) -> std::slice::Iter<'_, CorpusTrace> {
        self.traces.iter()
    }

    /// Total records across all traces.
    #[must_use]
    pub fn total_records(&self) -> u64 {
        self.traces.iter().map(CorpusTrace::records).sum()
    }

    /// Total column bytes across all traces.
    #[must_use]
    pub fn total_bytes(&self) -> usize {
        self.traces.iter().map(CorpusTrace::column_bytes).sum()
    }
}

impl<'a> IntoIterator for &'a SuiteCorpus {
    type Item = &'a CorpusTrace;
    type IntoIter = std::slice::Iter<'a, CorpusTrace>;
    fn into_iter(self) -> Self::IntoIter {
        self.traces.iter()
    }
}

/// How a cache lookup was satisfied.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnsureStats {
    /// Workloads generated, encoded and written this call.
    pub generated: usize,
    /// Workloads served from existing cache files.
    pub reused: usize,
}

impl EnsureStats {
    /// Merge another call's counters into this one.
    pub fn absorb(&mut self, other: EnsureStats) {
        self.generated += other.generated;
        self.reused += other.reused;
    }
}

/// On-disk materialize-to-corpus cache for synthetic workloads.
///
/// One single-trace corpus file per (category, seed, instructions) key
/// — exactly the inputs [`WorkloadSpec::generate`] is deterministic in
/// — so a workload shared by many experiments (or many suite sizes with
/// a common prefix) is generated and encoded once per cache directory.
/// Files are written via a temp file + rename, and a file that fails to
/// load (torn write, stale version) is regenerated in place.
#[derive(Debug, Clone)]
pub struct CorpusCache {
    dir: PathBuf,
}

impl CorpusCache {
    /// A cache rooted at `dir` (created lazily on first write).
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> CorpusCache {
        CorpusCache { dir: dir.into() }
    }

    /// The cache directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Cache file name for a workload key.
    #[must_use]
    pub fn file_name(spec: &WorkloadSpec) -> String {
        format!("{}-{}-i{}.soa", spec.category, spec.seed, spec.instructions)
    }

    /// Cache file path for a workload key.
    #[must_use]
    pub fn path_for(&self, spec: &WorkloadSpec) -> PathBuf {
        self.dir.join(CorpusCache::file_name(spec))
    }

    /// The cached trace for `spec`, generating, encoding and writing it
    /// on a miss. Returns the shared-buffer handle and whether this
    /// call generated it.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] on I/O failure while writing a fresh
    /// cache file (a corrupt *existing* file is regenerated, not an
    /// error).
    pub fn ensure_trace(&self, spec: &WorkloadSpec) -> Result<(CorpusTrace, bool), TraceError> {
        let path = self.path_for(spec);
        if let Ok(corpus) = Corpus::load(&path) {
            if let Some(trace) = corpus.get(0) {
                if corpus.len() == 1
                    && trace.name() == spec.name
                    && trace.instructions() >= spec.instructions
                {
                    return Ok((trace, false));
                }
            }
        }
        let trace = spec.generate();
        let mut builder = CorpusBuilder::new();
        builder.push_synthetic(&trace)?;
        let bytes = builder.finish();
        std::fs::create_dir_all(&self.dir)?;
        let tmp = self.dir.join(format!(
            "{}.tmp.{}",
            CorpusCache::file_name(spec),
            std::process::id()
        ));
        std::fs::write(&tmp, &bytes)?;
        std::fs::rename(&tmp, &path)?;
        // The bytes were just encoded; structural parse only (checksums
        // are definitionally fresh).
        let corpus = Corpus::open_bytes(bytes)?;
        corpus
            .get(0)
            .map(|t| (t, true))
            .ok_or_else(|| TraceError::CorruptCorpus("freshly built corpus is empty".into()))
    }

    /// Materialize a whole suite: one cached trace per spec, in order.
    ///
    /// # Errors
    ///
    /// Propagates the first [`CorpusCache::ensure_trace`] failure.
    pub fn ensure_suite(
        &self,
        specs: &[WorkloadSpec],
    ) -> Result<(SuiteCorpus, EnsureStats), TraceError> {
        let mut suite = SuiteCorpus::default();
        let mut stats = EnsureStats::default();
        for spec in specs {
            let (trace, generated) = self.ensure_trace(spec)?;
            if generated {
                stats.generated += 1;
            } else {
                stats.reused += 1;
            }
            suite.push(trace);
        }
        Ok((suite, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::WorkloadCategory;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn sample(n: usize) -> Vec<BranchRecord> {
        (0..n)
            .map(|i| {
                BranchRecord::new(
                    0x1000 + (i as u64) * 4,
                    BranchKind::ALL[i % 6],
                    i % 3 != 0,
                    0x8000 + (i as u64) * 8,
                )
            })
            .collect()
    }

    fn build(traces: &[(&str, u64, Vec<BranchRecord>)]) -> Vec<u8> {
        let mut b = CorpusBuilder::new();
        for (name, instr, records) in traces {
            b.push_trace(name, *instr, records).unwrap();
        }
        b.finish()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicU32 = AtomicU32::new(0);
        std::env::temp_dir().join(format!(
            "fe-corpus-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    #[test]
    fn fold_fast_path_matches_external_iteration() {
        // `fold`/`for_each` bypass the inline chunk buffer; they must
        // yield the same records as `next()`, including when iteration
        // starts mid-buffer after a few external `next()` calls.
        let records = sample(CHUNK * 2 + 19);
        let bytes = build(&[("t0", 7, records.clone())]);
        let corpus = Corpus::from_bytes(bytes).unwrap();
        let t = corpus.get(0).unwrap();

        let mut folded = Vec::new();
        t.cursor().for_each(|r| folded.push(r));
        assert_eq!(folded, records);
        assert_eq!(t.cursor().count(), records.len());

        let mut mixed = t.cursor();
        let mut head = Vec::new();
        for _ in 0..3 {
            head.push(mixed.next().unwrap());
        }
        let tail = mixed.fold(Vec::new(), |mut acc, r| {
            acc.push(r);
            acc
        });
        assert_eq!(head, records[..3]);
        assert_eq!(tail, records[3..]);
    }

    #[test]
    fn roundtrip_single_trace() {
        let records = sample(1000);
        let bytes = build(&[("t0", 12345, records.clone())]);
        let corpus = Corpus::from_bytes(bytes).unwrap();
        assert_eq!(corpus.len(), 1);
        let t = corpus.get(0).unwrap();
        assert_eq!(t.name(), "t0");
        assert_eq!(t.instructions(), 12345);
        assert_eq!(t.records(), 1000);
        assert_eq!(t.cursor().collect::<Vec<_>>(), records);
    }

    #[test]
    fn roundtrip_multi_trace_index() {
        let a = sample(10);
        let b = sample(CHUNK * 3 + 17); // spans several decode chunks
        let c: Vec<BranchRecord> = Vec::new();
        let bytes = build(&[
            ("alpha", 1, a.clone()),
            ("beta", 2, b.clone()),
            ("gamma", 3, c.clone()),
        ]);
        let corpus = Corpus::from_bytes(bytes).unwrap();
        assert_eq!(corpus.len(), 3);
        assert_eq!(corpus.get(0).unwrap().cursor().collect::<Vec<_>>(), a);
        assert_eq!(corpus.get(1).unwrap().cursor().collect::<Vec<_>>(), b);
        assert_eq!(corpus.get(2).unwrap().cursor().collect::<Vec<_>>(), c);
        assert!(corpus.get(3).is_none());
    }

    #[test]
    fn cursor_is_exact_size_and_restartable() {
        let records = sample(CHUNK + 5);
        let corpus = Corpus::from_bytes(build(&[("t", 0, records.clone())])).unwrap();
        let t = corpus.get(0).unwrap();
        let cur = t.cursor();
        assert_eq!(cur.len(), records.len());
        assert_eq!(cur.collect::<Vec<_>>(), records);
        // A second cursor replays from the start, bit-identically.
        assert_eq!(t.cursor().collect::<Vec<_>>(), records);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = build(&[("t", 0, sample(4))]);
        bytes[0] = b'X';
        match Corpus::from_bytes(bytes) {
            Err(TraceError::BadMagic(_)) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn wrong_version_rejected() {
        let mut bytes = build(&[("t", 0, sample(4))]);
        bytes[4] = 9;
        match Corpus::from_bytes(bytes) {
            Err(TraceError::UnsupportedVersion(9)) => {}
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn truncated_file_rejected() {
        let bytes = build(&[("t", 0, sample(100))]);
        for cut in [3, HEADER_BYTES - 1, HEADER_BYTES + 10, bytes.len() - 1] {
            let short = bytes[..cut].to_vec();
            assert!(
                Corpus::from_bytes(short).is_err(),
                "truncation at {cut} must be rejected"
            );
        }
    }

    #[test]
    fn flipped_column_byte_fails_checksum() {
        let bytes = build(&[("t", 0, sample(100))]);
        let last = bytes.len() - 1; // inside the taken column
        let mut bad = bytes.clone();
        bad[last] ^= 0x40;
        match Corpus::from_bytes(bad) {
            Err(TraceError::ChecksumMismatch { .. } | TraceError::CorruptRecord { .. }) => {}
            other => panic!("expected checksum/record error, got {other:?}"),
        }
        // The pc column too.
        let mut bad = bytes;
        let pc_byte = HEADER_BYTES + 2 + 1 + ENTRY_FIXED_BYTES; // first data byte
        bad[pc_byte] ^= 0x01;
        match Corpus::from_bytes(bad) {
            Err(TraceError::ChecksumMismatch { trace, column }) => {
                assert_eq!(trace, "t");
                assert_eq!(column, "pc");
            }
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
    }

    #[test]
    fn verify_each_reports_per_trace_status() {
        let bytes = build(&[("good", 0, sample(8)), ("bad", 0, sample(8))]);
        let mut bad = bytes;
        let last = bad.len() - 1;
        bad[last] ^= 1;
        let corpus = Corpus::open_bytes(bad).unwrap();
        let statuses = corpus.verify_each();
        assert!(statuses[0].is_ok());
        assert!(statuses[1].is_err());
    }

    #[test]
    fn empty_corpus_roundtrips() {
        let corpus = Corpus::from_bytes(CorpusBuilder::new().finish()).unwrap();
        assert!(corpus.is_empty());
        assert!(corpus.verify().is_ok());
    }

    #[test]
    fn synthetic_trace_roundtrips_bit_identically() {
        let spec = WorkloadSpec::new(WorkloadCategory::ShortServer, 7).instructions(30_000);
        let trace = spec.generate();
        let mut b = CorpusBuilder::new();
        b.push_synthetic(&trace).unwrap();
        let corpus = Corpus::from_bytes(b.finish()).unwrap();
        let t = corpus.get(0).unwrap();
        assert_eq!(t.name(), spec.name);
        assert_eq!(t.instructions(), trace.instructions);
        assert_eq!(t.cursor().collect::<Vec<_>>(), trace.records);
    }

    #[test]
    fn cache_generates_once_then_reuses() {
        let dir = temp_dir("cache");
        let cache = CorpusCache::new(&dir);
        let specs: Vec<WorkloadSpec> = crate::synth::suite(3, 42)
            .into_iter()
            .map(|s| s.instructions(5_000))
            .collect();
        let (suite, stats) = cache.ensure_suite(&specs).unwrap();
        assert_eq!(
            stats,
            EnsureStats {
                generated: 3,
                reused: 0
            }
        );
        assert_eq!(suite.len(), 3);
        for (t, s) in suite.iter().zip(&specs) {
            assert_eq!(t.name(), s.name);
            assert_eq!(t.cursor().collect::<Vec<_>>(), s.generate().records);
        }
        let (again, stats) = cache.ensure_suite(&specs).unwrap();
        assert_eq!(
            stats,
            EnsureStats {
                generated: 0,
                reused: 3
            }
        );
        assert_eq!(
            again.trace(0).cursor().collect::<Vec<_>>(),
            suite.trace(0).cursor().collect::<Vec<_>>()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cache_heals_a_corrupt_file() {
        let dir = temp_dir("heal");
        let cache = CorpusCache::new(&dir);
        let spec = WorkloadSpec::new(WorkloadCategory::ShortMobile, 9).instructions(4_000);
        let (_, generated) = cache.ensure_trace(&spec).unwrap();
        assert!(generated);
        // Corrupt the cached file in place.
        let path = cache.path_for(&spec);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let (trace, regenerated) = cache.ensure_trace(&spec).unwrap();
        assert!(regenerated, "corrupt cache file must be regenerated");
        assert_eq!(trace.cursor().collect::<Vec<_>>(), spec.generate().records);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cache_key_distinguishes_instructions() {
        let dir = temp_dir("key");
        let cache = CorpusCache::new(&dir);
        let a = WorkloadSpec::new(WorkloadCategory::ShortMobile, 1).instructions(4_000);
        let b = WorkloadSpec::new(WorkloadCategory::ShortMobile, 1).instructions(8_000);
        assert_ne!(cache.path_for(&a), cache.path_for(&b));
        cache.ensure_trace(&a).unwrap();
        let (_, generated) = cache.ensure_trace(&b).unwrap();
        assert!(generated, "different budget is a different cache key");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sidecar_roundtrips_and_matches_recompute() {
        let spec = WorkloadSpec::new(WorkloadCategory::LongServer, 3).instructions(40_000);
        let trace = spec.generate();
        let mut b = CorpusBuilder::new();
        b.push_synthetic(&trace).unwrap();
        let corpus = Corpus::from_bytes(b.finish()).unwrap();
        let t = corpus.get(0).unwrap();
        assert!(t.sidecar_bytes() > 0);
        let sigs = t.signatures().unwrap();
        let expect = compute_signatures(
            trace.records.iter().copied(),
            BASE_WINDOW_INSTRUCTIONS,
            SIGNATURE_DIM,
        );
        assert_eq!(sigs, expect);
        assert_eq!(sigs.total_records(), t.records());
    }

    #[test]
    fn corrupt_sidecar_fails_verification_with_signature_column() {
        let bytes = build(&[("t", 0, sample(64))]);
        let mut bad = bytes;
        // The sidecar is the last region of the file.
        let last = bad.len() - 1;
        bad[last] ^= 0x10;
        match Corpus::from_bytes(bad) {
            Err(TraceError::ChecksumMismatch { trace, column }) => {
                assert_eq!(trace, "t");
                assert_eq!(column, "signature");
            }
            other => panic!("expected signature ChecksumMismatch, got {other:?}"),
        }
    }

    #[test]
    fn cursor_range_slices_and_clamps() {
        let records = sample(CHUNK + 50);
        let corpus = Corpus::from_bytes(build(&[("t", 0, records.clone())])).unwrap();
        let t = corpus.get(0).unwrap();
        let n = records.len() as u64;
        assert_eq!(
            t.cursor_range(10, 20).collect::<Vec<_>>(),
            records[10..20].to_vec()
        );
        assert_eq!(t.cursor_range(0, n).collect::<Vec<_>>(), records);
        // Clamped: hi past the end, lo past the end, inverted range.
        assert_eq!(
            t.cursor_range(n - 5, n + 100).collect::<Vec<_>>(),
            records[records.len() - 5..].to_vec()
        );
        assert_eq!(t.cursor_range(n + 10, n + 20).count(), 0);
        assert_eq!(t.cursor_range(20, 10).count(), 0);
        // ExactSizeIterator holds on ranges too.
        assert_eq!(t.cursor_range(3, 103).len(), 100);
    }

    #[test]
    fn overlong_name_is_rejected() {
        let long = "x".repeat(usize::from(u16::MAX) + 1);
        let mut b = CorpusBuilder::new();
        assert!(b.push_trace(&long, 0, &[]).is_err());
    }

    #[test]
    fn fnv_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[cfg(feature = "mmap")]
    #[test]
    fn mmap_load_matches_read_load() {
        let dir = temp_dir("mmap");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.soa");
        let records = sample(500);
        std::fs::write(&path, build(&[("t", 1, records.clone())])).unwrap();
        let mapped = Corpus::load_mmap(&path).unwrap();
        assert_eq!(mapped.get(0).unwrap().cursor().collect::<Vec<_>>(), records);
        std::fs::remove_dir_all(&dir).ok();
    }
}
