//! Hashed perceptron predictor (Tarjan & Skadron, TACO 2005).
//!
//! Merges gshare, path-based and perceptron prediction: instead of one
//! weight per history bit, *segments* of the global outcome history and the
//! path history are hashed (together with the PC) to index several weight
//! tables; the prediction is the sign of the summed weights. Training is
//! perceptron-style — on a misprediction, or while the magnitude of the sum
//! is below an adaptively trained threshold, every selected weight moves
//! toward the outcome.

#![forbid(unsafe_code)]

use crate::DirectionPredictor;

/// Configuration for [`HashedPerceptron`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PerceptronConfig {
    /// Number of weight tables.
    pub num_tables: usize,
    /// Entries per table (power of two).
    pub table_entries: usize,
    /// Weight saturation magnitude (symmetric, fits 8-bit weights).
    pub weight_max: i16,
    /// History length (in branches) seen by each table. Table 0
    /// conventionally uses length 0 (bias/PC-only, the "gshare with zero
    /// history" component).
    pub history_lengths: [u32; 8],
    /// Initial training threshold.
    pub initial_theta: i32,
}

impl Default for PerceptronConfig {
    fn default() -> PerceptronConfig {
        PerceptronConfig {
            num_tables: 8,
            table_entries: 4096,
            weight_max: 127,
            // Roughly geometric lengths, capped by the 64-bit registers.
            history_lengths: [0, 3, 6, 10, 16, 25, 40, 60],
            initial_theta: 18,
        }
    }
}

/// The hashed perceptron predictor.
#[derive(Debug, Clone)]
pub struct HashedPerceptron {
    cfg: PerceptronConfig,
    weights: Vec<Vec<i16>>,
    /// Global outcome history (1 bit per branch).
    ghist: u64,
    /// Path history (3 low PC bits per branch).
    phist: u64,
    /// Adaptive threshold (O-GEHL style).
    theta: i32,
    /// Threshold-training counter.
    tc: i32,
}

impl HashedPerceptron {
    /// Create a predictor from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `table_entries` is not a power of two or `num_tables`
    /// exceeds 8.
    pub fn new(cfg: PerceptronConfig) -> HashedPerceptron {
        assert!(
            cfg.table_entries.is_power_of_two() && cfg.table_entries > 0,
            "table_entries must be a power of two"
        );
        assert!(
            (1..=8).contains(&cfg.num_tables),
            "num_tables must be 1..=8"
        );
        HashedPerceptron {
            weights: vec![vec![0i16; cfg.table_entries]; cfg.num_tables],
            ghist: 0,
            phist: 0,
            theta: cfg.initial_theta,
            tc: 0,
            cfg,
        }
    }

    fn fold(mut x: u64, bits: u32, out_bits: u32) -> u64 {
        if bits == 0 {
            return 0;
        }
        let mask = if bits >= 64 {
            u64::MAX
        } else {
            (1 << bits) - 1
        };
        x &= mask;
        let mut folded = 0u64;
        while x != 0 {
            folded ^= x & ((1 << out_bits) - 1);
            x >>= out_bits;
        }
        folded
    }

    fn index(&self, table: usize, pc: u64) -> usize {
        let bits = self.cfg.table_entries.trailing_zeros();
        let len = self.cfg.history_lengths[table];
        let g = Self::fold(self.ghist, len, bits);
        let p = Self::fold(self.phist, (len * 3).min(63), bits);
        let h = (pc >> 2) ^ (g << 1) ^ p ^ ((table as u64) << 5);
        // Final avalanche so adjacent PCs spread across the table.
        let h = h.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((h >> 13) as usize) & (self.cfg.table_entries - 1)
    }

    fn sum(&self, pc: u64) -> i32 {
        (0..self.cfg.num_tables)
            .map(|t| i32::from(self.weights[t][self.index(t, pc)]))
            .sum()
    }

    /// Current adaptive threshold (diagnostics).
    pub fn theta(&self) -> i32 {
        self.theta
    }

    /// Restore the predictor to its freshly-constructed state, reusing
    /// the weight-table allocations.
    pub fn reset(&mut self) {
        for table in &mut self.weights {
            table.fill(0);
        }
        self.ghist = 0;
        self.phist = 0;
        self.theta = self.cfg.initial_theta;
        self.tc = 0;
    }

    /// Predict `pc` and train on the actual `taken` outcome in one step,
    /// returning the prediction.
    ///
    /// Identical to [`DirectionPredictor::predict`] followed by
    /// [`DirectionPredictor::update`], but the table indices — two history
    /// folds each — are computed once instead of up to three times. The
    /// simulator observes every conditional branch through this call.
    pub fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool {
        let mut idxs = [0usize; 8];
        let n = self.cfg.num_tables;
        for (t, slot) in idxs.iter_mut().enumerate().take(n) {
            *slot = self.index(t, pc);
        }
        let sum: i32 = idxs[..n]
            .iter()
            .enumerate()
            .map(|(t, &i)| i32::from(self.weights[t][i]))
            .sum();
        let predicted = sum >= 0;
        let mispredicted = predicted != taken;
        if mispredicted || sum.abs() <= self.theta {
            for (t, &i) in idxs[..n].iter().enumerate() {
                let w = &mut self.weights[t][i];
                if taken {
                    *w = (*w + 1).min(self.cfg.weight_max);
                } else {
                    *w = (*w - 1).max(-self.cfg.weight_max);
                }
            }
        }
        // Adaptive threshold training (Seznec): raise theta on
        // mispredictions, lower it when training fires with a correct,
        // low-confidence prediction.
        if mispredicted {
            self.tc += 1;
            if self.tc >= 32 {
                self.theta += 1;
                self.tc = 0;
            }
        } else if sum.abs() <= self.theta {
            self.tc -= 1;
            if self.tc <= -32 {
                self.theta = (self.theta - 1).max(1);
                self.tc = 0;
            }
        }
        // Advance histories.
        self.ghist = (self.ghist << 1) | u64::from(taken);
        self.phist = (self.phist << 3) | ((pc >> 2) & 0x7);
        predicted
    }
}

impl Default for HashedPerceptron {
    fn default() -> HashedPerceptron {
        HashedPerceptron::new(PerceptronConfig::default())
    }
}

impl DirectionPredictor for HashedPerceptron {
    fn predict(&self, pc: u64) -> bool {
        self.sum(pc) >= 0
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let _ = self.predict_and_update(pc, taken);
    }

    fn name(&self) -> String {
        "hashed-perceptron".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_long_period_pattern() {
        // Period-7 pattern: needs real history capacity.
        let pattern = [true, true, false, true, false, false, true];
        let mut p = HashedPerceptron::default();
        let mut correct = 0;
        let total = 7000;
        for i in 0..total {
            let taken = pattern[i % 7];
            if p.predict(0x1234) == taken {
                correct += 1;
            }
            p.update(0x1234, taken);
        }
        let acc = f64::from(correct) / total as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn learns_correlated_branches() {
        // Branch B's outcome equals branch A's previous outcome.
        let mut p = HashedPerceptron::default();
        let mut a_prev = false;
        let mut correct = 0;
        let total = 4000;
        for i in 0..total {
            let a = (i / 3) % 2 == 0;
            let _ = p.predict(0x100);
            p.update(0x100, a);
            let b = a_prev;
            if p.predict(0x200) == b {
                correct += 1;
            }
            p.update(0x200, b);
            a_prev = a;
        }
        let acc = f64::from(correct) / f64::from(total);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn weights_saturate() {
        let cfg = PerceptronConfig {
            weight_max: 7,
            ..PerceptronConfig::default()
        };
        let mut p = HashedPerceptron::new(cfg);
        for _ in 0..1000 {
            p.update(0x40, true);
        }
        assert!(p.weights.iter().flatten().all(|&w| (-7..=7).contains(&w)));
    }

    #[test]
    fn theta_adapts_upward_under_noise() {
        let mut p = HashedPerceptron::default();
        let before = p.theta();
        // Random-ish (incompressible) outcomes force mispredictions.
        let mut x = 0x1234_5678_u64;
        for i in 0..20_000 {
            x = x
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            let taken = (x >> 62) & 1 == 1;
            let _ = p.predict(0x1000 + (i % 16) * 4);
            p.update(0x1000 + (i % 16) * 4, taken);
        }
        assert!(p.theta() > before, "theta {} -> {}", before, p.theta());
    }

    #[test]
    fn fold_handles_extremes() {
        assert_eq!(HashedPerceptron::fold(0xFFFF, 0, 12), 0);
        assert_eq!(HashedPerceptron::fold(0xABC, 12, 12), 0xABC);
        let f = HashedPerceptron::fold(u64::MAX, 64, 12);
        assert!(f < 4096);
    }

    #[test]
    #[should_panic(expected = "num_tables")]
    fn zero_tables_panics() {
        let cfg = PerceptronConfig {
            num_tables: 0,
            ..PerceptronConfig::default()
        };
        let _ = HashedPerceptron::new(cfg);
    }
}
