//! `Gshare` (McFarling): global history `XORed` with the PC.

#![forbid(unsafe_code)]

use crate::DirectionPredictor;

/// Gshare predictor: 2-bit counters indexed by `pc ^ global_history`.
#[derive(Debug, Clone)]
pub struct Gshare {
    counters: Vec<u8>,
    history: u64,
    history_bits: u32,
}

impl Gshare {
    /// Create a gshare predictor with `entries` counters and
    /// `history_bits` of global history.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or `history_bits` exceeds
    /// the index width.
    pub fn new(entries: usize, history_bits: u32) -> Gshare {
        assert!(
            entries.is_power_of_two() && entries > 0,
            "entries must be a power of two, got {entries}"
        );
        let index_bits = entries.trailing_zeros();
        assert!(
            history_bits <= index_bits,
            "history_bits {history_bits} exceeds index width {index_bits}"
        );
        Gshare {
            counters: vec![1; entries],
            history: 0,
            history_bits,
        }
    }

    fn index(&self, pc: u64) -> usize {
        fe_cache::index::mask((pc >> 2) ^ self.history, self.counters.len())
    }

    /// Current global history register (low `history_bits` bits).
    pub fn history(&self) -> u64 {
        self.history
    }
}

impl Default for Gshare {
    /// 16K entries with 14 bits of history.
    fn default() -> Gshare {
        Gshare::new(16 * 1024, 14)
    }
}

impl DirectionPredictor for Gshare {
    fn predict(&self, pc: u64) -> bool {
        self.counters[self.index(pc)] >= 2
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let i = self.index(pc);
        let c = &mut self.counters[i];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        self.history = ((self.history << 1) | u64::from(taken)) & ((1 << self.history_bits) - 1);
    }

    fn name(&self) -> String {
        "gshare".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn history_shifts_outcomes() {
        let mut g = Gshare::new(1024, 8);
        g.update(0, true);
        g.update(0, false);
        g.update(0, true);
        assert_eq!(g.history(), 0b101);
    }

    #[test]
    fn history_is_masked() {
        let mut g = Gshare::new(1024, 4);
        for _ in 0..100 {
            g.update(0, true);
        }
        assert_eq!(g.history(), 0xF);
    }

    #[test]
    fn learns_history_correlated_pattern() {
        // Branch taken iff the previous two outcomes were equal — pure
        // history correlation that bimodal cannot express.
        let mut g = Gshare::default();
        let mut outcomes = vec![true, false];
        let mut correct = 0;
        let total = 2000;
        for _ in 0..total {
            let n = outcomes.len();
            let taken = outcomes[n - 1] == outcomes[n - 2];
            if g.predict(0x400) == taken {
                correct += 1;
            }
            g.update(0x400, taken);
            outcomes.push(taken);
        }
        assert!(
            f64::from(correct) / f64::from(total) > 0.9,
            "accuracy {}",
            f64::from(correct) / f64::from(total)
        );
    }

    #[test]
    #[should_panic(expected = "exceeds index width")]
    fn oversized_history_panics() {
        let _ = Gshare::new(256, 16);
    }
}
