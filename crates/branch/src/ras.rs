//! Return-address stack.

#![forbid(unsafe_code)]

/// A bounded return-address stack with wrap-around overwrite, as used by
/// real front-ends to predict return targets.
#[derive(Debug, Clone)]
pub struct ReturnAddressStack {
    entries: Vec<u64>,
    top: usize,
    depth: usize,
    capacity: usize,
}

impl ReturnAddressStack {
    /// Create a stack holding up to `capacity` return addresses.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> ReturnAddressStack {
        assert!(capacity > 0, "capacity must be nonzero");
        ReturnAddressStack {
            entries: vec![0; capacity],
            top: 0,
            depth: 0,
            capacity,
        }
    }

    /// Push a return address (on a call). Overflow silently overwrites the
    /// oldest entry, as in hardware.
    pub fn push(&mut self, ret_addr: u64) {
        // lint:allow(pow2-mask): ring-buffer wrap; any RAS capacity is legal
        self.top = (self.top + 1) % self.capacity;
        self.entries[self.top] = ret_addr;
        self.depth = (self.depth + 1).min(self.capacity);
    }

    /// Pop the predicted return target (on a return). Returns `None` when
    /// the stack has underflowed.
    pub fn pop(&mut self) -> Option<u64> {
        if self.depth == 0 {
            return None;
        }
        let v = self.entries[self.top];
        // lint:allow(pow2-mask): ring-buffer wrap; any RAS capacity is legal
        self.top = (self.top + self.capacity - 1) % self.capacity;
        self.depth -= 1;
        Some(v)
    }

    /// Current number of valid entries.
    pub fn len(&self) -> usize {
        self.depth
    }

    /// Whether the stack holds no valid entries.
    pub fn is_empty(&self) -> bool {
        self.depth == 0
    }

    /// Empty the stack back to its freshly-constructed state, reusing
    /// the ring-buffer allocation.
    pub fn reset(&mut self) {
        self.entries.fill(0);
        self.top = 0;
        self.depth = 0;
    }
}

impl Default for ReturnAddressStack {
    /// 32-entry stack, a common hardware depth.
    fn default() -> ReturnAddressStack {
        ReturnAddressStack::new(32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut ras = ReturnAddressStack::new(8);
        ras.push(0x100);
        ras.push(0x200);
        assert_eq!(ras.pop(), Some(0x200));
        assert_eq!(ras.pop(), Some(0x100));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn overflow_drops_oldest() {
        let mut ras = ReturnAddressStack::new(2);
        ras.push(0x1);
        ras.push(0x2);
        ras.push(0x3); // overwrites 0x1's slot
        assert_eq!(ras.len(), 2);
        assert_eq!(ras.pop(), Some(0x3));
        assert_eq!(ras.pop(), Some(0x2));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn empty_and_len() {
        let mut ras = ReturnAddressStack::default();
        assert!(ras.is_empty());
        ras.push(0x42);
        assert!(!ras.is_empty());
        assert_eq!(ras.len(), 1);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_panics() {
        let _ = ReturnAddressStack::new(0);
    }
}
