//! Bimodal (Smith) predictor: a table of 2-bit saturating counters.

#![forbid(unsafe_code)]

use crate::DirectionPredictor;

/// PC-indexed 2-bit counter predictor — the simplest useful baseline.
#[derive(Debug, Clone)]
pub struct Bimodal {
    counters: Vec<u8>,
    mask: usize,
}

impl Bimodal {
    /// Create a bimodal predictor with `entries` counters (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a nonzero power of two.
    pub fn new(entries: usize) -> Bimodal {
        assert!(
            entries.is_power_of_two() && entries > 0,
            "entries must be a power of two, got {entries}"
        );
        Bimodal {
            // Weakly not-taken initial state.
            counters: vec![1; entries],
            mask: entries - 1,
        }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & self.mask
    }
}

impl Default for Bimodal {
    /// 16K-entry table (4 KB of 2-bit counters).
    fn default() -> Bimodal {
        Bimodal::new(16 * 1024)
    }
}

impl DirectionPredictor for Bimodal {
    fn predict(&self, pc: u64) -> bool {
        self.counters[self.index(pc)] >= 2
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let i = self.index(pc);
        let c = &mut self.counters[i];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }

    fn name(&self) -> String {
        "bimodal".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_hysteresis() {
        let mut b = Bimodal::new(64);
        let pc = 0x100;
        b.update(pc, true);
        assert!(b.predict(pc)); // 1 -> 2: weakly taken
        b.update(pc, true);
        b.update(pc, false);
        assert!(b.predict(pc), "one not-taken does not flip strong state");
        b.update(pc, false);
        b.update(pc, false);
        assert!(!b.predict(pc));
    }

    #[test]
    fn distinct_pcs_use_distinct_counters() {
        let mut b = Bimodal::new(64);
        for _ in 0..4 {
            b.update(0x100, true);
            b.update(0x104, false);
        }
        assert!(b.predict(0x100));
        assert!(!b.predict(0x104));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_size_panics() {
        let _ = Bimodal::new(100);
    }
}
