//! Branch direction predictors for the front-end simulator.
//!
//! The paper's methodology (§IV.A) uses a **hashed perceptron** direction
//! predictor — the Tarjan & Skadron design that merges gshare, path-based
//! and perceptron prediction, as shipped in Samsung, AMD and Oracle
//! processors. This crate implements it along with two simpler comparators
//! (bimodal, gshare) and a return-address stack.
//!
//! All predictors implement [`DirectionPredictor`]: call
//! [`predict`](DirectionPredictor::predict) for the current branch, then
//! [`update`](DirectionPredictor::update) with the actual outcome (which
//! also advances the predictor's internal histories).
//!
//! ```
//! use fe_branch::{DirectionPredictor, HashedPerceptron};
//!
//! let mut p = HashedPerceptron::default();
//! // A strongly taken branch becomes predictable after a few updates.
//! for _ in 0..32 {
//!     let _ = p.predict(0x4000);
//!     p.update(0x4000, true);
//! }
//! assert!(p.predict(0x4000));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bimodal;
mod gshare;
mod perceptron;
mod ras;
mod target_cache;

pub use bimodal::Bimodal;
pub use gshare::Gshare;
pub use perceptron::{HashedPerceptron, PerceptronConfig};
pub use ras::ReturnAddressStack;
pub use target_cache::TargetCache;

/// A conditional-branch direction predictor.
pub trait DirectionPredictor {
    /// Predict the direction of the conditional branch at `pc` under the
    /// current history.
    fn predict(&self, pc: u64) -> bool;

    /// Resolve the branch at `pc` with its actual direction: train the
    /// predictor and advance its histories.
    fn update(&mut self, pc: u64, taken: bool);

    /// Short human-readable name.
    fn name(&self) -> String;
}

/// Accuracy bookkeeping helper shared by tests and the frontend.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredictorStats {
    /// Conditional branches predicted.
    pub predictions: u64,
    /// Mispredicted conditional branches.
    pub mispredictions: u64,
}

impl PredictorStats {
    /// Record one prediction outcome.
    pub fn record(&mut self, correct: bool) {
        self.predictions += 1;
        if !correct {
            self.mispredictions += 1;
        }
    }

    /// Mispredictions per kilo-instruction, given the instruction count.
    pub fn mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.mispredictions as f64 * 1000.0 / instructions as f64
        }
    }

    /// Prediction accuracy in `[0, 1]`.
    pub fn accuracy(&self) -> f64 {
        if self.predictions == 0 {
            1.0
        } else {
            1.0 - self.mispredictions as f64 / self.predictions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive<P: DirectionPredictor>(p: &mut P, pattern: &[bool], reps: usize) -> PredictorStats {
        let mut stats = PredictorStats::default();
        for _ in 0..reps {
            for (i, &taken) in pattern.iter().enumerate() {
                let pc = 0x1000 + (i as u64) * 8;
                let pred = p.predict(pc);
                stats.record(pred == taken);
                p.update(pc, taken);
            }
        }
        stats
    }

    #[test]
    fn all_predictors_learn_static_biases() {
        let pattern = [true, true, false, true, false, false, true, true];
        let mut bi = Bimodal::default();
        let mut gs = Gshare::default();
        let mut hp = HashedPerceptron::default();
        for acc in [
            drive(&mut bi, &pattern, 200).accuracy(),
            drive(&mut gs, &pattern, 200).accuracy(),
            drive(&mut hp, &pattern, 200).accuracy(),
        ] {
            assert!(acc > 0.9, "accuracy {acc}");
        }
    }

    fn drive_single_pc<P: DirectionPredictor>(p: &mut P, n: usize) -> PredictorStats {
        // One branch that strictly alternates.
        let mut stats = PredictorStats::default();
        for i in 0..n {
            let taken = i % 2 == 0;
            let pred = p.predict(0x9000);
            stats.record(pred == taken);
            p.update(0x9000, taken);
        }
        stats
    }

    #[test]
    fn history_predictors_learn_alternation_bimodal_cannot() {
        // A strictly alternating branch: bimodal hovers near 50%; gshare
        // and the perceptron learn it nearly perfectly.
        let mut bi = Bimodal::default();
        let mut gs = Gshare::default();
        let mut hp = HashedPerceptron::default();
        let a_bi = drive_single_pc(&mut bi, 1000).accuracy();
        let a_gs = drive_single_pc(&mut gs, 1000).accuracy();
        let a_hp = drive_single_pc(&mut hp, 1000).accuracy();
        assert!(a_bi < 0.7, "bimodal should struggle, got {a_bi}");
        assert!(a_gs > 0.95, "gshare should learn alternation, got {a_gs}");
        assert!(
            a_hp > 0.95,
            "perceptron should learn alternation, got {a_hp}"
        );
    }

    #[test]
    fn stats_mpki() {
        let mut s = PredictorStats::default();
        for i in 0..100 {
            s.record(i % 10 != 0);
        }
        assert_eq!(s.mispredictions, 10);
        assert!((s.mpki(10_000) - 1.0).abs() < 1e-12);
        assert!((s.accuracy() - 0.9).abs() < 1e-12);
    }
}
