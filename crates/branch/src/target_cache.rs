//! Indirect-branch target prediction.
//!
//! The paper's conclusion names the interaction of predictive replacement
//! with "high-performance indirect branch prediction" as future work; this
//! module provides the substrate: a history-hashed, tagged *target cache*
//! (in the lineage of Chang & Patt's target cache and the first-level of
//! ITTAGE-style predictors). Indirect jumps and indirect calls predict
//! through it; returns use the return-address stack instead.

#![forbid(unsafe_code)]

/// A two-level target predictor: a PC-indexed *base* table captures
/// monomorphic indirect branches; a tagged, (PC ⊕ history)-indexed table
/// disambiguates polymorphic ones. Predictions prefer a tag-matching
/// history entry and fall back to the base table.
#[derive(Debug, Clone)]
pub struct TargetCache {
    /// Base table: (partial tag, target) indexed by PC alone.
    base: Vec<(u16, u64)>,
    /// History table: (partial tag, target) indexed by PC ⊕ history.
    hist_table: Vec<(u16, u64)>,
    mask: usize,
    /// Folded history of recent indirect-branch targets.
    history: u64,
    history_bits: u32,
}

impl TargetCache {
    /// Create a target cache with `entries` slots (power of two) and
    /// `history_bits` of target history.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a nonzero power of two or
    /// `history_bits > 32`.
    pub fn new(entries: usize, history_bits: u32) -> TargetCache {
        assert!(
            entries.is_power_of_two() && entries > 0,
            "entries must be a power of two, got {entries}"
        );
        assert!(history_bits <= 32, "history_bits must be <= 32");
        TargetCache {
            base: vec![(0, 0); entries],
            hist_table: vec![(0, 0); entries],
            mask: entries - 1,
            history: 0,
            history_bits,
        }
    }

    fn hash(x: u64) -> u64 {
        let x = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
        x ^ (x >> 29)
    }

    fn base_slot(&self, pc: u64) -> (usize, u16) {
        let h = Self::hash(pc >> 2);
        (((h >> 12) as usize) & self.mask, ((h >> 48) as u16) | 1)
    }

    fn hist_slot(&self, pc: u64) -> (usize, u16) {
        let h = Self::hash((pc >> 2) ^ self.history.wrapping_mul(0x9E37_79B9));
        (((h >> 12) as usize) & self.mask, ((h >> 48) as u16) | 1)
    }

    /// Predict the target of the indirect branch at `pc`, if a matching
    /// entry exists. The history-indexed entry wins; the PC-indexed base
    /// entry is the fallback.
    pub fn predict(&self, pc: u64) -> Option<u64> {
        let (hi, ht) = self.hist_slot(pc);
        let (t, target) = self.hist_table[hi];
        if t == ht {
            return Some(target);
        }
        let (bi, bt) = self.base_slot(pc);
        let (t, target) = self.base[bi];
        if t == bt {
            Some(target)
        } else {
            None
        }
    }

    /// Resolve the branch at `pc` with its actual `target`: install or
    /// correct both entries and advance the target history.
    pub fn update(&mut self, pc: u64, target: u64) {
        let (hi, ht) = self.hist_slot(pc);
        self.hist_table[hi] = (ht, target);
        let (bi, bt) = self.base_slot(pc);
        self.base[bi] = (bt, target);
        let mask = if self.history_bits == 0 {
            0
        } else {
            (1u64 << self.history_bits) - 1
        };
        self.history = ((self.history << 2) ^ (target >> 2)) & mask;
    }

    /// Restore the predictor to its freshly-constructed state, reusing
    /// both table allocations.
    pub fn reset(&mut self) {
        self.base.fill((0, 0));
        self.hist_table.fill((0, 0));
        self.history = 0;
    }
}

impl Default for TargetCache {
    /// 4K-entry target cache with 12 bits of target history.
    fn default() -> TargetCache {
        TargetCache::new(4096, 12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monomorphic_target_learned_after_one_update() {
        let mut tc = TargetCache::default();
        assert_eq!(tc.predict(0x100), None);
        tc.update(0x100, 0x4000);
        assert_eq!(tc.predict(0x100), Some(0x4000));
    }

    #[test]
    fn history_disambiguates_polymorphic_targets() {
        // A switch whose target strictly alternates between two cases.
        // A history-indexed target cache learns both contexts; measure
        // accuracy over the steady state.
        let mut tc = TargetCache::default();
        let pc = 0x2000;
        let mut correct = 0;
        let total = 2000;
        for i in 0..total {
            let target = if i % 2 == 0 { 0xA000 } else { 0xB000 };
            if tc.predict(pc) == Some(target) {
                correct += 1;
            }
            tc.update(pc, target);
        }
        let acc = f64::from(correct) / f64::from(total);
        assert!(acc > 0.9, "alternating-target accuracy {acc}");
    }

    #[test]
    fn distinct_pcs_do_not_interfere_much() {
        let mut tc = TargetCache::new(1024, 8);
        for i in 0..200u64 {
            tc.update(0x1000 + i * 8, 0x9000 + i);
        }
        let correct = (0..200u64)
            .filter(|&i| tc.predict(0x1000 + i * 8) == Some(0x9000 + i))
            .count();
        assert!(correct > 150, "only {correct}/200 retained");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_size_panics() {
        let _ = TargetCache::new(1000, 8);
    }
}
