//! End-to-end storage-budget audit against the real workspace.
//!
//! These tests exercise the full extract → compute → compare path on the
//! actual source tree and the checked-in `budgets.toml` — the same run
//! CI performs — and then prove the comparison has teeth by perturbing
//! every extracted parameter.

#![forbid(unsafe_code)]

use xtask::audit::{self, REQUIRED_PARAMS};
use xtask::engine::Workspace;
use xtask::minitoml;

#[test]
fn real_tree_matches_checked_in_budgets() {
    let root = xtask::workspace_root();
    let report = audit::run(&root, &root.join("budgets.toml")).expect("budgets.toml readable");
    assert!(report.ok(), "audit errors: {:#?}", report.errors);
    assert_eq!(
        report.params.len(),
        REQUIRED_PARAMS.len(),
        "every canonical parameter extracted exactly once"
    );
    assert!(report.rows.iter().all(|r| r.ok));
    // The headline figures must be pinned, not merely computable.
    for key in ["ghrp.added_bits", "ghrp.added_kib", "sdbp.sampler_bits"] {
        assert!(
            report.rows.iter().any(|r| r.key == key),
            "budgets.toml must pin `{key}`"
        );
    }
}

#[test]
fn doubling_any_real_parameter_breaks_the_real_budget() {
    let root = xtask::workspace_root();
    let budgets_text =
        std::fs::read_to_string(root.join("budgets.toml")).expect("budgets.toml readable");
    let budgets = minitoml::parse(&budgets_text).expect("budgets.toml parses");
    let ws = Workspace::load(&root);
    let mut errors = Vec::new();
    let params = audit::extract_params(&ws, &mut errors);
    assert!(errors.is_empty(), "{errors:?}");
    for key in REQUIRED_PARAMS {
        let mut p = params.clone();
        *p.get_mut(key).expect("param extracted") *= 2;
        let mut errs = Vec::new();
        let computed = audit::compute(&p, &mut errs);
        audit::compare(&computed, &budgets, &mut errs);
        assert!(!errs.is_empty(), "doubling `{key}` escaped the audit");
    }
}
