//! Fixture and acceptance tests for the interprocedural passes
//! (`panic-path`, `render-purity`, `reset-complete`) and the lint CLI
//! filters.
//!
//! Positives are pinned to exact `path:line:rule` keys; negatives ride
//! in the same fixture trees (a debug-guarded panic, a pure render, a
//! helper-delegated reset, a `set_of` *getter* on a config field, a
//! justified sticky-state allow) and are asserted absent by the same
//! exact-match comparison.
//!
//! The two seeded-mutation tests are the issue's acceptance checks:
//! delete one field restore from a byte-for-byte copy of the real LRU
//! policy's `reset()` and the lint must name the field; inject a
//! `SystemTime::now()` into a clean `Experiment::render` and the lint
//! must flag the render. Both bug classes pass every behavioural test
//! in a single-run suite — state leaks only show across reuse, clock
//! reads only break reproducibility — which is why they are caught
//! statically.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture_root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/passes")
        .join(name)
}

/// Sorted `path:line:rule` keys for a lint run over `root`.
fn keys(root: &Path) -> Vec<String> {
    let report = xtask::run_lint(root);
    assert!(
        report.files_scanned > 0,
        "fixture root {} has no sources",
        root.display()
    );
    let mut keys: Vec<String> = report.findings.iter().map(xtask::Finding::key).collect();
    keys.sort_unstable();
    keys
}

/// A scratch mini-root that cleans up after itself.
struct TempRoot(PathBuf);

impl TempRoot {
    fn new(tag: &str) -> TempRoot {
        let dir = std::env::temp_dir().join(format!("xtask-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        TempRoot(dir)
    }

    fn write(&self, rel: &str, contents: &str) {
        let path = self.0.join(rel);
        std::fs::create_dir_all(path.parent().expect("rel has a parent")).expect("mkdir");
        std::fs::write(path, contents).expect("write fixture file");
    }
}

impl Drop for TempRoot {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

#[test]
fn panic_path_fixture_pins_exact_findings() {
    // The cross-file call to `decode` is flagged at the *call* line with
    // a witness naming the unwrap site; the local `panic!` at its own
    // line. `probe` (total + debug-guarded callees) stays clean.
    assert_eq!(
        keys(&fixture_root("panic_path")),
        [
            "crates/sim/src/cache.rs:15:panic-path",
            "crates/sim/src/cache.rs:9:panic-path",
        ]
    );
}

#[test]
fn panic_path_witness_names_the_unwrap_site() {
    let report = xtask::run_lint(&fixture_root("panic_path"));
    let call_site = report
        .findings
        .iter()
        .find(|f| f.line == 9)
        .expect("call-site finding");
    assert!(
        call_site.message.contains("decode")
            && call_site.message.contains("crates/sim/src/util.rs:8"),
        "witness chain should end at the unwrap: {}",
        call_site.message
    );
}

#[test]
fn render_purity_fixture_pins_exact_findings() {
    // IoExp inherits I/O one call deep, ClockExp a clock read two calls
    // deep; CleanExp stays clean. Findings land on the `fn render` line.
    assert_eq!(
        keys(&fixture_root("render_purity")),
        [
            "crates/bench/src/exp.rs:32:render-purity",
            "crates/bench/src/exp.rs:40:render-purity",
        ]
    );
}

#[test]
fn reset_complete_fixture_pins_exact_findings() {
    // Only Leaky is flagged: Delegating resets through a helper, Mapper
    // exercises the `set_of`-is-a-getter resolution, Sticky carries a
    // justified allow. Config fields (`ways`) are never required.
    let root = fixture_root("reset_complete");
    assert_eq!(keys(&root), ["crates/sim/src/lib.rs:33:reset-complete"]);

    let report = xtask::run_lint(&root);
    assert!(
        report.findings[0].message.contains("`hist`")
            && report.findings[0].message.contains("touch"),
        "finding should name the stale field and its mutator: {}",
        report.findings[0].message
    );
    // The sticky-state escapes are *active* allows, visible in the
    // report with their justification text: the lifetime counter and
    // the sticky set-dueling PSEL selector.
    assert_eq!(report.active_allows, 2);
    assert!(report
        .allow_details
        .iter()
        .all(|a| a.rule == "reset-complete"));
    assert!(
        report
            .allow_details
            .iter()
            .any(|a| a.justification.contains("lifetime counter")),
        "allow summary should carry the Sticky justification: {:?}",
        report.allow_details
    );
    assert!(
        report
            .allow_details
            .iter()
            .any(|a| a.justification.contains("sticky set-dueling PSEL state")),
        "allow summary should carry the StickyPsel justification: {:?}",
        report.allow_details
    );
}

/// Acceptance mutation 1: take the real LRU policy, delete the
/// `self.clock = 0;` restore from `reset()`, and the lint must report
/// `reset-complete` naming `clock`. The unmutated copy is the control.
#[test]
fn seeded_reset_field_deletion_is_caught() {
    let real = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .join("crates/cache/src/policy/lru.rs");
    let clean = std::fs::read_to_string(real).expect("real LRU policy present");
    assert!(
        clean.contains("self.clock = 0;"),
        "LRU reset lost the clock restore the mutation test seeds from"
    );

    let control = TempRoot::new("reset-control");
    control.write("crates/cache/src/policy/lru.rs", &clean);
    assert_eq!(keys(&control.0), [""; 0], "unmutated LRU must be clean");

    let mutated = clean.replace("self.clock = 0;", "");
    let tmp = TempRoot::new("reset-mutant");
    tmp.write("crates/cache/src/policy/lru.rs", &mutated);
    let report = xtask::run_lint(&tmp.0);
    let hits: Vec<&xtask::Finding> = report
        .findings
        .iter()
        .filter(|f| f.rule == "reset-complete")
        .collect();
    assert!(
        hits.iter().any(|f| {
            f.file == Path::new("crates/cache/src/policy/lru.rs")
                && f.message.contains("`clock`")
                && f.message.contains("Lru")
        }),
        "deleted clock restore escaped reset-complete: {:?}",
        hits.iter().map(|f| &f.message).collect::<Vec<_>>()
    );
}

/// Acceptance mutation 2: inject a `SystemTime::now()` into the clean
/// render fixture and the lint must flag that render as impure.
#[test]
fn seeded_clock_read_in_render_is_caught() {
    let clean =
        std::fs::read_to_string(fixture_root("render_purity").join("crates/bench/src/exp.rs"))
            .expect("render fixture present");
    assert!(
        clean.contains("// seed-site"),
        "render fixture lost the seed marker"
    );
    let mutated = clean.replace("// seed-site", "let _t = std::time::SystemTime::now();");

    let tmp = TempRoot::new("render-mutant");
    tmp.write("crates/bench/src/exp.rs", &mutated);
    let report = xtask::run_lint(&tmp.0);
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == "render-purity" && f.message.contains("CleanExp")),
        "injected SystemTime::now() escaped render-purity: {:?}",
        report
            .findings
            .iter()
            .map(xtask::Finding::key)
            .collect::<Vec<_>>()
    );
}

fn lint_cmd(root: &Path, extra: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_xtask"))
        .arg("lint")
        .arg("--root")
        .arg(root)
        .args(extra)
        .output()
        .expect("run xtask binary")
}

#[test]
fn rule_filter_narrows_the_report() {
    let root = fixture_root("panic_path");
    // Both fixture findings are panic-path, so the filter keeps them …
    let out = lint_cmd(&root, &["--json", "--rule", "panic-path"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"panic-path\": 2"), "{stdout}");
    assert_eq!(out.status.code(), Some(1));
    // … and filtering on any other rule empties the report.
    let out = lint_cmd(&root, &["--json", "--rule", "no-panic"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"clean\": true"), "{stdout}");
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn unknown_rule_is_a_usage_error() {
    let out = lint_cmd(&fixture_root("panic_path"), &["--rule", "no-such-rule"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown rule") && stderr.contains("panic-path"),
        "usage text should name the rule catalogue: {stderr}"
    );
}

#[test]
fn path_filter_narrows_the_report() {
    let root = fixture_root("panic_path");
    let out = lint_cmd(&root, &["--json", "--path", "crates/sim/src/util.rs"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Both findings live in cache.rs, so a util.rs filter is clean.
    assert!(stdout.contains("\"clean\": true"), "{stdout}");
    assert_eq!(out.status.code(), Some(0));
    let out = lint_cmd(&root, &["--json", "--path", "crates/sim/src/cache.rs"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"panic-path\": 2"), "{stdout}");
    assert_eq!(out.status.code(), Some(1));
}
