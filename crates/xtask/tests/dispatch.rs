//! Dispatch-drift pass: negative and positive fixtures.

#![forbid(unsafe_code)]

use std::path::Path;

use xtask::Finding;

fn drift_findings(fixture: &str) -> Vec<Finding> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(fixture);
    xtask::run_lint(&root)
        .findings
        .into_iter()
        .filter(|f| f.rule == "dispatch-drift")
        .collect()
}

#[test]
fn consistent_dispatch_is_clean() {
    let findings = drift_findings("dispatch_ok");
    assert!(findings.is_empty(), "false positives: {findings:?}");
}

#[test]
fn every_drift_kind_is_reported() {
    let findings = drift_findings("dispatch_bad");
    let messages: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();
    let expect_one = |needle: &str| {
        assert_eq!(
            messages.iter().filter(|m| m.contains(needle)).count(),
            1,
            "expected exactly one finding mentioning `{needle}`, got {messages:?}"
        );
    };
    expect_one("impl ReplacementPolicy for Extra");
    expect_one("`AnyPolicy::Ghost` wraps `Ghost`");
    expect_one("`AnyPolicy::Ghost` is never constructed");
    expect_one("`PolicyKind::Ghost` is not producible");
    assert_eq!(findings.len(), 4, "unexpected extra findings: {messages:?}");
}

#[test]
fn corpus_without_the_trait_disables_the_pass() {
    let findings = drift_findings("corpus");
    assert!(findings.is_empty(), "{findings:?}");
}
