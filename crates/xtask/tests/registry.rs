//! Registry-drift pass: positive and negative fixtures.

#![forbid(unsafe_code)]

use std::path::Path;

use xtask::Finding;

fn drift_findings(fixture: &str) -> Vec<Finding> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(fixture);
    xtask::run_lint(&root)
        .findings
        .into_iter()
        .filter(|f| f.rule == "registry-drift")
        .collect()
}

#[test]
fn consistent_registry_is_clean() {
    let findings = drift_findings("registry_ok");
    assert!(findings.is_empty(), "false positives: {findings:?}");
}

#[test]
fn every_drift_kind_is_reported() {
    let findings = drift_findings("registry_bad");
    let messages: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();
    let expect_one = |needle: &str| {
        assert_eq!(
            messages.iter().filter(|m| m.contains(needle)).count(),
            1,
            "expected exactly one finding mentioning `{needle}`, got {messages:?}"
        );
    };
    expect_one("`ghost` is listed in `ALL` but has no `build` arm");
    expect_one("arm for `orphan` that is not listed");
    expect_one("`report run stale`, which is not a registered experiment");
    expect_one("`undocumented` is registered but `EXPERIMENTS.md` never");
    assert_eq!(findings.len(), 4, "unexpected extra findings: {messages:?}");
}

#[test]
fn corpus_without_a_registry_disables_the_pass() {
    let findings = drift_findings("corpus");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn real_workspace_registry_and_docs_agree() {
    // The actual repository must stay drift-free: the fe-bench registry,
    // its build dispatch, and EXPERIMENTS.md all agree.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let findings: Vec<Finding> = xtask::run_lint(root)
        .findings
        .into_iter()
        .filter(|f| f.rule == "registry-drift")
        .collect();
    assert!(findings.is_empty(), "registry drift: {findings:?}");
}
