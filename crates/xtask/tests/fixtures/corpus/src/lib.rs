//! Fixture: root-crate source, in scope for all non-hot rules.

#![forbid(unsafe_code)]

pub fn rel(hits: u64, total: u64) -> f64 {
    if total == 0 {
        return 0.0;
    }
    hits as f64 / total as f64
}
