//! Fixture: example missing the forbid-unsafe header — the expanded
//! collect_sources scope must surface this file.

fn main() {
    println!("fixture example");
}
