//! Fixture: integration test — test context, so only forbid-unsafe
//! applies; the unwrap and raw modulo below must not be findings.

#![forbid(unsafe_code)]

#[test]
fn integration_tests_panic_freely() {
    let sets = 4u64;
    let v = vec![1u64, 2, 3];
    assert_eq!(*v.first().unwrap(), 1);
    assert_eq!(7 % sets, 3);
    let _ = v[(sets % 3) as usize];
}
