//! Fixture: set-dueling meta-policy hot-path file (under `policy/`).

#![forbid(unsafe_code)]

pub struct DuelSel {
    tallies: Vec<u32>,
    roles: Vec<u8>,
    winner: usize,
}

impl DuelSel {
    pub fn leader_of(&self, set: usize) -> usize {
        set % self.tallies.len()
    }

    pub fn argmin(&self) -> usize {
        self.tallies
            .iter()
            .enumerate()
            .min_by_key(|&(_, t)| t)
            .map(|(i, _)| i)
            .unwrap()
    }

    pub fn role(&self, c: u64) -> u8 {
        self.roles[c as usize]
    }

    pub fn train(&mut self, candidate: usize) {
        self.tallies[candidate] = self.tallies[candidate].saturating_add(1);
        if self.tallies[candidate] < self.tallies[self.winner] {
            self.winner = candidate;
        }
    }

    // lint:allow(reset-complete): `tallies` and `winner` are sticky set-dueling PSEL state kept across traces by design
    pub fn reset(&mut self) {
        for r in &mut self.roles {
            *r = u8::MAX;
        }
    }
}
