//! Fixture: the canonical index helper — exempt from pow2-mask and
//! checked-index (the audited casts live here by design).

#![forbid(unsafe_code)]

pub fn mask(x: u64, buckets: usize) -> usize {
    ((x % buckets as u64) & 0xffff) as usize
}

pub fn idx(table: &[u16], i: u64) -> u16 {
    table[(i & 0xfff) as usize]
}
