//! Fixture: hot-path file (under `policy/`).

#![forbid(unsafe_code)]

pub struct Lru {
    stamps: Vec<u64>,
    ways: usize,
}

impl Lru {
    pub fn victim(&self, set: usize) -> usize {
        let base = set * self.ways;
        let slice = &self.stamps[base..base + self.ways];
        let mut best = 0;
        for (w, &s) in slice.iter().enumerate() {
            if s < slice[best] {
                best = w;
            }
        }
        best
    }

    pub fn wrap(&self, i: usize) -> usize {
        i % self.stamps.len()
    }

    pub fn stamp_of(&self, way: u32) -> u64 {
        self.stamps[way as usize]
    }

    pub fn even(&self, i: usize) -> bool {
        i % 2 == 0
    }
}
