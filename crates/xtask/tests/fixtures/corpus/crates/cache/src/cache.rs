//! Fixture: hot-path file (name ends in `cache.rs`), exercising every
//! rule plus the comment/string/char traps the scanner must ignore.
//! A doc comment mentioning `x % sets` must not fire pow2-mask.

#![forbid(unsafe_code)]

/* block comment spanning lines,
   with `block % entries` inside —
   invisible to the scanner */

pub struct C {
    pub num_sets: usize,
    pub data: Vec<u64>,
}

impl C {
    pub fn set_of(&self, block: u64) -> u64 {
        block % self.num_sets as u64
    }

    pub fn first(&self) -> u64 {
        *self.data.first().unwrap()
    }

    pub fn tagged(&self, addr: u64) -> u64 {
        self.data[(addr >> 6) as usize]
    }

    pub fn allowed_wrap(&self, x: u64) -> u64 {
        // lint:allow(pow2-mask): fixture — ring-buffer wrap, any capacity legal
        x % self.capacity()
    }

    pub fn capacity(&self) -> u64 {
        self.data.len() as u64
    }

    pub fn display(&self) -> String {
        format!("{}% of sets", self.num_sets)
    }

    pub fn percent(&self) -> char {
        '%'
    }

    pub fn expected(&self) -> u64 {
        self.data.last().copied().expect("nonempty")
    }

    pub fn lifetimes<'a>(&self, s: &'a str) -> &'a str {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panicking_asserts_are_idiomatic_here() {
        let c = C {
            num_sets: 4,
            data: vec![1],
        };
        assert_eq!(*c.data.first().unwrap(), 1);
        let _ = 5u64 % (c.num_sets as u64);
        let _ = c.data[c.num_sets as usize - 4];
    }
}
