//! Fixture: crate root that is missing the forbid-unsafe header and is
//! not a hot path (panics allowed, indexing rules still apply).

pub mod cache;

pub mod policy {
    pub mod lru;
}

pub mod index;

pub fn lookup(table: &[u64], i: usize) -> u64 {
    table[i % table.len()]
}

pub fn not_hot_so_unwrap_is_legal(v: Option<u64>) -> u64 {
    v.unwrap()
}

// lint:allow(no-panic)
pub fn annotation_above_lacks_justification() {}
