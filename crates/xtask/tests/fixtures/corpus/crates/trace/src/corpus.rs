#![forbid(unsafe_code)]
//! Chunk-decode fixture: `trace/src/corpus*.rs` joined the hot-path set
//! with the SoA corpus — the refill loop below must trip `no-panic` on
//! its `.unwrap()`, `alloc-in-hot-loop` on the per-chunk scratch `Vec`,
//! and `checked-index` on the cast index, while the cold `return Err`
//! allocation and `cfg(test)` code stay exempt.

pub struct Cursor<'a> {
    pc: &'a [u8],
    out: Vec<u64>,
}

impl Cursor<'_> {
    pub fn refill(&mut self) {
        for chunk in self.pc.chunks_exact(8) {
            let scratch = Vec::new();
            let word: [u8; 8] = chunk.try_into().unwrap();
            self.out.push(u64::from_le_bytes(word) + scratch.len() as u64);
        }
    }

    pub fn column(&self, i: u64) -> u8 {
        self.pc[i as usize]
    }

    pub fn verify(&self) -> Result<(), String> {
        for byte in self.pc {
            if *byte == 0xFF {
                return Err(String::from("corrupt column"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt_scratch() {
        let v: Vec<u8> = Vec::new();
        assert!(v.len() % v.capacity().max(1) == 0);
    }
}
