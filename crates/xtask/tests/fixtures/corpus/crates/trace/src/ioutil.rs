//! Cold-side helper: a panic here is acceptable locally, but hot
//! callers inherit it transitively — the panic-path extra pins that.

#![forbid(unsafe_code)]

/// Panics when the chunk header is missing.
pub fn read_header(bytes: &[u8]) -> u32 {
    let first = bytes.first().expect("empty chunk");
    u32::from(*first)
}
