#![forbid(unsafe_code)]
//! K-means fixture: `trace/src/sample.rs` joined the hot-path set with
//! the sampled-replay pipeline — the assignment loop below must trip
//! `no-panic` on its `.expect()` and `checked-index` on the cast
//! centroid index, while `cfg(test)` code stays exempt.

pub fn assign(data: &[f64], centroids: &[f64], k: u32) -> usize {
    let first = data.first().copied().expect("nonempty window");
    let mut best = 0usize;
    let mut best_d = f64::MAX;
    for c in 0..k {
        let d = (centroids[c as usize] - first).abs();
        if d < best_d {
            best_d = d;
            best = c as usize;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt_unwrap() {
        let v = [1.0f64];
        assert_eq!(super::assign(&v, &v, 1), 0);
    }
}
