#![forbid(unsafe_code)]
//! Steal-loop fixture: `frontend/src/schedule.rs` is a scheduler hot
//! path, so the `no-panic` and indexing rules must fire on its drain loop.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn pop_front(range: &AtomicU64) -> u64 {
    // A panic here would poison the pool: .unwrap() must be flagged.
    let v = range.load(Ordering::Acquire);
    v.checked_shr(32).unwrap()
}

pub fn steal(ranges: &[AtomicU64], w: usize, num_entries: usize) -> u64 {
    let victim = (w + 1) % num_entries;
    ranges[victim as usize].load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steal_never_panics() {
        let ranges = [AtomicU64::new(7)];
        let got: Option<u64> = Some(steal(&ranges, 0, 1));
        got.unwrap();
    }
}
