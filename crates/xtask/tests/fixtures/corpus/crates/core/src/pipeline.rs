//! Decode pipeline (hot: `crates/core/src/`). The header fetch reaches
//! an `.expect()` one file away in `trace/src/ioutil.rs` — the
//! interprocedural golden extra.

#![forbid(unsafe_code)]

/// Feed one chunk header through the decoder.
pub fn ingest(bytes: &[u8]) -> u32 {
    read_header(bytes)
}
