//! Fixture: hot path via `core/src/`.

#![forbid(unsafe_code)]

pub fn pick(v: &[u64]) -> u64 {
    v.iter().copied().max().unwrap()
}

pub fn justified(v: &[u64]) -> u64 {
    v.first().copied().unwrap() // lint:allow(no-panic): fixture — caller guarantees nonempty
}
