//! Consistent dispatch fixture: impls, variants, constructor arms and
//! config spellings all line up — the drift pass must stay silent.

#![forbid(unsafe_code)]

pub trait ReplacementPolicy {
    fn name(&self) -> &'static str;
}

pub struct Alpha;
pub struct Beta;

impl ReplacementPolicy for Alpha {
    fn name(&self) -> &'static str {
        "alpha"
    }
}

impl ReplacementPolicy for Beta {
    fn name(&self) -> &'static str {
        "beta"
    }
}

pub enum AnyPolicy {
    Alpha(Alpha),
    Beta(Beta),
}

#[derive(Clone, Copy)]
pub enum PolicyKind {
    Alpha,
    Beta,
}

impl PolicyKind {
    pub fn parse(s: &str) -> Option<PolicyKind> {
        match s {
            "alpha" => Some(PolicyKind::Alpha),
            "beta" => Some(Self::Beta),
            _ => None,
        }
    }
}

pub fn build_pair(kind: PolicyKind) -> AnyPolicy {
    match kind {
        PolicyKind::Alpha => AnyPolicy::Alpha(Alpha),
        PolicyKind::Beta => AnyPolicy::Beta(Beta),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // A test double must not count as a dispatchable policy.
    struct Fake;
    impl ReplacementPolicy for Fake {
        fn name(&self) -> &'static str {
            "fake"
        }
    }
}
