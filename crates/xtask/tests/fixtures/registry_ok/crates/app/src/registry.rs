//! Consistent registry: table, builder, and docs agree.

pub struct ExperimentInfo {
    pub name: &'static str,
    pub summary: &'static str,
}

pub const ALL: &[ExperimentInfo] = &[
    ExperimentInfo {
        name: "headline",
        summary: "suite means",
    },
    ExperimentInfo {
        name: "diag",
        summary: "per-trace diagnostics",
    },
];

pub fn build(name: &str) -> Option<Box<dyn Experiment>> {
    Some(match name {
        "headline" => Box::new(Headline),
        "diag" => Box::new(Diag),
        _ => return None,
    })
}
