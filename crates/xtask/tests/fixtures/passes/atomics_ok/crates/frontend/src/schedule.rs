//! Fixture: a protocol-conformant scheduler shard (atomics-audit clean).
//!
//! Every atomic access below follows the declared ordering protocol:
//! Acquire loads and Release stores on the range deque, an
//! `AcqRel`/`Acquire` compare-exchange on claims, a Relaxed shared
//! cursor, and Relaxed stats counters. The seeded-mutation test rewrites
//! `Ordering::AcqRel` to `Ordering::Relaxed` in a copy of this file and
//! expects the audit to object.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

pub struct Lane {
    range: AtomicU64,
    stat_steals: AtomicU64,
}

pub struct Pool {
    lanes: Vec<Lane>,
    next: AtomicUsize,
}

impl Pool {
    pub fn claim(&self) -> usize {
        self.next.fetch_add(1, Ordering::Relaxed)
    }

    pub fn publish(&self, lane: usize, packed: u64) {
        let me = &self.lanes[lane].range;
        me.store(packed, Ordering::Release);
    }

    pub fn steal(&self, from: usize) -> Option<u64> {
        let victim = &self.lanes[from].range;
        let cur = victim.load(Ordering::Acquire);
        if cur == 0 {
            return None;
        }
        let stats = &self.lanes[from].stat_steals;
        match victim.compare_exchange_weak(cur, cur - 1, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => {
                stats.fetch_add(1, Ordering::Relaxed);
                Some(cur)
            }
            Err(_) => None,
        }
    }
}
