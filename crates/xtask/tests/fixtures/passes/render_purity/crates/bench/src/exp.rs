//! Three `Experiment::render` impls: one pure, one doing file I/O
//! through a helper, one reading the clock two calls deep.

#![forbid(unsafe_code)]

/// Reads a file — an I/O effect the render below inherits.
fn load_notes() -> String {
    std::fs::read_to_string("notes.txt").unwrap_or_default()
}

fn stamp() -> f64 {
    let t0 = std::time::Instant::now();
    t0.elapsed().as_secs_f64()
}

fn stamp_indirect() -> f64 {
    stamp() * 1e3
}

pub struct CleanExp;

impl Experiment for CleanExp {
    fn render(&self) -> String {
        // seed-site
        format!("rows: {}", 2 + 2)
    }
}

pub struct IoExp;

impl Experiment for IoExp {
    fn render(&self) -> String {
        load_notes()
    }
}

pub struct ClockExp;

impl Experiment for ClockExp {
    fn render(&self) -> String {
        format!("{}", stamp_indirect())
    }
}
