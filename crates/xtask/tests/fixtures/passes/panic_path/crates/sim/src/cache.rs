//! Hot-path file (`cache.rs` suffix): every function here must be
//! transitively panic-free in release builds.

#![forbid(unsafe_code)]

/// BAD: calls `decode`, which unwraps. The finding lands on the call
/// line with a witness chain ending at the unwrap site.
pub fn lookup(raw: Option<u32>) -> u32 {
    decode(raw)
}

/// BAD: aborts locally. Flagged at the `panic!` line itself.
pub fn insert(way: usize, ways: usize) -> usize {
    if way >= ways {
        panic!("way out of range");
    }
    way
}

/// OK: `width` and `checked_width` are release-panic-free.
pub fn probe(x: u32) -> u32 {
    width(x) + checked_width(x)
}
