//! Non-hot helpers. `decode` panics on malformed input; `width` is
//! total. The panic-path pass must see through the file boundary.

#![forbid(unsafe_code)]

/// Panics on `None` — fine here, fatal when a hot path calls it.
pub fn decode(x: Option<u32>) -> u32 {
    x.unwrap()
}

/// Total: no panic source anywhere.
pub fn width(x: u32) -> u32 {
    x.saturating_add(1)
}

/// Panics only under `debug_assertions`; release-pruned, so hot callers
/// stay transitively panic-free.
pub fn checked_width(x: u32) -> u32 {
    if cfg!(debug_assertions) {
        assert!(x < 1 << 30, "width overflow");
    }
    debug_assert!(x > 0);
    x + 1
}
