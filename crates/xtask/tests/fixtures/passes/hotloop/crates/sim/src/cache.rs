//! Fixture: alloc-in-hot-loop positives and negatives.
//!
//! The path ends in `cache.rs`, so the engine classifies it hot.

#![forbid(unsafe_code)]

/// POSITIVE ×3: a fresh Vec, a `format!`, and a `.to_vec()` per iteration.
pub fn churn(lines: &[u64]) -> usize {
    let mut total = 0usize;
    for &line in lines {
        let scratch: Vec<u64> = Vec::new();
        let tag = format!("{line}");
        let copy = lines.to_vec();
        total += scratch.len() + tag.len() + copy.len();
    }
    total
}

/// NEGATIVE: buffers hoisted out of the loop and reused.
pub fn hoisted(lines: &[u64]) -> usize {
    let mut scratch: Vec<u64> = Vec::new();
    let mut total = 0usize;
    for &line in lines {
        scratch.clear();
        scratch.push(line);
        total += scratch.len();
    }
    total
}

/// NEGATIVE: the `format!` sits on a cold `return Err(...)` exit — it
/// runs at most once per call, never per iteration.
pub fn validate(stamps: &[u64], clock: u64) -> Result<(), String> {
    for (i, &s) in stamps.iter().enumerate() {
        if s > clock {
            return Err(format!("stamp {s} at slot {i} is ahead of {clock}"));
        }
    }
    Ok(())
}

/// POSITIVE: `.clone()` inside a `while` loop body.
pub fn drain(mut pending: usize, template: &[u64]) -> usize {
    let mut seen = 0usize;
    while pending > 0 {
        let snapshot = template.clone();
        seen += snapshot.len();
        pending -= 1;
    }
    seen
}
