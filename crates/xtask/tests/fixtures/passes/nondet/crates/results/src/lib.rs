//! Fixture: nondet-taint / float-order positives and negatives.

#![forbid(unsafe_code)]

use std::collections::HashMap;

/// POSITIVE nondet-taint: push in unordered iteration order.
pub fn leak_key_order(m: &HashMap<u64, u64>) -> Vec<u64> {
    let mut out = Vec::new();
    for (k, _) in m.iter() {
        out.push(*k);
    }
    out
}

/// NEGATIVE: the same shape laundered by a later sort.
pub fn sorted_key_order(m: &HashMap<u64, u64>) -> Vec<u64> {
    let mut out = Vec::new();
    for (k, _) in m.iter() {
        out.push(*k);
    }
    out.sort_unstable();
    out
}

/// NEGATIVE: keyed writes and integer reductions are order-free.
pub fn keyed_histogram(m: &HashMap<u64, u64>, labels: &mut [u64]) -> u64 {
    let mut total = 0u64;
    for (k, v) in m.iter() {
        let slot = usize::try_from(*k & 0xff).unwrap_or(0);
        labels[slot] = *v;
        total += v;
    }
    total
}

/// POSITIVE nondet-taint: serialized output in storage order.
pub fn dump_unsorted(m: &HashMap<u64, u64>, out: &mut String) {
    use std::fmt::Write as _;
    for (k, v) in m.iter() {
        let _ = writeln!(out, "{k} {v}");
    }
}

/// POSITIVE nondet-taint: unsorted collect of unordered keys.
pub fn collect_unsorted(m: &HashMap<u64, u64>) -> Vec<u64> {
    m.keys().copied().collect()
}

/// NEGATIVE: collecting into a BTreeMap restores a key order.
pub fn collect_sorted(m: &HashMap<u64, u64>) -> std::collections::BTreeMap<u64, u64> {
    m.iter()
        .map(|(k, v)| (*k, *v))
        .collect::<std::collections::BTreeMap<u64, u64>>()
}

/// POSITIVE float-order: float accumulation in storage order.
pub fn mean_in_map_order(m: &HashMap<u64, f64>) -> f64 {
    let mut acc = 0.0;
    for (_, v) in m.iter() {
        acc += v;
    }
    acc / 4.0
}

/// POSITIVE float-order: float reduction over unordered values.
pub fn float_sum(m: &HashMap<u64, f64>) -> f64 {
    m.values().sum::<f64>()
}

/// NEGATIVE: integer reduction commutes exactly.
pub fn int_sum(m: &HashMap<u64, u64>) -> u64 {
    m.values().sum::<u64>()
}
